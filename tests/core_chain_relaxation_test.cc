#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/exhaustive.h"
#include "datasets/xkg_generator.h"
#include "relax/miner.h"
#include "relax/relaxation.h"
#include "test_util.h"
#include "topk/project.h"

namespace specqp {
namespace {

using specqp::testing::Drain;
using specqp::testing::Row1;
using specqp::testing::VectorIterator;

// Fixture: people play instruments; instruments are related to each other.
// The chain rule relaxes "plays guitar" into "plays something related to
// guitar".
struct ChainFixture {
  TripleStore store;
  RelaxationIndex rules;
  TermId plays = kInvalidTermId;
  TermId related = kInvalidTermId;
  TermId guitar = kInvalidTermId;

  Query PlaysQuery(const char* instrument) const {
    Query q;
    const VarId s = q.GetOrAddVariable("s");
    q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(plays),
                               PatternTerm::Const(store.MustId(instrument))));
    q.AddProjection(s);
    return q;
  }
};

ChainFixture MakeChainFixture() {
  ChainFixture fx;
  TripleStore& store = fx.store;
  // plays: scores are player popularity.
  store.Add("ana", "plays", "guitar", 100.0);
  store.Add("ben", "plays", "bass", 90.0);
  store.Add("cem", "plays", "ukulele", 80.0);
  store.Add("dia", "plays", "piano", 70.0);
  store.Add("eli", "plays", "bass", 60.0);
  // instrument relatedness (z related-to guitar).
  store.Add("bass", "relatedTo", "guitar", 1.0);
  store.Add("ukulele", "relatedTo", "guitar", 1.0);
  store.Add("organ", "relatedTo", "piano", 1.0);
  store.Finalize();

  fx.plays = store.MustId("plays");
  fx.related = store.MustId("relatedTo");
  fx.guitar = store.MustId("guitar");

  ChainRelaxationRule rule;
  rule.from = PatternKey{kInvalidTermId, fx.plays, fx.guitar};
  rule.hop1_predicate = fx.plays;
  rule.hop2_predicate = fx.related;
  rule.hop2_object = fx.guitar;
  rule.weight = 0.8;
  SPECQP_CHECK(fx.rules.AddChainRule(rule).ok());
  return fx;
}

// --- rule validation ----------------------------------------------------------

TEST(ChainRuleTest, ValidRulePasses) {
  ChainRelaxationRule rule;
  rule.from = PatternKey{kInvalidTermId, 1, 2};
  rule.hop1_predicate = 1;
  rule.hop2_predicate = 3;
  rule.hop2_object = 2;
  rule.weight = 0.5;
  EXPECT_TRUE(ValidateChainRule(rule).ok());
}

TEST(ChainRuleTest, RejectsBadShapes) {
  ChainRelaxationRule rule;
  rule.from = PatternKey{7, 1, 2};  // subject bound: invalid domain
  rule.hop1_predicate = 1;
  rule.hop2_predicate = 3;
  rule.hop2_object = 2;
  rule.weight = 0.5;
  EXPECT_FALSE(ValidateChainRule(rule).ok());

  rule.from = PatternKey{kInvalidTermId, 1, 2};
  rule.weight = 0.0;
  EXPECT_FALSE(ValidateChainRule(rule).ok());
  rule.weight = 1.5;
  EXPECT_FALSE(ValidateChainRule(rule).ok());

  rule.weight = 0.5;
  rule.hop2_object = kInvalidTermId;
  EXPECT_FALSE(ValidateChainRule(rule).ok());
}

TEST(ChainRuleTest, ApplyProducesHopPatterns) {
  ChainRelaxationRule rule;
  rule.from = PatternKey{kInvalidTermId, 1, 2};
  rule.hop1_predicate = 1;
  rule.hop2_predicate = 3;
  rule.hop2_object = 2;
  rule.weight = 0.5;
  const TriplePattern pattern(PatternTerm::Var(0), PatternTerm::Const(1),
                              PatternTerm::Const(2));
  auto chain = ApplyChainRule(pattern, rule, /*fresh_var=*/5);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->hop1.s.var(), 0u);
  EXPECT_EQ(chain->hop1.p.term(), 1u);
  EXPECT_EQ(chain->hop1.o.var(), 5u);
  EXPECT_EQ(chain->hop2.s.var(), 5u);
  EXPECT_EQ(chain->hop2.p.term(), 3u);
  EXPECT_EQ(chain->hop2.o.term(), 2u);
}

TEST(ChainRuleTest, IndexStoresAndSorts) {
  RelaxationIndex index;
  auto make = [](TermId o, TermId hop2_o, double w) {
    ChainRelaxationRule rule;
    rule.from = PatternKey{kInvalidTermId, 1, o};
    rule.hop1_predicate = 1;
    rule.hop2_predicate = 3;
    rule.hop2_object = hop2_o;
    rule.weight = w;
    return rule;
  };
  ASSERT_TRUE(index.AddChainRule(make(2, 2, 0.4)).ok());
  ASSERT_TRUE(index.AddChainRule(make(2, 9, 0.7)).ok());
  EXPECT_EQ(index.total_chain_rules(), 2u);
  const auto rules = index.ChainRulesFor(PatternKey{kInvalidTermId, 1, 2});
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_DOUBLE_EQ(rules[0].weight, 0.7);
  const auto* top = index.TopChainRule(PatternKey{kInvalidTermId, 1, 2});
  ASSERT_NE(top, nullptr);
  EXPECT_DOUBLE_EQ(top->weight, 0.7);
  // Duplicate hops keep the max weight.
  ASSERT_TRUE(index.AddChainRule(make(2, 9, 0.2)).ok());
  EXPECT_EQ(index.total_chain_rules(), 2u);
}

// --- project operator ----------------------------------------------------------

TEST(ProjectIteratorTest, ClearsRequestedSlots) {
  std::vector<ScoredRow> rows;
  ScoredRow row(3, 0.9);
  row.bindings[0] = 7;
  row.bindings[2] = 9;
  rows.push_back(row);
  auto input = std::make_unique<VectorIterator>(rows);
  ProjectIterator project(std::move(input), {2});
  ScoredRow out;
  ASSERT_TRUE(project.Next(&out));
  EXPECT_EQ(out.bindings[0], 7u);
  EXPECT_EQ(out.bindings[2], kInvalidTermId);
  EXPECT_DOUBLE_EQ(out.score, 0.9);
  EXPECT_FALSE(project.Next(&out));
}

TEST(ProjectIteratorTest, PreservesOrderAndBounds) {
  std::vector<ScoredRow> rows = {Row1(2, 1, 0.9), Row1(2, 2, 0.5)};
  auto input = std::make_unique<VectorIterator>(rows);
  ProjectIterator project(std::move(input), {1});
  EXPECT_DOUBLE_EQ(project.UpperBound(), 0.9);
  ScoredRow out;
  ASSERT_TRUE(project.Next(&out));
  EXPECT_DOUBLE_EQ(project.UpperBound(), 0.5);
}

// --- end-to-end chain execution -------------------------------------------------

TEST(ChainExecutionTest, SinglePatternChainScores) {
  // Query: who plays guitar? Original: ana (1.0). Chain (w=0.8): via bass
  // players and the ukulele player.
  //   hop1 = (?s plays ?z): normalised over all plays-triples (max 100):
  //     ben->bass 0.9, cem->ukulele 0.8, eli->bass 0.6, ana->guitar 1.0,
  //     dia->piano 0.7
  //   hop2 = (?z relatedTo guitar): bass 1.0, ukulele 1.0.
  //   chain(s) = 0.4*(s1+s2): ben 0.4*1.9=0.76, cem 0.4*1.8=0.72,
  //     eli 0.4*1.6=0.64. (ana and dia have no related instrument.)
  ChainFixture fx = MakeChainFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.PlaysQuery("guitar");
  const auto result = testing::Execute(engine, query, 10, Strategy::kTrinit);
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0].bindings[0], fx.store.MustId("ana"));
  EXPECT_NEAR(result.rows[0].score, 1.0, 1e-9);
  EXPECT_EQ(result.rows[1].bindings[0], fx.store.MustId("ben"));
  EXPECT_NEAR(result.rows[1].score, 0.76, 1e-9);
  EXPECT_EQ(result.rows[2].bindings[0], fx.store.MustId("cem"));
  EXPECT_NEAR(result.rows[2].score, 0.72, 1e-9);
  EXPECT_EQ(result.rows[3].bindings[0], fx.store.MustId("eli"));
  EXPECT_NEAR(result.rows[3].score, 0.64, 1e-9);
  // Rows are trimmed back to the query's own variables.
  for (const ScoredRow& row : result.rows) {
    EXPECT_EQ(row.bindings.size(), query.num_vars());
  }
}

TEST(ChainExecutionTest, MatchesExhaustiveOracle) {
  ChainFixture fx = MakeChainFixture();
  Engine engine(&fx.store, &fx.rules);
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const Query query = fx.PlaysQuery("guitar");
  const auto truth = oracle.Evaluate(query);
  const auto result = testing::Execute(engine, query, 10, Strategy::kTrinit);
  ASSERT_EQ(result.rows.size(), truth.answers.size());
  for (size_t i = 0; i < truth.answers.size(); ++i) {
    EXPECT_NEAR(result.rows[i].score, truth.answers[i].score, 1e-9);
    EXPECT_EQ(result.rows[i].bindings, truth.answers[i].bindings);
  }
}

TEST(ChainExecutionTest, ChainDerivationLosesToBetterSimpleRule) {
  // Add a simple rule with a higher weight; Definition 8 keeps the maximum
  // derivation per answer.
  ChainFixture fx = MakeChainFixture();
  RelaxationRule simple;
  simple.from = PatternKey{kInvalidTermId, fx.plays, fx.guitar};
  simple.to = PatternKey{kInvalidTermId, fx.plays, fx.store.MustId("bass")};
  simple.weight = 0.95;
  ASSERT_TRUE(fx.rules.AddRule(simple).ok());

  Engine engine(&fx.store, &fx.rules);
  const auto result = testing::Execute(engine, fx.PlaysQuery("guitar"), 10,
                                     Strategy::kTrinit);
  // ben now scores max(0.76 chain, 0.95 * (90/90 = 1.0) = 0.95).
  ASSERT_GE(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[1].bindings[0], fx.store.MustId("ben"));
  EXPECT_NEAR(result.rows[1].score, 0.95, 1e-9);
}

TEST(ChainExecutionTest, TwoPatternQueryWithChain) {
  // Conjunction: plays guitar AND plays piano — empty originally (nobody
  // plays both); ana fills it through the piano pattern's chain rule
  // because she plays the organ, which is related to the piano.
  ChainFixture fx2;
  TripleStore& store = fx2.store;
  store.Add("ana", "plays", "guitar", 100.0);
  store.Add("ana", "plays", "organ", 100.0);
  store.Add("ben", "plays", "bass", 90.0);
  store.Add("dia", "plays", "piano", 70.0);
  store.Add("bass", "relatedTo", "guitar", 1.0);
  store.Add("organ", "relatedTo", "piano", 1.0);
  store.Finalize();
  fx2.plays = store.MustId("plays");
  fx2.related = store.MustId("relatedTo");

  ChainRelaxationRule piano_rule;
  piano_rule.from =
      PatternKey{kInvalidTermId, fx2.plays, store.MustId("piano")};
  piano_rule.hop1_predicate = fx2.plays;
  piano_rule.hop2_predicate = fx2.related;
  piano_rule.hop2_object = store.MustId("piano");
  piano_rule.weight = 0.6;
  ASSERT_TRUE(fx2.rules.AddChainRule(piano_rule).ok());

  Query query;
  const VarId s = query.GetOrAddVariable("s");
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(fx2.plays),
                                 PatternTerm::Const(store.MustId("guitar"))));
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(fx2.plays),
                                 PatternTerm::Const(store.MustId("piano"))));
  query.AddProjection(s);

  Engine engine(&store, &fx2.rules);
  const auto result = testing::Execute(engine, query, 5, Strategy::kTrinit);
  // ana: guitar original (1.0) + piano via chain 0.3*(organ-hop1 1.0 +
  // hop2 1.0) = 0.6 -> total 1.6.
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].bindings[0], store.MustId("ana"));
  EXPECT_NEAR(result.rows[0].score, 1.6, 1e-9);

  // Oracle agrees.
  ExhaustiveEvaluator oracle(&store, &fx2.rules);
  const auto truth = oracle.Evaluate(query);
  ASSERT_EQ(truth.answers.size(), 1u);
  EXPECT_NEAR(truth.answers[0].score, 1.6, 1e-9);
}

TEST(ChainPlannerTest, SparsePatternWithOnlyChainRuleGetsRelaxed) {
  ChainFixture fx = MakeChainFixture();
  Engine engine(&fx.store, &fx.rules);
  // k=3 but "plays guitar" has a single original answer; the chain rule is
  // the only relaxation and must be chosen.
  PlanDiagnostics diag;
  const QueryPlan plan = engine.PlanOnly(fx.PlaysQuery("guitar"), 3, &diag);
  ASSERT_EQ(plan.singletons.size(), 1u);
  EXPECT_TRUE(diag.decisions[0].has_relaxations);
  EXPECT_GT(diag.decisions[0].eq_prime_top, 0.0);
}

TEST(ChainPlannerTest, SpecQpExecutesChainPlan) {
  ChainFixture fx = MakeChainFixture();
  Engine engine(&fx.store, &fx.rules);
  const auto result = testing::Execute(engine, fx.PlaysQuery("guitar"), 3,
                                     Strategy::kSpecQp);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_NEAR(result.rows[0].score, 1.0, 1e-9);
  EXPECT_NEAR(result.rows[1].score, 0.76, 1e-9);
}

// --- chain miner ---------------------------------------------------------------

TEST(ChainMinerTest, MinesPrecisionWeights) {
  // subjects playing guitar: {ana, ben}; chain subjects (play something
  // related to guitar = bass): {ben, eli} -> weight = |{ben}| / 2 = 0.5.
  TripleStore store;
  store.Add("ana", "plays", "guitar", 10.0);
  store.Add("ben", "plays", "guitar", 9.0);
  store.Add("ben", "plays", "bass", 9.0);
  store.Add("eli", "plays", "bass", 8.0);
  store.Add("bass", "relatedTo", "guitar", 1.0);
  store.Finalize();

  ChainMinerOptions options;
  options.min_support = 1;
  options.min_weight = 0.0;
  RelaxationIndex index;
  ASSERT_TRUE(MineChainRelaxations(store, store.MustId("plays"),
                                   store.MustId("relatedTo"), options,
                                   &index)
                  .ok());
  const auto* rule = index.TopChainRule(
      PatternKey{kInvalidTermId, store.MustId("plays"),
                 store.MustId("guitar")});
  ASSERT_NE(rule, nullptr);
  EXPECT_NEAR(rule->weight, 0.5, 1e-9);
  EXPECT_EQ(rule->hop1_predicate, store.MustId("plays"));
  EXPECT_EQ(rule->hop2_predicate, store.MustId("relatedTo"));
  EXPECT_EQ(rule->hop2_object, store.MustId("guitar"));
}

TEST(ChainMinerTest, MinSupportAndWeightFilter) {
  TripleStore store;
  store.Add("ana", "plays", "guitar", 10.0);
  store.Add("eli", "plays", "bass", 8.0);
  store.Add("bass", "relatedTo", "guitar", 1.0);
  store.Finalize();

  ChainMinerOptions options;
  options.min_support = 2;  // only one chain subject (eli)
  RelaxationIndex index;
  ASSERT_TRUE(MineChainRelaxations(store, store.MustId("plays"),
                                   store.MustId("relatedTo"), options,
                                   &index)
                  .ok());
  EXPECT_EQ(index.total_chain_rules(), 0u);
}

TEST(ChainMinerTest, GeneratorProducesChainRules) {
  XkgConfig config;
  config.seed = 99;
  config.num_entities = 2000;
  config.num_domains = 4;
  config.types_per_domain = 8;
  config.num_attributes = 2;
  config.values_per_attribute = 8;
  config.generate_value_graph = true;
  const XkgDataset data = GenerateXkg(config);
  EXPECT_NE(data.related_predicate, kInvalidTermId);
  EXPECT_GT(data.rules.total_chain_rules(), 0u);
}

}  // namespace
}  // namespace specqp
