#include "rdf/store_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "rdf/mmap_store.h"
#include "rdf/posting_list.h"
#include "stats/catalog.h"
#include "test_util.h"
#include "util/crc32.h"
#include "util/random.h"

namespace specqp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string blob(size, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(size));
  return blob;
}

void WriteFile(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  ASSERT_TRUE(out.good()) << path;
}

TripleStore SmallStore() {
  TripleStore store;
  store.Add("shakira", "rdf:type", "singer", 100.0);
  store.Add("sting", "rdf:type", "vocalist", 80.0);
  store.Add("shakira", "plays", "guitar", 60.0);
  store.Finalize();
  return store;
}

// Triple arrays and dictionaries of two stores are identical.
void ExpectSameStore(const TripleStore& a, const TripleStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.triple(static_cast<uint32_t>(i)),
              b.triple(static_cast<uint32_t>(i)));
  }
  ASSERT_EQ(a.dict().size(), b.dict().size());
  for (TermId id = 0; id < a.dict().size(); ++id) {
    EXPECT_EQ(a.dict().Name(id), b.dict().Name(id));
  }
}

TEST(StoreIoTest, RoundTripSmallStore) {
  TripleStore store;
  store.Add("shakira", "rdf:type", "singer", 100.0);
  store.Add("sting", "rdf:type", "vocalist", 80.0);
  store.Finalize();

  const std::string path = TempPath("small.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TripleStore& copy = loaded.value();
  EXPECT_EQ(copy.size(), store.size());
  EXPECT_EQ(copy.dict().size(), store.dict().size());
  EXPECT_TRUE(copy.Contains(copy.MustId("shakira"), copy.MustId("rdf:type"),
                            copy.MustId("singer")));
  PatternKey key{kInvalidTermId, copy.MustId("rdf:type"),
                 copy.MustId("singer")};
  EXPECT_DOUBLE_EQ(copy.MaxScore(key), 100.0);
}

TEST(StoreIoTest, RoundTripPreservesEverything) {
  Rng rng(99);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 500;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);

  const std::string path = TempPath("random.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TripleStore& copy = loaded.value();

  ASSERT_EQ(copy.size(), store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    const Triple& a = store.triple(static_cast<uint32_t>(i));
    const Triple& b = copy.triple(static_cast<uint32_t>(i));
    EXPECT_EQ(a, b);
  }
  ASSERT_EQ(copy.dict().size(), store.dict().size());
  for (TermId id = 0; id < store.dict().size(); ++id) {
    EXPECT_EQ(copy.dict().Name(id), store.dict().Name(id));
  }
}

TEST(StoreIoTest, RoundTripEmptyStore) {
  TripleStore store;
  store.Finalize();
  const std::string path = TempPath("empty.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
}

TEST(StoreIoTest, SaveRequiresFinalizedStore) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  const Status s = SaveStore(store, TempPath("unfinalized.sqp"));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(StoreIoTest, LoadMissingFileFails) {
  auto r = LoadStore(TempPath("does_not_exist.sqp"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(StoreIoTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.sqp");
  std::ofstream out(path, std::ios::binary);
  out << "NOTASTORE-file-content";
  out.close();
  auto r = LoadStore(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, LoadRejectsTruncatedFile) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Add("b", "p", "y", 2.0);
  store.Finalize();
  const std::string path = TempPath("full.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  // Truncate the file at several points; every prefix must be rejected.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string blob(size, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(size));
  in.close();

  for (size_t cut : {size / 4, size / 2, size - 3}) {
    const std::string cut_path = TempPath("truncated.sqp");
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto r = LoadStore(cut_path);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(StoreIoTest, LoadDetectsBitFlip) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Add("b", "q", "y", 2.0);
  store.Finalize();
  const std::string path = TempPath("flip.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string blob(size, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(size));
  in.close();

  // Flip one payload byte in the middle (inside a section, not the header).
  blob[size / 2] = static_cast<char>(blob[size / 2] ^ 0x40);
  const std::string bad_path = TempPath("flipped.sqp");
  std::ofstream out(bad_path, std::ios::binary);
  out.write(blob.data(), static_cast<std::streamsize>(size));
  out.close();

  auto r = LoadStore(bad_path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, LoadRejectsTrailingGarbage) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Finalize();
  const std::string path = TempPath("trailing.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  auto r = LoadStore(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, LoadedStoreAnswersQueries) {
  Rng rng(1234);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 300;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("query.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());

  // Match counts agree on a sample of keys.
  for (int i = 0; i < 20; ++i) {
    const Triple& t =
        store.triple(static_cast<uint32_t>(rng.NextBounded(store.size())));
    PatternKey key{kInvalidTermId, t.p, t.o};
    EXPECT_EQ(loaded.value().CountMatches(key), store.CountMatches(key));
  }
}

// --- v1 compatibility + migration ------------------------------------------

TEST(StoreIoTest, V1RoundTripStillWorks) {
  const TripleStore store = SmallStore();
  const std::string path = TempPath("v1.sqp");
  ASSERT_TRUE(SaveStoreV1(store, path).ok());
  auto version = PeekStoreVersion(path);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 1u);

  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStore(store, loaded.value());
}

TEST(StoreIoTest, V1ToV2MigrationRoundTrip) {
  Rng rng(7);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 400;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);

  const std::string v1_path = TempPath("migrate.v1.sqp");
  ASSERT_TRUE(SaveStoreV1(store, v1_path).ok());
  auto from_v1 = LoadStore(v1_path);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();

  const std::string v2_path = TempPath("migrate.v2.sqp");
  SaveStoreOptions v2_options;
  v2_options.format_version = 2;
  ASSERT_TRUE(SaveStore(from_v1.value(), v2_path, v2_options).ok());
  auto v2_version = PeekStoreVersion(v2_path);
  ASSERT_TRUE(v2_version.ok());
  EXPECT_EQ(v2_version.value(), 2u);

  // Both the parsed and the mapped reader see the original store.
  auto from_v2 = LoadStore(v2_path);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  ExpectSameStore(store, from_v2.value());

  auto mapped = MmapStore::Open(v2_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameStore(store, mapped.value()->store());
}

TEST(StoreIoTest, V2ToV3MigrationRoundTrip) {
  Rng rng(11);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 400;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);

  const std::string v2_path = TempPath("migrate23.v2.sqp");
  SaveStoreOptions v2_options;
  v2_options.format_version = 2;
  ASSERT_TRUE(SaveStore(store, v2_path, v2_options).ok());
  auto from_v2 = LoadStore(v2_path);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();

  const std::string v3_path = TempPath("migrate23.v3.sqp");
  ASSERT_TRUE(SaveStore(from_v2.value(), v3_path).ok());  // v3 default
  auto v3_version = PeekStoreVersion(v3_path);
  ASSERT_TRUE(v3_version.ok());
  EXPECT_EQ(v3_version.value(), 3u);

  // Both the parsed and the mapped reader see the original store.
  auto from_v3 = LoadStore(v3_path);
  ASSERT_TRUE(from_v3.ok()) << from_v3.status().ToString();
  ExpectSameStore(store, from_v3.value());

  auto mapped = MmapStore::Open(v3_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameStore(store, mapped.value()->store());
}

TEST(StoreIoTest, MmapStoreRejectsV1Files) {
  const std::string path = TempPath("v1_for_mmap.sqp");
  ASSERT_TRUE(SaveStoreV1(SmallStore(), path).ok());
  auto mapped = MmapStore::Open(path);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
}

// --- mapped (zero-copy) reads ----------------------------------------------

TEST(StoreIoTest, MmapStoreServesQueries) {
  Rng rng(21);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 500;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("mmap_query.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const TripleStore& view = mapped.value()->store();
  EXPECT_TRUE(view.is_view());
  EXPECT_TRUE(view.finalized());
  EXPECT_EQ(mapped.value()->bytes_mapped(),
            ReadFile(path).size());
  ExpectSameStore(store, view);

  // Dictionary lookups work without an index build.
  for (TermId id = 0; id < store.dict().size(); ++id) {
    auto found = view.dict().Find(store.dict().Name(id));
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), id);
  }
  EXPECT_FALSE(view.dict().Contains("never-interned"));

  // Pattern matching agrees with the owned store on a key sample.
  for (int i = 0; i < 30; ++i) {
    const Triple& t =
        store.triple(static_cast<uint32_t>(rng.NextBounded(store.size())));
    for (const PatternKey& key :
         {PatternKey{t.s, kInvalidTermId, kInvalidTermId},
          PatternKey{kInvalidTermId, t.p, kInvalidTermId},
          PatternKey{kInvalidTermId, t.p, t.o},
          PatternKey{t.s, kInvalidTermId, t.o},
          PatternKey{t.s, t.p, t.o}}) {
      EXPECT_EQ(view.CountMatches(key), store.CountMatches(key));
      EXPECT_DOUBLE_EQ(view.MaxScore(key), store.MaxScore(key));
    }
  }
}

TEST(StoreIoTest, MmapStoreServesPostingListsZeroCopy) {
  Rng rng(22);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 300;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("mmap_postings.sqp");
  SaveStoreOptions flat_options;
  flat_options.format_version = 2;  // flat entries are the zero-copy layout
  ASSERT_TRUE(SaveStore(store, path, flat_options).ok());

  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const TripleStore& view = mapped.value()->store();
  ASSERT_NE(view.mapped_postings(), nullptr);

  const TermId p = store.MustId("p0");
  const PatternKey key{kInvalidTermId, p, kInvalidTermId};
  const PostingList built = BuildPostingList(store, key);
  const PostingList viewed = BuildPostingList(view, key);
  EXPECT_TRUE(viewed.owned.empty()) << "expected a zero-copy view";
  ASSERT_EQ(viewed.size(), built.size());
  EXPECT_DOUBLE_EQ(viewed.max_raw_score, built.max_raw_score);
  for (size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(viewed.entries[i].triple_index, built.entries[i].triple_index);
    EXPECT_DOUBLE_EQ(viewed.entries[i].score, built.entries[i].score);
  }

  // Non-directory patterns fall back to the scan-and-sort builder.
  const PatternKey bound{kInvalidTermId, p, store.MustId("o0")};
  const PostingList fallback = BuildPostingList(view, bound);
  EXPECT_EQ(fallback.owned.size(), fallback.entries.size());
  EXPECT_EQ(fallback.size(), BuildPostingList(store, bound).size());
}

TEST(StoreIoTest, MmapStoreServesBlockPostingsZeroCopy) {
  Rng rng(26);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 600;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("mmap_blocks.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());  // v3 is the default

  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const TripleStore& view = mapped.value()->store();
  EXPECT_EQ(view.mapped_postings(), nullptr);
  ASSERT_NE(view.mapped_block_postings(), nullptr);

  // A pure-predicate pattern opens as a block view over the mapped
  // sections, and its decoded entries are bit-identical to a flat build.
  const TermId p = store.MustId("p0");
  const PatternKey key{kInvalidTermId, p, kInvalidTermId};
  const PostingList built = BuildPostingList(store, key);
  const PostingList viewed = BuildPostingList(view, key);
  ASSERT_TRUE(viewed.blocked());
  EXPECT_TRUE(viewed.owned.empty());
  EXPECT_EQ(viewed.blocks->owned_bytes(), 0u) << "expected a zero-copy view";
  ASSERT_EQ(viewed.size(), built.size());
  EXPECT_DOUBLE_EQ(viewed.max_raw_score, built.max_raw_score);
  ASSERT_GT(viewed.blocks->num_blocks(), 1u);
  BlockIterator iter(&viewed);
  for (size_t i = 0; i < built.size(); ++i, iter.Advance()) {
    ASSERT_FALSE(iter.AtEnd());
    const PostingEntry& entry = iter.Entry();
    EXPECT_EQ(entry.triple_index, built.entries[i].triple_index);
    EXPECT_EQ(entry.score, built.entries[i].score);  // lossless codec
  }
  EXPECT_TRUE(iter.AtEnd());

  // Non-directory patterns fall back to the scan-and-sort builder, which
  // re-encodes into owned (non-mapped) blocks on a block-backed store.
  const PatternKey bound{kInvalidTermId, p, store.MustId("o0")};
  const PostingList fallback = BuildPostingList(view, bound);
  ASSERT_TRUE(fallback.blocked());
  EXPECT_GT(fallback.blocks->owned_bytes(), 0u);
  EXPECT_EQ(fallback.size(), BuildPostingList(store, bound).size());
}

TEST(StoreIoTest, MmapStoreOnEmptyStore) {
  TripleStore store;
  store.Finalize();
  const std::string path = TempPath("mmap_empty.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value()->store().size(), 0u);
  EXPECT_TRUE(mapped.value()->VerifyAllSections().ok());
}

// --- statistics snapshot ----------------------------------------------------

TEST(StoreIoTest, StatsSnapshotRoundTrip) {
  Rng rng(23);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 200;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);

  PostingListCache postings(&store);
  StatisticsCatalog catalog(&store, &postings, /*head_fraction=*/0.8);
  for (TermId p : {store.MustId("p0"), store.MustId("p1")}) {
    catalog.GetStats(PatternKey{kInvalidTermId, p, kInvalidTermId});
  }

  SaveStoreOptions options;
  options.stats = catalog.Snapshot();
  options.stats_head_fraction = catalog.head_fraction();
  ASSERT_EQ(options.stats.size(), 2u);
  const std::string path = TempPath("stats.sqp");
  ASSERT_TRUE(SaveStore(store, path, options).ok());

  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped.value()->has_stats());
  EXPECT_DOUBLE_EQ(mapped.value()->stats_head_fraction(), 0.8);
  ASSERT_EQ(mapped.value()->stats_entries().size(), 2u);

  // Preloading a fresh catalog reproduces the memoised stats without
  // touching any posting list.
  PostingListCache fresh_postings(&store);
  StatisticsCatalog fresh(&store, &fresh_postings, 0.8);
  EXPECT_EQ(fresh.Preload(mapped.value()->stats_entries()), 2u);
  EXPECT_EQ(fresh.size(), 2u);
  for (const v2::StatsEntry& row : mapped.value()->stats_entries()) {
    const PatternStats& stats =
        fresh.GetStats(PatternKey{row.s, row.p, row.o});
    EXPECT_EQ(stats.m, row.m);
    EXPECT_DOUBLE_EQ(stats.sigma_r, row.sigma_r);
    EXPECT_DOUBLE_EQ(stats.s_r, row.s_r);
    EXPECT_DOUBLE_EQ(stats.s_m, row.s_m);
  }
  EXPECT_EQ(fresh_postings.misses(), 0u);
}

// --- v2 corruption paths ----------------------------------------------------

TEST(StoreIoTest, V2RejectsTruncatedSectionTable) {
  const std::string path = TempPath("v2_table.sqp");
  ASSERT_TRUE(SaveStore(SmallStore(), path).ok());
  std::string blob = ReadFile(path);

  // Cut inside the section table and patch the header's file size to
  // match, so the cut itself (not the size check) is what gets rejected.
  const size_t cut = sizeof(v2::FileHeader) + sizeof(v2::SectionEntry) / 2;
  std::string truncated = blob.substr(0, cut);
  const uint64_t new_size = truncated.size();
  std::memcpy(truncated.data() + 16, &new_size, 8);  // FileHeader::file_size
  const std::string cut_path = TempPath("v2_table_cut.sqp");
  WriteFile(cut_path, truncated);

  auto mapped = MmapStore::Open(cut_path);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  auto loaded = LoadStore(cut_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V2RejectsFileSizeMismatch) {
  const std::string path = TempPath("v2_size.sqp");
  ASSERT_TRUE(SaveStore(SmallStore(), path).ok());
  const std::string blob = ReadFile(path);
  for (size_t cut : {blob.size() / 3, blob.size() / 2, blob.size() - 1}) {
    const std::string cut_path = TempPath("v2_size_cut.sqp");
    WriteFile(cut_path, blob.substr(0, cut));
    auto mapped = MmapStore::Open(cut_path);
    EXPECT_FALSE(mapped.ok()) << "cut at " << cut;
    EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  }
}

TEST(StoreIoTest, V2RejectsBadSectionCrcLazilyAndEagerly) {
  Rng rng(24);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 200;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("v2_crc.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  std::string blob = ReadFile(path);

  // Flip one bit in the middle of the triple section's payload.
  const size_t target = blob.size() / 2;
  blob[target] = static_cast<char>(blob[target] ^ 0x10);
  const std::string bad_path = TempPath("v2_crc_bad.sqp");
  WriteFile(bad_path, blob);

  // Lazy open succeeds structurally; the memoised checksum pass fails.
  auto lazy = MmapStore::Open(bad_path);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_FALSE(lazy.value()->VerifyAllSections().ok());
  EXPECT_FALSE(lazy.value()->VerifyAllSections().ok());  // memoised verdict

  // Eager open and the parsing loader reject outright.
  MmapStore::Options eager;
  eager.verify = MmapStore::Verify::kEager;
  auto strict = MmapStore::Open(bad_path, eager);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  auto loaded = LoadStore(bad_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V2RejectsMisalignedSectionOffset) {
  const std::string path = TempPath("v2_align.sqp");
  ASSERT_TRUE(SaveStore(SmallStore(), path).ok());
  std::string blob = ReadFile(path);

  // SectionEntry[0].offset lives right after the 40-byte header + 8 bytes
  // of (id, flags). Knock it off the 8-byte grid.
  uint64_t offset = 0;
  std::memcpy(&offset, blob.data() + sizeof(v2::FileHeader) + 8, 8);
  offset += 4;
  std::memcpy(blob.data() + sizeof(v2::FileHeader) + 8, &offset, 8);
  const std::string bad_path = TempPath("v2_align_bad.sqp");
  WriteFile(bad_path, blob);

  auto mapped = MmapStore::Open(bad_path);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
}

// Byte offset of the section-table row for `id`, or npos.
size_t FindTableEntry(const std::string& blob, v2::SectionId id) {
  uint32_t count = 0;
  std::memcpy(&count, blob.data() + 12, 4);  // FileHeader::section_count
  for (uint32_t i = 0; i < count; ++i) {
    const size_t entry = sizeof(v2::FileHeader) + i * sizeof(v2::SectionEntry);
    uint32_t sid = 0;
    std::memcpy(&sid, blob.data() + entry, 4);
    if (sid == static_cast<uint32_t>(id)) return entry;
  }
  return std::string::npos;
}

// Recomputes the stored CRC of `id`'s payload after a test patched it,
// so the corruption under test is the *values*, not the checksum.
void RepairSectionCrc(std::string* blob, v2::SectionId id) {
  const size_t entry = FindTableEntry(*blob, id);
  ASSERT_NE(entry, std::string::npos);
  uint64_t offset = 0;
  uint64_t length = 0;
  std::memcpy(&offset, blob->data() + entry + 8, 8);
  std::memcpy(&length, blob->data() + entry + 16, 8);
  const uint32_t crc = Crc32c(blob->data() + offset, length);
  std::memcpy(blob->data() + entry + 24, &crc, 4);
}

TEST(StoreIoTest, V2RejectsOverflowingDirectoryCount) {
  const std::string path = TempPath("v2_count.sqp");
  ASSERT_TRUE(SaveStore(SmallStore(), path).ok());
  std::string blob = ReadFile(path);

  // A count of 2^59 makes 8 + count*32 wrap back to 8 mod 2^64; the
  // length check must clamp the count instead of overflowing.
  const size_t entry = FindTableEntry(blob, v2::SectionId::kPostingDir);
  ASSERT_NE(entry, std::string::npos);
  uint64_t offset = 0;
  std::memcpy(&offset, blob.data() + entry + 8, 8);
  const uint64_t huge = uint64_t{1} << 59;
  std::memcpy(blob.data() + offset, &huge, 8);
  const std::string bad_path = TempPath("v2_count_bad.sqp");
  WriteFile(bad_path, blob);

  auto mapped = MmapStore::Open(bad_path);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V2RejectsNonMonotonicDictOffsets) {
  const std::string path = TempPath("v2_mono.sqp");
  ASSERT_TRUE(SaveStore(SmallStore(), path).ok());
  std::string blob = ReadFile(path);

  // Swap offsets[1] upward so [1] > [2] while the blob-end entry stays
  // intact, then re-checksum: a crafted file, not a bit flip.
  const size_t entry = FindTableEntry(blob, v2::SectionId::kDictOffsets);
  ASSERT_NE(entry, std::string::npos);
  uint64_t offset = 0;
  std::memcpy(&offset, blob.data() + entry + 8, 8);
  uint64_t off2 = 0;
  std::memcpy(&off2, blob.data() + offset + 16, 8);  // offsets[2]
  const uint64_t bad = off2 + 7;
  std::memcpy(blob.data() + offset + 8, &bad, 8);  // offsets[1]
  RepairSectionCrc(&blob, v2::SectionId::kDictOffsets);
  const std::string bad_path = TempPath("v2_mono_bad.sqp");
  WriteFile(bad_path, blob);

  // The engine path (eager metadata verification) must reject with a
  // Status, never CHECK-abort inside Dictionary::Name.
  auto mapped = MmapStore::Open(bad_path);
  ASSERT_TRUE(mapped.ok());  // structural checks alone cannot see this
  EXPECT_FALSE(mapped.value()->VerifyMetadataSections().ok());
  auto loaded = LoadStore(bad_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V2RejectsOutOfRangePermutationIndex) {
  const std::string path = TempPath("v2_perm.sqp");
  SaveStoreOptions v2_options;  // this test byte-pokes the v2 SPO index,
  v2_options.format_version = 2;  // which v3 files no longer carry
  ASSERT_TRUE(SaveStore(SmallStore(), path, v2_options).ok());
  std::string blob = ReadFile(path);

  const size_t entry = FindTableEntry(blob, v2::SectionId::kSpoIndex);
  ASSERT_NE(entry, std::string::npos);
  uint64_t offset = 0;
  std::memcpy(&offset, blob.data() + entry + 8, 8);
  const uint32_t oob = 0xFFFFFFFFu;
  std::memcpy(blob.data() + offset, &oob, 4);  // spo[0]
  RepairSectionCrc(&blob, v2::SectionId::kSpoIndex);
  const std::string bad_path = TempPath("v2_perm_bad.sqp");
  WriteFile(bad_path, blob);

  MmapStore::Options eager;
  eager.verify = MmapStore::Verify::kEager;
  auto strict = MmapStore::Open(bad_path, eager);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  auto loaded = LoadStore(bad_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V2RejectsUnsortedOrderingInvariants) {
  const std::string path = TempPath("v2_order.sqp");
  SaveStoreOptions v2_options;
  v2_options.format_version = 2;  // this test byte-pokes the flat layout
  ASSERT_TRUE(SaveStore(SmallStore(), path, v2_options).ok());
  const std::string blob = ReadFile(path);

  {
    // Swap the first two ids of the lexicographic dictionary permutation
    // and re-checksum: binary-searched Find would silently miss terms.
    std::string bad = blob;
    const size_t entry = FindTableEntry(bad, v2::SectionId::kDictSorted);
    ASSERT_NE(entry, std::string::npos);
    uint64_t offset = 0;
    std::memcpy(&offset, bad.data() + entry + 8, 8);
    uint32_t a = 0;
    uint32_t b = 0;
    std::memcpy(&a, bad.data() + offset, 4);
    std::memcpy(&b, bad.data() + offset + 4, 4);
    std::memcpy(bad.data() + offset, &b, 4);
    std::memcpy(bad.data() + offset + 4, &a, 4);
    RepairSectionCrc(&bad, v2::SectionId::kDictSorted);
    const std::string bad_path = TempPath("v2_order_dict.sqp");
    WriteFile(bad_path, bad);

    auto lazy = MmapStore::Open(bad_path);
    ASSERT_TRUE(lazy.ok());
    EXPECT_FALSE(lazy.value()->VerifyMetadataSections().ok());
    EXPECT_FALSE(LoadStore(bad_path).ok());
  }
  {
    // Swap the top two posting entries of the first directory slice:
    // scores would no longer stream descending.
    std::string bad = blob;
    const size_t entry = FindTableEntry(bad, v2::SectionId::kPostingEntries);
    ASSERT_NE(entry, std::string::npos);
    uint64_t offset = 0;
    std::memcpy(&offset, bad.data() + entry + 8, 8);
    char tmp[16];
    std::memcpy(tmp, bad.data() + offset, 16);
    std::memcpy(bad.data() + offset, bad.data() + offset + 16, 16);
    std::memcpy(bad.data() + offset + 16, tmp, 16);
    RepairSectionCrc(&bad, v2::SectionId::kPostingEntries);
    const std::string bad_path = TempPath("v2_order_postings.sqp");
    WriteFile(bad_path, bad);

    MmapStore::Options eager;
    eager.verify = MmapStore::Verify::kEager;
    auto strict = MmapStore::Open(bad_path, eager);
    EXPECT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  }
}

TEST(StoreIoTest, V2RejectsReservedBitsAndUnknownSections) {
  const std::string path = TempPath("v2_reserved.sqp");
  ASSERT_TRUE(SaveStore(SmallStore(), path).ok());
  const std::string blob = ReadFile(path);

  {
    // Nonzero flags word in the first table row.
    std::string bad = blob;
    const uint32_t flags = 1;
    std::memcpy(bad.data() + sizeof(v2::FileHeader) + 4, &flags, 4);
    const std::string bad_path = TempPath("v2_reserved_flags.sqp");
    WriteFile(bad_path, bad);
    EXPECT_FALSE(MmapStore::Open(bad_path).ok());
  }
  {
    // Unknown section id in the first table row.
    std::string bad = blob;
    const uint32_t id = 999;
    std::memcpy(bad.data() + sizeof(v2::FileHeader), &id, 4);
    const std::string bad_path = TempPath("v2_reserved_id.sqp");
    WriteFile(bad_path, bad);
    EXPECT_FALSE(MmapStore::Open(bad_path).ok());
  }
}

// --- v3 corruption paths ----------------------------------------------------

// A v3 store (the default format) whose posting lists span multiple
// blocks, so directory rows address real block runs worth corrupting.
std::string SaveMultiBlockV3(const char* name) {
  Rng rng(27);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 600;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath(name);
  EXPECT_TRUE(SaveStore(store, path).ok());
  EXPECT_EQ(PeekStoreVersion(path).value(), 3u);
  return path;
}

struct SectionExtent {
  uint64_t offset = 0;
  uint64_t length = 0;
};

SectionExtent FindSectionExtent(const std::string& blob, v2::SectionId id) {
  const size_t entry = FindTableEntry(blob, id);
  EXPECT_NE(entry, std::string::npos);
  SectionExtent extent;
  std::memcpy(&extent.offset, blob.data() + entry + 8, 8);
  std::memcpy(&extent.length, blob.data() + entry + 16, 8);
  return extent;
}

TEST(StoreIoTest, V3RejectsTruncatedBlockPayload) {
  const std::string path = SaveMultiBlockV3("v3_trunc.sqp");
  std::string blob = ReadFile(path);

  // Shrink the last block's byte_length so the concatenated block ranges
  // no longer cover the payload section (-9 survives the 8-byte AlignUp
  // padding), then re-checksum the index: the open-time geometry pass must
  // reject before any decode touches the short payload.
  const SectionExtent index =
      FindSectionExtent(blob, v2::SectionId::kPostingBlockIndex);
  const uint64_t total_blocks = index.length / sizeof(PostingBlockHeader);
  ASSERT_GT(total_blocks, 1u);
  const size_t last =
      index.offset + (total_blocks - 1) * sizeof(PostingBlockHeader);
  uint32_t byte_length = 0;
  std::memcpy(&byte_length, blob.data() + last + 8, 4);
  ASSERT_GT(byte_length, 9u);
  byte_length -= 9;
  std::memcpy(blob.data() + last + 8, &byte_length, 4);
  RepairSectionCrc(&blob, v2::SectionId::kPostingBlockIndex);
  const std::string bad_path = TempPath("v3_trunc_bad.sqp");
  WriteFile(bad_path, blob);

  auto mapped = MmapStore::Open(bad_path);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  auto loaded = LoadStore(bad_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V3RejectsHeaderOffsetsPastSection) {
  const std::string path = SaveMultiBlockV3("v3_offsets.sqp");
  const std::string blob = ReadFile(path);
  const SectionExtent index =
      FindSectionExtent(blob, v2::SectionId::kPostingBlockIndex);
  const SectionExtent payload =
      FindSectionExtent(blob, v2::SectionId::kPostingBlocks);

  {
    // First header's byte_offset points past the end of the payload
    // section: any dereference would read out of bounds.
    std::string bad = blob;
    std::memcpy(bad.data() + index.offset, &payload.length, 8);
    RepairSectionCrc(&bad, v2::SectionId::kPostingBlockIndex);
    const std::string bad_path = TempPath("v3_offsets_begin.sqp");
    WriteFile(bad_path, bad);
    auto mapped = MmapStore::Open(bad_path);
    EXPECT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  }
  {
    // First header's byte_length overruns the section end.
    std::string bad = blob;
    const uint32_t huge = static_cast<uint32_t>(payload.length) + 64;
    std::memcpy(bad.data() + index.offset + 8, &huge, 4);
    RepairSectionCrc(&bad, v2::SectionId::kPostingBlockIndex);
    const std::string bad_path = TempPath("v3_offsets_len.sqp");
    WriteFile(bad_path, bad);
    auto mapped = MmapStore::Open(bad_path);
    EXPECT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  }
}

TEST(StoreIoTest, V3RejectsMaxScoreInconsistentWithContents) {
  const std::string path = SaveMultiBlockV3("v3_ceiling.sqp");
  std::string blob = ReadFile(path);

  // Nudge the LAST block's ceiling down one IEEE-754 ulp: still in [0, 1],
  // still below the previous block's ceiling, so every open-time geometry
  // check passes — only decoding the block can see that max_score is no
  // longer bit-equal to its first entry's score.
  const SectionExtent index =
      FindSectionExtent(blob, v2::SectionId::kPostingBlockIndex);
  const uint64_t total_blocks = index.length / sizeof(PostingBlockHeader);
  const size_t last =
      index.offset + (total_blocks - 1) * sizeof(PostingBlockHeader);
  uint64_t bits = 0;
  std::memcpy(&bits, blob.data() + last + 16, 8);
  ASSERT_NE(bits, 0u);  // normalised scores are positive
  bits -= 1;
  std::memcpy(blob.data() + last + 16, &bits, 8);
  RepairSectionCrc(&blob, v2::SectionId::kPostingBlockIndex);
  const std::string bad_path = TempPath("v3_ceiling_bad.sqp");
  WriteFile(bad_path, blob);

  // Lazy open succeeds structurally; the decode-validating verification
  // pass and the eager readers reject with a Status, never a crash.
  auto lazy = MmapStore::Open(bad_path);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_FALSE(lazy.value()->VerifyAllSections().ok());
  MmapStore::Options eager;
  eager.verify = MmapStore::Verify::kEager;
  auto strict = MmapStore::Open(bad_path, eager);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  auto loaded = LoadStore(bad_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V3RejectsMisalignedBlockBoundaries) {
  const std::string path = SaveMultiBlockV3("v3_boundary.sqp");
  std::string blob = ReadFile(path);

  // Find a directory row spanning several blocks; declaring its first
  // block short would misalign every boundary after it.
  const SectionExtent dir = FindSectionExtent(blob, v2::SectionId::kPostingDir);
  uint64_t dir_count = 0;
  std::memcpy(&dir_count, blob.data() + dir.offset, 8);
  uint64_t block_begin = 0;
  bool found = false;
  for (uint64_t i = 0; i < dir_count && !found; ++i) {
    const size_t row = dir.offset + 8 + i * sizeof(v3::BlockPostingDirEntry);
    uint64_t block_count = 0;
    std::memcpy(&block_begin, blob.data() + row + 8, 8);
    std::memcpy(&block_count, blob.data() + row + 16, 8);
    found = block_count >= 2;
  }
  ASSERT_TRUE(found) << "no multi-block posting list in the fixture";

  const SectionExtent index =
      FindSectionExtent(blob, v2::SectionId::kPostingBlockIndex);
  // In range (so the entry-count check passes) but not a full block: the
  // misaligned-boundary check must catch it.
  const uint16_t short_count = 33;
  std::memcpy(
      blob.data() + index.offset + block_begin * sizeof(PostingBlockHeader) + 12,
      &short_count, 2);
  RepairSectionCrc(&blob, v2::SectionId::kPostingBlockIndex);
  const std::string bad_path = TempPath("v3_boundary_bad.sqp");
  WriteFile(bad_path, blob);

  auto mapped = MmapStore::Open(bad_path);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  auto loaded = LoadStore(bad_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, V3OmitsSpoIndexAndSynthesisesIt) {
  Rng rng(28);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 600;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("v3_no_spo.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  // The section is genuinely absent from the file...
  const std::string blob = ReadFile(path);
  EXPECT_EQ(FindTableEntry(blob, v2::SectionId::kSpoIndex),
            std::string::npos);

  // ...and subject-bound lookups (the SPO index's consumers) still agree
  // with the in-memory store through the synthesised identity view.
  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const TripleStore& view = mapped.value()->store();
  size_t checked = 0;
  for (uint32_t i = 0; i < store.size(); i += 37) {
    const Triple& t = store.triples()[i];
    const PatternKey by_subject{t.s, kInvalidTermId, kInvalidTermId};
    EXPECT_EQ(view.CountMatches(by_subject), store.CountMatches(by_subject));
    EXPECT_TRUE(view.Contains(t.s, t.p, t.o));
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  // A v3 file that does carry the redundant section is malformed.
  std::string padded = blob;
  // Graft a fake SPO table entry by flipping an existing section's id; the
  // simpler, spec-level contract is just that Open rejects the combination,
  // exercised via the pos-index row.
  const size_t pos_entry = FindTableEntry(padded, v2::SectionId::kPosIndex);
  ASSERT_NE(pos_entry, std::string::npos);
  const uint32_t spo_id = static_cast<uint32_t>(v2::SectionId::kSpoIndex);
  std::memcpy(padded.data() + pos_entry, &spo_id, 4);
  const std::string bad_path = TempPath("v3_with_spo.sqp");
  WriteFile(bad_path, padded);
  auto rejected = MmapStore::Open(bad_path);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace specqp
