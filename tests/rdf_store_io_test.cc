#include "rdf/store_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StoreIoTest, RoundTripSmallStore) {
  TripleStore store;
  store.Add("shakira", "rdf:type", "singer", 100.0);
  store.Add("sting", "rdf:type", "vocalist", 80.0);
  store.Finalize();

  const std::string path = TempPath("small.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TripleStore& copy = loaded.value();
  EXPECT_EQ(copy.size(), store.size());
  EXPECT_EQ(copy.dict().size(), store.dict().size());
  EXPECT_TRUE(copy.Contains(copy.MustId("shakira"), copy.MustId("rdf:type"),
                            copy.MustId("singer")));
  PatternKey key{kInvalidTermId, copy.MustId("rdf:type"),
                 copy.MustId("singer")};
  EXPECT_DOUBLE_EQ(copy.MaxScore(key), 100.0);
}

TEST(StoreIoTest, RoundTripPreservesEverything) {
  Rng rng(99);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 500;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);

  const std::string path = TempPath("random.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TripleStore& copy = loaded.value();

  ASSERT_EQ(copy.size(), store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    const Triple& a = store.triple(static_cast<uint32_t>(i));
    const Triple& b = copy.triple(static_cast<uint32_t>(i));
    EXPECT_EQ(a, b);
  }
  ASSERT_EQ(copy.dict().size(), store.dict().size());
  for (TermId id = 0; id < store.dict().size(); ++id) {
    EXPECT_EQ(copy.dict().Name(id), store.dict().Name(id));
  }
}

TEST(StoreIoTest, RoundTripEmptyStore) {
  TripleStore store;
  store.Finalize();
  const std::string path = TempPath("empty.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
}

TEST(StoreIoTest, SaveRequiresFinalizedStore) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  const Status s = SaveStore(store, TempPath("unfinalized.sqp"));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(StoreIoTest, LoadMissingFileFails) {
  auto r = LoadStore(TempPath("does_not_exist.sqp"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(StoreIoTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.sqp");
  std::ofstream out(path, std::ios::binary);
  out << "NOTASTORE-file-content";
  out.close();
  auto r = LoadStore(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, LoadRejectsTruncatedFile) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Add("b", "p", "y", 2.0);
  store.Finalize();
  const std::string path = TempPath("full.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  // Truncate the file at several points; every prefix must be rejected.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string blob(size, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(size));
  in.close();

  for (size_t cut : {size / 4, size / 2, size - 3}) {
    const std::string cut_path = TempPath("truncated.sqp");
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto r = LoadStore(cut_path);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(StoreIoTest, LoadDetectsBitFlip) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Add("b", "q", "y", 2.0);
  store.Finalize();
  const std::string path = TempPath("flip.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string blob(size, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(size));
  in.close();

  // Flip one payload byte in the middle (inside a section, not the header).
  blob[size / 2] = static_cast<char>(blob[size / 2] ^ 0x40);
  const std::string bad_path = TempPath("flipped.sqp");
  std::ofstream out(bad_path, std::ios::binary);
  out.write(blob.data(), static_cast<std::streamsize>(size));
  out.close();

  auto r = LoadStore(bad_path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, LoadRejectsTrailingGarbage) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Finalize();
  const std::string path = TempPath("trailing.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  auto r = LoadStore(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(StoreIoTest, LoadedStoreAnswersQueries) {
  Rng rng(1234);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 300;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("query.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());

  // Match counts agree on a sample of keys.
  for (int i = 0; i < 20; ++i) {
    const Triple& t =
        store.triple(static_cast<uint32_t>(rng.NextBounded(store.size())));
    PatternKey key{kInvalidTermId, t.p, t.o};
    EXPECT_EQ(loaded.value().CountMatches(key), store.CountMatches(key));
  }
}

}  // namespace
}  // namespace specqp
