#include "core/plan_executor.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "test_util.h"
#include "topk/top_k.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

// Compares engine output rows to the oracle's best answers: same bindings
// (as a set at each score level) and same scores rank by rank.
void ExpectMatchesOracle(const std::vector<ScoredRow>& rows,
                         const ExhaustiveEvaluator::EvalResult& truth,
                         size_t k) {
  const size_t expect = std::min(k, truth.answers.size());
  ASSERT_EQ(rows.size(), expect);
  for (size_t i = 0; i < expect; ++i) {
    EXPECT_NEAR(rows[i].score, truth.answers[i].score, 1e-9) << "rank " << i;
  }
  // Binding multiset of the full prefix must agree wherever scores are
  // unambiguous; compare as sets (ties can permute).
  std::multiset<double> expected_scores;
  std::multiset<double> actual_scores;
  for (size_t i = 0; i < expect; ++i) {
    expected_scores.insert(truth.answers[i].score);
    actual_scores.insert(rows[i].score);
  }
  auto eit = expected_scores.begin();
  auto ait = actual_scores.begin();
  for (; eit != expected_scores.end(); ++eit, ++ait) {
    EXPECT_NEAR(*eit, *ait, 1e-9);
  }
}

TEST(PlanExecutorTest, NoRelaxPlanEqualsOracleWithoutRules) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache postings(&fx.store);
  RelaxationIndex no_rules;
  PlanExecutor executor(&fx.store, &postings, &no_rules);
  ExhaustiveEvaluator oracle(&fx.store, &no_rules);

  const Query query = fx.TypeQuery({"singer", "vocalist"});
  ExecStats stats;
  ExecContext ctx(&stats);
  auto root = executor.Build(query, QueryPlan::NoRelaxationsPlan(2), &ctx);
  const auto rows = PullTopK(root.get(), 10, &stats);
  ExpectMatchesOracle(rows, oracle.Evaluate(query), 10);
}

TEST(PlanExecutorTest, TrinitPlanEqualsOracleWithRules) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache postings(&fx.store);
  PlanExecutor executor(&fx.store, &postings, &fx.rules);
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);

  for (const auto& names : std::vector<std::vector<std::string>>{
           {"singer"},
           {"singer", "lyricist"},
           {"singer", "lyricist", "guitarist"},
           {"singer", "lyricist", "guitarist", "pianist"}}) {
    const Query query = fx.TypeQuery(names);
    ExecStats stats;
    ExecContext ctx(&stats);
    auto root = executor.Build(
        query, QueryPlan::TrinitPlan(query.num_patterns()), &ctx);
    const auto rows = PullTopK(root.get(), 10, &stats);
    ExpectMatchesOracle(rows, oracle.Evaluate(query), 10);
  }
}

TEST(PlanExecutorTest, MixedPlanEqualsOracleWithFilteredRules) {
  // A plan relaxing only pattern 1 must equal the oracle evaluated over a
  // rule set containing only pattern 1's rules: speculative execution is
  // exact with respect to its own plan.
  MusicFixture fx = MakeMusicFixture();
  const Query query = fx.TypeQuery({"singer", "pianist"});

  RelaxationIndex only_pianist;
  for (const RelaxationRule& rule :
       fx.rules.RulesFor(query.pattern(1).Key())) {
    ASSERT_TRUE(only_pianist.AddRule(rule).ok());
  }

  PostingListCache postings(&fx.store);
  PlanExecutor executor(&fx.store, &postings, &fx.rules);
  ExhaustiveEvaluator oracle(&fx.store, &only_pianist);

  QueryPlan plan;
  plan.join_group = {0};
  plan.singletons = {1};
  ExecStats stats;
  ExecContext ctx(&stats);
  auto root = executor.Build(query, plan, &ctx);
  const auto rows = PullTopK(root.get(), 10, &stats);
  ExpectMatchesOracle(rows, oracle.Evaluate(query), 10);
}

TEST(PlanExecutorTest, PaperExampleQueryTrinit) {
  // The intro query: singers who are lyricists, guitarists and pianists.
  // No entity satisfies all four originals, so the top answers only exist
  // through relaxations.
  MusicFixture fx = MakeMusicFixture();
  const Query query =
      fx.TypeQuery({"singer", "lyricist", "guitarist", "pianist"});
  PostingListCache postings(&fx.store);
  PlanExecutor executor(&fx.store, &postings, &fx.rules);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto root = executor.Build(query, QueryPlan::TrinitPlan(4), &ctx);
  const auto rows = PullTopK(root.get(), 3, &stats);
  ASSERT_FALSE(rows.empty());
  // Oracle cross-check.
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const auto truth = oracle.Evaluate(query);
  ASSERT_FALSE(truth.answers.empty());
  EXPECT_NEAR(rows[0].score, truth.answers[0].score, 1e-9);
}

TEST(PlanExecutorTest, SingletonOnlyPlanOnSinglePattern) {
  MusicFixture fx = MakeMusicFixture();
  const Query query = fx.TypeQuery({"jazz_singer"});
  PostingListCache postings(&fx.store);
  PlanExecutor executor(&fx.store, &postings, &fx.rules);
  ExecStats stats;
  ExecContext ctx(&stats);
  QueryPlan plan;
  plan.singletons = {0};
  auto root = executor.Build(query, plan, &ctx);
  const auto rows = PullTopK(root.get(), 10, &stats);
  EXPECT_EQ(rows.size(), 2u);  // norah, ray — no rules for jazz_singer
}

TEST(PlanExecutorTest, FewerAnswerObjectsWithJoinGroupPlan) {
  // The whole point of Spec-QP: pruning merges reduces materialised
  // intermediate answers.
  MusicFixture fx = MakeMusicFixture();
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  PostingListCache postings(&fx.store);
  PlanExecutor executor(&fx.store, &postings, &fx.rules);

  ExecStats trinit_stats;
  ExecContext trinit_ctx(&trinit_stats);
  auto trinit_root =
      executor.Build(query, QueryPlan::TrinitPlan(2), &trinit_ctx);
  PullTopK(trinit_root.get(), 5, &trinit_stats);

  ExecStats norelax_stats;
  ExecContext norelax_ctx(&norelax_stats);
  auto norelax_root =
      executor.Build(query, QueryPlan::NoRelaxationsPlan(2), &norelax_ctx);
  PullTopK(norelax_root.get(), 5, &norelax_stats);

  EXPECT_LE(norelax_stats.answer_objects, trinit_stats.answer_objects);
}

TEST(PlanExecutorDeathTest, PlanMustCoverQuery) {
  MusicFixture fx = MakeMusicFixture();
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  PostingListCache postings(&fx.store);
  PlanExecutor executor(&fx.store, &postings, &fx.rules);
  ExecStats stats;
  ExecContext ctx(&stats);
  QueryPlan bad;
  bad.join_group = {0};
  EXPECT_DEATH((void)executor.Build(query, bad, &ctx), "cover");
}

// --- the big property: TriniT == oracle on random stores --------------------

class ExecutorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorPropertyTest, TrinitMatchesOracleOnRandomData) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6007 + 11);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 25;
  cfg.num_predicates = 3;
  cfg.num_objects = 8;
  cfg.num_triples = 180;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  RelaxationIndex rules = specqp::testing::MakeRandomRules(&rng, store, 4);

  PostingListCache postings(&store);
  PlanExecutor executor(&store, &postings, &rules);
  ExhaustiveEvaluator oracle(&store, &rules);

  for (int trial = 0; trial < 6; ++trial) {
    const size_t num_patterns = 1 + rng.NextBounded(3);
    const Query query =
        specqp::testing::MakeRandomStarQuery(&rng, store, num_patterns);
    for (size_t k : {1u, 5u, 10u}) {
      ExecStats stats;
      ExecContext ctx(&stats);
      auto root = executor.Build(
          query, QueryPlan::TrinitPlan(query.num_patterns()), &ctx);
      const auto rows = PullTopK(root.get(), k, &stats);
      const auto truth = oracle.Evaluate(query);
      const size_t expect = std::min(k, truth.answers.size());
      ASSERT_EQ(rows.size(), expect) << "k=" << k;
      for (size_t i = 0; i < expect; ++i) {
        EXPECT_NEAR(rows[i].score, truth.answers[i].score, 1e-9)
            << "k=" << k << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest, ::testing::Range(0, 12));

// Mixed random plans are exact w.r.t. plan-filtered rules.
class MixedPlanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MixedPlanPropertyTest, ArbitraryPlanEqualsFilteredOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 20;
  cfg.num_triples = 150;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  RelaxationIndex rules = specqp::testing::MakeRandomRules(&rng, store, 3);

  PostingListCache postings(&store);
  PlanExecutor executor(&store, &postings, &rules);

  for (int trial = 0; trial < 5; ++trial) {
    const size_t num_patterns = 2 + rng.NextBounded(2);
    const Query query =
        specqp::testing::MakeRandomStarQuery(&rng, store, num_patterns);

    // Random plan partition.
    QueryPlan plan;
    RelaxationIndex filtered;
    bool skip = false;
    for (size_t i = 0; i < num_patterns && !skip; ++i) {
      if (rng.NextBool(0.5)) {
        plan.singletons.push_back(i);
        for (const RelaxationRule& rule :
             rules.RulesFor(query.pattern(i).Key())) {
          // Two query patterns could share a key; skip such rare cases to
          // keep the filtered-oracle construction well-defined.
          for (size_t j = 0; j < num_patterns; ++j) {
            if (j != i && query.pattern(j).Key() == query.pattern(i).Key()) {
              skip = true;
            }
          }
          if (!filtered.AddRule(rule).ok()) skip = true;
        }
      } else {
        plan.join_group.push_back(i);
      }
    }
    if (skip) continue;

    ExhaustiveEvaluator oracle(&store, &filtered);
    const auto truth = oracle.Evaluate(query);
    ExecStats stats;
    ExecContext ctx(&stats);
    auto root = executor.Build(query, plan, &ctx);
    const auto rows = PullTopK(root.get(), 8, &stats);
    const size_t expect = std::min<size_t>(8, truth.answers.size());
    ASSERT_EQ(rows.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_NEAR(rows[i].score, truth.answers[i].score, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedPlanPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace specqp
