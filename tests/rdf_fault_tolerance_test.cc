// Shard failure isolation battery: injected open/read faults, retry-then-
// quarantine at open, runtime quarantine with epoch-tagged memo
// invalidation, SIGBUS containment for truncate-while-mapped (the process
// must survive and degrade, never die), grow-while-mapped harmlessness,
// and cancellation responsiveness of the scatter-gather path. Runs under
// ASan in CI's chaos job — "no crash" is checked by the sanitizer, the
// structured statuses by the assertions below.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/mapped_fault.h"
#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "util/stop_probe.h"

namespace specqp {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TripleStore MakeStore(uint64_t seed = 7, size_t triples = 3000) {
  Rng rng(seed);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 120;
  cfg.num_predicates = 6;
  cfg.num_objects = 25;
  cfg.num_triples = triples;
  return specqp::testing::MakeRandomStore(&rng, cfg);
}

// Triples of `store` that do NOT hash to `failed_shard` under the bundle's
// default (subject, 4-shard) partitioning — what a degraded bundle with
// that shard quarantined at open must serve.
std::vector<Triple> SurvivorTriples(const TripleStore& store,
                                    uint32_t failed_shard,
                                    uint32_t shard_count) {
  std::vector<Triple> out;
  for (const Triple& t : store.triples()) {
    if (BundleShardOfTriple(t, bundle::HashScheme::kSubject, shard_count) !=
        failed_shard) {
      out.push_back(t);
    }
  }
  return out;
}

std::string WriteBundle(const TripleStore& store, const char* name,
                        uint32_t shards = 4) {
  const std::string dir = FreshDir(name);
  ShardBundleOptions options;
  options.shard_count = shards;
  SPECQP_CHECK(WriteShardBundle(store, dir, options).ok());
  return dir;
}

ShardedStore::Options QuarantineOptions() {
  ShardedStore::Options options;
  options.allow_quarantine = true;
  // Keep injected-failure tests fast: micro backoffs, same schedule shape.
  options.open_retry.initial_backoff = std::chrono::microseconds(50);
  options.open_retry.max_backoff = std::chrono::microseconds(200);
  return options;
}

// ---------------------------------------------------------------------------
// Open-time faults: retry, quarantine, strict refusal.
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, OpenRetryRecoversFromTransientFault) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_open_retry");

  // Shard 2's first two open probes fail; the third (last retry) succeeds.
  ScopedFaultPlan plan("seed=1;shard.open.2=1@2");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->ShardsFailed(), 0u);
  EXPECT_TRUE(opened.value()->shard_alive(2));
  EXPECT_EQ(FaultInjector::Global().FireCount("shard.open.2"), 2u);
  // Fully recovered: the facade serves the complete store.
  EXPECT_EQ(opened.value()->store().size(), store.size());
}

TEST(FaultToleranceTest, OpenQuarantinesAShardAndServesSurvivors) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_open_quarantine");

  ScopedFaultPlan plan("shard.open.1=1");  // beyond any retry budget
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();
  EXPECT_EQ(sharded.ShardsTotal(), 4u);
  EXPECT_EQ(sharded.ShardsFailed(), 1u);
  EXPECT_FALSE(sharded.shard_alive(1));
  EXPECT_NE(sharded.quarantine_reason(1).find("injected fault"),
            std::string::npos)
      << sharded.quarantine_reason(1);
  EXPECT_TRUE(sharded.quarantine_reason(0).empty());

  // The degraded global space is exactly the SPO merge of the survivors.
  const std::vector<Triple> expected = SurvivorTriples(store, 1, 4);
  const TripleStore& facade = sharded.store();
  ASSERT_EQ(facade.size(), expected.size());
  for (uint32_t i = 0; i < facade.size(); ++i) {
    EXPECT_EQ(facade.triple(i), expected[i]) << "global index " << i;
  }
}

TEST(FaultToleranceTest, StrictOpenSurfacesTheInjectedFault) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_open_strict");

  ScopedFaultPlan plan("shard.open.1=1");
  auto opened = ShardedStore::Open(dir);  // allow_quarantine off (default)
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST(FaultToleranceTest, EveryShardFailingIsUnavailable) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_open_all_fail");

  ScopedFaultPlan plan("shard.open=1");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kUnavailable);
}

TEST(FaultToleranceTest, CorruptShardIsNotRetriedAsTransient) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_open_corrupt");
  // Damage shard 3's header magic: a final (Corruption-class) failure.
  {
    std::fstream f(dir + "/" + BundleShardFileName(3),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    const char junk[4] = {'J', 'U', 'N', 'K'};
    ASSERT_TRUE(f.write(junk, sizeof(junk)).good());
  }
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->ShardsFailed(), 1u);
  EXPECT_FALSE(opened.value()->shard_alive(3));
  EXPECT_EQ(opened.value()->store().size(), SurvivorTriples(store, 3, 4).size());
}

// ---------------------------------------------------------------------------
// Runtime faults: injected read faults, SIGBUS containment, epoch bumps.
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, InjectedReadFaultQuarantinesMidFlight) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_read_fault");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();
  EXPECT_EQ(sharded.FaultEpoch(), 0u);

  // One fault on shard 2's next read probe: the scatter quarantines it and
  // restarts over the survivors — the same Match call returns the degraded
  // answer, no error escapes.
  ScopedFaultPlan plan("shard.read.2=1@1");
  const std::span<const uint32_t> full =
      sharded.store().MatchIndices(PatternKey{});
  EXPECT_EQ(sharded.ShardsFailed(), 1u);
  EXPECT_FALSE(sharded.shard_alive(2));
  EXPECT_EQ(sharded.FaultEpoch(), 1u);
  EXPECT_EQ(full.size(), SurvivorTriples(store, 2, 4).size());

  // Later gathers keep serving the survivors; the quarantined shard keeps
  // its slots in the ORIGINAL global space (locators stay valid), so the
  // surviving answers are a strict subset of the pre-fault index space.
  const Triple& probe = store.triples()[0];
  const auto matched = sharded.store().MatchIndices(
      PatternKey{kInvalidTermId, probe.p, kInvalidTermId});
  for (const uint32_t global : matched) {
    EXPECT_NE(BundleShardOfTriple(sharded.store().triple(global),
                                  bundle::HashScheme::kSubject, 4),
              2u);
  }
}

TEST(FaultToleranceTest, SimulatedMappingFaultIsSweptIntoQuarantine) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_sim_fault");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();

  // Warm a gather, then fault shard 3's mapping through the test hook
  // (same registry path a real SIGBUS repair takes).
  const size_t before = sharded.store().MatchIndices(PatternKey{}).size();
  EXPECT_EQ(before, store.size());
  ASSERT_TRUE(SimulateMappedFault(sharded.shard(3).mapped_base()));
  EXPECT_GE(sharded.shard(3).mapping_faults(), 1u);

  sharded.PollFaults();
  EXPECT_EQ(sharded.ShardsFailed(), 1u);
  EXPECT_FALSE(sharded.shard_alive(3));
  EXPECT_NE(sharded.quarantine_reason(3).find("SIGBUS"), std::string::npos)
      << sharded.quarantine_reason(3);
  EXPECT_GE(sharded.FaultEpoch(), 1u);

  // The memoised full-scan gather was epoch-tagged: re-asking recomputes
  // over the survivors instead of serving the stale pre-fault answer.
  EXPECT_EQ(sharded.store().MatchIndices(PatternKey{}).size(),
            SurvivorTriples(store, 3, 4).size());
}

TEST(FaultToleranceTest, TruncateWhileMappedDegradesInsteadOfCrashing) {
  const TripleStore store = MakeStore(/*seed=*/11, /*triples=*/6000);
  const std::string dir = WriteBundle(store, "ft_truncate");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();
  ASSERT_EQ(sharded.store().MatchIndices(PatternKey{}).size(), store.size());

  // Truncate shard 1's file to one page while its mapping is live. Every
  // later access to the lost pages raises SIGBUS; the containment handler
  // zero-fills the page and latches the fault instead of killing the
  // process.
  const std::string shard_path = dir + "/" + BundleShardFileName(1);
  std::error_code ec;
  fs::resize_file(shard_path, 4096, ec);
  ASSERT_FALSE(ec) << ec.message();

  // Touch the truncated shard through the public read path. The scatter
  // may observe zero-page garbage on its first pass; the fault sweep then
  // quarantines the shard and the restart serves the survivors.
  const Triple& probe = store.triples()[0];
  (void)sharded.store().MatchIndices(
      PatternKey{kInvalidTermId, probe.p, kInvalidTermId});
  // Force a full sweep over every shard's pages so the truncated mapping
  // is guaranteed to have been dereferenced.
  (void)sharded.store().MatchIndices(PatternKey{});
  sharded.PollFaults();

  EXPECT_GE(sharded.shard(1).mapping_faults(), 1u);
  EXPECT_EQ(sharded.ShardsFailed(), 1u);
  EXPECT_FALSE(sharded.shard_alive(1));

  // Still serving: degraded answers over the surviving shards.
  EXPECT_EQ(sharded.store().MatchIndices(PatternKey{}).size(),
            SurvivorTriples(store, 1, 4).size());
}

TEST(FaultToleranceTest, GrowWhileMappedIsHarmless) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_grow");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();

  // Append junk past the mapped range: the mapping covers the original
  // bytes only, so reads are untouched and no fault ever latches.
  {
    std::ofstream f(dir + "/" + BundleShardFileName(0),
                    std::ios::binary | std::ios::app);
    std::vector<char> junk(1 << 20, '\x5A');
    ASSERT_TRUE(f.write(junk.data(), junk.size()).good());
  }
  EXPECT_EQ(sharded.store().MatchIndices(PatternKey{}).size(), store.size());
  sharded.PollFaults();
  EXPECT_EQ(sharded.ShardsFailed(), 0u);
  for (uint32_t i = 0; i < store.size(); ++i) {
    ASSERT_EQ(sharded.store().triple(i), store.triples()[i]);
  }
}

// ---------------------------------------------------------------------------
// Cancellation responsiveness of the scatter-gather path.
// ---------------------------------------------------------------------------

bool AlwaysStop(const void*) { return true; }

TEST(FaultToleranceTest, MatchAbortsUnderStopProbeWithoutPoisoningTheMemo) {
  const TripleStore store = MakeStore();
  const std::string dir = WriteBundle(store, "ft_cancel");
  auto opened = ShardedStore::Open(dir, QuarantineOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();

  {
    // A stopped execution gets an empty gather back immediately...
    ScopedStopProbe probe(&AlwaysStop, nullptr);
    EXPECT_TRUE(sharded.store().MatchIndices(PatternKey{}).empty());
  }
  // ...and the truncated result was NOT memoised: the next (un-stopped)
  // query computes the real answer.
  EXPECT_EQ(sharded.store().MatchIndices(PatternKey{}).size(), store.size());
}

}  // namespace
}  // namespace specqp
