// Integration test for the Engine::OpenFromPath fast path: a mapped
// (zero-copy SQPSTOR3 view, block-compressed postings) engine and a
// parsed (owned store) engine over the same file must return bit-identical
// top-k answers — bindings AND scores — for every query, strategy, k, and
// thread count, and both must match an engine over the original in-memory
// store.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rdf/mmap_store.h"
#include "rdf/store_io.h"
#include "stats/catalog.h"
#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectIdenticalRows(const std::vector<ScoredRow>& a,
                         const std::vector<ScoredRow>& b,
                         const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bindings, b[i].bindings) << label << " row " << i;
    EXPECT_EQ(a[i].score, b[i].score) << label << " row " << i;  // bitwise
  }
}

class MmapEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4242);
    specqp::testing::RandomStoreConfig cfg;
    cfg.num_subjects = 60;
    cfg.num_predicates = 5;
    cfg.num_objects = 18;
    cfg.num_triples = 2500;
    store_ = std::make_unique<TripleStore>(
        specqp::testing::MakeRandomStore(&rng, cfg));
    rules_ = specqp::testing::MakeRandomRules(&rng, *store_);
    for (size_t i = 0; i < 10; ++i) {
      queries_.push_back(specqp::testing::MakeRandomStarQuery(
          &rng, *store_, /*n=*/2 + (i % 2)));
    }

    // Save with a warmed statistics snapshot, like a production bundle.
    Engine warm_engine(store_.get(), &rules_);
    for (const Query& query : queries_) warm_engine.Warm(query);
    SaveStoreOptions save;
    save.stats = warm_engine.catalog().Snapshot();
    save.stats_head_fraction = warm_engine.catalog().head_fraction();
    path_ = TempPath("mmap_engine.sqp");
    ASSERT_TRUE(SaveStore(*store_, path_, save).ok());
  }

  std::unique_ptr<TripleStore> store_;
  RelaxationIndex rules_;
  std::vector<Query> queries_;
  std::string path_;
};

TEST_F(MmapEngineTest, MmapAndParsedEnginesAgreeBitForBit) {
  EngineOptions mmap_options;
  mmap_options.mmap = true;
  auto mapped = Engine::OpenFromPath(path_, &rules_, mmap_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped.value().mmap_backed());
  EXPECT_GT(mapped.value().bytes_mapped(), 0u);

  EngineOptions parsed_options;
  parsed_options.mmap = false;
  auto parsed = Engine::OpenFromPath(path_, &rules_, parsed_options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_FALSE(parsed.value().mmap_backed());

  Engine original(store_.get(), &rules_);

  for (const Strategy strategy :
       {Strategy::kSpecQp, Strategy::kTrinit, Strategy::kNoRelax}) {
    for (const size_t k : {5, 10}) {
      for (size_t qi = 0; qi < queries_.size(); ++qi) {
        const Query& query = queries_[qi];
        const auto from_mmap =
            testing::Execute(*mapped.value().engine, query, k, strategy);
        const auto from_parsed =
            testing::Execute(*parsed.value().engine, query, k, strategy);
        const auto from_original = testing::Execute(original, query, k, strategy);
        ExpectIdenticalRows(from_mmap.rows, from_parsed.rows,
                            "mmap vs parsed");
        ExpectIdenticalRows(from_mmap.rows, from_original.rows,
                            "mmap vs original");
      }
    }
  }
}

TEST_F(MmapEngineTest, MmapEngineAgreesUnderParallelExecution) {
  EngineOptions serial;
  serial.mmap = true;
  serial.num_threads = 1;
  EngineOptions parallel;
  parallel.mmap = true;
  parallel.num_threads = 4;
  parallel.parallel_min_rows = 1;  // force partitioned trees over views

  auto serial_engine = Engine::OpenFromPath(path_, &rules_, serial);
  auto parallel_engine = Engine::OpenFromPath(path_, &rules_, parallel);
  ASSERT_TRUE(serial_engine.ok());
  ASSERT_TRUE(parallel_engine.ok());

  for (const Query& query : queries_) {
    const auto a =
        testing::Execute(*serial_engine.value().engine, query, 10, Strategy::kSpecQp);
    const auto b =
        testing::Execute(*parallel_engine.value().engine, query, 10, Strategy::kSpecQp);
    ExpectIdenticalRows(a.rows, b.rows, "serial vs parallel over mmap");
  }
}

TEST_F(MmapEngineTest, StatsSnapshotPreloadsTheCatalog) {
  EngineOptions options;  // default head_fraction matches the snapshot
  auto opened = Engine::OpenFromPath(path_, &rules_, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened.value().mmap_backed());
  // The snapshot seeded the catalog before any query ran.
  EXPECT_GT(opened.value().engine->catalog().size(), 0u);

  // A mismatched head_fraction must NOT reuse the snapshot.
  EngineOptions mismatched;
  mismatched.head_fraction = 0.5;
  auto fresh = Engine::OpenFromPath(path_, &rules_, mismatched);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().engine->catalog().size(), 0u);
}

TEST_F(MmapEngineTest, FullyVerifiedOpenServesIdenticalAnswers) {
  EngineOptions strict;
  strict.mmap = true;
  strict.mmap_verify_all = true;  // untrusted-file integrity level
  auto verified = Engine::OpenFromPath(path_, &rules_, strict);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  ASSERT_TRUE(verified.value().mmap_backed());

  Engine original(store_.get(), &rules_);
  const auto a =
      testing::Execute(*verified.value().engine, queries_[0], 10, Strategy::kSpecQp);
  const auto b = testing::Execute(original, queries_[0], 10, Strategy::kSpecQp);
  ExpectIdenticalRows(a.rows, b.rows, "verified mmap vs original");
}

TEST_F(MmapEngineTest, OpenFromPathReadsV1Files) {
  const std::string v1_path = TempPath("mmap_engine.v1.sqp");
  ASSERT_TRUE(SaveStoreV1(*store_, v1_path).ok());
  auto opened = Engine::OpenFromPath(v1_path, &rules_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(opened.value().mmap_backed());  // v1 always parses

  Engine original(store_.get(), &rules_);
  const auto a =
      testing::Execute(*opened.value().engine, queries_[0], 10, Strategy::kSpecQp);
  const auto b = testing::Execute(original, queries_[0], 10, Strategy::kSpecQp);
  ExpectIdenticalRows(a.rows, b.rows, "v1 vs original");
}

}  // namespace
}  // namespace specqp
