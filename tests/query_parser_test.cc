#include "query/parser.h"

#include <gtest/gtest.h>

namespace specqp {
namespace {

Dictionary MakeDict() {
  Dictionary dict;
  dict.Intern("rdf:type");
  dict.Intern("singer");
  dict.Intern("lyricist");
  dict.Intern("guitarist");
  dict.Intern("pianist");
  dict.Intern("hasTag");
  dict.Intern("#intoyouvideo");
  dict.Intern("#ariana");
  dict.Intern("dangerous");
  dict.Intern("plays");
  return dict;
}

TEST(ParserTest, PaperIntroQueryParses) {
  Dictionary dict = MakeDict();
  const auto result = ParseQuery(
      "SELECT ?s WHERE{"
      "?s 'rdf:type' <singer>."
      "?s 'rdf:type' <lyricist>."
      "?s 'rdf:type' <guitarist>."
      "?s 'rdf:type' <pianist>"
      "}",
      dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& q = result.value();
  EXPECT_EQ(q.num_patterns(), 4u);
  EXPECT_EQ(q.num_vars(), 1u);
  ASSERT_EQ(q.projection().size(), 1u);
  EXPECT_EQ(q.var_name(q.projection()[0]), "s");
  for (const TriplePattern& p : q.patterns()) {
    EXPECT_TRUE(p.s.is_variable());
    EXPECT_TRUE(p.p.is_constant());
    EXPECT_TRUE(p.o.is_constant());
    EXPECT_EQ(p.p.term(), dict.Find("rdf:type").value());
  }
}

TEST(ParserTest, TwitterQueryParses) {
  Dictionary dict = MakeDict();
  const auto result = ParseQuery(
      "SELECT ?s WHERE{"
      "?s <hasTag> <#intoyouvideo>."
      "?s <hasTag> <#ariana>."
      "?s <hasTag> <dangerous>"
      "}",
      dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_patterns(), 3u);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  Dictionary dict = MakeDict();
  EXPECT_TRUE(
      ParseQuery("select ?s where { ?s <plays> ?o }", dict).ok());
  EXPECT_TRUE(
      ParseQuery("SeLeCt ?s WhErE { ?s <plays> ?o }", dict).ok());
}

TEST(ParserTest, StarProjectionSelectsAllVariables) {
  Dictionary dict = MakeDict();
  const auto result =
      ParseQuery("SELECT * WHERE { ?a <plays> ?b . ?b <plays> ?c }", dict);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().projection().size(), 3u);
}

TEST(ParserTest, MultipleProjectionVariables) {
  Dictionary dict = MakeDict();
  const auto result =
      ParseQuery("SELECT ?b ?a WHERE { ?a <plays> ?b }", dict);
  ASSERT_TRUE(result.ok());
  const Query& q = result.value();
  ASSERT_EQ(q.projection().size(), 2u);
  EXPECT_EQ(q.var_name(q.projection()[0]), "b");
  EXPECT_EQ(q.var_name(q.projection()[1]), "a");
}

TEST(ParserTest, TrailingDotAllowed) {
  Dictionary dict = MakeDict();
  EXPECT_TRUE(ParseQuery("SELECT ?s WHERE { ?s <plays> <singer> . }", dict)
                  .ok());
}

TEST(ParserTest, QuoteStylesAreEquivalent) {
  Dictionary dict = MakeDict();
  const auto angled =
      ParseQuery("SELECT ?s WHERE { ?s <plays> <singer> }", dict);
  const auto single =
      ParseQuery("SELECT ?s WHERE { ?s 'plays' 'singer' }", dict);
  const auto dbl =
      ParseQuery("SELECT ?s WHERE { ?s \"plays\" \"singer\" }", dict);
  const auto bare = ParseQuery("SELECT ?s WHERE { ?s plays singer }", dict);
  ASSERT_TRUE(angled.ok());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(dbl.ok());
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(angled.value().pattern(0).p.term(),
            single.value().pattern(0).p.term());
  EXPECT_EQ(angled.value().pattern(0).o.term(),
            dbl.value().pattern(0).o.term());
  EXPECT_EQ(angled.value().pattern(0).o.term(),
            bare.value().pattern(0).o.term());
}

TEST(ParserTest, SharedVariableGetsOneId) {
  Dictionary dict = MakeDict();
  const auto result = ParseQuery(
      "SELECT ?s WHERE { ?s <plays> <singer> . ?s <plays> <pianist> }", dict);
  ASSERT_TRUE(result.ok());
  const Query& q = result.value();
  EXPECT_EQ(q.num_vars(), 1u);
  EXPECT_EQ(q.pattern(0).s.var(), q.pattern(1).s.var());
}

TEST(ParserTest, UnknownTermIsError) {
  Dictionary dict = MakeDict();
  const auto result =
      ParseQuery("SELECT ?s WHERE { ?s <plays> <zither> }", dict);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("zither"), std::string::npos);
}

TEST(ParserTest, UnknownTermInternedWhenAllowed) {
  Dictionary dict = MakeDict();
  const size_t before = dict.size();
  ParseOptions options;
  options.intern_unknown_terms = true;
  const auto result =
      ParseQuery("SELECT ?s WHERE { ?s <plays> <zither> }", &dict, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(dict.size(), before + 1);
}

TEST(ParserTest, ErrorsCarryByteOffsets) {
  Dictionary dict = MakeDict();
  const auto result = ParseQuery("SELECT WHERE { ?s <plays> ?o }", dict);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("byte"), std::string::npos);
}

TEST(ParserTest, RejectsMissingSelect) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("?s <plays> ?o", dict).ok());
}

TEST(ParserTest, RejectsMissingWhere) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?s { ?s <plays> ?o }", dict).ok());
}

TEST(ParserTest, RejectsUnterminatedBrace) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s <plays> ?o", dict).ok());
}

TEST(ParserTest, RejectsEmptyPatternBlock) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { }", dict).ok());
}

TEST(ParserTest, RejectsIncompletePattern) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s <plays> }", dict).ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { ?s <plays> ?o } extra", dict).ok());
}

TEST(ParserTest, RejectsUnknownProjectionVariable) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?t WHERE { ?s <plays> ?o }", dict).ok());
}

TEST(ParserTest, RejectsEmptyVariableName) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ? WHERE { ?s <plays> ?o }", dict).ok());
}

TEST(ParserTest, RejectsUnterminatedIri) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s <plays ?o }", dict).ok());
}

TEST(ParserTest, RejectsUnterminatedQuote) {
  Dictionary dict = MakeDict();
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s 'plays ?o }", dict).ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  Dictionary dict = MakeDict();
  const std::string text =
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <plays> <pianist> }";
  const auto first = ParseQuery(text, dict);
  ASSERT_TRUE(first.ok());
  const std::string rendered = first.value().ToString(dict);
  const auto second = ParseQuery(rendered, dict);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(second.value().num_patterns(), first.value().num_patterns());
  for (size_t i = 0; i < first.value().num_patterns(); ++i) {
    EXPECT_EQ(second.value().pattern(i).Key(),
              first.value().pattern(i).Key());
  }
}

}  // namespace
}  // namespace specqp
