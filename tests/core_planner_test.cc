#include "core/planner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"

namespace specqp {
namespace {

// A store crafted so PLANGEN's decisions are unambiguous:
//   dense:  100 entities, flat scores     (rank-k expectation ~ 1)
//   sparse: 2 entities                    (cannot fill top-10)
//   target: 50 entities, flat scores      (relaxation target)
// Rules: dense -> target (w=0.2, weak), sparse -> target (w=0.9, strong).
struct PlannerFixture {
  TripleStore store;
  RelaxationIndex rules;
  TermId type = kInvalidTermId;

  Query TypeQuery(const std::vector<std::string>& names) const {
    Query q;
    const VarId s = q.GetOrAddVariable("s");
    for (const std::string& name : names) {
      q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(type),
                                 PatternTerm::Const(store.MustId(name))));
    }
    q.AddProjection(s);
    return q;
  }
};

PlannerFixture MakePlannerFixture() {
  PlannerFixture fx;
  for (int i = 0; i < 100; ++i) {
    const std::string e = "e" + std::to_string(i);
    fx.store.Add(e, "type", "dense", 100.0);
    if (i < 50) fx.store.Add(e, "type", "target", 100.0);
    if (i < 2) fx.store.Add(e, "type", "sparse", 100.0 - i);
    if (i < 3) fx.store.Add(e, "type", "tiny", 100.0 - i);
  }
  fx.store.Finalize();
  fx.type = fx.store.MustId("type");

  auto add_rule = [&](const char* from, const char* to, double w) {
    RelaxationRule rule;
    rule.from = PatternKey{kInvalidTermId, fx.type, fx.store.MustId(from)};
    rule.to = PatternKey{kInvalidTermId, fx.type, fx.store.MustId(to)};
    rule.weight = w;
    SPECQP_CHECK(fx.rules.AddRule(rule).ok());
  };
  add_rule("dense", "target", 0.2);
  add_rule("sparse", "target", 0.9);
  return fx;
}

struct PlannerHarness {
  PostingListCache postings;
  StatisticsCatalog catalog;
  SelectivityEstimator selectivity;
  ExpectedScoreEstimator estimator;
  Planner planner;

  PlannerHarness(const TripleStore* store, const RelaxationIndex* rules)
      : postings(store),
        catalog(store, &postings),
        selectivity(store),
        estimator(&catalog, &selectivity),
        planner(&estimator, rules) {}
};

TEST(PlannerTest, DensePatternWithWeakRuleStaysInJoinGroup) {
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  const QueryPlan plan = h.planner.Plan(fx.TypeQuery({"dense"}), 5);
  EXPECT_TRUE(plan.singletons.empty());
  ASSERT_EQ(plan.join_group.size(), 1u);
  EXPECT_EQ(plan.join_group[0], 0u);
}

TEST(PlannerTest, SparsePatternTriggersRelaxation) {
  // 2 answers < k=10 means E_Q(k) = 0; any viable relaxation wins.
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  const QueryPlan plan = h.planner.Plan(fx.TypeQuery({"sparse"}), 10);
  EXPECT_TRUE(plan.join_group.empty());
  ASSERT_EQ(plan.singletons.size(), 1u);
}

TEST(PlannerTest, PatternWithoutRulesNeverRelaxed) {
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  // "tiny" has only 3 answers (< k) but no relaxation rules exist for it.
  const QueryPlan plan = h.planner.Plan(fx.TypeQuery({"tiny"}), 10);
  EXPECT_TRUE(plan.singletons.empty());
  EXPECT_EQ(plan.join_group.size(), 1u);
}

TEST(PlannerTest, TwoPatternQueryMixedDecision) {
  // dense ∧ target: 50 answers all scoring ~2.0. Relaxing dense via the
  // weak 0.2 rule cannot beat the k-th answer; target has no rules.
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  const QueryPlan plan = h.planner.Plan(fx.TypeQuery({"dense", "target"}), 5);
  EXPECT_TRUE(plan.singletons.empty());
  EXPECT_EQ(plan.join_group.size(), 2u);
}

TEST(PlannerTest, JoinBelowKRelaxesEverythingWithRules) {
  // dense ∧ sparse: join has only 2 answers < k=10, so E_Q(k)=0 and every
  // pattern that has rules becomes a singleton.
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  const QueryPlan plan = h.planner.Plan(fx.TypeQuery({"dense", "sparse"}), 10);
  EXPECT_EQ(plan.singletons.size(), 2u);
  EXPECT_TRUE(plan.join_group.empty());
}

TEST(PlannerTest, PlanAlwaysCoversQuery) {
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  for (size_t k : {1u, 5u, 10u, 20u}) {
    for (const auto& names :
         std::vector<std::vector<std::string>>{{"dense"},
                                               {"dense", "target"},
                                               {"dense", "sparse", "target"},
                                               {"sparse", "tiny"}}) {
      const Query query = fx.TypeQuery(names);
      const QueryPlan plan = h.planner.Plan(query, k);
      std::vector<size_t> all = plan.join_group;
      all.insert(all.end(), plan.singletons.begin(), plan.singletons.end());
      std::sort(all.begin(), all.end());
      std::vector<size_t> expected(query.num_patterns());
      for (size_t i = 0; i < expected.size(); ++i) expected[i] = i;
      EXPECT_EQ(all, expected);
    }
  }
}

TEST(PlannerTest, DiagnosticsRecordDecisions) {
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  PlanDiagnostics diag;
  const QueryPlan plan = h.planner.Plan(fx.TypeQuery({"dense", "tiny"}), 5,
                                        &diag);
  ASSERT_EQ(diag.decisions.size(), 2u);
  EXPECT_TRUE(diag.decisions[0].has_relaxations);
  EXPECT_FALSE(diag.decisions[1].has_relaxations);
  EXPECT_GT(diag.cardinality_estimate, 0.0);
  for (const PatternDecision& d : diag.decisions) {
    EXPECT_EQ(plan.IsSingleton(d.pattern_index), d.relax);
  }
}

TEST(PlannerTest, DecisionConsistentWithEstimatorComparison) {
  // The planner's decision must be exactly E_Q'(1) > E_Q(k) for each
  // pattern — checked against a by-hand re-run of the estimator.
  PlannerFixture fx = MakePlannerFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"dense", "sparse"});
  for (size_t k : {1u, 3u, 10u}) {
    PlanDiagnostics diag;
    const QueryPlan plan = h.planner.Plan(query, k, &diag);
    const auto original = h.estimator.EstimateQuery(query);
    const double eq_k = original.ExpectedAtRank(k);
    EXPECT_NEAR(diag.eq_k, eq_k, 1e-12);
    for (size_t i = 0; i < query.num_patterns(); ++i) {
      const RelaxationRule* top =
          fx.rules.TopRule(query.pattern(i).Key());
      if (top == nullptr) {
        EXPECT_FALSE(plan.IsSingleton(i));
        continue;
      }
      Query relaxed = query;
      relaxed.ReplacePattern(i, ApplyRule(query.pattern(i), *top).value());
      std::vector<double> weights(query.num_patterns(), 1.0);
      weights[i] = top->weight;
      const double eq_prime =
          h.estimator.EstimateQuery(relaxed, weights).ExpectedAtRank(1);
      EXPECT_EQ(plan.IsSingleton(i), eq_prime > eq_k) << "pattern " << i;
    }
  }
}

TEST(PlannerTest, LargerKRelaxesMoreOrEqual) {
  // Monotonicity observed in the paper (section 4.5.2): as k grows,
  // queries need relaxations more often.
  testing::MusicFixture fx = testing::MakeMusicFixture();
  PlannerHarness h(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "vocalist"});
  size_t prev = 0;
  for (size_t k : {1u, 3u, 5u, 10u, 20u}) {
    const QueryPlan plan = h.planner.Plan(query, k);
    EXPECT_GE(plan.singletons.size(), prev) << "k=" << k;
    prev = plan.singletons.size();
  }
}

TEST(QueryPlanTest, TrinitPlanAllSingletons) {
  const QueryPlan plan = QueryPlan::TrinitPlan(3);
  EXPECT_TRUE(plan.join_group.empty());
  EXPECT_EQ(plan.singletons, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(plan.num_relaxed(), 3u);
}

TEST(QueryPlanTest, NoRelaxationsPlanAllJoinGroup) {
  const QueryPlan plan = QueryPlan::NoRelaxationsPlan(2);
  EXPECT_TRUE(plan.singletons.empty());
  EXPECT_EQ(plan.join_group, (std::vector<size_t>{0, 1}));
}

TEST(QueryPlanTest, IsSingleton) {
  QueryPlan plan;
  plan.join_group = {0, 2};
  plan.singletons = {1};
  EXPECT_FALSE(plan.IsSingleton(0));
  EXPECT_TRUE(plan.IsSingleton(1));
  EXPECT_FALSE(plan.IsSingleton(2));
}

TEST(QueryPlanTest, ToStringShape) {
  QueryPlan plan;
  plan.join_group = {0, 2};
  plan.singletons = {1};
  EXPECT_EQ(plan.ToString(), "{ q0 q2 | q1* }");
}

}  // namespace
}  // namespace specqp
