#include "relax/miner.h"
#include "relax/relaxation.h"
#include "relax/relaxation_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace specqp {
namespace {

RelaxationRule MakeRule(TermId p, TermId from_o, TermId to_o, double w) {
  return RelaxationRule{PatternKey{kInvalidTermId, p, from_o},
                        PatternKey{kInvalidTermId, p, to_o}, w};
}

TEST(RelaxationRuleTest, ValidRulePasses) {
  EXPECT_TRUE(ValidateRule(MakeRule(1, 2, 3, 0.8)).ok());
  EXPECT_TRUE(ValidateRule(MakeRule(1, 2, 3, 1.0)).ok());
}

TEST(RelaxationRuleTest, RejectsBadWeights) {
  EXPECT_FALSE(ValidateRule(MakeRule(1, 2, 3, 0.0)).ok());
  EXPECT_FALSE(ValidateRule(MakeRule(1, 2, 3, -0.1)).ok());
  EXPECT_FALSE(ValidateRule(MakeRule(1, 2, 3, 1.5)).ok());
}

TEST(RelaxationRuleTest, RejectsMaskChange) {
  RelaxationRule rule;
  rule.from = PatternKey{kInvalidTermId, 1, 2};
  rule.to = PatternKey{5, 1, kInvalidTermId};  // binds s, frees o
  rule.weight = 0.5;
  EXPECT_FALSE(ValidateRule(rule).ok());
}

TEST(RelaxationRuleTest, RejectsSelfRule) {
  EXPECT_FALSE(ValidateRule(MakeRule(1, 2, 2, 0.5)).ok());
}

TEST(ApplyRuleTest, SubstitutesConstantsKeepsVariables) {
  const TriplePattern pattern(PatternTerm::Var(3), PatternTerm::Const(1),
                              PatternTerm::Const(2));
  const auto relaxed = ApplyRule(pattern, MakeRule(1, 2, 9, 0.7));
  ASSERT_TRUE(relaxed.ok());
  EXPECT_TRUE(relaxed.value().s.is_variable());
  EXPECT_EQ(relaxed.value().s.var(), 3u);
  EXPECT_EQ(relaxed.value().p.term(), 1u);
  EXPECT_EQ(relaxed.value().o.term(), 9u);
}

TEST(ApplyRuleTest, FailsWhenDomainDiffers) {
  const TriplePattern pattern(PatternTerm::Var(0), PatternTerm::Const(1),
                              PatternTerm::Const(5));
  const auto relaxed = ApplyRule(pattern, MakeRule(1, 2, 9, 0.7));
  EXPECT_FALSE(relaxed.ok());
  EXPECT_EQ(relaxed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RelaxationIndexTest, RulesSortedByWeightDescending) {
  RelaxationIndex index;
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 3, 0.5)).ok());
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 4, 0.9)).ok());
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 5, 0.7)).ok());
  const auto rules = index.RulesFor(PatternKey{kInvalidTermId, 1, 2});
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_DOUBLE_EQ(rules[0].weight, 0.9);
  EXPECT_DOUBLE_EQ(rules[1].weight, 0.7);
  EXPECT_DOUBLE_EQ(rules[2].weight, 0.5);
}

TEST(RelaxationIndexTest, TopRule) {
  RelaxationIndex index;
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 3, 0.5)).ok());
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 4, 0.9)).ok());
  const RelaxationRule* top = index.TopRule(PatternKey{kInvalidTermId, 1, 2});
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->to.o, 4u);
  EXPECT_EQ(index.TopRule(PatternKey{kInvalidTermId, 1, 99}), nullptr);
}

TEST(RelaxationIndexTest, DuplicateKeepsHigherWeight) {
  RelaxationIndex index;
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 3, 0.5)).ok());
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 3, 0.8)).ok());
  const auto rules = index.RulesFor(PatternKey{kInvalidTermId, 1, 2});
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_DOUBLE_EQ(rules[0].weight, 0.8);
  EXPECT_EQ(index.total_rules(), 1u);

  // Lower weight duplicate is ignored.
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 3, 0.2)).ok());
  EXPECT_DOUBLE_EQ(index.RulesFor(PatternKey{kInvalidTermId, 1, 2})[0].weight,
                   0.8);
}

TEST(RelaxationIndexTest, InvalidRuleRejected) {
  RelaxationIndex index;
  EXPECT_FALSE(index.AddRule(MakeRule(1, 2, 2, 0.5)).ok());
  EXPECT_EQ(index.total_rules(), 0u);
}

TEST(RelaxationIndexTest, CountsPerDomain) {
  RelaxationIndex index;
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 3, 0.5)).ok());
  ASSERT_TRUE(index.AddRule(MakeRule(1, 2, 4, 0.6)).ok());
  ASSERT_TRUE(index.AddRule(MakeRule(1, 7, 3, 0.5)).ok());
  EXPECT_EQ(index.NumRulesFor(PatternKey{kInvalidTermId, 1, 2}), 2u);
  EXPECT_EQ(index.NumRulesFor(PatternKey{kInvalidTermId, 1, 7}), 1u);
  EXPECT_EQ(index.num_domains(), 2u);
  EXPECT_EQ(index.total_rules(), 3u);
}

TEST(RuleToStringTest, RendersReadably) {
  Dictionary dict;
  const TermId type = dict.Intern("rdf:type");
  const TermId singer = dict.Intern("singer");
  const TermId vocalist = dict.Intern("vocalist");
  const std::string text =
      RuleToString(MakeRule(type, singer, vocalist, 0.8), dict);
  EXPECT_NE(text.find("<singer>"), std::string::npos);
  EXPECT_NE(text.find("<vocalist>"), std::string::npos);
  EXPECT_NE(text.find("0.8"), std::string::npos);
}

// --- miner -------------------------------------------------------------------

TEST(MinerTest, CooccurrenceWeightsMatchPaperFormula) {
  // tweets: t1{a,b}, t2{a,b}, t3{a,c}, t4{b}
  TripleStore store;
  store.Add("t1", "hasTag", "a", 1.0);
  store.Add("t1", "hasTag", "b", 1.0);
  store.Add("t2", "hasTag", "a", 1.0);
  store.Add("t2", "hasTag", "b", 1.0);
  store.Add("t3", "hasTag", "a", 1.0);
  store.Add("t3", "hasTag", "c", 1.0);
  store.Add("t4", "hasTag", "b", 1.0);
  store.Finalize();

  MinerOptions options;
  options.min_support = 1;
  options.min_weight = 0.0;
  options.weight_cap = 1.0;
  RelaxationIndex index;
  ASSERT_TRUE(MineObjectCooccurrence(store, store.MustId("hasTag"), options,
                                     &index)
                  .ok());

  const TermId has_tag = store.MustId("hasTag");
  auto weight_of = [&](const char* from, const char* to) -> double {
    for (const RelaxationRule& r : index.RulesFor(
             PatternKey{kInvalidTermId, has_tag, store.MustId(from)})) {
      if (r.to.o == store.MustId(to)) return r.weight;
    }
    return -1.0;
  };

  // w(a -> b) = #tweets(a ∧ b) / #tweets(a) = 2/3.
  EXPECT_NEAR(weight_of("a", "b"), 2.0 / 3.0, 1e-9);
  // w(b -> a) = 2/3 as well (b occurs in 3 tweets, 2 shared with a).
  EXPECT_NEAR(weight_of("b", "a"), 2.0 / 3.0, 1e-9);
  // w(c -> a) = 1/1 = 1.0 (capped at 1.0 here).
  EXPECT_NEAR(weight_of("c", "a"), 1.0, 1e-9);
  // a and c share one tweet out of a's three.
  EXPECT_NEAR(weight_of("a", "c"), 1.0 / 3.0, 1e-9);
  // b and c never co-occur.
  EXPECT_DOUBLE_EQ(weight_of("b", "c"), -1.0);
}

TEST(MinerTest, MinSupportFilters) {
  TripleStore store;
  store.Add("t1", "hasTag", "a", 1.0);
  store.Add("t1", "hasTag", "b", 1.0);
  store.Add("t2", "hasTag", "a", 1.0);
  store.Add("t2", "hasTag", "c", 1.0);
  store.Add("t3", "hasTag", "a", 1.0);
  store.Add("t3", "hasTag", "c", 1.0);
  store.Finalize();

  MinerOptions options;
  options.min_support = 2;
  options.min_weight = 0.0;
  RelaxationIndex index;
  ASSERT_TRUE(MineObjectCooccurrence(store, store.MustId("hasTag"), options,
                                     &index)
                  .ok());
  const TermId has_tag = store.MustId("hasTag");
  // (a -> c) has support 2: kept. (a -> b) has support 1: dropped.
  const auto rules =
      index.RulesFor(PatternKey{kInvalidTermId, has_tag, store.MustId("a")});
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].to.o, store.MustId("c"));
}

TEST(MinerTest, WeightCapApplies) {
  TripleStore store;
  store.Add("t1", "hasTag", "a", 1.0);
  store.Add("t1", "hasTag", "b", 1.0);
  store.Add("t2", "hasTag", "a", 1.0);
  store.Add("t2", "hasTag", "b", 1.0);
  store.Finalize();

  MinerOptions options;
  options.min_support = 1;
  options.weight_cap = 0.9;
  RelaxationIndex index;
  ASSERT_TRUE(MineObjectCooccurrence(store, store.MustId("hasTag"), options,
                                     &index)
                  .ok());
  for (const RelaxationRule& r : index.RulesFor(PatternKey{
           kInvalidTermId, store.MustId("hasTag"), store.MustId("a")})) {
    EXPECT_LE(r.weight, 0.9);
  }
}

TEST(MinerTest, MaxRulesPerPatternRespected) {
  // One hub tag co-occurring with many others.
  TripleStore store;
  for (int i = 0; i < 30; ++i) {
    const std::string tweet = "t" + std::to_string(i);
    const std::string other = "tag" + std::to_string(i);
    store.Add(tweet, "hasTag", "hub", 1.0);
    store.Add(tweet, "hasTag", other, 1.0);
  }
  store.Finalize();

  MinerOptions options;
  options.min_support = 1;
  options.min_weight = 0.0;
  options.max_rules_per_pattern = 10;
  RelaxationIndex index;
  ASSERT_TRUE(MineObjectCooccurrence(store, store.MustId("hasTag"), options,
                                     &index)
                  .ok());
  EXPECT_LE(index.NumRulesFor(PatternKey{kInvalidTermId,
                                         store.MustId("hasTag"),
                                         store.MustId("hub")}),
            10u);
}

TEST(MinerTest, RequiresFinalizedStore) {
  TripleStore store;
  store.Add("t1", "hasTag", "a", 1.0);
  RelaxationIndex index;
  const Status s =
      MineObjectCooccurrence(store, 0, MinerOptions{}, &index);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(MinerTest, AllMinedRulesAreValid) {
  Rng rng(321);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 400;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  RelaxationIndex index;
  MinerOptions options;
  options.min_support = 1;
  for (size_t p = 0; p < 4; ++p) {
    const auto id = store.dict().Find("p" + std::to_string(p));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(
        MineObjectCooccurrence(store, id.value(), options, &index).ok());
  }
  // Spot-check: every stored rule validates and stays within (0, cap].
  size_t checked = 0;
  for (const Triple& t : store.triples()) {
    for (const RelaxationRule& r :
         index.RulesFor(PatternKey{kInvalidTermId, t.p, t.o})) {
      EXPECT_TRUE(ValidateRule(r).ok());
      EXPECT_LE(r.weight, options.weight_cap);
      ++checked;
      if (checked > 500) return;
    }
  }
}

}  // namespace
}  // namespace specqp
