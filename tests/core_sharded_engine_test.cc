// Scatter-gather equivalence battery: every bundled workload query (66 XKG
// + 50 Twitter = 116) must return bit-identical rows — bindings and raw
// score bits — on {single-file v3, 2-shard bundle, 8-shard bundle}
// backends, across all three strategies and 1/2/8 execution threads, with
// speculative plan racing forced on. This is the determinism contract of
// docs/ARCHITECTURE.md ("Sharded stores & scatter-gather"): sharding is a
// storage layout, never an answer change.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "test_util.h"
#include "util/string_util.h"

// Sanitizer builds run ~5-15x slower; trim the thread sweep there (the
// release gate runs the full matrix).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SPECQP_SANITIZED_BUILD 1
#endif
#if !defined(SPECQP_SANITIZED_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SPECQP_SANITIZED_BUILD 1
#endif
#endif

namespace specqp {
namespace {

namespace fs = std::filesystem;

void ExpectSameRows(const std::vector<ScoredRow>& expected,
                    const std::vector<ScoredRow>& actual,
                    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].bindings, expected[i].bindings) << label << " #" << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " #" << i;
  }
}

TEST(ShardedEngineTest, WorkloadBitIdenticalAcrossBackends) {
  // Same reduced-scale datasets as the speculation probe: full workload
  // query counts (66 + 50 = 116) at test-sized graphs.
  XkgConfig xkg_config;
  xkg_config.num_entities = 6000;
  xkg_config.num_domains = 8;
  const XkgDataset xkg = GenerateXkg(xkg_config);
  XkgWorkloadConfig xkg_wl;
  xkg_wl.min_relaxations = 8;
  const std::vector<Query> xkg_queries = MakeXkgWorkload(xkg, xkg_wl);
  ASSERT_EQ(xkg_queries.size(), 66u);

  TwitterConfig twitter_config;
  twitter_config.num_tweets = 20000;
  twitter_config.num_topics = 12;
  const TwitterDataset twitter = GenerateTwitter(twitter_config);
  TwitterWorkloadConfig twitter_wl;
  twitter_wl.min_relaxations = 4;
  twitter_wl.min_relaxed_answers = 10;
  const std::vector<Query> twitter_queries =
      MakeTwitterWorkload(twitter, twitter_wl);
  ASSERT_EQ(twitter_queries.size(), 50u);
  ASSERT_EQ(xkg_queries.size() + twitter_queries.size(), 116u);

  const std::string dir = ::testing::TempDir() + "/sharded_engine";
  fs::remove_all(dir);
  fs::create_directories(dir);

  struct Dataset {
    const char* name;
    const TripleStore* store;
    const RelaxationIndex* rules;
    const std::vector<Query>* workload;
  } datasets[] = {
      {"xkg", &xkg.store, &xkg.rules, &xkg_queries},
      {"twitter", &twitter.store, &twitter.rules, &twitter_queries},
  };
  constexpr Strategy kStrategies[] = {Strategy::kSpecQp, Strategy::kTrinit,
                                      Strategy::kNoRelax};
#if defined(SPECQP_SANITIZED_BUILD)
  const std::vector<int> thread_counts = {2};
#else
  const std::vector<int> thread_counts = {1, 2, 8};
#endif

  for (const Dataset& dataset : datasets) {
    // One single-file v3 store plus a 2-shard and an 8-shard bundle over
    // the identical triples.
    const std::string single =
        dir + "/" + std::string(dataset.name) + ".sqps";
    ASSERT_TRUE(SaveStore(*dataset.store, single).ok());
    struct Backend {
      std::string label;
      std::string path;
      uint32_t shards;  // 0 = single file
    };
    std::vector<Backend> backends = {{"single-v3", single, 0}};
    for (const uint32_t shards : {2u, 8u}) {
      const std::string bundle_dir = dir + "/" + std::string(dataset.name) +
                                     "_shard" + std::to_string(shards);
      ShardBundleOptions bundle_options;
      bundle_options.shard_count = shards;
      ASSERT_TRUE(
          WriteShardBundle(*dataset.store, bundle_dir, bundle_options).ok());
      backends.push_back({"shard" + std::to_string(shards), bundle_dir,
                          shards});
    }

    // Ground truth: the serial in-memory engine, speculation off.
    EngineOptions base;
    base.num_threads = 1;
    Engine baseline(dataset.store, dataset.rules, base);
    std::vector<std::vector<std::vector<ScoredRow>>> expected(
        std::size(kStrategies));
    for (size_t s = 0; s < std::size(kStrategies); ++s) {
      expected[s].reserve(dataset.workload->size());
      for (const Query& query : *dataset.workload) {
        expected[s].push_back(
            testing::Execute(baseline, query, 10, kStrategies[s]).rows);
      }
    }

    for (const Backend& backend : backends) {
      for (const int threads : thread_counts) {
        EngineOptions options;
        options.num_threads = threads;
        options.speculate_threshold = 2.0;  // force racing (threads >= 2)
        auto opened = Engine::OpenFromPath(backend.path, dataset.rules,
                                           options);
        ASSERT_TRUE(opened.ok())
            << backend.label << ": " << opened.status().ToString();
        EXPECT_EQ(opened.value().store().is_sharded(), backend.shards > 0);

        uint64_t raced = 0;
        for (size_t s = 0; s < std::size(kStrategies); ++s) {
          for (size_t q = 0; q < dataset.workload->size(); ++q) {
            const Engine::QueryResult result =
                testing::Execute(*opened.value().engine,
                                 (*dataset.workload)[q], 10, kStrategies[s]);
            raced += result.stats.plans_raced;
            ExpectSameRows(
                expected[s][q], result.rows,
                StrFormat("%s/%s/%s q%zu threads=%d", dataset.name,
                          backend.label.c_str(),
                          std::string(StrategyName(kStrategies[s])).c_str(),
                          q, threads));
          }
        }
        if (threads >= 2) {
          EXPECT_GT(raced, 0u) << dataset.name << "/" << backend.label
                               << " threads=" << threads;
        }

        // The scatter-gather ledger actually moved: every shard holds
        // triples and was hit by at least one scattered pattern.
        if (backend.shards > 0) {
          ASSERT_NE(opened.value().sharded, nullptr);
          EXPECT_EQ(opened.value().sharded->shard_count(), backend.shards);
          uint64_t gathered = 0;
          for (const auto& c : opened.value().sharded->Counters()) {
            EXPECT_GT(c.triple_count, 0u)
                << backend.label << " shard " << c.shard_id;
            EXPECT_GT(c.patterns_scattered, 0u)
                << backend.label << " shard " << c.shard_id;
            gathered += c.triples_gathered;
          }
          EXPECT_GT(gathered, 0u) << backend.label;
        }
      }
    }
  }
}

}  // namespace
}  // namespace specqp
