#ifndef SPECQP_TESTS_TEST_UTIL_H_
#define SPECQP_TESTS_TEST_UTIL_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/batch_executor.h"
#include "core/engine.h"
#include "core/request.h"
#include "query/parser.h"
#include "query/query.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "topk/exec_stats.h"
#include "topk/operator.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"

namespace specqp::testing {

// ---------------------------------------------------------------------------
// Unified-API execution helpers. Tests execute through the same entry
// points as any caller — Submit with immediate admission for one query,
// BatchExecutor for a pre-assembled batch — and unpack the response into
// the batch layer's QueryResult record for comparison convenience.
// ---------------------------------------------------------------------------

inline Engine::QueryResult ToQueryResult(QueryResponse response) {
  Engine::QueryResult result;
  result.plan = std::move(response.plan);
  result.diagnostics = std::move(response.diagnostics);
  result.rows = std::move(response.rows);
  result.stats = response.stats;
  return result;
}

// One pre-parsed query, immediate admission; CHECKs the terminal status
// (nothing on this path can fail for a well-formed request).
inline Engine::QueryResult Execute(Engine& engine, const Query& query,
                                   size_t k, Strategy strategy) {
  QueryRequest request = QueryRequest::FromQuery(query, k, strategy);
  request.admission = QueryRequest::Admission::kImmediate;
  QueryResponse response = engine.Submit(std::move(request)).get();
  SPECQP_CHECK(response.status.ok()) << response.status.ToString();
  return ToQueryResult(std::move(response));
}

// One text query, immediate admission; a parse error comes back as the
// Result's status.
inline Result<Engine::QueryResult> ExecuteText(Engine& engine,
                                               std::string_view text, size_t k,
                                               Strategy strategy) {
  QueryRequest request =
      QueryRequest::FromText(std::string(text), k, strategy);
  request.admission = QueryRequest::Admission::kImmediate;
  QueryResponse response = engine.Submit(std::move(request)).get();
  if (!response.status.ok()) return response.status;
  return ToQueryResult(std::move(response));
}

inline std::vector<Engine::QueryResult> ExecuteBatch(
    Engine& engine, std::span<const Query> queries, size_t k,
    Strategy strategy, BatchStats* batch_stats = nullptr) {
  BatchExecutor batch(&engine);
  return batch.Execute(queries, k, strategy, batch_stats);
}

// Parses every text and batch-executes the ones that parse; a slot that
// fails to parse carries its parse error and does not affect the others.
inline std::vector<Result<Engine::QueryResult>> ExecuteTextBatch(
    Engine& engine, std::span<const std::string> texts, size_t k,
    Strategy strategy, BatchStats* batch_stats = nullptr) {
  std::vector<Result<Engine::QueryResult>> out;
  out.reserve(texts.size());
  std::vector<Query> parsed;
  std::vector<size_t> parsed_slot;
  std::vector<Status> errors(texts.size(), Status::Ok());
  constexpr size_t kFailed = static_cast<size_t>(-1);
  for (size_t i = 0; i < texts.size(); ++i) {
    auto query = ParseQuery(texts[i], engine.store().dict());
    if (query.ok()) {
      parsed_slot.push_back(parsed.size());
      parsed.push_back(std::move(query).value());
    } else {
      parsed_slot.push_back(kFailed);
      errors[i] = query.status();
    }
  }
  std::vector<Engine::QueryResult> results =
      ExecuteBatch(engine, parsed, k, strategy, batch_stats);
  for (size_t i = 0; i < texts.size(); ++i) {
    if (parsed_slot[i] == kFailed) {
      out.push_back(Result<Engine::QueryResult>(errors[i]));
    } else {
      out.push_back(
          Result<Engine::QueryResult>(std::move(results[parsed_slot[i]])));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// The "music" fixture: a tiny hand-built knowledge graph shaped like the
// paper's running example ("Which singers also write lyrics and play guitar
// and piano?"), with Table-1-style relaxation rules. Scores are entity
// popularities; every rdf:type triple about an entity carries its
// popularity.
// ---------------------------------------------------------------------------

struct MusicFixture {
  TripleStore store;
  RelaxationIndex rules;

  TermId type = kInvalidTermId;

  TermId Id(std::string_view name) const { return store.MustId(name); }

  // Star query: ?s <rdf:type> <t> for each type name.
  Query TypeQuery(const std::vector<std::string>& type_names) const {
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    for (const std::string& name : type_names) {
      query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                     PatternTerm::Const(type),
                                     PatternTerm::Const(Id(name))));
    }
    query.AddProjection(s);
    return query;
  }
};

inline MusicFixture MakeMusicFixture() {
  MusicFixture fx;
  TripleStore& store = fx.store;

  struct Entity {
    const char* name;
    double popularity;
  };
  const std::vector<Entity> entities = {
      {"shakira", 100}, {"beyonce", 90}, {"adele", 85}, {"sting", 80},
      {"miley", 70},    {"taylor", 65},  {"bob", 60},   {"norah", 55},
      {"elton", 50},    {"ray", 45},
  };
  const std::vector<std::pair<const char*, std::vector<const char*>>>
      memberships = {
          {"singer", {"shakira", "beyonce", "adele", "miley", "taylor"}},
          {"vocalist",
           {"shakira", "beyonce", "adele", "sting", "norah", "bob"}},
          {"jazz_singer", {"norah", "ray"}},
          {"artist",
           {"shakira", "beyonce", "adele", "sting", "miley", "taylor", "bob",
            "norah", "elton", "ray"}},
          {"lyricist", {"sting", "bob", "taylor", "elton"}},
          {"writer", {"bob", "sting", "taylor", "elton", "shakira"}},
          {"guitarist", {"shakira", "sting", "bob", "taylor"}},
          {"musician",
           {"shakira", "beyonce", "adele", "sting", "miley", "taylor", "bob",
            "norah", "elton", "ray"}},
          {"instrumentalist", {"sting", "bob", "elton", "ray", "norah"}},
          {"pianist", {"elton", "ray", "norah", "adele"}},
          {"percussionist", {"shakira", "ray"}},
      };

  auto pop = [&](std::string_view name) {
    for (const Entity& e : entities) {
      if (name == e.name) return e.popularity;
    }
    SPECQP_CHECK(false) << "unknown entity " << name;
    return 0.0;
  };

  for (const auto& [type_name, members] : memberships) {
    for (const char* member : members) {
      store.Add(member, "rdf:type", type_name, pop(member));
    }
  }
  store.Finalize();
  fx.type = store.MustId("rdf:type");

  auto add_rule = [&](const char* from, const char* to, double w) {
    RelaxationRule rule;
    rule.from = PatternKey{kInvalidTermId, fx.type, store.MustId(from)};
    rule.to = PatternKey{kInvalidTermId, fx.type, store.MustId(to)};
    rule.weight = w;
    const Status status = fx.rules.AddRule(rule);
    SPECQP_CHECK(status.ok()) << status.ToString();
  };
  // Table 1 of the paper, with weights.
  add_rule("singer", "vocalist", 0.9);
  add_rule("singer", "jazz_singer", 0.6);
  add_rule("singer", "artist", 0.5);
  add_rule("lyricist", "writer", 0.8);
  add_rule("guitarist", "musician", 0.7);
  add_rule("guitarist", "instrumentalist", 0.65);
  add_rule("pianist", "percussionist", 0.55);
  return fx;
}

// ---------------------------------------------------------------------------
// Random stores for property tests.
// ---------------------------------------------------------------------------

struct RandomStoreConfig {
  size_t num_subjects = 30;
  size_t num_predicates = 4;
  size_t num_objects = 12;
  size_t num_triples = 150;
  double max_score = 100.0;
};

inline TripleStore MakeRandomStore(Rng* rng, const RandomStoreConfig& cfg) {
  TripleStore store;
  Dictionary& dict = store.dict();
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  std::vector<TermId> objects;
  for (size_t i = 0; i < cfg.num_subjects; ++i) {
    subjects.push_back(dict.Intern("s" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.num_predicates; ++i) {
    predicates.push_back(dict.Intern("p" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.num_objects; ++i) {
    objects.push_back(dict.Intern("o" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.num_triples; ++i) {
    store.AddEncoded(subjects[rng->NextBounded(subjects.size())],
                     predicates[rng->NextBounded(predicates.size())],
                     objects[rng->NextBounded(objects.size())],
                     rng->NextDouble(0.0, cfg.max_score));
  }
  store.Finalize();
  return store;
}

// Random relaxation rules among the objects of each predicate.
inline RelaxationIndex MakeRandomRules(Rng* rng, const TripleStore& store,
                                       size_t rules_per_pattern = 3) {
  RelaxationIndex rules;
  // Collect distinct (p, o) pairs.
  std::vector<PatternKey> pattern_keys;
  {
    std::vector<std::pair<TermId, TermId>> seen;
    for (const Triple& t : store.triples()) {
      seen.emplace_back(t.p, t.o);
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (const auto& [p, o] : seen) {
      pattern_keys.push_back(PatternKey{kInvalidTermId, p, o});
    }
  }
  for (const PatternKey& from : pattern_keys) {
    for (size_t r = 0; r < rules_per_pattern; ++r) {
      const PatternKey& to =
          pattern_keys[rng->NextBounded(pattern_keys.size())];
      if (to == from || to.p != from.p) continue;
      RelaxationRule rule{from, to, rng->NextDouble(0.1, 0.95)};
      const Status status = rules.AddRule(rule);
      SPECQP_CHECK(status.ok()) << status.ToString();
    }
  }
  return rules;
}

// Star query over `n` distinct (p, o) pairs that exist in the store.
inline Query MakeRandomStarQuery(Rng* rng, const TripleStore& store,
                                 size_t n) {
  std::vector<std::pair<TermId, TermId>> pairs;
  for (const Triple& t : store.triples()) {
    pairs.emplace_back(t.p, t.o);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  SPECQP_CHECK(pairs.size() >= n);
  rng->Shuffle(&pairs);

  Query query;
  const VarId s = query.GetOrAddVariable("s");
  for (size_t i = 0; i < n; ++i) {
    query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                   PatternTerm::Const(pairs[i].first),
                                   PatternTerm::Const(pairs[i].second)));
  }
  query.AddProjection(s);
  return query;
}

// ---------------------------------------------------------------------------
// Operator helpers.
// ---------------------------------------------------------------------------

// Feeds a fixed, score-descending vector of rows through the iterator
// interface (for unit-testing merge/join operators in isolation).
class VectorIterator : public ScoredRowIterator {
 public:
  explicit VectorIterator(std::vector<ScoredRow> rows)
      : rows_(std::move(rows)) {
    for (size_t i = 1; i < rows_.size(); ++i) {
      SPECQP_CHECK(rows_[i - 1].score >= rows_[i].score)
          << "VectorIterator input must be score-descending";
    }
  }

  bool Next(ScoredRow* out) override {
    if (cursor_ >= rows_.size()) return false;
    *out = rows_[cursor_++];
    return true;
  }

  double UpperBound() const override {
    if (cursor_ >= rows_.size()) return kExhausted;
    return rows_[cursor_].score;
  }

 private:
  std::vector<ScoredRow> rows_;
  size_t cursor_ = 0;
};

// Drains an iterator completely.
inline std::vector<ScoredRow> Drain(ScoredRowIterator* it) {
  std::vector<ScoredRow> out;
  ScoredRow row;
  while (it->Next(&row)) out.push_back(row);
  return out;
}

// Builds a row binding variable 0 to `value`.
inline ScoredRow Row1(size_t width, TermId value, double score) {
  ScoredRow row(width, score);
  row.bindings[0] = value;
  return row;
}

}  // namespace specqp::testing

#endif  // SPECQP_TESTS_TEST_UTIL_H_
