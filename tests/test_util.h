#ifndef SPECQP_TESTS_TEST_UTIL_H_
#define SPECQP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "topk/exec_stats.h"
#include "topk/operator.h"
#include "util/logging.h"
#include "util/random.h"

namespace specqp::testing {

// ---------------------------------------------------------------------------
// The "music" fixture: a tiny hand-built knowledge graph shaped like the
// paper's running example ("Which singers also write lyrics and play guitar
// and piano?"), with Table-1-style relaxation rules. Scores are entity
// popularities; every rdf:type triple about an entity carries its
// popularity.
// ---------------------------------------------------------------------------

struct MusicFixture {
  TripleStore store;
  RelaxationIndex rules;

  TermId type = kInvalidTermId;

  TermId Id(std::string_view name) const { return store.MustId(name); }

  // Star query: ?s <rdf:type> <t> for each type name.
  Query TypeQuery(const std::vector<std::string>& type_names) const {
    Query query;
    const VarId s = query.GetOrAddVariable("s");
    for (const std::string& name : type_names) {
      query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                     PatternTerm::Const(type),
                                     PatternTerm::Const(Id(name))));
    }
    query.AddProjection(s);
    return query;
  }
};

inline MusicFixture MakeMusicFixture() {
  MusicFixture fx;
  TripleStore& store = fx.store;

  struct Entity {
    const char* name;
    double popularity;
  };
  const std::vector<Entity> entities = {
      {"shakira", 100}, {"beyonce", 90}, {"adele", 85}, {"sting", 80},
      {"miley", 70},    {"taylor", 65},  {"bob", 60},   {"norah", 55},
      {"elton", 50},    {"ray", 45},
  };
  const std::vector<std::pair<const char*, std::vector<const char*>>>
      memberships = {
          {"singer", {"shakira", "beyonce", "adele", "miley", "taylor"}},
          {"vocalist",
           {"shakira", "beyonce", "adele", "sting", "norah", "bob"}},
          {"jazz_singer", {"norah", "ray"}},
          {"artist",
           {"shakira", "beyonce", "adele", "sting", "miley", "taylor", "bob",
            "norah", "elton", "ray"}},
          {"lyricist", {"sting", "bob", "taylor", "elton"}},
          {"writer", {"bob", "sting", "taylor", "elton", "shakira"}},
          {"guitarist", {"shakira", "sting", "bob", "taylor"}},
          {"musician",
           {"shakira", "beyonce", "adele", "sting", "miley", "taylor", "bob",
            "norah", "elton", "ray"}},
          {"instrumentalist", {"sting", "bob", "elton", "ray", "norah"}},
          {"pianist", {"elton", "ray", "norah", "adele"}},
          {"percussionist", {"shakira", "ray"}},
      };

  auto pop = [&](std::string_view name) {
    for (const Entity& e : entities) {
      if (name == e.name) return e.popularity;
    }
    SPECQP_CHECK(false) << "unknown entity " << name;
    return 0.0;
  };

  for (const auto& [type_name, members] : memberships) {
    for (const char* member : members) {
      store.Add(member, "rdf:type", type_name, pop(member));
    }
  }
  store.Finalize();
  fx.type = store.MustId("rdf:type");

  auto add_rule = [&](const char* from, const char* to, double w) {
    RelaxationRule rule;
    rule.from = PatternKey{kInvalidTermId, fx.type, store.MustId(from)};
    rule.to = PatternKey{kInvalidTermId, fx.type, store.MustId(to)};
    rule.weight = w;
    const Status status = fx.rules.AddRule(rule);
    SPECQP_CHECK(status.ok()) << status.ToString();
  };
  // Table 1 of the paper, with weights.
  add_rule("singer", "vocalist", 0.9);
  add_rule("singer", "jazz_singer", 0.6);
  add_rule("singer", "artist", 0.5);
  add_rule("lyricist", "writer", 0.8);
  add_rule("guitarist", "musician", 0.7);
  add_rule("guitarist", "instrumentalist", 0.65);
  add_rule("pianist", "percussionist", 0.55);
  return fx;
}

// ---------------------------------------------------------------------------
// Random stores for property tests.
// ---------------------------------------------------------------------------

struct RandomStoreConfig {
  size_t num_subjects = 30;
  size_t num_predicates = 4;
  size_t num_objects = 12;
  size_t num_triples = 150;
  double max_score = 100.0;
};

inline TripleStore MakeRandomStore(Rng* rng, const RandomStoreConfig& cfg) {
  TripleStore store;
  Dictionary& dict = store.dict();
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  std::vector<TermId> objects;
  for (size_t i = 0; i < cfg.num_subjects; ++i) {
    subjects.push_back(dict.Intern("s" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.num_predicates; ++i) {
    predicates.push_back(dict.Intern("p" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.num_objects; ++i) {
    objects.push_back(dict.Intern("o" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.num_triples; ++i) {
    store.AddEncoded(subjects[rng->NextBounded(subjects.size())],
                     predicates[rng->NextBounded(predicates.size())],
                     objects[rng->NextBounded(objects.size())],
                     rng->NextDouble(0.0, cfg.max_score));
  }
  store.Finalize();
  return store;
}

// Random relaxation rules among the objects of each predicate.
inline RelaxationIndex MakeRandomRules(Rng* rng, const TripleStore& store,
                                       size_t rules_per_pattern = 3) {
  RelaxationIndex rules;
  // Collect distinct (p, o) pairs.
  std::vector<PatternKey> pattern_keys;
  {
    std::vector<std::pair<TermId, TermId>> seen;
    for (const Triple& t : store.triples()) {
      seen.emplace_back(t.p, t.o);
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (const auto& [p, o] : seen) {
      pattern_keys.push_back(PatternKey{kInvalidTermId, p, o});
    }
  }
  for (const PatternKey& from : pattern_keys) {
    for (size_t r = 0; r < rules_per_pattern; ++r) {
      const PatternKey& to =
          pattern_keys[rng->NextBounded(pattern_keys.size())];
      if (to == from || to.p != from.p) continue;
      RelaxationRule rule{from, to, rng->NextDouble(0.1, 0.95)};
      const Status status = rules.AddRule(rule);
      SPECQP_CHECK(status.ok()) << status.ToString();
    }
  }
  return rules;
}

// Star query over `n` distinct (p, o) pairs that exist in the store.
inline Query MakeRandomStarQuery(Rng* rng, const TripleStore& store,
                                 size_t n) {
  std::vector<std::pair<TermId, TermId>> pairs;
  for (const Triple& t : store.triples()) {
    pairs.emplace_back(t.p, t.o);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  SPECQP_CHECK(pairs.size() >= n);
  rng->Shuffle(&pairs);

  Query query;
  const VarId s = query.GetOrAddVariable("s");
  for (size_t i = 0; i < n; ++i) {
    query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                   PatternTerm::Const(pairs[i].first),
                                   PatternTerm::Const(pairs[i].second)));
  }
  query.AddProjection(s);
  return query;
}

// ---------------------------------------------------------------------------
// Operator helpers.
// ---------------------------------------------------------------------------

// Feeds a fixed, score-descending vector of rows through the iterator
// interface (for unit-testing merge/join operators in isolation).
class VectorIterator : public ScoredRowIterator {
 public:
  explicit VectorIterator(std::vector<ScoredRow> rows)
      : rows_(std::move(rows)) {
    for (size_t i = 1; i < rows_.size(); ++i) {
      SPECQP_CHECK(rows_[i - 1].score >= rows_[i].score)
          << "VectorIterator input must be score-descending";
    }
  }

  bool Next(ScoredRow* out) override {
    if (cursor_ >= rows_.size()) return false;
    *out = rows_[cursor_++];
    return true;
  }

  double UpperBound() const override {
    if (cursor_ >= rows_.size()) return kExhausted;
    return rows_[cursor_].score;
  }

 private:
  std::vector<ScoredRow> rows_;
  size_t cursor_ = 0;
};

// Drains an iterator completely.
inline std::vector<ScoredRow> Drain(ScoredRowIterator* it) {
  std::vector<ScoredRow> out;
  ScoredRow row;
  while (it->Next(&row)) out.push_back(row);
  return out;
}

// Builds a row binding variable 0 to `value`.
inline ScoredRow Row1(size_t width, TermId value, double score) {
  ScoredRow row(width, score);
  row.bindings[0] = value;
  return row;
}

}  // namespace specqp::testing

#endif  // SPECQP_TESTS_TEST_UTIL_H_
