#include "core/estimator.h"

#include <gtest/gtest.h>

#include "rdf/posting_list.h"
#include "stats/catalog.h"
#include "stats/selectivity.h"
#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

struct EstimatorHarness {
  PostingListCache postings;
  StatisticsCatalog catalog;
  SelectivityEstimator selectivity;
  ExpectedScoreEstimator estimator;

  explicit EstimatorHarness(
      const TripleStore* store,
      ExpectedScoreEstimator::Model model =
          ExpectedScoreEstimator::Model::kTwoBucket)
      : postings(store),
        catalog(store, &postings),
        selectivity(store),
        estimator(&catalog, &selectivity, model) {}
};

TEST(EstimatorTest, SinglePatternCardinalityAndDistribution) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const Query query = fx.TypeQuery({"singer"});
  const auto estimate = h.estimator.EstimateQuery(query);
  ASSERT_FALSE(estimate.empty());
  EXPECT_DOUBLE_EQ(estimate.cardinality, 5.0);
  EXPECT_DOUBLE_EQ(estimate.distribution->upper(), 1.0);
  // Top expected score is near the top of the normalised range.
  EXPECT_GT(estimate.ExpectedAtRank(1), 0.6);
  EXPECT_LE(estimate.ExpectedAtRank(1), 1.0);
}

TEST(EstimatorTest, RanksBeyondCardinalityAreZero) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const auto estimate = h.estimator.EstimateQuery(fx.TypeQuery({"singer"}));
  EXPECT_DOUBLE_EQ(estimate.ExpectedAtRank(6), 0.0);  // only 5 singers
  EXPECT_GT(estimate.ExpectedAtRank(5), 0.0);
}

TEST(EstimatorTest, TwoPatternSupportIsSumOfUppers) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const auto estimate =
      h.estimator.EstimateQuery(fx.TypeQuery({"singer", "vocalist"}));
  ASSERT_FALSE(estimate.empty());
  EXPECT_DOUBLE_EQ(estimate.distribution->upper(), 2.0);
  EXPECT_DOUBLE_EQ(estimate.cardinality, 3.0);  // exact intersection
}

TEST(EstimatorTest, WeightsScaleSupportAndScores) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const Query query = fx.TypeQuery({"singer", "vocalist"});
  const auto full = h.estimator.EstimateQuery(query);
  const auto discounted = h.estimator.EstimateQuery(query, {1.0, 0.5});
  ASSERT_FALSE(discounted.empty());
  EXPECT_DOUBLE_EQ(discounted.distribution->upper(), 1.5);
  EXPECT_LT(discounted.ExpectedAtRank(1), full.ExpectedAtRank(1));
}

TEST(EstimatorTest, EmptyPatternYieldsEmptyEstimate) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  // jazz_singer ∩ guitarist is empty.
  const auto estimate =
      h.estimator.EstimateQuery(fx.TypeQuery({"jazz_singer", "guitarist"}));
  EXPECT_TRUE(estimate.empty());
  EXPECT_DOUBLE_EQ(estimate.ExpectedAtRank(1), 0.0);
}

TEST(EstimatorTest, GridModelAgreesRoughlyWithTwoBucket) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness two(&fx.store);
  EstimatorHarness grid(&fx.store,
                        ExpectedScoreEstimator::Model::kExactGrid);
  const Query query = fx.TypeQuery({"vocalist", "artist"});
  const auto a = two.estimator.EstimateQuery(query);
  const auto b = grid.estimator.EstimateQuery(query);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(a.cardinality, b.cardinality);
  // The two models approximate the same distribution; expected top scores
  // should be in the same ballpark (the two-bucket model is optimistic).
  EXPECT_NEAR(a.ExpectedAtRank(1), b.ExpectedAtRank(1), 0.35);
  EXPECT_NEAR(a.distribution->Mean(), b.distribution->Mean(), 0.35);
}

TEST(EstimatorTest, ThreePatternChainedConvolution) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const auto estimate = h.estimator.EstimateQuery(
      fx.TypeQuery({"singer", "vocalist", "artist"}));
  ASSERT_FALSE(estimate.empty());
  EXPECT_DOUBLE_EQ(estimate.distribution->upper(), 3.0);
  // Expected top score of a 3-pattern star over popular entities is high
  // but below the theoretical max.
  const double top = estimate.ExpectedAtRank(1);
  EXPECT_GT(top, 1.5);
  EXPECT_LT(top, 3.0);
}

TEST(EstimatorTest, MonotoneInRank) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const auto estimate =
      h.estimator.EstimateQuery(fx.TypeQuery({"vocalist", "musician"}));
  ASSERT_FALSE(estimate.empty());
  double prev = 1e9;
  for (uint64_t rank = 1; rank <= 6; ++rank) {
    const double v = estimate.ExpectedAtRank(rank);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(EstimatorDeathTest, WeightsSizeMustMatch) {
  MusicFixture fx = MakeMusicFixture();
  EstimatorHarness h(&fx.store);
  const Query query = fx.TypeQuery({"singer", "vocalist"});
  EXPECT_DEATH((void)h.estimator.EstimateQuery(query, {1.0}), "weights");
}

}  // namespace
}  // namespace specqp
