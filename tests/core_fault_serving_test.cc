// Engine-level fault-tolerant serving: strict vs degraded answers over a
// bundle with quarantined shards, mid-query fault invalidation (kIoError,
// then partial answers), block-decode fault surfacing on single-file
// backends, admission-side overload shedding (queue depth and hopeless
// deadlines), SubmitWithRetry semantics, and cancellation responsiveness
// during sharded scatter-gather execution.

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rdf/mapped_fault.h"
#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/random.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SPECQP_SANITIZED_BUILD 1
#endif
#if !defined(SPECQP_SANITIZED_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SPECQP_SANITIZED_BUILD 1
#endif
#endif

namespace specqp {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// The store every serving test runs against: random but seeded, split into
// a 4-shard subject-hashed bundle.
struct Fixture {
  TripleStore store;
  RelaxationIndex rules;
  std::vector<Query> queries;
  std::string bundle_dir;
};

Fixture MakeFixture(const char* dir_name, size_t triples = 3000) {
  Fixture fx;
  Rng rng(23);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 120;
  cfg.num_predicates = 6;
  cfg.num_objects = 25;
  cfg.num_triples = triples;
  fx.store = specqp::testing::MakeRandomStore(&rng, cfg);
  fx.rules = specqp::testing::MakeRandomRules(&rng, fx.store);
  for (int i = 0; i < 6; ++i) {
    fx.queries.push_back(
        specqp::testing::MakeRandomStarQuery(&rng, fx.store, 3));
  }
  fx.bundle_dir = FreshDir(dir_name);
  ShardBundleOptions bundle;
  bundle.shard_count = 4;
  SPECQP_CHECK(WriteShardBundle(fx.store, fx.bundle_dir, bundle).ok());
  return fx;
}

// The store a degraded bundle with `failed_shard` out must behave like:
// the same dictionary (TermIds preserved), survivors' triples only.
TripleStore SurvivorStore(const TripleStore& store, uint32_t failed_shard) {
  TripleStore out;
  for (TermId id = 0; id < store.dict().size(); ++id) {
    out.dict().Intern(store.dict().Name(id));
  }
  for (const Triple& t : store.triples()) {
    if (BundleShardOfTriple(t, bundle::HashScheme::kSubject, 4) !=
        failed_shard) {
      out.AddEncoded(t.s, t.p, t.o, t.score);
    }
  }
  out.Finalize();
  return out;
}

QueryResponse SubmitImmediate(Engine& engine, const Query& query,
                              size_t k = 10) {
  QueryRequest request = QueryRequest::FromQuery(query, k);
  request.admission = QueryRequest::Admission::kImmediate;
  return engine.Submit(std::move(request)).get();
}

// Every test leaves the process-wide injector disarmed, whatever path it
// took to arm it (EngineOptions::fault_plan or ScopedFaultPlan).
class FaultServingTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultServingTest, StrictServingRefusesWhileAShardIsOut) {
  Fixture fx = MakeFixture("fsv_strict");
  EngineOptions options;
  options.num_threads = 1;
  options.allow_quarantine = true;  // isolate, but do NOT serve degraded
  options.fault_plan = "shard.open.1=1";
  auto opened = Engine::OpenFromPath(fx.bundle_dir, &fx.rules, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened.value().sharded->ShardsFailed(), 1u);
  FaultInjector::Global().Disarm();

  // Immediate path.
  QueryResponse immediate =
      SubmitImmediate(*opened.value().engine, fx.queries[0]);
  EXPECT_EQ(immediate.status.code(), StatusCode::kUnavailable)
      << immediate.status.ToString();
  EXPECT_TRUE(immediate.rows.empty());
  EXPECT_FALSE(immediate.partial);
  EXPECT_EQ(immediate.stats.shards_failed, 1u);
  EXPECT_EQ(immediate.stats.shards_total, 4u);

  // Windowed path: the whole window is refused at dispatch.
  QueryResponse windowed =
      opened.value().engine->Submit(QueryRequest::FromQuery(fx.queries[1]))
          .get();
  EXPECT_EQ(windowed.status.code(), StatusCode::kUnavailable)
      << windowed.status.ToString();
  EXPECT_EQ(windowed.stats.shards_failed, 1u);
  EXPECT_EQ(windowed.stats.shards_total, 4u);
}

TEST_F(FaultServingTest, DegradedServingAnswersFromTheSurvivors) {
  Fixture fx = MakeFixture("fsv_degraded");
  EngineOptions options;
  options.num_threads = 1;
  options.degraded_reads = true;  // implies allow_quarantine
  options.fault_plan = "shard.open.1=1";
  auto opened = Engine::OpenFromPath(fx.bundle_dir, &fx.rules, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened.value().sharded->ShardsFailed(), 1u);
  FaultInjector::Global().Disarm();

  // Ground truth: an in-memory engine over exactly the surviving triples.
  const TripleStore survivors = SurvivorStore(fx.store, 1);
  EngineOptions base;
  base.num_threads = 1;
  Engine baseline(&survivors, &fx.rules, base);

  for (size_t q = 0; q < fx.queries.size(); ++q) {
    QueryResponse expected = SubmitImmediate(baseline, fx.queries[q]);
    ASSERT_TRUE(expected.ok());
    QueryResponse got =
        SubmitImmediate(*opened.value().engine, fx.queries[q]);
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    EXPECT_TRUE(got.partial) << "degraded answers must be marked partial";
    EXPECT_EQ(got.stats.shards_failed, 1u);
    EXPECT_EQ(got.stats.shards_total, 4u);
    ASSERT_EQ(got.rows.size(), expected.rows.size()) << "query " << q;
    for (size_t i = 0; i < expected.rows.size(); ++i) {
      EXPECT_EQ(got.rows[i].bindings, expected.rows[i].bindings)
          << "query " << q << " row " << i;
      EXPECT_EQ(got.rows[i].score, expected.rows[i].score)
          << "query " << q << " row " << i;
    }
  }
}

TEST_F(FaultServingTest, MidQueryFaultInvalidatesThenServesPartial) {
  Fixture fx = MakeFixture("fsv_midquery");
  EngineOptions options;
  options.num_threads = 1;
  options.degraded_reads = true;
  auto opened = Engine::OpenFromPath(fx.bundle_dir, &fx.rules, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine& engine = *opened.value().engine;

  // Healthy bundle first: full answers, not partial.
  QueryResponse healthy = SubmitImmediate(engine, fx.queries[0]);
  ASSERT_TRUE(healthy.ok()) << healthy.status.ToString();
  EXPECT_FALSE(healthy.partial);
  EXPECT_EQ(healthy.stats.shards_failed, 0u);

  // Arm one read fault: it lands mid-query (the scatter quarantines shard
  // 2 and restarts), so the fault epoch moves under the running query and
  // the postflight refuses to vouch for the answer.
  ScopedFaultPlan plan("shard.read.2=1@1");
  QueryResponse faulted = SubmitImmediate(engine, fx.queries[1]);
  EXPECT_EQ(faulted.status.code(), StatusCode::kIoError)
      << faulted.status.ToString();
  EXPECT_TRUE(faulted.rows.empty());
  EXPECT_EQ(faulted.stats.shards_failed, 1u);

  // The retry the IoError asks for: served degraded from the survivors.
  QueryResponse retried = SubmitImmediate(engine, fx.queries[1]);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_TRUE(retried.partial);
  EXPECT_EQ(retried.stats.shards_failed, 1u);
  EXPECT_EQ(retried.stats.shards_total, 4u);
}

TEST_F(FaultServingTest, BlockDecodeFaultSurfacesAsIoErrorOnSingleFile) {
  Fixture fx = MakeFixture("fsv_blockfault");
  const std::string path = FreshDir("fsv_blockfault_single") + "/store.sqps";
  ASSERT_TRUE(SaveStore(fx.store, path).ok());  // single-file v3

  EngineOptions options;
  options.num_threads = 1;
  auto opened = Engine::OpenFromPath(path, &fx.rules, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  // Every block decode fails: the scan observes the placeholder block,
  // sees the fault count move, and the response refuses instead of
  // silently serving zero-entry postings.
  {
    ScopedFaultPlan plan("block.decode=1");
    QueryResponse response =
        SubmitImmediate(*opened.value().engine, fx.queries[0]);
    EXPECT_EQ(response.status.code(), StatusCode::kIoError)
        << response.status.ToString();
    EXPECT_TRUE(response.rows.empty());
    EXPECT_GT(response.stats.store_faults, 0u);
  }

  // The fault was transient and the placeholder was never memoised: the
  // same query re-decodes cleanly and matches an unfaulted baseline.
  EngineOptions base;
  base.num_threads = 1;
  Engine baseline(&fx.store, &fx.rules, base);
  QueryResponse expected = SubmitImmediate(baseline, fx.queries[0]);
  ASSERT_TRUE(expected.ok());
  QueryResponse recovered =
      SubmitImmediate(*opened.value().engine, fx.queries[0]);
  ASSERT_TRUE(recovered.ok()) << recovered.status.ToString();
  EXPECT_EQ(recovered.stats.store_faults, 0u);
  ASSERT_EQ(recovered.rows.size(), expected.rows.size());
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_EQ(recovered.rows[i].bindings, expected.rows[i].bindings);
    EXPECT_EQ(recovered.rows[i].score, expected.rows[i].score);
  }
}

TEST_F(FaultServingTest, QueueDepthShedsWithRetryAfterHint) {
  Fixture fx = MakeFixture("fsv_shed_queue");
  EngineOptions options;
  options.num_threads = 1;
  options.admission_max_queue = 1;
  options.admission_max_batch = 64;        // window closes only on flush
  options.admission_max_delay_ms = 10000;  // (or this very long delay)
  Engine engine(&fx.store, &fx.rules, options);

  std::future<QueryResponse> accepted =
      engine.Submit(QueryRequest::FromQuery(fx.queries[0]));
  // The queue is now at its cap: the next submit is shed, with the hint.
  QueryResponse shed =
      engine.Submit(QueryRequest::FromQuery(fx.queries[1])).get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted)
      << shed.status.ToString();
  EXPECT_GT(shed.retry_after_ms, 0.0);

  const auto stats = engine.admission().stats();
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.rejected_at_submit, 1u);
  EXPECT_EQ(stats.submitted, 1u);

  // Draining the queue frees the slot: the accepted request completes and
  // a resubmission of the shed one is admitted.
  engine.admission().Flush();
  EXPECT_TRUE(accepted.get().ok());
  std::future<QueryResponse> readmitted =
      engine.Submit(QueryRequest::FromQuery(fx.queries[1]));
  engine.admission().Flush();
  QueryResponse resubmitted = readmitted.get();
  EXPECT_TRUE(resubmitted.ok()) << resubmitted.status.ToString();
}

TEST_F(FaultServingTest, HopelessDeadlineIsShedAtSubmit) {
  Fixture fx = MakeFixture("fsv_shed_deadline");
  EngineOptions options;
  options.num_threads = 1;
  options.admission_deadline_shed = true;
  options.admission_max_delay_ms = 10000;  // worst-case window delay: 10 s
  Engine engine(&fx.store, &fx.rules, options);

  // A 1 s deadline cannot outlast a 10 s window: shed now, and the hint
  // of 0 says resubmitting the same deadline is pointless.
  QueryRequest request = QueryRequest::FromQuery(fx.queries[0]);
  request.WithTimeout(std::chrono::milliseconds(1000));
  QueryResponse shed = engine.Submit(std::move(request)).get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted)
      << shed.status.ToString();
  EXPECT_EQ(shed.retry_after_ms, 0.0);
  EXPECT_EQ(engine.admission().stats().shed_deadline, 1u);

  // SubmitWithRetry honours the 0 hint: exactly one attempt, no backoff
  // burn.
  QueryRequest again = QueryRequest::FromQuery(fx.queries[1]);
  again.WithTimeout(std::chrono::milliseconds(1000));
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::microseconds(500);
  QueryResponse retried = SubmitWithRetry(engine, again, policy);
  EXPECT_EQ(retried.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.admission().stats().shed_deadline, 2u);
}

TEST_F(FaultServingTest, SubmitWithRetryExhaustsAttemptsOnUnavailable) {
  Fixture fx = MakeFixture("fsv_retry_unavailable");
  EngineOptions options;
  options.num_threads = 1;
  options.allow_quarantine = true;  // strict serving: every query refused
  options.fault_plan = "shard.open.1=1";
  options.admission_max_batch = 1;  // dispatch each attempt promptly
  auto opened = Engine::OpenFromPath(fx.bundle_dir, &fx.rules, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FaultInjector::Global().Disarm();
  Engine& engine = *opened.value().engine;

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(500);
  policy.max_backoff = std::chrono::microseconds(2000);
  QueryResponse response =
      SubmitWithRetry(engine, QueryRequest::FromQuery(fx.queries[0]), policy);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
      << response.status.ToString();
  // All three attempts were admitted and refused at dispatch.
  EXPECT_EQ(engine.admission().stats().submitted, 3u);
}

TEST_F(FaultServingTest, CancelAbortsShardedExecutionPromptly) {
  // Large enough that a cold scatter-gather execution takes real time;
  // the regression bound is on cancel-to-completion latency, not on the
  // query finishing.
  Fixture fx = MakeFixture("fsv_cancel", /*triples=*/60000);
  EngineOptions options;
  options.num_threads = 1;
  options.degraded_reads = true;
  auto opened = Engine::OpenFromPath(fx.bundle_dir, &fx.rules, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

#if defined(SPECQP_SANITIZED_BUILD)
  constexpr double kBoundMs = 500.0;  // sanitizers run 5-15x slower
#else
  constexpr double kBoundMs = 50.0;
#endif

  CancellationToken token = CancellationToken::Create();
  QueryRequest request = QueryRequest::FromQuery(fx.queries[0]);
  request.cancel = token;
  request.admission = QueryRequest::Admission::kImmediate;

  std::promise<void> started;
  QueryResponse response;
  std::thread worker([&] {
    started.set_value();
    response = opened.value().engine->Submit(std::move(request)).get();
  });
  started.get_future().wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto cancel_at = std::chrono::steady_clock::now();
  token.RequestCancel();
  worker.join();
  const double after_cancel_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - cancel_at)
          .count();

  // Either the query beat the cancel (ok) or it was cancelled — but in
  // both cases the response must land promptly after the cancel.
  EXPECT_LT(after_cancel_ms, kBoundMs);
  if (!response.ok()) {
    EXPECT_EQ(response.status.code(), StatusCode::kCancelled)
        << response.status.ToString();
    EXPECT_TRUE(response.rows.empty());
  }
}

}  // namespace
}  // namespace specqp
