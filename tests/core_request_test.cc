// Unit surface of the unified request API (core/request.h): token
// semantics, request helpers, Submit's immediate path, Explain, and the
// per-request execution overrides.

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/request.h"
#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

void ExpectSameRows(const std::vector<ScoredRow>& expected,
                    const std::vector<ScoredRow>& actual,
                    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].bindings, expected[i].bindings) << label << " #" << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " #" << i;
  }
}

TEST(CancellationTokenTest, EmptyTokenIsInert) {
  CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  token.RequestCancel();  // no-op, no crash
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.flag(), nullptr);
}

TEST(CancellationTokenTest, CopiesShareOneFlag) {
  CancellationToken token = CancellationToken::Create();
  ASSERT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  CancellationToken copy = token;
  copy.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST(QueryRequestTest, HelpersAndTimeout) {
  QueryRequest from_text =
      QueryRequest::FromText("SELECT ?s WHERE { ?s <p> <o> }", 7,
                             Strategy::kTrinit);
  EXPECT_FALSE(from_text.query.has_value());
  EXPECT_EQ(from_text.k, 7u);
  EXPECT_EQ(from_text.strategy, Strategy::kTrinit);
  EXPECT_FALSE(from_text.deadline.has_value());

  from_text.WithTimeout(std::chrono::milliseconds(50));
  ASSERT_TRUE(from_text.deadline.has_value());
  EXPECT_GT(*from_text.deadline, std::chrono::steady_clock::now());

  Query query;
  query.AddProjection(query.GetOrAddVariable("s"));
  const QueryRequest from_query = QueryRequest::FromQuery(query, 3);
  ASSERT_TRUE(from_query.query.has_value());
  EXPECT_EQ(from_query.k, 3u);
  EXPECT_EQ(from_query.strategy, Strategy::kSpecQp);
}

TEST(SubmitTest, ImmediateMatchesHelperExecute) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  for (Strategy strategy :
       {Strategy::kSpecQp, Strategy::kTrinit, Strategy::kNoRelax}) {
    const Engine::QueryResult expected = testing::Execute(engine, query, 5, strategy);
    QueryRequest request = QueryRequest::FromQuery(query, 5, strategy);
    request.admission = QueryRequest::Admission::kImmediate;
    std::future<QueryResponse> future = engine.Submit(std::move(request));
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "immediate submissions return a ready future";
    const QueryResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(response.k, 5u);
    EXPECT_EQ(response.strategy, strategy);
    EXPECT_EQ(response.window_size, 0u);
    EXPECT_FALSE(response.partial);
    ExpectSameRows(expected.rows, response.rows,
                   std::string(StrategyName(strategy)));
  }
}

TEST(SubmitTest, TextRequestsParseAndEcho) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  QueryRequest request = QueryRequest::FromText(
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . "
      "?s <rdf:type> <lyricist> }",
      5);
  request.tag = "request-42";
  request.admission = QueryRequest::Admission::kImmediate;
  const QueryResponse response = engine.Submit(std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.tag, "request-42");
  EXPECT_FALSE(response.rows.empty());

  const auto expected = testing::ExecuteText(
      engine,
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . "
      "?s <rdf:type> <lyricist> }",
      5, Strategy::kSpecQp);
  ASSERT_TRUE(expected.ok());
  ExpectSameRows(expected.value().rows, response.rows, "text request");
}

TEST(SubmitTest, ParseErrorAndBadKTerminateImmediately) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  for (const QueryRequest::Admission admission :
       {QueryRequest::Admission::kImmediate,
        QueryRequest::Admission::kWindow}) {
    QueryRequest bad_text = QueryRequest::FromText("not a query", 5);
    bad_text.admission = admission;
    const QueryResponse parse_error = engine.Submit(std::move(bad_text)).get();
    EXPECT_FALSE(parse_error.ok());
    EXPECT_EQ(parse_error.status.code(), StatusCode::kInvalidArgument);

    QueryRequest bad_k =
        QueryRequest::FromQuery(fx.TypeQuery({"singer"}), /*k=*/0);
    bad_k.admission = admission;
    const QueryResponse k_error = engine.Submit(std::move(bad_k)).get();
    EXPECT_FALSE(k_error.ok());
    EXPECT_EQ(k_error.status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(SubmitTest, SerialAndParallelMinRowsOverridesKeepAnswers) {
  MusicFixture fx = MakeMusicFixture();
  EngineOptions options;
  options.num_threads = 4;
  options.parallel_min_rows = 1u << 30;  // engine-wide: never partition
  Engine engine(&fx.store, &fx.rules, options);
  const Query query = fx.TypeQuery({"singer", "lyricist", "guitarist"});
  const Engine::QueryResult expected = testing::Execute(engine, query, 5,
                                                      Strategy::kSpecQp);
  EXPECT_EQ(expected.stats.parallel_partitions, 0u);

  // Override drops the threshold to 0: the tree partitions, answers stay
  // bit-identical.
  QueryRequest partitioned = QueryRequest::FromQuery(query, 5);
  partitioned.admission = QueryRequest::Admission::kImmediate;
  partitioned.parallel_min_rows = 0;
  const QueryResponse partitioned_response =
      engine.Submit(std::move(partitioned)).get();
  ASSERT_TRUE(partitioned_response.ok());
  EXPECT_GT(partitioned_response.stats.parallel_partitions, 0u);
  ExpectSameRows(expected.rows, partitioned_response.rows,
                 "parallel_min_rows=0");

  // serial forces the single tree even with the low threshold.
  QueryRequest serial = QueryRequest::FromQuery(query, 5);
  serial.admission = QueryRequest::Admission::kImmediate;
  serial.parallel_min_rows = 0;
  serial.serial = true;
  const QueryResponse serial_response = engine.Submit(std::move(serial)).get();
  ASSERT_TRUE(serial_response.ok());
  EXPECT_EQ(serial_response.stats.parallel_partitions, 0u);
  ExpectSameRows(expected.rows, serial_response.rows, "serial override");
}

TEST(ExplainTest, MatchesPlanOnlyAndStaticPlans) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});

  PlanDiagnostics diag;
  const QueryPlan expected = engine.PlanOnly(query, 10, &diag);
  const QueryResponse spec = engine.Explain(QueryRequest::FromQuery(query, 10));
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.rows.empty());
  EXPECT_EQ(spec.plan.join_group, expected.join_group);
  EXPECT_EQ(spec.plan.singletons, expected.singletons);
  EXPECT_EQ(spec.diagnostics.decisions.size(), diag.decisions.size());
  EXPECT_EQ(spec.diagnostics.eq_k, diag.eq_k);

  const QueryResponse trinit = engine.Explain(
      QueryRequest::FromQuery(query, 10, Strategy::kTrinit));
  ASSERT_TRUE(trinit.ok());
  EXPECT_EQ(trinit.plan.singletons.size(), query.num_patterns());

  const QueryResponse norelax = engine.Explain(
      QueryRequest::FromQuery(query, 10, Strategy::kNoRelax));
  ASSERT_TRUE(norelax.ok());
  EXPECT_EQ(norelax.plan.join_group.size(), query.num_patterns());

  // Text resolution and error propagation.
  const QueryResponse text_explain = engine.Explain(QueryRequest::FromText(
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . "
      "?s <rdf:type> <lyricist> }",
      10));
  ASSERT_TRUE(text_explain.ok());
  EXPECT_EQ(text_explain.plan.join_group, expected.join_group);
  EXPECT_EQ(text_explain.plan.singletons, expected.singletons);

  const QueryResponse bad = engine.Explain(QueryRequest::FromText("nope", 10));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
}

TEST(RequestStatusTest, NewCodesRoundTrip) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "CANCELLED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace specqp
