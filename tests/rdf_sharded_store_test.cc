// Sharded store bundles (SQPBNDL1): round-trips through WriteShardBundle /
// ShardedStore::Open, scatter-gather equivalence against the source store,
// and a hostile-input battery — truncated or patched manifests, missing /
// extra / duplicated / smuggled shard files, digest disagreements,
// wrong-shard placements, cross-shard duplicates. Every hostile case must
// come back as a structured Status::Corruption (or IoError for a missing
// manifest), never a crash — these suites run under ASan/UBSan in CI.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "test_util.h"
#include "util/crc32.h"
#include "util/random.h"

namespace specqp {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TripleStore MakeStore(uint64_t seed = 99, size_t triples = 3000) {
  Rng rng(seed);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 120;
  cfg.num_predicates = 6;
  cfg.num_objects = 25;
  cfg.num_triples = triples;
  return specqp::testing::MakeRandomStore(&rng, cfg);
}

// Overwrites `count` bytes at `offset` with `value` XORed in (so the patch
// always changes the byte).
void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  ASSERT_TRUE(f.read(&byte, 1).good());
  byte ^= 0x5A;
  f.seekp(static_cast<std::streamoff>(offset));
  ASSERT_TRUE(f.write(&byte, 1).good());
}

// Rewrites the manifest's trailing CRC so deliberate header/entry patches
// test the *semantic* validation, not just the checksum.
void ResealManifest(const std::string& dir) {
  const std::string path = dir + "/" + bundle::kManifestFileName;
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GE(bytes.size(), sizeof(uint32_t));
  const uint32_t crc =
      Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))
          .good());
}

void ExpectCorruption(const std::string& dir, const char* label,
                      MmapStore::Verify verify = MmapStore::Verify::kLazy) {
  ShardedStore::Options options;
  options.verify = verify;
  auto opened = ShardedStore::Open(dir, options);
  ASSERT_FALSE(opened.ok()) << label;
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
      << label << ": " << opened.status().ToString();
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

class ShardedRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t,
                                                 bundle::HashScheme>> {};

TEST_P(ShardedRoundTripTest, FacadeMatchesSourceStoreExactly) {
  const auto [shard_count, format_version, scheme] = GetParam();
  const TripleStore store = MakeStore();
  const std::string dir = FreshDir("sharded_roundtrip");

  ShardBundleOptions options;
  options.shard_count = shard_count;
  options.scheme = scheme;
  options.format_version = format_version;
  ASSERT_TRUE(WriteShardBundle(store, dir, options).ok());
  EXPECT_TRUE(IsBundlePath(dir));
  EXPECT_TRUE(IsBundlePath(dir + "/" + bundle::kManifestFileName));

  auto opened = ShardedStore::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedStore& sharded = *opened.value();
  EXPECT_EQ(sharded.shard_count(), shard_count);
  EXPECT_EQ(sharded.scheme(), scheme);
  EXPECT_EQ(sharded.store_format(), format_version);
  EXPECT_GT(sharded.bytes_mapped(), 0u);

  // The facade's global index space is the merged SPO order — identical
  // to the source store's own finalized SPO order, triple for triple.
  const TripleStore& facade = sharded.store();
  ASSERT_TRUE(facade.is_sharded());
  ASSERT_EQ(facade.size(), store.size());
  for (uint32_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(facade.triple(i), store.triples()[i]) << "global index " << i;
  }
  EXPECT_EQ(facade.dict().size(), store.dict().size());

  // MatchIndices over the facade returns the same global indices in the
  // same order for every route (full scan, s-, p-, o-, and combinations).
  Rng rng(7);
  std::vector<PatternKey> keys = {PatternKey{}};  // full scan
  for (int i = 0; i < 40; ++i) {
    const Triple& t = store.triples()[rng.NextBounded(store.size())];
    keys.push_back(PatternKey{t.s, kInvalidTermId, kInvalidTermId});
    keys.push_back(PatternKey{kInvalidTermId, t.p, kInvalidTermId});
    keys.push_back(PatternKey{kInvalidTermId, kInvalidTermId, t.o});
    keys.push_back(PatternKey{kInvalidTermId, t.p, t.o});
    keys.push_back(PatternKey{t.s, kInvalidTermId, t.o});
    keys.push_back(PatternKey{t.s, t.p, t.o});
  }
  for (const PatternKey& key : keys) {
    const auto expect = store.MatchIndices(key);
    const auto got = facade.MatchIndices(key);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]);
    }
  }

  // The gather ledger saw every scatter (one per unique key per shard).
  uint64_t patterns = 0;
  for (const auto& c : sharded.Counters()) {
    patterns += c.patterns_scattered;
  }
  EXPECT_GT(patterns, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Bundles, ShardedRoundTripTest,
    ::testing::Values(
        std::make_tuple(2u, 3u, bundle::HashScheme::kSubject),
        std::make_tuple(8u, 3u, bundle::HashScheme::kSubject),
        std::make_tuple(3u, 3u, bundle::HashScheme::kPredicate),
        std::make_tuple(4u, 2u, bundle::HashScheme::kSubject)));

TEST(ShardedStoreTest, EagerVerifyAcceptsWellFormedBundle) {
  const TripleStore store = MakeStore();
  const std::string dir = FreshDir("sharded_eager_ok");
  ASSERT_TRUE(WriteShardBundle(store, dir).ok());
  ShardedStore::Options options;
  options.verify = MmapStore::Verify::kEager;
  auto opened = ShardedStore::Open(dir, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
}

TEST(ShardedStoreTest, SaveStoreRejectsShardedFacade) {
  const TripleStore store = MakeStore();
  const std::string dir = FreshDir("sharded_no_resave");
  ASSERT_TRUE(WriteShardBundle(store, dir).ok());
  auto opened = ShardedStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  const Status v3 = SaveStore(opened.value()->store(), dir + "/resave.sqp");
  EXPECT_EQ(v3.code(), StatusCode::kFailedPrecondition);
  const Status v1 =
      SaveStoreV1(opened.value()->store(), dir + "/resave.v1.sqp");
  EXPECT_EQ(v1.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedStoreTest, ShardCountersReportShape) {
  const TripleStore store = MakeStore();
  const std::string dir = FreshDir("sharded_counters");
  ShardBundleOptions options;
  options.shard_count = 4;
  ASSERT_TRUE(WriteShardBundle(store, dir, options).ok());
  auto opened = ShardedStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  uint64_t triples = 0;
  for (const auto& c : opened.value()->Counters()) {
    triples += c.triple_count;
    EXPECT_GT(c.bytes_mapped, 0u);
  }
  EXPECT_EQ(triples, store.size());
}

// ---------------------------------------------------------------------------
// Hostile inputs. Each case starts from a fresh well-formed bundle.
// ---------------------------------------------------------------------------

class HostileBundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = MakeStore();
    dir_ = FreshDir("sharded_hostile");
    ShardBundleOptions options;
    options.shard_count = 4;
    ASSERT_TRUE(WriteShardBundle(store_, dir_, options).ok());
    manifest_ = dir_ + "/" + bundle::kManifestFileName;
  }

  TripleStore store_;
  std::string dir_;
  std::string manifest_;
};

TEST_F(HostileBundleTest, MissingManifestIsIoError) {
  fs::remove(manifest_);
  EXPECT_FALSE(IsBundlePath(dir_));
  auto opened = ShardedStore::Open(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST_F(HostileBundleTest, TruncatedManifest) {
  fs::resize_file(manifest_, 10);
  ExpectCorruption(dir_, "10-byte manifest");
  fs::resize_file(manifest_, 0);
  ExpectCorruption(dir_, "empty manifest");
}

TEST_F(HostileBundleTest, ManifestTruncatedMidEntries) {
  const auto size = fs::file_size(manifest_);
  fs::resize_file(manifest_, size - 16);
  ExpectCorruption(dir_, "manifest missing half an entry");
}

TEST_F(HostileBundleTest, ManifestBadMagic) {
  FlipByte(manifest_, 0);
  ExpectCorruption(dir_, "patched magic");
}

TEST_F(HostileBundleTest, ManifestChecksumMismatch) {
  // Patch a shard entry's triple count without resealing: the trailing
  // CRC must reject the file before any semantic check runs.
  FlipByte(manifest_, sizeof(bundle::ManifestHeader) + 16);
  ExpectCorruption(dir_, "stale manifest checksum");
}

TEST_F(HostileBundleTest, ShardCountOutOfRange) {
  // shard_count sits after magic (8) + version (4).
  uint32_t zero = 0;
  std::fstream f(manifest_,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(12);
  f.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  f.close();
  ResealManifest(dir_);
  ExpectCorruption(dir_, "zero shard count");
}

TEST_F(HostileBundleTest, DuplicatedShardIds) {
  // entry[1].shard_id = 0 — two entries claiming the same shard.
  uint32_t zero = 0;
  std::fstream f(manifest_,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(sizeof(bundle::ManifestHeader) +
                                      sizeof(bundle::ManifestShardEntry)));
  f.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  f.close();
  ResealManifest(dir_);
  ExpectCorruption(dir_, "duplicated shard id");
}

TEST_F(HostileBundleTest, MissingShardFile) {
  fs::remove(dir_ + "/" + BundleShardFileName(3));
  ExpectCorruption(dir_, "manifest names 4 shards, 3 files present");
}

TEST_F(HostileBundleTest, ExtraShardFile) {
  fs::copy_file(dir_ + "/" + BundleShardFileName(0),
                dir_ + "/" + BundleShardFileName(7));
  ExpectCorruption(dir_, "stray shard file beyond the manifest's count");
}

TEST_F(HostileBundleTest, ShardTableDisagreesWithManifestDigest) {
  // Flip a byte inside shard 1's section table: its table CRC no longer
  // matches the manifest's pinned digest, even at a lazy open.
  FlipByte(dir_ + "/" + BundleShardFileName(1),
           sizeof(v2::FileHeader) + 12);
  ExpectCorruption(dir_, "shard section table patched");
}

TEST_F(HostileBundleTest, ShardPayloadFlipCaughtByEagerVerify) {
  // A payload flip leaves the header + table (and thus the manifest
  // digest) intact; the per-section CRCs catch it under Verify::kEager.
  const std::string shard = dir_ + "/" + BundleShardFileName(2);
  FlipByte(shard, fs::file_size(shard) - 5);
  ExpectCorruption(dir_, "shard payload flipped",
                   MmapStore::Verify::kEager);
}

TEST_F(HostileBundleTest, ShardFileSwappedForAnother) {
  // Replace shard 2's file with a copy of shard 0's: sizes/digests
  // disagree with the manifest entry.
  fs::copy_file(dir_ + "/" + BundleShardFileName(0),
                dir_ + "/" + BundleShardFileName(2),
                fs::copy_options::overwrite_existing);
  ExpectCorruption(dir_, "shard file swapped");
}

TEST_F(HostileBundleTest, ManifestTotalTriplesMismatch) {
  // total_triples sits at offset 24 (magic 8 + 4×u32).
  uint64_t bogus = 1;
  std::fstream f(manifest_,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(24);
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  ResealManifest(dir_);
  ExpectCorruption(dir_, "patched total_triples");
}

TEST_F(HostileBundleTest, V2FileSmuggledIntoV3Bundle) {
  // Rebuild the bundle as v2, then patch the manifest's store_format to 3
  // and reseal: every digest matches its (v2) file, but the shard format
  // disagrees with what the manifest claims to serve.
  const std::string dir = FreshDir("sharded_hostile_smuggle");
  ShardBundleOptions options;
  options.shard_count = 2;
  options.format_version = 2;
  ASSERT_TRUE(WriteShardBundle(store_, dir, options).ok());
  const uint32_t v3_format = 3;
  std::fstream f(dir + "/" + bundle::kManifestFileName,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(20);  // store_format: magic 8 + version 4 + count 4 + scheme 4
  f.write(reinterpret_cast<const char*>(&v3_format), sizeof(v3_format));
  f.close();
  ResealManifest(dir);
  ExpectCorruption(dir, "v2 shard behind a v3 manifest");
}

TEST_F(HostileBundleTest, CrossShardDuplicateTriplesFailTheMerge) {
  // Both shard files hold the SAME triples: every manifest digest is
  // consistent, but the N-way SPO merge sees non-ascending steps.
  const std::string dir = FreshDir("sharded_hostile_dup");
  TripleStore clone;
  for (TermId id = 0; id < store_.dict().size(); ++id) {
    clone.dict().Intern(store_.dict().Name(id));
  }
  for (const Triple& t : store_.triples()) {
    clone.AddEncoded(t.s, t.p, t.o, t.score);
  }
  clone.Finalize();
  ASSERT_TRUE(SaveStore(clone, dir + "/" + BundleShardFileName(0)).ok());
  ASSERT_TRUE(SaveStore(clone, dir + "/" + BundleShardFileName(1)).ok());
  ASSERT_TRUE(WriteBundleManifest(dir, 2, bundle::HashScheme::kSubject, 3)
                  .ok());
  ExpectCorruption(dir, "duplicate triples across shards");
}

TEST_F(HostileBundleTest, WrongShardPlacementRejectedByEagerVerify) {
  // A deliberately mis-partitioned bundle: shards swapped relative to the
  // hash assignment. The merge itself is hash-agnostic — a lazy open
  // serves it, and serves it CORRECTLY — but eager verification re-hashes
  // every triple and rejects the writer-contract violation.
  const std::string dir = FreshDir("sharded_hostile_misplaced");
  std::vector<TripleStore> shards(2);
  for (TripleStore& s : shards) {
    for (TermId id = 0; id < store_.dict().size(); ++id) {
      s.dict().Intern(store_.dict().Name(id));
    }
  }
  for (const Triple& t : store_.triples()) {
    const uint32_t wrong =
        1 - BundleShardOfTriple(t, bundle::HashScheme::kSubject, 2);
    shards[wrong].AddEncoded(t.s, t.p, t.o, t.score);
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    shards[i].Finalize();
    ASSERT_TRUE(
        SaveStore(shards[i],
                  dir + "/" + BundleShardFileName(static_cast<uint32_t>(i)))
            .ok());
  }
  ASSERT_TRUE(WriteBundleManifest(dir, 2, bundle::HashScheme::kSubject, 3)
                  .ok());

  // Lazy open: correct answers despite the misplacement.
  auto lazy = ShardedStore::Open(dir);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  ASSERT_EQ(lazy.value()->store().size(), store_.size());
  for (uint32_t i = 0; i < store_.size(); ++i) {
    ASSERT_EQ(lazy.value()->store().triple(i), store_.triples()[i]);
  }

  // Eager open: rejected.
  ExpectCorruption(dir, "triples in the wrong shard",
                   MmapStore::Verify::kEager);
}

}  // namespace
}  // namespace specqp
