#include "rdf/posting_partition.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

TEST(PostingPartitionOfTest, StableAndInRange) {
  for (TermId t = 0; t < 1000; ++t) {
    for (uint32_t parts : {1u, 2u, 7u, 8u}) {
      const uint32_t bucket = PostingPartitionOf(t, parts);
      EXPECT_LT(bucket, parts);
      EXPECT_EQ(bucket, PostingPartitionOf(t, parts)) << "must be stable";
    }
  }
}

TEST(PostingPartitionOfTest, SpreadsDenseIds) {
  // Consecutive TermIds (the common case: interned in order) must not all
  // land in one bucket.
  std::set<uint32_t> buckets;
  for (TermId t = 0; t < 64; ++t) buckets.insert(PostingPartitionOf(t, 8));
  EXPECT_EQ(buckets.size(), 8u);
}

class PartitionPostingListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    specqp::testing::RandomStoreConfig cfg;
    cfg.num_subjects = 40;
    cfg.num_predicates = 2;
    cfg.num_objects = 3;
    cfg.num_triples = 300;
    store_ = specqp::testing::MakeRandomStore(&rng, cfg);
    const Triple& anchor = store_.triple(0);
    key_ = PatternKey{kInvalidTermId, anchor.p, anchor.o};
    list_ = BuildPostingList(store_, key_);
    ASSERT_GT(list_.size(), 10u);
  }

  TripleStore store_;
  PatternKey key_;
  PostingList list_;
};

TEST_F(PartitionPostingListTest, PiecesFormDisjointUnion) {
  const auto pieces = PartitionPostingList(store_, list_, /*slot=*/0, 4);
  ASSERT_EQ(pieces.size(), 4u);
  std::multiset<uint32_t> seen;
  size_t total = 0;
  for (const auto& piece : pieces) {
    total += piece->size();
    for (const PostingEntry& e : piece->entries) seen.insert(e.triple_index);
  }
  EXPECT_EQ(total, list_.size());
  std::multiset<uint32_t> expected;
  for (const PostingEntry& e : list_.entries) expected.insert(e.triple_index);
  EXPECT_EQ(seen, expected);
}

TEST_F(PartitionPostingListTest, PiecesRespectBucketAssignment) {
  const uint32_t parts = 3;
  const auto pieces = PartitionPostingList(store_, list_, /*slot=*/0, parts);
  for (uint32_t i = 0; i < parts; ++i) {
    for (const PostingEntry& e : pieces[i]->entries) {
      EXPECT_EQ(PostingPartitionOf(store_.triple(e.triple_index).s, parts), i);
    }
  }
}

TEST_F(PartitionPostingListTest, PiecesPreserveSortOrderAndNormaliser) {
  const auto pieces = PartitionPostingList(store_, list_, /*slot=*/0, 5);
  for (const auto& piece : pieces) {
    EXPECT_DOUBLE_EQ(piece->max_raw_score, list_.max_raw_score);
    for (size_t i = 1; i < piece->entries.size(); ++i) {
      const PostingEntry& prev = piece->entries[i - 1];
      const PostingEntry& cur = piece->entries[i];
      EXPECT_TRUE(prev.score > cur.score ||
                  (prev.score == cur.score &&
                   prev.triple_index < cur.triple_index))
          << "pieces must keep the (score desc, index asc) sort";
    }
  }
}

TEST_F(PartitionPostingListTest, SinglePartitionIsIdentity) {
  const auto pieces = PartitionPostingList(store_, list_, /*slot=*/0, 1);
  ASSERT_EQ(pieces.size(), 1u);
  ASSERT_EQ(pieces[0]->size(), list_.size());
  for (size_t i = 0; i < list_.size(); ++i) {
    EXPECT_EQ(pieces[0]->entries[i].triple_index,
              list_.entries[i].triple_index);
    EXPECT_DOUBLE_EQ(pieces[0]->entries[i].score, list_.entries[i].score);
  }
}

TEST_F(PartitionPostingListTest, EmptyListYieldsEmptyPieces) {
  PostingList empty;
  empty.max_raw_score = 0.0;
  const auto pieces = PartitionPostingList(store_, empty, /*slot=*/2, 4);
  ASSERT_EQ(pieces.size(), 4u);
  for (const auto& piece : pieces) EXPECT_TRUE(piece->empty());
}

}  // namespace
}  // namespace specqp
