#include "topk/incremental_merge.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::Drain;
using specqp::testing::Row1;
using specqp::testing::VectorIterator;

std::unique_ptr<VectorIterator> MakeInput(
    const std::vector<std::pair<TermId, double>>& rows) {
  std::vector<ScoredRow> v;
  for (const auto& [value, score] : rows) v.push_back(Row1(1, value, score));
  return std::make_unique<VectorIterator>(std::move(v));
}

TEST(IncrementalMergeTest, MergesTwoStreamsInOrder) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({{1, 0.9}, {2, 0.5}, {3, 0.1}}));
  inputs.push_back(MakeInput({{4, 0.8}, {5, 0.4}}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  const auto rows = Drain(&merge);
  ASSERT_EQ(rows.size(), 5u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].score, rows[i - 1].score);
  }
  EXPECT_EQ(rows[0].bindings[0], 1u);
  EXPECT_EQ(rows[1].bindings[0], 4u);
}

TEST(IncrementalMergeTest, DeduplicatesKeepingMaxDerivation) {
  // The same binding arrives from two lists; the higher-scored (earlier)
  // one must win (Definition 8).
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({{7, 0.9}, {8, 0.2}}));
  inputs.push_back(MakeInput({{7, 0.6}, {9, 0.5}}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  const auto rows = Drain(&merge);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].bindings[0], 7u);
  EXPECT_DOUBLE_EQ(rows[0].score, 0.9);
  EXPECT_EQ(rows[1].bindings[0], 9u);
  EXPECT_EQ(rows[2].bindings[0], 8u);
  EXPECT_EQ(stats.merge_duplicates, 1u);
  EXPECT_EQ(stats.merge_rows, 3u);
}

TEST(IncrementalMergeTest, SingleInputPassThrough) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({{1, 0.9}, {2, 0.5}}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  const auto rows = Drain(&merge);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].score, 0.9);
}

TEST(IncrementalMergeTest, EmptyInputsYieldNothing) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({}));
  inputs.push_back(MakeInput({}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  ScoredRow row;
  EXPECT_FALSE(merge.Next(&row));
  EXPECT_FALSE(merge.Next(&row));  // stays exhausted
}

TEST(IncrementalMergeTest, MixedEmptyAndNonEmpty) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({}));
  inputs.push_back(MakeInput({{3, 0.7}}));
  inputs.push_back(MakeInput({}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  const auto rows = Drain(&merge);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].bindings[0], 3u);
}

TEST(IncrementalMergeTest, UpperBoundIsMaxOfInputBounds) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({{1, 0.9}, {2, 0.5}}));
  inputs.push_back(MakeInput({{4, 0.8}}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  EXPECT_DOUBLE_EQ(merge.UpperBound(), 0.9);
  ScoredRow row;
  ASSERT_TRUE(merge.Next(&row));  // 0.9
  EXPECT_DOUBLE_EQ(merge.UpperBound(), 0.8);
  ASSERT_TRUE(merge.Next(&row));  // 0.8
  EXPECT_DOUBLE_EQ(merge.UpperBound(), 0.5);
  ASSERT_TRUE(merge.Next(&row));  // 0.5
  EXPECT_DOUBLE_EQ(merge.UpperBound(), ScoredRowIterator::kExhausted);
}

TEST(IncrementalMergeTest, UpperBoundNeverIncreases) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(MakeInput({{1, 0.9}, {2, 0.8}, {3, 0.3}}));
  inputs.push_back(MakeInput({{4, 0.85}, {5, 0.2}}));
  inputs.push_back(MakeInput({{6, 0.6}}));
  IncrementalMerge merge(std::move(inputs), &ctx);
  double prev = merge.UpperBound();
  ScoredRow row;
  while (merge.Next(&row)) {
    EXPECT_LE(row.score, prev + 1e-12);
    const double bound = merge.UpperBound();
    EXPECT_LE(bound, prev + 1e-12);
    prev = bound;
  }
}

TEST(IncrementalMergeTest, EquivalentToSortedUnionWithMaxDedup) {
  // Property: merge output == all rows, deduped by binding keeping max
  // score, sorted descending.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t num_inputs = 1 + rng.NextBounded(5);
    std::map<TermId, double> expected;  // binding -> max score
    std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
    for (size_t i = 0; i < num_inputs; ++i) {
      const size_t len = rng.NextBounded(12);
      std::vector<std::pair<TermId, double>> rows;
      double score = 1.0;
      for (size_t j = 0; j < len; ++j) {
        score *= rng.NextDouble(0.5, 1.0);
        const TermId value = static_cast<TermId>(rng.NextBounded(10));
        rows.emplace_back(value, score);
        auto it = expected.find(value);
        if (it == expected.end() || it->second < score) {
          expected[value] = score;
        }
      }
      inputs.push_back(MakeInput(rows));
    }
    ExecStats stats;
    ExecContext ctx(&stats);
    IncrementalMerge merge(std::move(inputs), &ctx);
    const auto rows = Drain(&merge);
    ASSERT_EQ(rows.size(), expected.size());
    double prev = 2.0;
    for (const ScoredRow& row : rows) {
      EXPECT_LE(row.score, prev + 1e-12);
      prev = row.score;
      auto it = expected.find(row.bindings[0]);
      ASSERT_NE(it, expected.end());
      EXPECT_DOUBLE_EQ(row.score, it->second);
    }
  }
}

TEST(IncrementalMergeTest, LazyInputsNotPulledUntilNeeded) {
  // A low-bound input should not be pulled while higher inputs dominate.
  // Track pulls through a counting wrapper.
  class CountingIterator : public ScoredRowIterator {
   public:
    CountingIterator(std::unique_ptr<ScoredRowIterator> inner, int* pulls)
        : inner_(std::move(inner)), pulls_(pulls) {}
    bool Next(ScoredRow* out) override {
      ++*pulls_;
      return inner_->Next(out);
    }
    double UpperBound() const override { return inner_->UpperBound(); }

   private:
    std::unique_ptr<ScoredRowIterator> inner_;
    int* pulls_;
  };

  int high_pulls = 0;
  int low_pulls = 0;
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  inputs.push_back(std::make_unique<CountingIterator>(
      MakeInput({{1, 0.9}, {2, 0.8}, {3, 0.7}}), &high_pulls));
  inputs.push_back(std::make_unique<CountingIterator>(
      MakeInput({{4, 0.1}, {5, 0.05}}), &low_pulls));
  ExecStats stats;
  ExecContext ctx(&stats);
  IncrementalMerge merge(std::move(inputs), &ctx);
  ScoredRow row;
  ASSERT_TRUE(merge.Next(&row));
  ASSERT_TRUE(merge.Next(&row));
  // Two emissions from the high stream; the low stream must not have been
  // pulled at all (its bound 0.1 never became the maximum).
  EXPECT_EQ(low_pulls, 0);
}

TEST(IncrementalMergeDeathTest, NoInputsAborts) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
  EXPECT_DEATH(IncrementalMerge(std::move(inputs), &ctx), "empty");
}

}  // namespace
}  // namespace specqp
