// End-to-end determinism of parallel execution: for every strategy and
// every thread count, Engine::Execute must return bit-identical rows
// (bindings AND scores) to the serial engine — the acceptance bar for the
// partitioned rank-join refactor.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MakeRandomRules;
using specqp::testing::MakeRandomStarQuery;
using specqp::testing::MakeRandomStore;
using specqp::testing::MusicFixture;

constexpr Strategy kStrategies[] = {Strategy::kSpecQp, Strategy::kTrinit,
                                    Strategy::kNoRelax};
constexpr int kThreadCounts[] = {1, 2, 8};

EngineOptions ParallelOptions(int threads) {
  EngineOptions options;
  options.num_threads = threads;
  options.parallel_min_rows = 0;  // force parallel trees even on tiny data
  return options;
}

void ExpectIdenticalRows(const Engine::QueryResult& expected,
                         const Engine::QueryResult& actual,
                         const std::string& label) {
  ASSERT_EQ(actual.rows.size(), expected.rows.size()) << label;
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_EQ(actual.rows[i].bindings, expected.rows[i].bindings)
        << label << " rank " << i;
    EXPECT_EQ(actual.rows[i].score, expected.rows[i].score)
        << label << " rank " << i;
  }
}

TEST(ParallelExecutionTest, MusicFixtureIdenticalAcrossThreadCounts) {
  MusicFixture fx = MakeMusicFixture();
  const std::vector<std::vector<std::string>> queries = {
      {"singer", "lyricist"},
      {"singer", "lyricist", "guitarist"},
      {"singer", "lyricist", "guitarist", "pianist"},
      {"jazz_singer"},
  };
  for (size_t k : {1u, 3u, 10u}) {
    for (const auto& names : queries) {
      const Query query = fx.TypeQuery(names);
      for (Strategy strategy : kStrategies) {
        Engine serial(&fx.store, &fx.rules, ParallelOptions(1));
        const auto expected = testing::Execute(serial, query, k, strategy);
        for (int threads : kThreadCounts) {
          Engine engine(&fx.store, &fx.rules, ParallelOptions(threads));
          EXPECT_EQ(engine.num_threads(), threads);
          const auto actual = testing::Execute(engine, query, k, strategy);
          ExpectIdenticalRows(
              expected, actual,
              std::string(StrategyName(strategy)) + "/threads=" +
                  std::to_string(threads) + "/k=" + std::to_string(k));
          if (threads > 1 && query.num_patterns() >= 2) {
            EXPECT_EQ(actual.stats.parallel_partitions,
                      static_cast<uint64_t>(threads))
                << "parallel tree should have been built";
          } else {
            EXPECT_EQ(actual.stats.parallel_partitions, 0u);
          }
        }
      }
    }
  }
}

TEST(ParallelExecutionTest, RandomStoresIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
    specqp::testing::RandomStoreConfig cfg;
    cfg.num_subjects = 30;
    cfg.num_predicates = 3;
    cfg.num_objects = 10;
    cfg.num_triples = 220;
    TripleStore store = MakeRandomStore(&rng, cfg);
    RelaxationIndex rules = MakeRandomRules(&rng, store, 4);

    for (int trial = 0; trial < 4; ++trial) {
      const size_t num_patterns = 2 + rng.NextBounded(3);
      const Query query = MakeRandomStarQuery(&rng, store, num_patterns);
      for (Strategy strategy : kStrategies) {
        Engine serial(&store, &rules, ParallelOptions(1));
        const auto expected = testing::Execute(serial, query, 10, strategy);
        for (int threads : {2, 8}) {
          Engine engine(&store, &rules, ParallelOptions(threads));
          const auto actual = testing::Execute(engine, query, 10, strategy);
          ExpectIdenticalRows(
              expected, actual,
              std::string(StrategyName(strategy)) + "/seed=" +
                  std::to_string(seed) + "/threads=" +
                  std::to_string(threads));
        }
      }
    }
  }
}

TEST(ParallelExecutionTest, ChainRelaxationsIdenticalUnderPartitioning) {
  // A chain relaxation's second hop does not bind the partition variable,
  // so its posting list is replicated (unpartitioned) across partition
  // trees — results must still be bit-identical to serial.
  TripleStore store;
  store.Add("ana", "plays", "guitar", 100.0);
  store.Add("ben", "plays", "bass", 90.0);
  store.Add("cem", "plays", "ukulele", 80.0);
  store.Add("dia", "plays", "piano", 70.0);
  store.Add("eli", "plays", "bass", 60.0);
  store.Add("bass", "relatedTo", "guitar", 1.0);
  store.Add("ukulele", "relatedTo", "guitar", 1.0);
  for (const char* person : {"ana", "ben", "cem", "dia", "eli"}) {
    store.Add(person, "type", "person", 50.0);
  }
  store.Finalize();

  RelaxationIndex rules;
  ChainRelaxationRule rule;
  rule.from = PatternKey{kInvalidTermId, store.MustId("plays"),
                         store.MustId("guitar")};
  rule.hop1_predicate = store.MustId("plays");
  rule.hop2_predicate = store.MustId("relatedTo");
  rule.hop2_object = store.MustId("guitar");
  rule.weight = 0.8;
  ASSERT_TRUE(rules.AddChainRule(rule).ok());

  Query query;
  const VarId s = query.GetOrAddVariable("s");
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(store.MustId("plays")),
                                 PatternTerm::Const(store.MustId("guitar"))));
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(store.MustId("type")),
                                 PatternTerm::Const(store.MustId("person"))));
  query.AddProjection(s);

  for (Strategy strategy : kStrategies) {
    Engine serial(&store, &rules, ParallelOptions(1));
    const auto expected = testing::Execute(serial, query, 10, strategy);
    for (int threads : {2, 8}) {
      Engine engine(&store, &rules, ParallelOptions(threads));
      const auto actual = testing::Execute(engine, query, 10, strategy);
      ExpectIdenticalRows(expected, actual,
                          std::string(StrategyName(strategy)) +
                              "/chain/threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelExecutionTest, NoCommonVariableFallsBackToSerial) {
  // Two patterns with no shared variable: no partition variable exists, so
  // the executor must build a serial tree — and still answer correctly.
  MusicFixture fx = MakeMusicFixture();
  Query query;
  const VarId s = query.GetOrAddVariable("s");
  const VarId t = query.GetOrAddVariable("t");
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(fx.type),
                                 PatternTerm::Const(fx.Id("singer"))));
  query.AddPattern(TriplePattern(PatternTerm::Var(t),
                                 PatternTerm::Const(fx.type),
                                 PatternTerm::Const(fx.Id("pianist"))));
  query.AddProjection(s);
  query.AddProjection(t);

  Engine serial(&fx.store, &fx.rules, ParallelOptions(1));
  const auto expected = testing::Execute(serial, query, 5, Strategy::kNoRelax);
  Engine parallel(&fx.store, &fx.rules, ParallelOptions(8));
  const auto actual = testing::Execute(parallel, query, 5, Strategy::kNoRelax);
  EXPECT_EQ(actual.stats.parallel_partitions, 0u);
  ExpectIdenticalRows(expected, actual, "cross-product query");
}

TEST(ParallelExecutionTest, SizeThresholdKeepsSmallQueriesSerial) {
  MusicFixture fx = MakeMusicFixture();
  EngineOptions options;
  options.num_threads = 4;
  options.parallel_min_rows = 1u << 20;  // far above the fixture's lists
  Engine engine(&fx.store, &fx.rules, options);
  const auto result = testing::Execute(engine, fx.TypeQuery({"singer", "lyricist"}), 5,
                                     Strategy::kTrinit);
  EXPECT_EQ(result.stats.parallel_partitions, 0u);
  EXPECT_FALSE(result.rows.empty());
}

TEST(ResolveNumThreadsTest, ExplicitRequestWinsAndIsClamped) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(8), 8);
  EXPECT_EQ(ResolveNumThreads(100000), 256);
}

TEST(ResolveNumThreadsTest, EnvResolvedOncePerProcess) {
  // The environment fallback is read exactly once per process and
  // memoised: mid-run setenv cannot skew later engines, and concurrent
  // Submit paths never race a getenv. (The resolved value reflects
  // $SPECQP_THREADS at first resolution — e.g. 4 under the tsan test
  // preset, 1 when unset.)
  const int resolved = ResolveNumThreads(0);
  EXPECT_GE(resolved, 1);
  EXPECT_EQ(ResolveNumThreads(-1), resolved);

  ::setenv("SPECQP_THREADS", "200", /*overwrite=*/1);
  EXPECT_EQ(ResolveNumThreads(0), resolved)
      << "mid-run env mutation must not change the resolved fallback";
  ::setenv("SPECQP_THREADS", "garbage", 1);
  EXPECT_EQ(ResolveNumThreads(0), resolved);
  ::unsetenv("SPECQP_THREADS");
  EXPECT_EQ(ResolveNumThreads(-1), resolved);

  // Explicit requests still win over the memoised fallback.
  EXPECT_EQ(ResolveNumThreads(3), 3);
}

}  // namespace
}  // namespace specqp
