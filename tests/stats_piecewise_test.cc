#include "stats/grid_pdf.h"
#include "stats/piecewise.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/two_bucket_histogram.h"

namespace specqp {
namespace {

// Triangle density on [0, 2] peaking at 1 (the convolution of two
// uniform[0,1] densities — a handy analytically-known case).
PiecewiseLinearPdf Triangle() {
  return PiecewiseLinearPdf({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
}

TEST(PiecewiseLinearPdfTest, NormalisesMass) {
  // Un-normalised heights get rescaled to total mass 1.
  PiecewiseLinearPdf pdf({{0.0, 0.0}, {1.0, 5.0}, {2.0, 0.0}});
  EXPECT_NEAR(pdf.Cdf(2.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf.Pdf(1.0), 1.0, 1e-12);
}

TEST(PiecewiseLinearPdfTest, PdfInterpolatesLinearly) {
  PiecewiseLinearPdf pdf = Triangle();
  EXPECT_NEAR(pdf.Pdf(0.5), 0.5, 1e-12);
  EXPECT_NEAR(pdf.Pdf(1.5), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(pdf.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Pdf(2.1), 0.0);
}

TEST(PiecewiseLinearPdfTest, CdfOfTriangle) {
  PiecewiseLinearPdf pdf = Triangle();
  EXPECT_DOUBLE_EQ(pdf.Cdf(0.0), 0.0);
  EXPECT_NEAR(pdf.Cdf(1.0), 0.5, 1e-12);
  EXPECT_NEAR(pdf.Cdf(0.5), 0.125, 1e-12);  // x^2/2 at 0.5
  EXPECT_NEAR(pdf.Cdf(1.5), 0.875, 1e-12);
  EXPECT_DOUBLE_EQ(pdf.Cdf(2.0), 1.0);
}

TEST(PiecewiseLinearPdfTest, CdfMonotone) {
  PiecewiseLinearPdf pdf({{0.0, 0.3}, {0.5, 1.4}, {0.8, 0.1}, {2.0, 0.9}});
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double c = pdf.Cdf(i / 100.0);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST(PiecewiseLinearPdfTest, InverseCdfInvertsCdf) {
  PiecewiseLinearPdf pdf({{0.0, 0.3}, {0.5, 1.4}, {0.8, 0.1}, {2.0, 0.9}});
  for (int i = 0; i <= 40; ++i) {
    const double p = i / 40.0;
    const double x = pdf.InverseCdf(p);
    EXPECT_NEAR(pdf.Cdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(PiecewiseLinearPdfTest, MeanOfTriangle) {
  EXPECT_NEAR(Triangle().Mean(), 1.0, 1e-12);
}

TEST(PiecewiseLinearPdfTest, MeanOfAsymmetricShape) {
  // Uniform on [0, 1]: mean 0.5.
  PiecewiseLinearPdf uniform({{0.0, 1.0}, {1.0, 1.0}});
  EXPECT_NEAR(uniform.Mean(), 0.5, 1e-12);
}

TEST(PiecewiseLinearPdfTest, PartialExpectationAboveMatchesNumeric) {
  PiecewiseLinearPdf pdf({{0.0, 0.3}, {0.5, 1.4}, {0.8, 0.1}, {2.0, 0.9}});
  for (double t : {0.0, 0.3, 0.5, 0.65, 1.2, 2.0}) {
    double numeric = 0.0;
    const int steps = 40000;
    for (int i = 0; i < steps; ++i) {
      const double x = 2.0 * (i + 0.5) / steps;
      if (x >= t) numeric += x * pdf.Pdf(x) * 2.0 / steps;
    }
    EXPECT_NEAR(pdf.PartialExpectationAbove(t), numeric, 2e-3) << "t=" << t;
  }
  EXPECT_NEAR(pdf.PartialExpectationAbove(0.0), pdf.Mean(), 1e-12);
}

TEST(PiecewiseLinearPdfTest, MassAbove) {
  PiecewiseLinearPdf pdf = Triangle();
  EXPECT_NEAR(pdf.MassAbove(1.0), 0.5, 1e-12);
  EXPECT_NEAR(pdf.MassAbove(0.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf.MassAbove(2.0), 0.0, 1e-12);
}

TEST(PiecewiseLinearPdfDeathTest, RejectsBadKnots) {
  EXPECT_DEATH(PiecewiseLinearPdf({{0.0, 1.0}}), "two knots");
  EXPECT_DEATH(PiecewiseLinearPdf({{0.0, 1.0}, {0.0, 1.0}}),
               "strictly increasing");
  EXPECT_DEATH(PiecewiseLinearPdf({{0.0, 1.0}, {1.0, -2.0}}), "negative");
}

// --- GridPdf ------------------------------------------------------------------

TEST(GridPdfTest, FromDistributionPreservesShape) {
  TwoBucketHistogram h(0.5, 0.8);
  GridPdf grid = GridPdf::FromDistribution(h, 1.0 / 1024.0);
  EXPECT_NEAR(grid.Cdf(0.5), h.Cdf(0.5), 1e-3);
  EXPECT_NEAR(grid.Mean(), h.Mean(), 1e-3);
  EXPECT_NEAR(grid.InverseCdf(0.9), h.InverseCdf(0.9), 2e-3);
}

TEST(GridPdfTest, CdfMonotoneAndNormalised) {
  TwoBucketHistogram h(0.3, 0.7);
  GridPdf grid = GridPdf::FromDistribution(h, 1.0 / 256.0);
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double c = grid.Cdf(i / 100.0);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(grid.Cdf(grid.upper()), 1.0);
}

TEST(GridPdfTest, ConvolveMatchesTriangle) {
  // uniform[0,1] * uniform[0,1] = triangle on [0,2].
  PiecewiseLinearPdf uniform({{0.0, 1.0}, {1.0, 1.0}});
  const double delta = 1.0 / 512.0;
  GridPdf a = GridPdf::FromDistribution(uniform, delta);
  GridPdf sum = GridPdf::Convolve(a, a);
  PiecewiseLinearPdf triangle = Triangle();
  EXPECT_NEAR(sum.Mean(), 1.0, 1e-3);
  for (double x : {0.25, 0.75, 1.0, 1.5, 1.9}) {
    EXPECT_NEAR(sum.Cdf(x), triangle.Cdf(x), 5e-3) << "x=" << x;
  }
}

TEST(GridPdfTest, ConvolveMeansAdd) {
  TwoBucketHistogram h1(0.4, 0.8);
  TwoBucketHistogram h2(0.6, 0.7);
  const double delta = 1.0 / 512.0;
  GridPdf a = GridPdf::FromDistribution(h1, delta);
  GridPdf b = GridPdf::FromDistribution(h2, delta);
  GridPdf sum = GridPdf::Convolve(a, b);
  EXPECT_NEAR(sum.Mean(), h1.Mean() + h2.Mean(), 3e-3);
  EXPECT_NEAR(sum.upper(), 2.0, delta * 2);
}

TEST(GridPdfTest, PartialExpectationAboveConsistent) {
  TwoBucketHistogram h(0.5, 0.8);
  GridPdf grid = GridPdf::FromDistribution(h, 1.0 / 1024.0);
  for (double t : {0.0, 0.25, 0.5, 0.75}) {
    EXPECT_NEAR(grid.PartialExpectationAbove(t),
                h.PartialExpectationAbove(t), 2e-3);
  }
}

}  // namespace
}  // namespace specqp
