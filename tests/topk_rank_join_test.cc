#include "topk/rank_join.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "topk/top_k.h"

namespace specqp {
namespace {

using specqp::testing::Drain;
using specqp::testing::VectorIterator;

// Rows over a 2-variable schema: var 0 is the join key, var 1 carries a
// side-specific payload so merged rows are distinguishable.
std::unique_ptr<VectorIterator> LeftInput(
    const std::vector<std::pair<TermId, double>>& rows) {
  std::vector<ScoredRow> v;
  for (const auto& [key, score] : rows) {
    ScoredRow row(2, score);
    row.bindings[0] = key;
    v.push_back(std::move(row));
  }
  return std::make_unique<VectorIterator>(std::move(v));
}

std::unique_ptr<VectorIterator> RightInput(
    const std::vector<std::tuple<TermId, TermId, double>>& rows) {
  std::vector<ScoredRow> v;
  for (const auto& [key, payload, score] : rows) {
    ScoredRow row(2, score);
    row.bindings[0] = key;
    row.bindings[1] = payload;
    v.push_back(std::move(row));
  }
  return std::make_unique<VectorIterator>(std::move(v));
}

TEST(RankJoinTest, JoinsOnSharedVariable) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}, {2, 0.5}}),
                RightInput({{1, 10, 0.8}, {3, 30, 0.7}, {2, 20, 0.6}}),
                {0}, &ctx);
  const auto rows = Drain(&join);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].score, 0.9 + 0.8);
  EXPECT_EQ(rows[0].bindings[0], 1u);
  EXPECT_EQ(rows[0].bindings[1], 10u);
  EXPECT_DOUBLE_EQ(rows[1].score, 0.5 + 0.6);
  EXPECT_EQ(rows[1].bindings[1], 20u);
}

TEST(RankJoinTest, EmitsInDescendingScoreOrder) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(
      LeftInput({{1, 0.9}, {2, 0.85}, {3, 0.2}}),
      RightInput({{3, 33, 1.0}, {2, 22, 0.4}, {1, 11, 0.05}}), {0}, &ctx);
  const auto rows = Drain(&join);
  ASSERT_EQ(rows.size(), 3u);
  // Scores: 1+0.05=0.95? no: (1:0.9+0.05=0.95), (2:0.85+0.4=1.25),
  // (3:0.2+1.0=1.2) -> order 1.25, 1.2, 0.95.
  EXPECT_DOUBLE_EQ(rows[0].score, 1.25);
  EXPECT_DOUBLE_EQ(rows[1].score, 1.2);
  EXPECT_DOUBLE_EQ(rows[2].score, 0.95);
}

TEST(RankJoinTest, EmptyInputs) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({}), RightInput({{1, 10, 0.8}}), {0}, &ctx);
  ScoredRow row;
  EXPECT_FALSE(join.Next(&row));
  EXPECT_FALSE(join.Next(&row));
}

TEST(RankJoinTest, NoMatchingKeys) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}}), RightInput({{2, 20, 0.8}}), {0},
                &ctx);
  ScoredRow row;
  EXPECT_FALSE(join.Next(&row));
  EXPECT_EQ(stats.join_results, 0u);
}

TEST(RankJoinTest, OneToManyJoin) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}}),
                RightInput({{1, 10, 0.8}, {1, 11, 0.5}, {1, 12, 0.1}}), {0},
                &ctx);
  const auto rows = Drain(&join);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].score, 1.7);
  EXPECT_DOUBLE_EQ(rows[2].score, 1.0);
  EXPECT_EQ(stats.join_results, 3u);
}

TEST(RankJoinTest, CrossProductWhenNoJoinVars) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}, {2, 0.5}}),
                RightInput({{0, 10, 0.8}, {0, 11, 0.3}}), {}, &ctx);
  const auto rows = Drain(&join);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows[0].score, 1.7);
  double prev = 2.0;
  for (const ScoredRow& row : rows) {
    EXPECT_LE(row.score, prev + 1e-12);
    prev = row.score;
  }
}

TEST(RankJoinTest, BothInputsEmpty) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({}), RightInput({}), {0}, &ctx);
  ScoredRow row;
  EXPECT_FALSE(join.Next(&row));
  EXPECT_FALSE(join.Next(&row));
  EXPECT_EQ(stats.join_results, 0u);

  ExecStats cross_stats;
  ExecContext cross_ctx(&cross_stats);
  RankJoin cross(LeftInput({}), RightInput({}), {}, &cross_ctx);
  EXPECT_FALSE(cross.Next(&row));
  EXPECT_EQ(cross_stats.join_results, 0u);
}

TEST(RankJoinTest, NextAfterExhaustionKeepsReturningFalse) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}}), RightInput({{1, 10, 0.8}}), {0},
                &ctx);
  ScoredRow row;
  ASSERT_TRUE(join.Next(&row));
  EXPECT_DOUBLE_EQ(row.score, 1.7);
  for (int i = 0; i < 5; ++i) {
    row.score = -1.0;
    EXPECT_FALSE(join.Next(&row));
  }
  EXPECT_EQ(stats.join_results, 1u);
}

// --- MergeBindingsInto contract (left wins on non-join conflicts) ------------

TEST(MergeBindingsTest, FillsUnboundSlotsFromRight) {
  ScoredRow left(3, 0.5);
  left.bindings[0] = 7;
  ScoredRow right(3, 0.2);
  right.bindings[1] = 8;
  MergeBindingsInto(right, &left);
  EXPECT_EQ(left.bindings[0], 7u);
  EXPECT_EQ(left.bindings[1], 8u);
  EXPECT_EQ(left.bindings[2], kInvalidTermId);
}

TEST(MergeBindingsTest, LeftWinsOnConflictingSlots) {
  ScoredRow left(2, 0.9);
  left.bindings[0] = 1;
  ScoredRow right(2, 0.8);
  right.bindings[0] = 2;
  right.bindings[1] = 20;
  MergeBindingsInto(right, &left);
  EXPECT_EQ(left.bindings[0], 1u) << "probe (left) row's binding must win";
  EXPECT_EQ(left.bindings[1], 20u);
}

TEST(RankJoinTest, CrossProductLeftInputBindingsWin) {
  // In a cross product the two sides bind the same slots to different
  // terms; the LEFT input's binding must win deterministically — never
  // depending on internal pull order — while slots bound only on the
  // right are still filled from the right.
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}}), RightInput({{2, 20, 0.8}}), {},
                &ctx);
  const auto rows = Drain(&join);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].score, 1.7);
  EXPECT_EQ(rows[0].bindings[0], 1u) << "left input's binding must win";
  EXPECT_EQ(rows[0].bindings[1], 20u);

  // Same inputs with the right side scoring higher (so the right side is
  // pulled and probed first): the left input's binding still wins.
  ExecStats stats2;
  ExecContext ctx2(&stats2);
  RankJoin join2(LeftInput({{1, 0.3}}), RightInput({{2, 20, 0.8}}), {},
                 &ctx2);
  const auto rows2 = Drain(&join2);
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_EQ(rows2[0].bindings[0], 1u) << "must not depend on probe order";
  EXPECT_EQ(rows2[0].bindings[1], 20u);
}

TEST(RankJoinTest, UpperBoundNeverIncreasesAndBoundsEmissions) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(
      LeftInput({{1, 0.9}, {2, 0.8}, {3, 0.7}, {4, 0.1}}),
      RightInput(
          {{4, 44, 0.95}, {2, 22, 0.6}, {1, 11, 0.5}, {3, 33, 0.2}}),
      {0}, &ctx);
  double prev = join.UpperBound();
  ScoredRow row;
  while (join.Next(&row)) {
    EXPECT_LE(row.score, prev + 1e-9);
    const double bound = join.UpperBound();
    EXPECT_LE(bound, prev + 1e-9);
    prev = bound;
  }
}

TEST(RankJoinTest, EarlyTerminationReadsOnlyWhatIsNeeded) {
  // Long tails that can never contribute to the top answer must not be
  // read once the threshold proves it.
  std::vector<std::pair<TermId, double>> left_rows = {{1, 1.0}};
  std::vector<std::tuple<TermId, TermId, double>> right_rows = {{1, 11, 1.0}};
  for (TermId i = 2; i < 1000; ++i) {
    left_rows.emplace_back(i, 0.001);
    right_rows.emplace_back(i, i * 10, 0.001);
  }
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput(left_rows), RightInput(right_rows), {0}, &ctx);
  ScoredRow row;
  ASSERT_TRUE(join.Next(&row));
  EXPECT_DOUBLE_EQ(row.score, 2.0);
  // Producing the top-1 result must not have materialised the ~1000
  // tail join results.
  EXPECT_LT(stats.join_results, 10u);
}

// --- property: rank join == naive join, top-k prefix -------------------------

struct NaiveResult {
  TermId key;
  TermId payload;
  double score;
};

class RankJoinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RankJoinPropertyTest, MatchesNaiveJoin) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1231 + 17);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t nl = 1 + rng.NextBounded(30);
    const size_t nr = 1 + rng.NextBounded(30);
    std::vector<std::pair<TermId, double>> left;
    std::vector<std::tuple<TermId, TermId, double>> right;
    double score = 1.0;
    std::unordered_set<TermId> used_left;
    for (size_t i = 0; i < nl; ++i) {
      score *= rng.NextDouble(0.7, 1.0);
      const TermId key = static_cast<TermId>(rng.NextBounded(12));
      if (!used_left.insert(key).second) continue;  // distinct bindings
      left.emplace_back(key, score);
    }
    score = 1.0;
    std::unordered_set<uint64_t> used_right;
    for (size_t i = 0; i < nr; ++i) {
      score *= rng.NextDouble(0.7, 1.0);
      const TermId key = static_cast<TermId>(rng.NextBounded(12));
      const TermId payload = static_cast<TermId>(100 + rng.NextBounded(5));
      if (!used_right.insert((static_cast<uint64_t>(key) << 32) | payload)
               .second) {
        continue;
      }
      right.emplace_back(key, payload, score);
    }

    // Naive join: all pairs, sorted by (score desc, bindings asc).
    std::vector<ScoredRow> expected;
    for (const auto& [lk, ls] : left) {
      for (const auto& [rk, payload, rs] : right) {
        if (lk != rk) continue;
        ScoredRow row(2, ls + rs);
        row.bindings[0] = lk;
        row.bindings[1] = payload;
        expected.push_back(std::move(row));
      }
    }
    std::sort(expected.begin(), expected.end(), RowBefore);

    ExecStats stats;

    ExecContext ctx(&stats);
    RankJoin join(LeftInput(left), RightInput(right), {0}, &ctx);
    const auto actual = Drain(&join);

    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(actual[i].score, expected[i].score, 1e-9) << "rank " << i;
    }
    // As multisets of bindings the outputs agree exactly.
    auto key_of = [](const ScoredRow& r) {
      return std::make_tuple(r.bindings[0], r.bindings[1]);
    };
    std::multiset<std::tuple<TermId, TermId>> expected_keys;
    std::multiset<std::tuple<TermId, TermId>> actual_keys;
    for (const auto& r : expected) expected_keys.insert(key_of(r));
    for (const auto& r : actual) actual_keys.insert(key_of(r));
    EXPECT_EQ(actual_keys, expected_keys);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankJoinPropertyTest, ::testing::Range(0, 10));

TEST(PullTopKTest, TakesKInOrder) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(
      LeftInput({{1, 0.9}, {2, 0.8}, {3, 0.7}}),
      RightInput({{1, 11, 0.9}, {2, 22, 0.8}, {3, 33, 0.7}}), {0}, &ctx);
  const auto rows = PullTopK(&join, 2, &stats);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].score, 1.8);
  EXPECT_DOUBLE_EQ(rows[1].score, 1.6);
}

TEST(PullTopKTest, FewerThanKResults) {
  ExecStats stats;
  ExecContext ctx(&stats);
  RankJoin join(LeftInput({{1, 0.9}}), RightInput({{1, 11, 0.9}}), {0},
                &ctx);
  const auto rows = PullTopK(&join, 10, &stats);
  EXPECT_EQ(rows.size(), 1u);
}

}  // namespace
}  // namespace specqp
