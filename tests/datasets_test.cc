#include "datasets/evaluation.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "stats/selectivity.h"
#include "test_util.h"

namespace specqp {
namespace {

XkgConfig SmallXkgConfig() {
  XkgConfig config;
  config.seed = 7;
  config.num_entities = 2500;
  config.num_domains = 6;
  config.types_per_domain = 10;
  config.num_attributes = 2;
  config.values_per_attribute = 8;
  return config;
}

TwitterConfig SmallTwitterConfig() {
  TwitterConfig config;
  config.seed = 13;
  config.num_tweets = 6000;
  config.num_topics = 8;
  config.tags_per_topic = 15;
  return config;
}

TEST(XkgGeneratorTest, BasicInvariants) {
  const XkgDataset data = GenerateXkg(SmallXkgConfig());
  EXPECT_TRUE(data.store.finalized());
  EXPECT_GT(data.store.size(), 5000u);
  EXPECT_NE(data.type_predicate, kInvalidTermId);
  EXPECT_EQ(data.attribute_predicates.size(), 2u);
  EXPECT_EQ(data.domain_types.size(), 6u);
  EXPECT_GT(data.rules.total_rules(), 0u);
}

TEST(XkgGeneratorTest, DeterministicForSeed) {
  const XkgDataset a = GenerateXkg(SmallXkgConfig());
  const XkgDataset b = GenerateXkg(SmallXkgConfig());
  ASSERT_EQ(a.store.size(), b.store.size());
  for (size_t i = 0; i < std::min<size_t>(a.store.size(), 500); ++i) {
    EXPECT_EQ(a.store.triple(static_cast<uint32_t>(i)),
              b.store.triple(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(a.rules.total_rules(), b.rules.total_rules());
}

TEST(XkgGeneratorTest, ScoresArePowerLaw) {
  const XkgDataset data = GenerateXkg(SmallXkgConfig());
  // Type posting lists should be head-heavy: the top 20% of matches carry
  // well over half the mass for popular types.
  PatternKey key{kInvalidTermId, data.type_predicate,
                 data.domain_types[0][0]};
  const PostingList list = BuildPostingList(data.store, key);
  ASSERT_GT(list.size(), 20u);
  double total = 0.0;
  for (const PostingEntry& e : list.entries) total += e.score;
  double head = 0.0;
  const size_t head_n = list.size() / 5;
  for (size_t i = 0; i < head_n; ++i) head += list.entries[i].score;
  EXPECT_GT(head / total, 0.5);
}

TEST(XkgGeneratorTest, TypePatternsHaveRelaxations) {
  const XkgDataset data = GenerateXkg(SmallXkgConfig());
  size_t with_rules = 0;
  size_t total = 0;
  for (const auto& domain : data.domain_types) {
    for (TermId type : domain) {
      PatternKey key{kInvalidTermId, data.type_predicate, type};
      // Long-tail types (popularity-correlated fact density leaves them
      // with few instances) legitimately mine few rules; the workload only
      // draws from reasonably-populated patterns, so that is what we
      // check.
      if (data.store.CountMatches(key) < 30) continue;
      ++total;
      if (data.rules.NumRulesFor(key) >= 5) ++with_rules;
    }
  }
  ASSERT_GT(total, 0u);
  // The same-domain overlap must give most populated types a healthy rule
  // set.
  EXPECT_GT(static_cast<double>(with_rules) / static_cast<double>(total),
            0.7);
}

TEST(XkgGeneratorTest, MinedWeightsAreValid) {
  const XkgDataset data = GenerateXkg(SmallXkgConfig());
  size_t checked = 0;
  for (const auto& domain : data.domain_types) {
    for (TermId type : domain) {
      PatternKey key{kInvalidTermId, data.type_predicate, type};
      for (const RelaxationRule& rule : data.rules.RulesFor(key)) {
        EXPECT_TRUE(ValidateRule(rule).ok());
        EXPECT_LE(rule.weight, SmallXkgConfig().miner_weight_cap + 1e-12);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(XkgWorkloadTest, MeetsStructuralConstraints) {
  const XkgDataset data = GenerateXkg(SmallXkgConfig());
  XkgWorkloadConfig wl;
  wl.seed = 3;
  wl.queries_per_size = 4;
  wl.min_relaxations = 4;
  const std::vector<Query> queries = MakeXkgWorkload(data, wl);
  ASSERT_EQ(queries.size(), 12u);  // 4 each of 2, 3, 4 patterns

  SelectivityEstimator exact(&data.store);
  size_t index = 0;
  for (size_t num_patterns = 2; num_patterns <= 4; ++num_patterns) {
    for (size_t i = 0; i < 4; ++i, ++index) {
      const Query& q = queries[index];
      EXPECT_EQ(q.num_patterns(), num_patterns);
      EXPECT_TRUE(q.IsConnected());
      EXPECT_GE(exact.ExactQueryCardinality(q), 1u);
      for (const TriplePattern& p : q.patterns()) {
        EXPECT_GE(data.rules.NumRulesFor(p.Key()), wl.min_relaxations);
      }
    }
  }
}

TEST(TwitterGeneratorTest, BasicInvariants) {
  const TwitterDataset data = GenerateTwitter(SmallTwitterConfig());
  EXPECT_TRUE(data.store.finalized());
  EXPECT_GT(data.store.size(), 10000u);
  EXPECT_NE(data.has_tag, kInvalidTermId);
  EXPECT_EQ(data.topic_tags.size(), 8u);
  EXPECT_GT(data.rules.total_rules(), 0u);
  // Every triple uses the hasTag predicate.
  for (size_t i = 0; i < std::min<size_t>(data.store.size(), 1000); ++i) {
    EXPECT_EQ(data.store.triple(static_cast<uint32_t>(i)).p, data.has_tag);
  }
}

TEST(TwitterGeneratorTest, DeterministicForSeed) {
  const TwitterDataset a = GenerateTwitter(SmallTwitterConfig());
  const TwitterDataset b = GenerateTwitter(SmallTwitterConfig());
  EXPECT_EQ(a.store.size(), b.store.size());
  EXPECT_EQ(a.rules.total_rules(), b.rules.total_rules());
}

TEST(TwitterGeneratorTest, CooccurrenceWeightsMatchFormula) {
  TwitterConfig config = SmallTwitterConfig();
  config.miner_max_rules = 50;
  // Disable sampling so weights are exact.
  const TwitterDataset data = GenerateTwitter(config);

  // Recompute w = #tweets(T1 ∧ T2) / #tweets(T1) for a handful of rules.
  size_t checked = 0;
  for (const auto& topic : data.topic_tags) {
    for (TermId tag : topic) {
      PatternKey key{kInvalidTermId, data.has_tag, tag};
      const auto rules = data.rules.RulesFor(key);
      if (rules.empty()) continue;
      // Subjects of T1.
      std::unordered_set<TermId> t1_subjects;
      for (uint32_t idx : data.store.MatchIndices(key)) {
        t1_subjects.insert(data.store.triple(idx).s);
      }
      const RelaxationRule& rule = rules.front();
      size_t both = 0;
      for (uint32_t idx : data.store.MatchIndices(rule.to)) {
        if (t1_subjects.count(data.store.triple(idx).s) > 0) ++both;
      }
      const double expected =
          std::min(static_cast<double>(both) /
                       static_cast<double>(t1_subjects.size()),
                   config.miner_weight_cap);
      // Sampling may kick in for very popular tags; allow slack there.
      if (t1_subjects.size() <= 4096) {
        EXPECT_NEAR(rule.weight, expected, 1e-9);
        ++checked;
      }
      if (checked >= 10) return;
    }
  }
  EXPECT_GE(checked, 3u);
}

TEST(TwitterWorkloadTest, MeetsStructuralConstraints) {
  const TwitterDataset data = GenerateTwitter(SmallTwitterConfig());
  TwitterWorkloadConfig wl;
  wl.seed = 5;
  wl.queries_per_size = 4;
  wl.min_relaxations = 3;
  wl.min_relaxed_answers = 10;
  const std::vector<Query> queries = MakeTwitterWorkload(data, wl);
  ASSERT_EQ(queries.size(), 8u);  // 4 each of 2, 3 patterns

  ExhaustiveEvaluator oracle(&data.store, &data.rules);
  size_t index = 0;
  for (size_t num_patterns = 2; num_patterns <= 3; ++num_patterns) {
    for (size_t i = 0; i < 4; ++i, ++index) {
      const Query& q = queries[index];
      EXPECT_EQ(q.num_patterns(), num_patterns);
      EXPECT_TRUE(q.IsConnected());
      EXPECT_GE(oracle.Evaluate(q).answers.size(), wl.min_relaxed_answers);
      for (const TriplePattern& p : q.patterns()) {
        EXPECT_GE(data.rules.NumRulesFor(p.Key()), wl.min_relaxations);
      }
    }
  }
}

// --- evaluation harness -------------------------------------------------------

TEST(EvaluationTest, QualityMetricsOnMusicFixture) {
  specqp::testing::MusicFixture fx = specqp::testing::MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  const QualityMetrics m = EvaluateQuality(engine, oracle, query, 5);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.score_error_mean, 0.0);
  EXPECT_GT(m.true_answer_count, 0u);
}

TEST(EvaluationTest, PerfectPredictionYieldsPrecisionOne) {
  // A query whose plan matches ground truth must reproduce the exact top-k.
  specqp::testing::MusicFixture fx = specqp::testing::MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "vocalist"});
  const QualityMetrics m = EvaluateQuality(engine, oracle, query, 3);
  if (m.prediction_exact) {
    EXPECT_DOUBLE_EQ(m.precision, 1.0);
    EXPECT_NEAR(m.score_error_mean, 0.0, 1e-9);
  }
}

TEST(EvaluationTest, EfficiencyMetricsSane) {
  specqp::testing::MusicFixture fx = specqp::testing::MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist", "guitarist"});
  const EfficiencyMetrics m = MeasureEfficiency(engine, query, 5, 3, 2);
  EXPECT_GT(m.trinit_ms, 0.0);
  EXPECT_GT(m.spec_ms, 0.0);
  EXPECT_GT(m.trinit_objects, 0u);
  EXPECT_GT(m.spec_objects, 0u);
  EXPECT_LE(m.spec_objects, m.trinit_objects);
  EXPECT_LE(m.patterns_relaxed, 3u);
}

}  // namespace
}  // namespace specqp
