#include "stats/selectivity.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MakeRandomStarQuery;
using specqp::testing::MakeRandomStore;
using specqp::testing::MusicFixture;

TEST(SelectivityTest, ExactPairCountStarJoin) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist"});
  SelectivityEstimator est(&fx.store);
  // singer ∩ vocalist = {shakira, beyonce, adele}.
  EXPECT_DOUBLE_EQ(est.JoinCardinality(q.pattern(0), q.pattern(1)), 3.0);
}

TEST(SelectivityTest, ExactPairCountEmptyIntersection) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"jazz_singer", "guitarist"});
  SelectivityEstimator est(&fx.store);
  EXPECT_DOUBLE_EQ(est.JoinCardinality(q.pattern(0), q.pattern(1)), 0.0);
}

TEST(SelectivityTest, SelectivityIsCountOverProduct) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist"});
  SelectivityEstimator est(&fx.store);
  // |singer|=5, |vocalist|=6, join=3 -> phi = 3/30.
  EXPECT_NEAR(est.Selectivity(q.pattern(0), q.pattern(1)), 0.1, 1e-12);
}

TEST(SelectivityTest, CrossProductWhenNoSharedVars) {
  MusicFixture fx = MakeMusicFixture();
  Query q;
  const VarId a = q.GetOrAddVariable("a");
  const VarId b = q.GetOrAddVariable("b");
  q.AddPattern(TriplePattern(PatternTerm::Var(a), PatternTerm::Const(fx.type),
                             PatternTerm::Const(fx.Id("singer"))));
  q.AddPattern(TriplePattern(PatternTerm::Var(b), PatternTerm::Const(fx.type),
                             PatternTerm::Const(fx.Id("pianist"))));
  SelectivityEstimator est(&fx.store);
  EXPECT_DOUBLE_EQ(est.JoinCardinality(q.pattern(0), q.pattern(1)),
                   5.0 * 4.0);
}

TEST(SelectivityTest, QueryCardinalityTwoPatterns) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist"});
  SelectivityEstimator est(&fx.store);
  EXPECT_NEAR(est.QueryCardinality(q), 3.0, 1e-9);
  SelectivityEstimator chained(&fx.store,
                               SelectivityEstimator::Mode::kPairwiseExact);
  EXPECT_NEAR(chained.QueryCardinality(q), 3.0, 1e-9);
}

TEST(SelectivityTest, ExactQueryCardinalityIsMemoised) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist", "writer"});
  SelectivityEstimator est(&fx.store);
  const uint64_t first = est.ExactQueryCardinality(q);
  const size_t memo_after_first = est.memo_size();
  EXPECT_EQ(est.ExactQueryCardinality(q), first);
  EXPECT_EQ(est.memo_size(), memo_after_first);
}

TEST(SelectivityTest, ChainedOverestimatesOnCorrelatedPatterns) {
  // The conditional-independence chain can only be validated as an
  // *estimate*: on a 3-pattern query it should be positive whenever the
  // exact count is.
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist", "writer"});
  SelectivityEstimator exact(&fx.store);
  SelectivityEstimator chained(&fx.store,
                               SelectivityEstimator::Mode::kPairwiseExact);
  EXPECT_GT(exact.QueryCardinality(q), 0.0);
  EXPECT_GT(chained.QueryCardinality(q), 0.0);
}

TEST(SelectivityTest, ExactQueryCardinalityMatchesBruteForce) {
  MusicFixture fx = MakeMusicFixture();
  SelectivityEstimator est(&fx.store);
  EXPECT_EQ(est.ExactQueryCardinality(fx.TypeQuery({"singer"})), 5u);
  EXPECT_EQ(est.ExactQueryCardinality(fx.TypeQuery({"singer", "vocalist"})),
            3u);
  EXPECT_EQ(est.ExactQueryCardinality(
                fx.TypeQuery({"singer", "vocalist", "writer"})),
            1u);  // shakira
  EXPECT_EQ(est.ExactQueryCardinality(
                fx.TypeQuery({"singer", "lyricist", "guitarist", "pianist"})),
            0u);
}

TEST(SelectivityTest, MemoisationCachesPairCounts) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist"});
  SelectivityEstimator est(&fx.store);
  (void)est.JoinCardinality(q.pattern(0), q.pattern(1));
  const size_t after_first = est.memo_size();
  (void)est.JoinCardinality(q.pattern(0), q.pattern(1));
  EXPECT_EQ(est.memo_size(), after_first);
}

TEST(SelectivityTest, IndependenceModeStarJoin) {
  MusicFixture fx = MakeMusicFixture();
  Query q = fx.TypeQuery({"singer", "vocalist"});
  SelectivityEstimator est(&fx.store,
                           SelectivityEstimator::Mode::kIndependence);
  // d(singer)=5 subjects, d(vocalist)=6 -> phi = 1/6, card = 5*6/6 = 5.
  EXPECT_NEAR(est.JoinCardinality(q.pattern(0), q.pattern(1)), 5.0, 1e-9);
}

TEST(SelectivityTest, ChainQueryCardinality) {
  // ?x p ?y . ?y p ?z over a small chain graph.
  TripleStore store;
  store.Add("a", "p", "b", 1.0);
  store.Add("b", "p", "c", 1.0);
  store.Add("c", "p", "d", 1.0);
  store.Finalize();
  Query q;
  const VarId x = q.GetOrAddVariable("x");
  const VarId y = q.GetOrAddVariable("y");
  const VarId z = q.GetOrAddVariable("z");
  const TermId p = store.MustId("p");
  q.AddPattern(TriplePattern(PatternTerm::Var(x), PatternTerm::Const(p),
                             PatternTerm::Var(y)));
  q.AddPattern(TriplePattern(PatternTerm::Var(y), PatternTerm::Const(p),
                             PatternTerm::Var(z)));
  SelectivityEstimator est(&store);
  // Chains a->b->c and b->c->d.
  EXPECT_EQ(est.ExactQueryCardinality(q), 2u);
  EXPECT_NEAR(est.JoinCardinality(q.pattern(0), q.pattern(1)), 2.0, 1e-12);
}

TEST(SelectivityTest, RepeatedVariablePattern) {
  TripleStore store;
  store.Add("a", "p", "a", 1.0);  // self loop
  store.Add("a", "p", "b", 1.0);
  store.Finalize();
  Query q;
  const VarId x = q.GetOrAddVariable("x");
  const TermId p = store.MustId("p");
  q.AddPattern(TriplePattern(PatternTerm::Var(x), PatternTerm::Const(p),
                             PatternTerm::Var(x)));
  SelectivityEstimator est(&store);
  EXPECT_EQ(est.ExactQueryCardinality(q), 1u);  // only the self loop
}

// Property: left-deep chained estimate with exact pairwise selectivities
// equals the exact count for 2-pattern star queries (they coincide by
// construction) and stays within a factor for 3-pattern ones.
class SelectivityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectivityPropertyTest, PairwiseChainingIsExactForTwoPatterns) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 200;
  TripleStore store = MakeRandomStore(&rng, cfg);
  SelectivityEstimator est(&store, SelectivityEstimator::Mode::kPairwiseExact);
  for (int trial = 0; trial < 5; ++trial) {
    Query q = MakeRandomStarQuery(&rng, store, 2);
    EXPECT_NEAR(est.QueryCardinality(q),
                static_cast<double>(est.ExactQueryCardinality(q)), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectivityPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace specqp
