#include "stats/two_bucket_histogram.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace specqp {
namespace {

TEST(TwoBucketHistogramTest, PaperFormulaHeights) {
  // sigma_r = 0.5, head_mass = 0.8 (the canonical 80/20 fit): the tail
  // bucket [0, 0.5) carries probability 0.2, the head [0.5, 1] carries 0.8.
  TwoBucketHistogram h(0.5, 0.8);
  EXPECT_NEAR(h.Pdf(0.25), 0.2 / 0.5, 1e-12);
  EXPECT_NEAR(h.Pdf(0.75), 0.8 / 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(h.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(h.Pdf(1.1), 0.0);
}

TEST(TwoBucketHistogramTest, PdfIntegratesToOne) {
  for (double sigma : {0.1, 0.3, 0.5, 0.9}) {
    for (double head : {0.0, 0.2, 0.8, 1.0}) {
      TwoBucketHistogram h(sigma, head);
      // Numerically integrate the pdf.
      double mass = 0.0;
      const int steps = 20000;
      for (int i = 0; i < steps; ++i) {
        const double x = (i + 0.5) / steps;
        mass += h.Pdf(x) / steps;
      }
      EXPECT_NEAR(mass, 1.0, 1e-3) << "sigma=" << sigma << " head=" << head;
    }
  }
}

TEST(TwoBucketHistogramTest, CdfEndpointsAndBoundary) {
  TwoBucketHistogram h(0.5, 0.8);
  EXPECT_DOUBLE_EQ(h.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Cdf(1.0), 1.0);
  EXPECT_NEAR(h.Cdf(0.5), 0.2, 1e-12);  // P(X < sigma_r) = 1 - head_mass
}

TEST(TwoBucketHistogramTest, CdfMonotone) {
  TwoBucketHistogram h(0.3, 0.7);
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double c = h.Cdf(i / 100.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(TwoBucketHistogramTest, InverseCdfInvertsCdf) {
  TwoBucketHistogram h(0.4, 0.8);
  for (double p : {0.0, 0.05, 0.2, 0.21, 0.5, 0.8, 0.99, 1.0}) {
    const double x = h.InverseCdf(p);
    EXPECT_NEAR(h.Cdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(TwoBucketHistogramTest, InverseCdfClampsOutOfRange) {
  TwoBucketHistogram h(0.4, 0.8);
  EXPECT_DOUBLE_EQ(h.InverseCdf(-0.5), h.InverseCdf(0.0));
  EXPECT_NEAR(h.InverseCdf(2.0), 1.0, 1e-9);
}

TEST(TwoBucketHistogramTest, MeanMatchesNumericIntegral) {
  for (double sigma : {0.2, 0.5, 0.8}) {
    for (double head : {0.3, 0.8}) {
      TwoBucketHistogram h(sigma, head);
      double mean = 0.0;
      const int steps = 20000;
      for (int i = 0; i < steps; ++i) {
        const double x = (i + 0.5) / steps;
        mean += x * h.Pdf(x) / steps;
      }
      EXPECT_NEAR(h.Mean(), mean, 1e-3);
    }
  }
}

TEST(TwoBucketHistogramTest, PartialExpectationMatchesNumericIntegral) {
  TwoBucketHistogram h(0.4, 0.8);
  for (double t : {0.0, 0.2, 0.4, 0.7, 1.0}) {
    double expected = 0.0;
    const int steps = 20000;
    for (int i = 0; i < steps; ++i) {
      const double x = (i + 0.5) / steps;
      if (x >= t) expected += x * h.Pdf(x) / steps;
    }
    EXPECT_NEAR(h.PartialExpectationAbove(t), expected, 1e-3) << "t=" << t;
  }
  EXPECT_NEAR(h.PartialExpectationAbove(0.0), h.Mean(), 1e-12);
  EXPECT_DOUBLE_EQ(h.PartialExpectationAbove(1.0), 0.0);
}

TEST(TwoBucketHistogramTest, ScaledBySquashesSupport) {
  TwoBucketHistogram h(0.5, 0.8);
  TwoBucketHistogram s = h.ScaledBy(0.5);
  EXPECT_DOUBLE_EQ(s.upper(), 0.5);
  EXPECT_DOUBLE_EQ(s.sigma_r(), 0.25);
  EXPECT_DOUBLE_EQ(s.head_mass(), 0.8);
  // Scaling is a change of variable: mean scales linearly.
  EXPECT_NEAR(s.Mean(), 0.5 * h.Mean(), 1e-12);
  // Quantiles scale too.
  EXPECT_NEAR(s.InverseCdf(0.9), 0.5 * h.InverseCdf(0.9), 1e-12);
}

TEST(TwoBucketHistogramTest, FromScoresFindsEightyPercentBoundary) {
  // Scores: 10, 5, 2, 1, 1, 1 (total 20; head 0.8*20=16 reached at rank 2,
  // cumulative 15 < 16 at rank 2... cumulative 10, 15, 17 -> rank 3).
  std::vector<double> scores = {1.0, 0.5, 0.2, 0.1, 0.1, 0.1};
  TwoBucketHistogram h = TwoBucketHistogram::FromScores(scores);
  // Cumulative normalised: 1.0, 1.5, 1.7 of total 2.0 -> 1.7 >= 1.6 at the
  // third score (0.2).
  EXPECT_DOUBLE_EQ(h.sigma_r(), 0.2);
  EXPECT_NEAR(h.head_mass(), 1.7 / 2.0, 1e-12);
}

TEST(TwoBucketHistogramTest, FromScoresSingleAnswer) {
  std::vector<double> scores = {1.0};
  TwoBucketHistogram h = TwoBucketHistogram::FromScores(scores);
  // The single score holds all the mass; sigma_r clamps just below 1.
  EXPECT_NEAR(h.sigma_r(), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.head_mass(), 1.0);
}

TEST(TwoBucketHistogramTest, FromScoresAllZero) {
  std::vector<double> scores = {0.0, 0.0, 0.0};
  TwoBucketHistogram h = TwoBucketHistogram::FromScores(scores);
  EXPECT_DOUBLE_EQ(h.head_mass(), 0.0);
  EXPECT_GE(h.Mean(), 0.0);
}

TEST(TwoBucketHistogramTest, FromScoresUniformScores) {
  // All scores equal: the 80% boundary lands at ceil(0.8 * n) ranks in.
  std::vector<double> scores(10, 1.0);
  TwoBucketHistogram h = TwoBucketHistogram::FromScores(scores);
  EXPECT_DOUBLE_EQ(h.sigma_r(), 1.0 - TwoBucketHistogram::kMinBucketWidth);
  EXPECT_NEAR(h.head_mass(), 0.8, 1e-12);
}

TEST(TwoBucketHistogramTest, ClampsDegenerateSigma) {
  // sigma_r out of range gets clamped rather than producing infinities.
  TwoBucketHistogram low(0.0, 0.5);
  EXPECT_GT(low.sigma_r(), 0.0);
  EXPECT_TRUE(std::isfinite(low.Pdf(low.sigma_r() / 2)));
  TwoBucketHistogram high(1.0, 0.5);
  EXPECT_LT(high.sigma_r(), 1.0);
  EXPECT_TRUE(std::isfinite(high.Pdf(1.0)));
}

TEST(TwoBucketHistogramTest, CustomUpperSupport) {
  TwoBucketHistogram h(1.0, 0.8, 2.0);
  EXPECT_DOUBLE_EQ(h.upper(), 2.0);
  EXPECT_DOUBLE_EQ(h.Cdf(2.0), 1.0);
  EXPECT_NEAR(h.Cdf(1.0), 0.2, 1e-12);
  EXPECT_GT(h.Mean(), 1.0);  // most mass in [1, 2]
}

// Property sweep: InverseCdf is the (pseudo-)inverse across a grid of
// parameters.
class HistogramRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(HistogramRoundTripTest, CdfInverseCdfRoundTrip) {
  const auto [sigma, head] = GetParam();
  TwoBucketHistogram h(sigma, head);
  for (int i = 0; i <= 20; ++i) {
    const double p = i / 20.0;
    EXPECT_NEAR(h.Cdf(h.InverseCdf(p)), p, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, HistogramRoundTripTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9),
                       ::testing::Values(0.1, 0.5, 0.8, 0.95)));

}  // namespace
}  // namespace specqp
