#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/zipf.h"

namespace specqp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextIntHitsBothEndpoints) {
  Rng rng(17);
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(0, 4);
    lo |= (v == 0);
    hi |= (v == 4);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(19);
  int heads = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, NextWeightedFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, NextWeightedZeroWeightNeverPicked) {
  Rng rng(41);
  const std::vector<double> weights = {0.0, 1.0};
  for (int i = 0; i < 500; ++i) EXPECT_EQ(rng.NextWeighted(weights), 1u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng forked = a.Fork();
  // The fork and the parent should not emit identical sequences.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == forked.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// --- Zipf -------------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double sum = 0.0;
  for (uint64_t i = 0; i < 100; ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfDistribution z(50, 1.2);
  for (uint64_t i = 1; i < 50; ++i) EXPECT_GE(z.Pmf(i - 1), z.Pmf(i));
}

TEST(ZipfTest, HeadDominatesForHighSkew) {
  ZipfDistribution z(1000, 1.5);
  EXPECT_GT(z.Pmf(0), 0.3);
}

TEST(ZipfTest, SamplesInRangeAndSkewed) {
  Rng rng(43);
  ZipfDistribution z(20, 1.0);
  std::vector<int> counts(20, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = z.Sample(&rng);
    ASSERT_LT(v, 20u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
  // Empirical frequency of rank 0 should match the pmf.
  EXPECT_NEAR(counts[0] / static_cast<double>(n), z.Pmf(0), 0.02);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(47);
  ZipfDistribution z(1, 2.0);
  EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

TEST(PowerLawScoresTest, DescendingAndScaled) {
  const std::vector<double> scores = PowerLawScores(10, 1.0, 100.0);
  ASSERT_EQ(scores.size(), 10u);
  EXPECT_DOUBLE_EQ(scores[0], 100.0);
  EXPECT_DOUBLE_EQ(scores[1], 50.0);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LT(scores[i], scores[i - 1]);
  }
}

TEST(PowerLawScoresTest, EightyTwentyShapeAtSkewOne) {
  // With s=1 the head of the list concentrates a large share of the mass —
  // the shape the paper's 80/20 modelling assumes.
  const std::vector<double> scores = PowerLawScores(1000, 1.0, 1.0);
  const double total = std::accumulate(scores.begin(), scores.end(), 0.0);
  double head = 0.0;
  for (size_t i = 0; i < 200; ++i) head += scores[i];
  EXPECT_GT(head / total, 0.7);
}

}  // namespace
}  // namespace specqp
