// The v3 acceptance probe: every bundled workload query (66 XKG + 50
// Twitter = 116, the bench-bundle counts over test-sized datasets) must
// return bit-identical rows — bindings AND scores — from a v2-flat store
// and a v3-block store, across all three strategies and thread counts
// {1, 2, 8}, and both must match an engine over the original in-memory
// store. Block skipping is an access-path optimisation only; this is the
// determinism contract of docs/ARCHITECTURE.md ("Block iterator &
// skipping").

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "rdf/store_io.h"
#include "test_util.h"

namespace specqp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectIdenticalRows(const std::vector<ScoredRow>& a,
                         const std::vector<ScoredRow>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bindings, b[i].bindings) << label << " row " << i;
    EXPECT_EQ(a[i].score, b[i].score) << label << " row " << i;  // bitwise
  }
}

TEST(StoreFormatProbeTest, WorkloadBitIdenticalAcrossFormatsAndThreads) {
  XkgConfig xkg_config;
  xkg_config.num_entities = 6000;
  xkg_config.num_domains = 8;
  // A flat popularity curve, deliberately: rank-join early termination
  // requires some join result to beat top + UpperBound of the other side,
  // and under the default power-law skew the per-list-normalised scores
  // collapse so fast that no result ever does — the join provably drains
  // both sides before emitting, and block skipping cannot trigger no
  // matter the implementation (see docs/ARCHITECTURE.md, "Block iterator
  // & skipping"). A gentler curve keeps result scores competitive with
  // the corner bound so the skip path is actually exercised end-to-end.
  xkg_config.entity_popularity_skew = 0.15;
  const XkgDataset xkg = GenerateXkg(xkg_config);
  XkgWorkloadConfig xkg_wl;  // defaults: 22 per size of 2/3/4 => 66
  xkg_wl.min_relaxations = 8;
  const std::vector<Query> xkg_queries = MakeXkgWorkload(xkg, xkg_wl);
  ASSERT_EQ(xkg_queries.size(), 66u);

  TwitterConfig twitter_config;
  twitter_config.num_tweets = 20000;
  twitter_config.num_topics = 12;
  const TwitterDataset twitter = GenerateTwitter(twitter_config);
  TwitterWorkloadConfig twitter_wl;  // defaults: 25 per size of 2/3 => 50
  twitter_wl.min_relaxations = 4;
  twitter_wl.min_relaxed_answers = 10;
  const std::vector<Query> twitter_queries =
      MakeTwitterWorkload(twitter, twitter_wl);
  ASSERT_EQ(twitter_queries.size(), 50u);
  ASSERT_EQ(xkg_queries.size() + twitter_queries.size(), 116u);

  const struct {
    const char* name;
    const TripleStore* store;
    const RelaxationIndex* rules;
    const std::vector<Query>* workload;
  } bundles[] = {
      {"xkg", &xkg.store, &xkg.rules, &xkg_queries},
      {"twitter", &twitter.store, &twitter.rules, &twitter_queries},
  };
  const Strategy strategies[] = {Strategy::kSpecQp, Strategy::kTrinit,
                                 Strategy::kNoRelax};
  const size_t k = 10;

  uint64_t xkg_v3_blocks_skipped = 0;
  for (const auto& bundle : bundles) {
    const std::string v2_path =
        TempPath((std::string("probe_") + bundle.name + ".v2.sqp").c_str());
    SaveStoreOptions v2_save;
    v2_save.format_version = 2;
    ASSERT_TRUE(SaveStore(*bundle.store, v2_path, v2_save).ok());
    const std::string v3_path =
        TempPath((std::string("probe_") + bundle.name + ".v3.sqp").c_str());
    ASSERT_TRUE(SaveStore(*bundle.store, v3_path).ok());
    ASSERT_EQ(PeekStoreVersion(v2_path).value(), 2u);
    ASSERT_EQ(PeekStoreVersion(v3_path).value(), 3u);

    Engine reference(bundle.store, bundle.rules);
    std::vector<std::vector<Engine::QueryResult>> expected(
        std::size(strategies));
    for (size_t si = 0; si < std::size(strategies); ++si) {
      expected[si].reserve(bundle.workload->size());
      for (const Query& query : *bundle.workload) {
        expected[si].push_back(
            testing::Execute(reference, query, k, strategies[si]));
      }
    }

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      EngineOptions options;
      options.mmap = true;
      options.num_threads = threads;
      if (threads > 1) options.parallel_min_rows = 1;  // force partitioning
      auto v2_engine = Engine::OpenFromPath(v2_path, bundle.rules, options);
      ASSERT_TRUE(v2_engine.ok()) << v2_engine.status().ToString();
      ASSERT_TRUE(v2_engine.value().mmap_backed());
      auto v3_engine = Engine::OpenFromPath(v3_path, bundle.rules, options);
      ASSERT_TRUE(v3_engine.ok()) << v3_engine.status().ToString();
      ASSERT_TRUE(v3_engine.value().mmap_backed());

      for (size_t si = 0; si < std::size(strategies); ++si) {
        for (size_t qi = 0; qi < bundle.workload->size(); ++qi) {
          const Query& query = (*bundle.workload)[qi];
          const auto from_v2 = testing::Execute(*v2_engine.value().engine,
                                                query, k, strategies[si]);
          const auto from_v3 = testing::Execute(*v3_engine.value().engine,
                                                query, k, strategies[si]);
          const std::string label =
              std::string(bundle.name) + " q" + std::to_string(qi) +
              " strategy " + std::to_string(si) + " threads " +
              std::to_string(threads);
          ExpectIdenticalRows(from_v2.rows, from_v3.rows,
                              (label + " v2 vs v3").c_str());
          ExpectIdenticalRows(from_v3.rows, expected[si][qi].rows,
                              (label + " v3 vs original").c_str());
          // Flat stores never touch the block counters.
          EXPECT_EQ(from_v2.stats.blocks_decoded, 0u);
          EXPECT_EQ(from_v2.stats.blocks_skipped, 0u);
          if (bundle.store == &xkg.store) {
            xkg_v3_blocks_skipped += from_v3.stats.blocks_skipped;
          }
        }
      }
    }
  }

  // The rank-join-heavy XKG workload must actually exercise the skipping
  // machinery: top-k early termination leaves undecoded blocks behind.
  EXPECT_GT(xkg_v3_blocks_skipped, 0u);
}

}  // namespace
}  // namespace specqp
