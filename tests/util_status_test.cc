#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace specqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("the thing").ToString(), "NOT_FOUND: the thing");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "INTERNAL");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "CORRUPTION");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

TEST(StatusTest, ServingCodesToString) {
  EXPECT_EQ(Status::Unavailable("2 of 8 shards quarantined").ToString(),
            "UNAVAILABLE: 2 of 8 shards quarantined");
  EXPECT_EQ(Status::ResourceExhausted("admission queue full").ToString(),
            "RESOURCE_EXHAUSTED: admission queue full");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chained(int x) {
  SPECQP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4);
  EXPECT_EQ(*r, 4);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  EXPECT_EQ(ParsePositive(5).value_or(7), 5);
}

Result<int> DoubleIt(int x) {
  SPECQP_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = DoubleIt(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = DoubleIt(0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_DEATH((void)r.value(), "Result::value");
}

}  // namespace
}  // namespace specqp
