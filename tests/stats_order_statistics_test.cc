#include "stats/order_statistics.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "stats/piecewise.h"
#include "stats/two_bucket_histogram.h"
#include "util/random.h"

namespace specqp {
namespace {

// Uniform[0, 1] as a degenerate two-bucket histogram (equal densities).
TwoBucketHistogram Uniform01() { return TwoBucketHistogram(0.5, 0.5); }

TEST(OrderStatisticsTest, UniformClosedForm) {
  // For Uniform(0,1), E(X_(i)) = i/(n+1) exactly; rank r maps to
  // i = n - r + 1.
  TwoBucketHistogram u = Uniform01();
  const double n = 9.0;
  EXPECT_NEAR(ExpectedScoreAtRank(u, n, 1), 9.0 / 10.0, 1e-9);
  EXPECT_NEAR(ExpectedScoreAtRank(u, n, 5), 5.0 / 10.0, 1e-9);
  EXPECT_NEAR(ExpectedScoreAtRank(u, n, 9), 1.0 / 10.0, 1e-9);
}

TEST(OrderStatisticsTest, RankBeyondSampleIsZero) {
  TwoBucketHistogram u = Uniform01();
  EXPECT_DOUBLE_EQ(ExpectedScoreAtRank(u, 3.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedScoreAtRank(u, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedScoreAtRank(u, 2.9, 3), 0.0);
}

TEST(OrderStatisticsTest, FractionalCardinalityAccepted) {
  TwoBucketHistogram u = Uniform01();
  const double v = ExpectedScoreAtRank(u, 10.5, 1);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(OrderStatisticsTest, MonotoneInRank) {
  TwoBucketHistogram h(0.4, 0.8);
  const double n = 50.0;
  double prev = 2.0;
  for (uint64_t rank = 1; rank <= 50; ++rank) {
    const double v = ExpectedScoreAtRank(h, n, rank);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(OrderStatisticsTest, MonotoneInSampleSize) {
  // More answers -> higher expected best score.
  TwoBucketHistogram h(0.4, 0.8);
  double prev = 0.0;
  for (double n : {1.0, 5.0, 25.0, 125.0, 625.0}) {
    const double v = ExpectedTopScore(h, n);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(OrderStatisticsTest, TopScoreApproachesUpper) {
  TwoBucketHistogram h(0.4, 0.8);
  EXPECT_GT(ExpectedTopScore(h, 1e6), 0.99);
}

TEST(OrderStatisticsTest, EmpiricalAgreementTwoBucket) {
  // Monte-Carlo cross-check: sample n values, compare the mean observed
  // k-th maximum against the estimator.
  TwoBucketHistogram h(0.5, 0.8);
  Rng rng(2024);
  const size_t n = 200;
  const size_t trials = 400;
  std::vector<double> top1_sum(3, 0.0);
  for (size_t t = 0; t < trials; ++t) {
    std::vector<double> sample(n);
    for (size_t i = 0; i < n; ++i) sample[i] = h.InverseCdf(rng.NextDouble());
    std::sort(sample.begin(), sample.end(), std::greater<>());
    top1_sum[0] += sample[0];
    top1_sum[1] += sample[4];
    top1_sum[2] += sample[19];
  }
  EXPECT_NEAR(top1_sum[0] / trials, ExpectedScoreAtRank(h, n, 1), 0.02);
  EXPECT_NEAR(top1_sum[1] / trials, ExpectedScoreAtRank(h, n, 5), 0.02);
  EXPECT_NEAR(top1_sum[2] / trials, ExpectedScoreAtRank(h, n, 20), 0.02);
}

TEST(OrderStatisticsTest, WorksWithPiecewiseLinear) {
  PiecewiseLinearPdf tri({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  const double n = 99.0;
  const double top = ExpectedScoreAtRank(tri, n, 1);
  const double mid = ExpectedScoreAtRank(tri, n, 50);
  EXPECT_GT(top, 1.7);  // quantile 0.99 of the triangle
  EXPECT_NEAR(mid, 1.0, 0.05);
}

}  // namespace
}  // namespace specqp
