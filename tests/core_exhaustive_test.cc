#include "core/exhaustive.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

TEST(ExhaustiveTest, SinglePatternOriginalOnly) {
  MusicFixture fx = MakeMusicFixture();
  RelaxationIndex no_rules;
  ExhaustiveEvaluator oracle(&fx.store, &no_rules);
  const auto result = oracle.Evaluate(fx.TypeQuery({"singer"}));
  ASSERT_EQ(result.answers.size(), 5u);
  // Sorted descending; top answer is shakira at normalised 1.0.
  EXPECT_EQ(result.answers[0].bindings[0], fx.Id("shakira"));
  EXPECT_DOUBLE_EQ(result.answers[0].score, 1.0);
  for (const auto& answer : result.answers) {
    EXPECT_FALSE(answer.ViaRelaxation(0));
    EXPECT_DOUBLE_EQ(answer.original_scores[0], answer.best_scores[0]);
  }
}

TEST(ExhaustiveTest, RelaxationExtendsAnswerSet) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const auto result = oracle.Evaluate(fx.TypeQuery({"singer"}));
  // With singer ~> vocalist/jazz_singer/artist every entity is reachable.
  EXPECT_EQ(result.answers.size(), 10u);

  // sting is not a singer; his best derivation must be via relaxation.
  bool found_sting = false;
  for (const auto& answer : result.answers) {
    if (answer.bindings[0] != fx.Id("sting")) continue;
    found_sting = true;
    EXPECT_TRUE(answer.ViaRelaxation(0));
    EXPECT_DOUBLE_EQ(answer.original_scores[0],
                     ExhaustiveEvaluator::Answer::kNoOriginal);
    // Best: vocalist rule (0.9) on his vocalist score 80/100 = 0.72;
    // vs artist rule (0.5) at 80/100*0.5 = 0.4.
    EXPECT_NEAR(answer.best_scores[0], 0.72, 1e-9);
  }
  EXPECT_TRUE(found_sting);
}

TEST(ExhaustiveTest, MaxOverDerivationsPerPattern) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const auto result = oracle.Evaluate(fx.TypeQuery({"singer"}));
  // shakira is a singer (1.0 original) and also reachable via the
  // vocalist rule (0.9 * 1.0): the original wins (ties/maxima favour the
  // better score).
  ASSERT_EQ(result.answers[0].bindings[0], fx.Id("shakira"));
  EXPECT_DOUBLE_EQ(result.answers[0].best_scores[0], 1.0);
  EXPECT_FALSE(result.answers[0].ViaRelaxation(0));
}

TEST(ExhaustiveTest, RequiredRelaxationsEmptyWhenOriginalsFillTopK) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  // 5 original singers with the highest popularity; for k=3 the top-3 are
  // original-only (shakira 1.0, beyonce 0.9, adele 0.85) and the best
  // relaxed answer (sting via vocalist: 0.72) cannot displace them.
  const auto result = oracle.Evaluate(fx.TypeQuery({"singer"}));
  EXPECT_TRUE(result.RequiredRelaxations(3).empty());
}

TEST(ExhaustiveTest, RequiredRelaxationsWhenTopKNeedsThem) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  // k=7 > 5 singers: relaxed answers must appear in the top-7, so the
  // pattern's relaxations are required.
  const auto result = oracle.Evaluate(fx.TypeQuery({"singer"}));
  const auto required = result.RequiredRelaxations(7);
  ASSERT_EQ(required.size(), 1u);
  EXPECT_EQ(required[0], 0u);
}

TEST(ExhaustiveTest, RequiredRelaxationsPerPattern) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  // singer ∧ pianist: only adele matches both originals. For k=3 the
  // remaining two answers need relaxations; check that disabling either
  // pattern's rules changes the top-3 (both required).
  const auto result =
      oracle.Evaluate(fx.TypeQuery({"singer", "pianist"}));
  ASSERT_GE(result.answers.size(), 3u);
  const auto required = result.RequiredRelaxations(3);
  EXPECT_EQ(required.size(), 2u);
}

TEST(ExhaustiveTest, RequiredRelaxationsRespectsK) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const auto result = oracle.Evaluate(fx.TypeQuery({"singer"}));
  // Monotone-ish: a k small enough to be covered by originals requires
  // nothing; a k beyond the original count requires the pattern.
  EXPECT_TRUE(result.RequiredRelaxations(1).empty());
  EXPECT_FALSE(result.RequiredRelaxations(10).empty());
}

TEST(ExhaustiveTest, AnswerScoreIsSumOfPatternBests) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const auto result =
      oracle.Evaluate(fx.TypeQuery({"singer", "lyricist"}));
  for (const auto& answer : result.answers) {
    double sum = 0.0;
    for (double s : answer.best_scores) sum += s;
    EXPECT_NEAR(answer.score, sum, 1e-12);
  }
}

TEST(ExhaustiveTest, EmptyQueryResult) {
  MusicFixture fx = MakeMusicFixture();
  RelaxationIndex no_rules;
  ExhaustiveEvaluator oracle(&fx.store, &no_rules);
  // jazz_singer ∩ guitarist is empty and stays empty without rules.
  const auto result =
      oracle.Evaluate(fx.TypeQuery({"jazz_singer", "guitarist"}));
  EXPECT_TRUE(result.answers.empty());
  EXPECT_TRUE(result.RequiredRelaxations(10).empty());
}

TEST(ExhaustiveTest, DeterministicOrdering) {
  MusicFixture fx = MakeMusicFixture();
  ExhaustiveEvaluator oracle(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  const auto a = oracle.Evaluate(query);
  const auto b = oracle.Evaluate(query);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].bindings, b.answers[i].bindings);
    EXPECT_DOUBLE_EQ(a.answers[i].score, b.answers[i].score);
  }
}

}  // namespace
}  // namespace specqp
