// Tests for the batch-scoped SharedScanCache: derived object lists must be
// bit-identical to directly built ones (the batch-vs-sequential determinism
// of BatchExecutor rests on this), the cost gate must only derive when a
// shared pass undercuts per-key builds, and resolved lists must be pinned
// for the batch and published to the underlying cache.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/posting_list.h"
#include "rdf/shared_scan_cache.h"
#include "rdf/triple_store.h"
#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

using specqp::testing::MakeRandomStore;
using specqp::testing::RandomStoreConfig;

void ExpectSameList(const PostingList& a, const PostingList& b,
                    const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(a.max_raw_score, b.max_raw_score) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries[i].triple_index, b.entries[i].triple_index)
        << label << " entry " << i;
    EXPECT_EQ(a.entries[i].score, b.entries[i].score) << label << " entry "
                                                      << i;
  }
}

TEST(SharedScanDeriveTest, DerivedListsBitIdenticalToBuiltLists) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);
    RandomStoreConfig cfg;
    cfg.num_subjects = 40;
    cfg.num_predicates = 3;
    cfg.num_objects = 9;
    cfg.num_triples = 400;
    TripleStore store = MakeRandomStore(&rng, cfg);

    for (size_t p = 0; p < cfg.num_predicates; ++p) {
      const TermId pid = store.MustId("p" + std::to_string(p));
      const PostingList base =
          BuildPostingList(store, PatternKey{kInvalidTermId, pid,
                                             kInvalidTermId});
      for (size_t o = 0; o < cfg.num_objects; ++o) {
        const TermId oid = store.MustId("o" + std::to_string(o));
        const PatternKey key{kInvalidTermId, pid, oid};
        const PostingList built = BuildPostingList(store, key);
        const PostingList derived =
            SharedScanCache::DeriveObjectList(store, base, oid);
        ExpectSameList(built, derived,
                       "seed=" + std::to_string(seed) + " p" +
                           std::to_string(p) + " o" + std::to_string(o));
      }
    }
  }
}

TEST(SharedScanCacheTest, PrepareResolvesOnceAndGetHits) {
  Rng rng(99);
  RandomStoreConfig cfg;
  TripleStore store = MakeRandomStore(&rng, cfg);
  PostingListCache base(&store);
  SharedScanCache shared(&store, &base);

  const TermId p0 = store.MustId("p0");
  std::vector<PatternKey> keys;
  for (int o = 0; o < 4; ++o) {
    keys.push_back(PatternKey{kInvalidTermId, p0,
                              store.MustId("o" + std::to_string(o))});
  }
  // Duplicate requests in the prepare list collapse.
  keys.push_back(keys[0]);
  shared.Prepare(keys);

  auto counters = shared.counters();
  EXPECT_EQ(counters.resolved_lists, 4u);
  EXPECT_EQ(counters.hits, 0u);

  // Every Get of a prepared key is a shared-scan hit returning the same
  // pinned list.
  const auto first = shared.Get(keys[0]);
  const auto second = shared.Get(keys[0]);
  EXPECT_EQ(first.get(), second.get());
  counters = shared.counters();
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 0u);

  // And it matches a direct build.
  ExpectSameList(*first, BuildPostingList(store, keys[0]), "prepared get");

  // A second Prepare with the same keys resolves nothing new.
  shared.Prepare(keys);
  EXPECT_EQ(shared.counters().resolved_lists, 4u);
}

TEST(SharedScanCacheTest, UnpreparedKeyFallsThroughAndMemoises) {
  Rng rng(123);
  TripleStore store = MakeRandomStore(&rng, RandomStoreConfig());
  PostingListCache base(&store);
  SharedScanCache shared(&store, &base);

  const PatternKey key{kInvalidTermId, store.MustId("p1"),
                       store.MustId("o2")};
  const auto list = shared.Get(key);
  ASSERT_NE(list, nullptr);
  auto counters = shared.counters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 1u);
  // Memoised: the second Get is a hit on the same list.
  EXPECT_EQ(shared.Get(key).get(), list.get());
  EXPECT_EQ(shared.counters().hits, 1u);
}

TEST(SharedScanCacheTest, DerivesSiblingsWhenBaseIsResident) {
  // Many sizeable object lists under one predicate, with the base list
  // already resident: one shared pass must serve them all, and the derived
  // lists must be published back into the base cache.
  TripleStore store;
  for (int o = 0; o < 16; ++o) {
    for (int t = 0; t < 48; ++t) {
      store.Add("s" + std::to_string(o) + "_" + std::to_string(t), "p",
                "o" + std::to_string(o), 1.0 + t);
    }
  }
  store.Finalize();
  const TermId p = store.MustId("p");

  PostingListCache base(&store);
  (void)base.Get(PatternKey{kInvalidTermId, p, kInvalidTermId});  // warm the base

  SharedScanCache shared(&store, &base);
  std::vector<PatternKey> keys;
  for (int o = 0; o < 16; ++o) {
    keys.push_back(PatternKey{kInvalidTermId, p,
                              store.MustId("o" + std::to_string(o))});
  }
  shared.Prepare(keys);

  const auto counters = shared.counters();
  EXPECT_EQ(counters.resolved_lists, 16u);
  EXPECT_EQ(counters.derived_lists, 16u);
  EXPECT_EQ(counters.base_scans, 1u);

  for (const PatternKey& key : keys) {
    // Published into the base cache for post-batch reuse...
    EXPECT_NE(base.Peek(key), nullptr);
    // ...and bit-identical to a direct build.
    ExpectSameList(*shared.Get(key), BuildPostingList(store, key),
                   "derived sibling");
  }
}

TEST(SharedScanCacheTest, DerivedListsAliasTheBaseCacheResident) {
  // Regression test: DeriveGroup used to memoise the list it built rather
  // than the resident the base cache's Put returned. If Put coalesces onto
  // an existing resident (or ever copies), the batch map and the base
  // cache would pin two different objects for one key — double memory and
  // a broken "same object for the whole batch" guarantee. The batch map
  // must alias exactly what the base cache holds.
  TripleStore store;
  for (int o = 0; o < 16; ++o) {
    for (int t = 0; t < 48; ++t) {
      store.Add("s" + std::to_string(o) + "_" + std::to_string(t), "p",
                "o" + std::to_string(o), 1.0 + t);
    }
  }
  store.Finalize();
  const TermId p = store.MustId("p");

  PostingListCache base(&store);
  (void)base.Get(PatternKey{kInvalidTermId, p, kInvalidTermId});

  SharedScanCache shared(&store, &base);
  std::vector<PatternKey> keys;
  for (int o = 0; o < 16; ++o) {
    keys.push_back(PatternKey{kInvalidTermId, p,
                              store.MustId("o" + std::to_string(o))});
  }
  shared.Prepare(keys);
  ASSERT_EQ(shared.counters().derived_lists, 16u);

  for (const PatternKey& key : keys) {
    EXPECT_EQ(shared.Get(key).get(), base.Peek(key).get())
        << "batch map and base cache pin different objects";
  }
}

TEST(SharedScanCacheTest, CostGateSkipsDerivationForFewSmallKeys) {
  // Two tiny object lists under a large, cold predicate: a shared pass
  // (which would have to build the whole base list first) cannot pay off,
  // so Prepare must resolve them directly.
  TripleStore store;
  for (int t = 0; t < 4096; ++t) {
    store.Add("s" + std::to_string(t), "p", "bulk" + std::to_string(t % 509),
              1.0 + t);
  }
  store.Add("x0", "p", "rare0", 5.0);
  store.Add("x1", "p", "rare1", 6.0);
  store.Finalize();
  const TermId p = store.MustId("p");

  PostingListCache base(&store);
  SharedScanCache shared(&store, &base);
  const std::vector<PatternKey> keys = {
      PatternKey{kInvalidTermId, p, store.MustId("rare0")},
      PatternKey{kInvalidTermId, p, store.MustId("rare1")},
  };
  shared.Prepare(keys);
  const auto counters = shared.counters();
  EXPECT_EQ(counters.resolved_lists, 2u);
  EXPECT_EQ(counters.derived_lists, 0u);
  EXPECT_EQ(counters.base_scans, 0u);
}

TEST(SharedScanCacheTest, PinsResolvedListsAgainstEviction) {
  // A tiny budget evicts everything unpinned from the base cache — but the
  // shared cache's references keep the batch's lists alive and stable.
  TripleStore store;
  for (int o = 0; o < 32; ++o) {
    store.Add("s" + std::to_string(o), "p", "o" + std::to_string(o), 1.0);
  }
  store.Finalize();
  const TermId p = store.MustId("p");

  PostingListCache base(&store, /*budget_bytes=*/1);
  SharedScanCache shared(&store, &base);
  std::vector<PatternKey> keys;
  for (int o = 0; o < 32; ++o) {
    keys.push_back(PatternKey{kInvalidTermId, p,
                              store.MustId("o" + std::to_string(o))});
  }
  shared.Prepare(keys);
  const auto held = shared.Get(keys[0]);
  // Churn the base cache; the held list must stay readable and Get must
  // keep returning the same object.
  for (const PatternKey& key : keys) (void)base.Get(key);
  EXPECT_EQ(shared.Get(keys[0]).get(), held.get());
  EXPECT_EQ(held->size(), 1u);
}

}  // namespace
}  // namespace specqp
