#include "stats/catalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace specqp {
namespace {

TEST(PatternStatsTest, EmptyDetection) {
  PatternStats stats;
  EXPECT_TRUE(stats.empty());
  stats.m = 5;
  EXPECT_TRUE(stats.empty());  // still zero mass
  stats.s_m = 1.0;
  EXPECT_FALSE(stats.empty());
}

TEST(StatisticsCatalogTest, ComputesPaperStats) {
  // Scores 100, 50, 25 normalise to 1, 0.5, 0.25 (total 1.75).
  // 80% boundary: 0.8*1.75 = 1.4, cumulative 1.0, 1.5 -> rank 2, sigma=0.5.
  TripleStore store;
  store.Add("a", "type", "singer", 100.0);
  store.Add("b", "type", "singer", 50.0);
  store.Add("c", "type", "singer", 25.0);
  store.Finalize();
  PostingListCache postings(&store);
  StatisticsCatalog catalog(&store, &postings);

  PatternKey key{kInvalidTermId, store.MustId("type"),
                 store.MustId("singer")};
  const PatternStats& stats = catalog.GetStats(key);
  EXPECT_EQ(stats.m, 3u);
  EXPECT_DOUBLE_EQ(stats.s_m, 1.75);
  EXPECT_DOUBLE_EQ(stats.sigma_r, 0.5);
  EXPECT_DOUBLE_EQ(stats.s_r, 1.5);
  EXPECT_FALSE(stats.empty());

  const TwoBucketHistogram h = stats.Histogram();
  EXPECT_DOUBLE_EQ(h.sigma_r(), 0.5);
  EXPECT_NEAR(h.head_mass(), 1.5 / 1.75, 1e-12);
}

TEST(StatisticsCatalogTest, EmptyPattern) {
  TripleStore store;
  store.Add("a", "type", "singer", 1.0);
  store.Finalize();
  PostingListCache postings(&store);
  StatisticsCatalog catalog(&store, &postings);
  PatternKey key{kInvalidTermId, store.MustId("type"), store.MustId("a")};
  const PatternStats& stats = catalog.GetStats(key);
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.m, 0u);
}

TEST(StatisticsCatalogTest, MemoisesResults) {
  testing::MusicFixture fx = testing::MakeMusicFixture();
  PostingListCache postings(&fx.store);
  StatisticsCatalog catalog(&fx.store, &postings);
  PatternKey key{kInvalidTermId, fx.type, fx.Id("singer")};
  const PatternStats& a = catalog.GetStats(key);
  const PatternStats& b = catalog.GetStats(key);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(StatisticsCatalogTest, CustomHeadFraction) {
  TripleStore store;
  store.Add("a", "type", "x", 100.0);
  store.Add("b", "type", "x", 50.0);
  store.Add("c", "type", "x", 25.0);
  store.Finalize();
  PostingListCache postings(&store);
  StatisticsCatalog catalog(&store, &postings, /*head_fraction=*/0.5);
  PatternKey key{kInvalidTermId, store.MustId("type"), store.MustId("x")};
  const PatternStats& stats = catalog.GetStats(key);
  // 0.5 * 1.75 = 0.875, first cumulative >= that is rank 1 (1.0).
  EXPECT_DOUBLE_EQ(stats.sigma_r, 1.0);
  EXPECT_DOUBLE_EQ(stats.s_r, 1.0);
}

TEST(StatisticsCatalogTest, SingleMatchPattern) {
  testing::MusicFixture fx = testing::MakeMusicFixture();
  PostingListCache postings(&fx.store);
  StatisticsCatalog catalog(&fx.store, &postings);
  // jazz_singer has two members (norah=55, ray=45).
  PatternKey key{kInvalidTermId, fx.type, fx.Id("jazz_singer")};
  const PatternStats& stats = catalog.GetStats(key);
  EXPECT_EQ(stats.m, 2u);
  EXPECT_FALSE(stats.empty());
}

TEST(StatisticsCatalogTest, EightyPercentBoundaryMidList) {
  testing::MusicFixture fx = testing::MakeMusicFixture();
  PostingListCache postings(&fx.store);
  StatisticsCatalog catalog(&fx.store, &postings);
  PatternKey key{kInvalidTermId, fx.type, fx.Id("jazz_singer")};
  const PatternStats& stats = catalog.GetStats(key);
  EXPECT_NEAR(stats.sigma_r, 45.0 / 55.0, 1e-12);
  EXPECT_NEAR(stats.s_r, 1.0 + 45.0 / 55.0, 1e-12);
  EXPECT_NEAR(stats.s_m, stats.s_r, 1e-12);  // boundary is the last rank
}

TEST(StatisticsCatalogTest, HistogramMassConsistency) {
  testing::MusicFixture fx = testing::MakeMusicFixture();
  PostingListCache postings(&fx.store);
  StatisticsCatalog catalog(&fx.store, &postings);
  for (const char* type : {"singer", "vocalist", "artist", "musician"}) {
    PatternKey key{kInvalidTermId, fx.type, fx.Id(type)};
    const PatternStats& stats = catalog.GetStats(key);
    ASSERT_FALSE(stats.empty());
    const TwoBucketHistogram h = stats.Histogram();
    EXPECT_NEAR(h.Cdf(1.0), 1.0, 1e-12);
    EXPECT_GE(h.head_mass(), 0.8 - 1e-9) << type;
    EXPECT_LE(h.sigma_r(), 1.0) << type;
  }
}

}  // namespace
}  // namespace specqp
