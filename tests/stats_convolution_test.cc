#include "stats/convolution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/grid_pdf.h"

namespace specqp {
namespace {

// Direct numerical convolution for cross-checking.
double NumericConvolutionAt(const TwoBucketHistogram& a,
                            const TwoBucketHistogram& b, double z) {
  const int steps = 20000;
  double sum = 0.0;
  const double lo = 0.0;
  const double hi = a.upper();
  for (int i = 0; i < steps; ++i) {
    const double t = lo + (hi - lo) * (i + 0.5) / steps;
    sum += a.Pdf(t) * b.Pdf(z - t) * (hi - lo) / steps;
  }
  return sum;
}

TEST(ConvolveTwoBucketTest, MassIsOne) {
  TwoBucketHistogram a(0.4, 0.8);
  TwoBucketHistogram b(0.7, 0.75);
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, b);
  EXPECT_NEAR(conv.Cdf(conv.upper()), 1.0, 1e-12);
  EXPECT_NEAR(conv.upper(), a.upper() + b.upper(), 1e-12);
}

TEST(ConvolveTwoBucketTest, MeansAdd) {
  TwoBucketHistogram a(0.4, 0.8);
  TwoBucketHistogram b(0.7, 0.75);
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, b);
  EXPECT_NEAR(conv.Mean(), a.Mean() + b.Mean(), 1e-9);
}

TEST(ConvolveTwoBucketTest, MatchesNumericConvolutionPointwise) {
  TwoBucketHistogram a(0.3, 0.8);
  TwoBucketHistogram b(0.6, 0.7);
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, b);
  for (double z : {0.1, 0.45, 0.9, 1.3, 1.7, 1.95}) {
    EXPECT_NEAR(conv.Pdf(z), NumericConvolutionAt(a, b, z), 2e-3)
        << "z=" << z;
  }
}

TEST(ConvolveTwoBucketTest, ScaledInputsShiftSupport) {
  TwoBucketHistogram a(0.5, 0.8);
  TwoBucketHistogram b = a.ScaledBy(0.5);  // support [0, 0.5]
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, b);
  EXPECT_NEAR(conv.upper(), 1.5, 1e-12);
  EXPECT_NEAR(conv.Mean(), a.Mean() * 1.5, 1e-9);
}

TEST(ConvolveTwoBucketTest, CommutativeUpToNumerics) {
  TwoBucketHistogram a(0.2, 0.9);
  TwoBucketHistogram b(0.75, 0.6);
  PiecewiseLinearPdf ab = ConvolveTwoBucket(a, b);
  PiecewiseLinearPdf ba = ConvolveTwoBucket(b, a);
  for (double z : {0.2, 0.7, 1.1, 1.6}) {
    EXPECT_NEAR(ab.Pdf(z), ba.Pdf(z), 1e-9);
    EXPECT_NEAR(ab.Cdf(z), ba.Cdf(z), 1e-9);
  }
}

TEST(ConvolveTwoBucketTest, AgreesWithGridConvolution) {
  TwoBucketHistogram a(0.35, 0.8);
  TwoBucketHistogram b(0.55, 0.8);
  PiecewiseLinearPdf exact = ConvolveTwoBucket(a, b);
  const double delta = 1.0 / 1024.0;
  GridPdf grid = GridPdf::Convolve(GridPdf::FromDistribution(a, delta),
                                   GridPdf::FromDistribution(b, delta));
  for (double z : {0.3, 0.8, 1.2, 1.7}) {
    EXPECT_NEAR(exact.Cdf(z), grid.Cdf(z), 5e-3) << "z=" << z;
  }
}

// --- refit -------------------------------------------------------------------

TEST(RefitTwoBucketTest, PreservesSupportAndHeadFraction) {
  TwoBucketHistogram a(0.4, 0.8);
  TwoBucketHistogram b(0.6, 0.8);
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, b);
  TwoBucketHistogram refit = RefitTwoBucket(conv, 0.8);
  EXPECT_DOUBLE_EQ(refit.upper(), conv.upper());
  EXPECT_DOUBLE_EQ(refit.head_mass(), 0.8);
  // The boundary splits the *score mass* 80/20.
  const double above = conv.PartialExpectationAbove(refit.sigma_r());
  EXPECT_NEAR(above / conv.Mean(), 0.8, 1e-6);
}

TEST(RefitTwoBucketTest, RefitOfTwoBucketKeepsMeanClose) {
  // Refitting an already-two-bucket-like shape should approximately
  // preserve its first moment.
  TwoBucketHistogram a(0.5, 0.8);
  TwoBucketHistogram b(0.5, 0.8);
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, b);
  TwoBucketHistogram refit = RefitTwoBucket(conv, 0.8);
  EXPECT_NEAR(refit.Mean(), conv.Mean(), 0.15 * conv.Mean());
}

TEST(RefitTwoBucketTest, RepeatedRefitStaysWellFormed) {
  // Refitting is not idempotent in sigma_r (each refit redistributes mass
  // within its buckets), but it must keep the model well-formed and the
  // boundary inside the support, with the head fraction pinned.
  TwoBucketHistogram a(0.3, 0.8);
  TwoBucketHistogram b(0.7, 0.6);
  TwoBucketHistogram acc = RefitTwoBucket(ConvolveTwoBucket(a, b), 0.8);
  for (int i = 0; i < 4; ++i) {
    acc = RefitTwoBucket(acc, 0.8);
    EXPECT_DOUBLE_EQ(acc.head_mass(), 0.8);
    EXPECT_GT(acc.sigma_r(), 0.0);
    EXPECT_LT(acc.sigma_r(), acc.upper());
    EXPECT_NEAR(acc.Cdf(acc.upper()), 1.0, 1e-12);
  }
}

TEST(RefitTwoBucketTest, ChainedConvolutionStaysNormalised) {
  // Three-pattern estimation path: convolve, refit, convolve again.
  TwoBucketHistogram h(0.5, 0.8);
  TwoBucketHistogram acc = h;
  for (int i = 0; i < 3; ++i) {
    PiecewiseLinearPdf conv = ConvolveTwoBucket(acc, h);
    acc = RefitTwoBucket(conv, 0.8);
    EXPECT_NEAR(acc.Cdf(acc.upper()), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(acc.upper(), 1.0 + (i + 1) * 1.0);
  }
}

TEST(RefitTwoBucketTest, DifferentHeadFractions) {
  TwoBucketHistogram a(0.4, 0.8);
  PiecewiseLinearPdf conv = ConvolveTwoBucket(a, a);
  for (double frac : {0.5, 0.7, 0.9}) {
    TwoBucketHistogram refit = RefitTwoBucket(conv, frac);
    EXPECT_DOUBLE_EQ(refit.head_mass(), frac);
    EXPECT_NEAR(conv.PartialExpectationAbove(refit.sigma_r()) / conv.Mean(),
                frac, 1e-6);
  }
}

}  // namespace
}  // namespace specqp
