#include "relax/rules_io.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

RelaxationIndex MakeSampleIndex() {
  RelaxationIndex index;
  auto add = [&index](TermId p, TermId from_o, TermId to_o, double w) {
    RelaxationRule rule{PatternKey{kInvalidTermId, p, from_o},
                        PatternKey{kInvalidTermId, p, to_o}, w};
    SPECQP_CHECK(index.AddRule(rule).ok());
  };
  add(1, 10, 11, 0.9);
  add(1, 10, 12, 0.6);
  add(1, 10, 13, 0.3);
  add(2, 20, 21, 0.8);
  add(2, 22, 21, 0.5);
  return index;
}

TEST(RulesIoTest, RoundTripPreservesRules) {
  const RelaxationIndex original = MakeSampleIndex();
  const std::string path = TempPath("rules.sqpr");
  ASSERT_TRUE(SaveRules(original, path).ok());

  auto loaded = LoadRules(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().total_rules(), original.total_rules());
  EXPECT_EQ(loaded.value().num_domains(), original.num_domains());
  EXPECT_EQ(loaded.value().AllRules(), original.AllRules());
}

TEST(RulesIoTest, RoundTripEmptyIndex) {
  RelaxationIndex empty;
  const std::string path = TempPath("empty.sqpr");
  ASSERT_TRUE(SaveRules(empty, path).ok());
  auto loaded = LoadRules(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().total_rules(), 0u);
}

TEST(RulesIoTest, RoundTripLargeRandomIndex) {
  Rng rng(404);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 600;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  RelaxationIndex original = specqp::testing::MakeRandomRules(&rng, store, 5);
  ASSERT_GT(original.total_rules(), 20u);

  const std::string path = TempPath("large.sqpr");
  ASSERT_TRUE(SaveRules(original, path).ok());
  auto loaded = LoadRules(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().AllRules(), original.AllRules());
}

TEST(RulesIoTest, LoadMissingFileFails) {
  auto r = LoadRules(TempPath("nope.sqpr"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(RulesIoTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.sqpr");
  std::ofstream out(path, std::ios::binary);
  out << "NOTRULESxxxxxxxxxxxxxxxxxxxx";
  out.close();
  auto r = LoadRules(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(RulesIoTest, LoadDetectsCorruptedPayload) {
  const RelaxationIndex original = MakeSampleIndex();
  const std::string path = TempPath("corrupt.sqpr");
  ASSERT_TRUE(SaveRules(original, path).ok());

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::string blob(static_cast<size_t>(in.tellg()), '\0');
  in.seekg(0);
  in.read(blob.data(), static_cast<std::streamsize>(blob.size()));
  in.close();
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();

  auto r = LoadRules(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(RulesIoTest, LoadRejectsTruncation) {
  const RelaxationIndex original = MakeSampleIndex();
  const std::string path = TempPath("trunc.sqpr");
  ASSERT_TRUE(SaveRules(original, path).ok());

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const size_t size = static_cast<size_t>(in.tellg());
  std::string blob(size, '\0');
  in.seekg(0);
  in.read(blob.data(), static_cast<std::streamsize>(size));
  in.close();
  for (size_t cut : {size / 3, size - 5}) {
    const std::string cut_path = TempPath("trunc_cut.sqpr");
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto r = LoadRules(cut_path);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(AllRulesTest, DeterministicOrder) {
  const RelaxationIndex index = MakeSampleIndex();
  const auto a = index.AllRules();
  const auto b = index.AllRules();
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 5u);
  // Sorted by domain key, then weight descending.
  EXPECT_DOUBLE_EQ(a[0].weight, 0.9);
  EXPECT_DOUBLE_EQ(a[1].weight, 0.6);
  EXPECT_DOUBLE_EQ(a[2].weight, 0.3);
}

}  // namespace
}  // namespace specqp
