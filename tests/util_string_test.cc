#include "util/string_util.h"

#include <gtest/gtest.h>

namespace specqp {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(StrFormat("%s!", long_str.c_str()).size(), 501u);
}

TEST(StrSplitTest, BasicSplit) {
  const auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyPieces) {
  const auto parts = StrSplit(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrSplitTest, NoSeparator) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi there \t\n"), "hi there");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", ""));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("SeLeCT"), "select");
  EXPECT_EQ(AsciiToLower("abc123#?"), "abc123#?");
}

TEST(DoubleToStringTest, TrimsTrailingZeros) {
  EXPECT_EQ(DoubleToString(0.8), "0.8");
  EXPECT_EQ(DoubleToString(12.25), "12.25");
  EXPECT_EQ(DoubleToString(3.0), "3.0");
  EXPECT_EQ(DoubleToString(0.128, 2), "0.13");
}

}  // namespace
}  // namespace specqp
