#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace specqp {
namespace {

std::vector<std::function<void()>> FillTasks(std::vector<int>* out,
                                             int value_base) {
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < out->size(); ++i) {
    tasks.push_back([out, i, value_base] {
      (*out)[i] = value_base + static_cast<int>(i);
    });
  }
  return tasks;
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> results(100, -1);
  std::vector<std::function<void()>> tasks = FillTasks(&results, 10);
  pool.RunAndWait(&tasks);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 10 + static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::vector<int> results(7, -1);
  std::vector<std::function<void()>> tasks = FillTasks(&results, 0);
  pool.RunAndWait(&tasks);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  pool.RunAndWait(&tasks);  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.RunAndWait(&tasks);
  }
  EXPECT_EQ(counter.load(), 50 * 8);
}

TEST(ThreadPoolTest, TaskEffectsVisibleAfterJoin) {
  // RunAndWait must establish happens-before: plain (non-atomic) writes in
  // tasks are read by the caller afterwards. TSan verifies this for real;
  // here we at least check the values.
  ThreadPool pool(4);
  std::vector<uint64_t> sums(16, 0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < sums.size(); ++i) {
    tasks.push_back([&sums, i] {
      uint64_t sum = 0;
      for (uint64_t j = 0; j <= 1000; ++j) sum += j;
      sums[i] = sum + i;
    });
  }
  pool.RunAndWait(&tasks);
  for (size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i], 500500u + i);
  }
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::vector<int> results(1000, -1);
  std::vector<std::function<void()>> tasks = FillTasks(&results, 0);
  pool.RunAndWait(&tasks);
  EXPECT_EQ(std::accumulate(results.begin(), results.end(), 0LL),
            999LL * 1000 / 2);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

}  // namespace
}  // namespace specqp
