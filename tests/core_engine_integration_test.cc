#include "core/engine.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

TEST(EngineTest, ExecuteTextEndToEnd) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const auto result = testing::ExecuteText(
      engine,
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <vocalist> }",
      3, Strategy::kTrinit);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);
  // shakira (1.0 + 1.0) tops the list.
  EXPECT_EQ(result.value().rows[0].bindings[0], fx.Id("shakira"));
  EXPECT_NEAR(result.value().rows[0].score, 2.0, 1e-9);
}

TEST(EngineTest, ExecuteTextParseErrorPropagates) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const auto result =
      testing::ExecuteText(engine, "SELECT ?s WHERE { ?s <rdf:type> <dragon> }", 3,
                         Strategy::kTrinit);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, StrategiesShareCaches) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  (void)testing::Execute(engine, query, 5, Strategy::kTrinit);
  const size_t after_first = engine.postings().size();
  (void)testing::Execute(engine, query, 5, Strategy::kSpecQp);
  // Spec-QP needed no posting lists beyond what TriniT already built.
  EXPECT_EQ(engine.postings().size(), after_first);
}

TEST(EngineTest, WarmPreloadsPostingsAndStats) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  engine.Warm(query);
  const uint64_t misses_after_warm = engine.postings().misses();
  (void)testing::Execute(engine, query, 5, Strategy::kTrinit);
  EXPECT_EQ(engine.postings().misses(), misses_after_warm);
}

TEST(EngineTest, SpecQpRowsAreSortedAndBounded) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query =
      fx.TypeQuery({"singer", "lyricist", "guitarist", "pianist"});
  const auto result = testing::Execute(engine, query, 10, Strategy::kSpecQp);
  EXPECT_LE(result.rows.size(), 10u);
  double prev = 1e9;
  for (const ScoredRow& row : result.rows) {
    EXPECT_LE(row.score, prev + 1e-9);
    prev = row.score;
  }
}

TEST(EngineTest, SpecQpNeverUsesMoreObjectsThanTrinit) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  for (const auto& names : std::vector<std::vector<std::string>>{
           {"singer", "vocalist"},
           {"singer", "lyricist", "guitarist"},
           {"singer", "lyricist", "guitarist", "pianist"}}) {
    const Query query = fx.TypeQuery(names);
    const auto trinit = testing::Execute(engine, query, 10, Strategy::kTrinit);
    const auto spec = testing::Execute(engine, query, 10, Strategy::kSpecQp);
    EXPECT_LE(spec.stats.answer_objects, trinit.stats.answer_objects);
  }
}

TEST(EngineTest, PlanOnlyMatchesExecutePlan) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "pianist"});
  PlanDiagnostics diag;
  const QueryPlan planned = engine.PlanOnly(query, 10, &diag);
  const auto executed = testing::Execute(engine, query, 10, Strategy::kSpecQp);
  EXPECT_EQ(planned.singletons, executed.plan.singletons);
  EXPECT_EQ(planned.join_group, executed.plan.join_group);
}

TEST(EngineTest, StrategyNames) {
  EXPECT_EQ(StrategyName(Strategy::kSpecQp), "Spec-QP");
  EXPECT_EQ(StrategyName(Strategy::kTrinit), "TriniT");
  EXPECT_EQ(StrategyName(Strategy::kNoRelax), "NoRelax");
}

TEST(EngineDeathTest, RequiresFinalizedStore) {
  TripleStore store;
  RelaxationIndex rules;
  EXPECT_DEATH(Engine(&store, &rules), "finalized");
}

// --- system-level properties over random data --------------------------------

class EnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnginePropertyTest, TrinitEqualsOracleAndSpecQpEqualsItsPlan) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 3313 + 29);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 30;
  cfg.num_predicates = 3;
  cfg.num_objects = 10;
  cfg.num_triples = 220;
  TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  RelaxationIndex rules = specqp::testing::MakeRandomRules(&rng, store, 3);
  Engine engine(&store, &rules);
  ExhaustiveEvaluator oracle(&store, &rules);

  for (int trial = 0; trial < 5; ++trial) {
    const size_t num_patterns = 2 + rng.NextBounded(2);
    const Query query =
        specqp::testing::MakeRandomStarQuery(&rng, store, num_patterns);
    const size_t k = 1 + rng.NextBounded(10);

    // (1) TriniT returns the true top-k.
    const auto trinit = testing::Execute(engine, query, k, Strategy::kTrinit);
    const auto truth = oracle.Evaluate(query);
    const size_t expect = std::min(k, truth.answers.size());
    ASSERT_EQ(trinit.rows.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_NEAR(trinit.rows[i].score, truth.answers[i].score, 1e-9);
    }

    // (2) Spec-QP is exact with respect to its own plan: its output equals
    // the oracle over the rule set restricted to the plan's singletons.
    const auto spec = testing::Execute(engine, query, k, Strategy::kSpecQp);
    RelaxationIndex filtered;
    bool well_defined = true;
    for (size_t i : spec.plan.singletons) {
      for (size_t j = 0; j < query.num_patterns(); ++j) {
        if (j != i && query.pattern(j).Key() == query.pattern(i).Key()) {
          well_defined = false;  // duplicate pattern keys: skip the check
        }
      }
      for (const RelaxationRule& rule :
           rules.RulesFor(query.pattern(i).Key())) {
        ASSERT_TRUE(filtered.AddRule(rule).ok());
      }
    }
    if (!well_defined) continue;
    ExhaustiveEvaluator plan_oracle(&store, &filtered);
    const auto plan_truth = plan_oracle.Evaluate(query);
    const size_t plan_expect = std::min(k, plan_truth.answers.size());
    ASSERT_EQ(spec.rows.size(), plan_expect);
    for (size_t i = 0; i < plan_expect; ++i) {
      EXPECT_NEAR(spec.rows[i].score, plan_truth.answers[i].score, 1e-9);
    }

    // (3) Every Spec-QP answer is a genuine answer whose score never
    // exceeds the oracle's score for the same binding.
    for (const ScoredRow& row : spec.rows) {
      bool found = false;
      for (const auto& answer : truth.answers) {
        if (answer.bindings == row.bindings) {
          EXPECT_LE(row.score, answer.score + 1e-9);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "Spec-QP emitted a non-answer";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace specqp
