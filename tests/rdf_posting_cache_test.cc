// Tests for the PostingListCache eviction policy (budgeted sharded LRU)
// and the counter-reset semantics of Clear().

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/posting_list.h"
#include "rdf/triple_store.h"

namespace specqp {
namespace {

// A store with `num_objects` distinct (p, o) pattern keys, each matching
// exactly `triples_per_object` triples — many small posting lists, ideal
// for exercising eviction churn.
TripleStore MakeWideStore(size_t num_objects, size_t triples_per_object = 1) {
  TripleStore store;
  for (size_t o = 0; o < num_objects; ++o) {
    for (size_t t = 0; t < triples_per_object; ++t) {
      store.Add("s" + std::to_string(o) + "_" + std::to_string(t), "p",
                "o" + std::to_string(o), 1.0 + static_cast<double>(t));
    }
  }
  store.Finalize();
  return store;
}

PatternKey KeyFor(const TripleStore& store, size_t object_index) {
  return PatternKey{kInvalidTermId, store.MustId("p"),
                    store.MustId("o" + std::to_string(object_index))};
}

TEST(PostingCacheClearTest, ClearResetsCounters) {
  // Regression: Clear() used to drop the lists but keep hits_/misses_, so
  // hit rates measured across warm/cold bench phases were wrong.
  TripleStore store = MakeWideStore(4);
  PostingListCache cache(&store);
  cache.Get(KeyFor(store, 0));
  cache.Get(KeyFor(store, 0));
  cache.Get(KeyFor(store, 1));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  // The post-Clear phase counts from zero: one cold miss, one warm hit.
  cache.Get(KeyFor(store, 0));
  cache.Get(KeyFor(store, 0));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PostingCacheEvictionTest, BudgetRespectedUnderChurn) {
  TripleStore store = MakeWideStore(256);
  const size_t budget = 8 * 1024;
  PostingListCache cache(&store, budget);
  for (int round = 0; round < 3; ++round) {
    for (size_t o = 0; o < 256; ++o) {
      auto list = cache.Get(KeyFor(store, o));
      ASSERT_EQ(list->size(), 1u);
      // `list` is dropped here, so nothing stays pinned between Gets.
    }
    EXPECT_LE(cache.bytes(), budget) << "round " << round;
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LT(cache.size(), 256u);
}

TEST(PostingCacheEvictionTest, UnboundedByDefault) {
  TripleStore store = MakeWideStore(64);
  PostingListCache cache(&store);
  for (size_t o = 0; o < 64; ++o) cache.Get(KeyFor(store, o));
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(PostingCacheEvictionTest, PinnedListsSurviveEviction) {
  TripleStore store = MakeWideStore(128);
  // A budget of 1 byte forces every unpinned list out.
  PostingListCache cache(&store, 1);
  auto pinned = cache.Get(KeyFor(store, 0));
  for (size_t o = 1; o < 128; ++o) cache.Get(KeyFor(store, o));
  // The pinned list must still be resident: getting it again is a hit and
  // returns the same object.
  const uint64_t hits_before = cache.hits();
  auto again = cache.Get(KeyFor(store, 0));
  EXPECT_EQ(cache.hits(), hits_before + 1);
  EXPECT_EQ(pinned.get(), again.get());
  EXPECT_EQ(pinned->size(), 1u);
}

TEST(PostingCacheEvictionTest, EvictedListStaysUsableThroughSharedPtr) {
  TripleStore store = MakeWideStore(64, 3);
  PostingListCache cache(&store, 1);
  auto held = cache.Get(KeyFor(store, 0));
  // Drop the pin and churn: the entry is now evictable.
  std::shared_ptr<const PostingList> weak_copy = held;
  held.reset();
  for (size_t o = 1; o < 64; ++o) cache.Get(KeyFor(store, o));
  // Whatever the cache did, the surviving shared_ptr still reads fine.
  ASSERT_EQ(weak_copy->size(), 3u);
  EXPECT_DOUBLE_EQ(weak_copy->entries[0].score, 1.0);
}

TEST(PostingCacheEvictionTest, LruOrderEvictsColdestFirst) {
  TripleStore store = MakeWideStore(32);
  PostingListCache cache(&store, 1);
  // Two keys in (usually) different shards; regardless of sharding, after
  // churning every other key, re-getting an old key must be a miss if it
  // was evicted — and the counters must reflect exactly one outcome.
  cache.Get(KeyFor(store, 0));
  for (size_t o = 1; o < 32; ++o) cache.Get(KeyFor(store, o));
  const uint64_t gets_before = cache.hits() + cache.misses();
  cache.Get(KeyFor(store, 0));
  EXPECT_EQ(cache.hits() + cache.misses(), gets_before + 1);
  // With a 1-byte budget nothing unpinned survives, so this was a miss.
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(PostingCachePartitionsTest, MemoisedAcrossCalls) {
  TripleStore store = MakeWideStore(4, 8);
  PostingListCache cache(&store);
  const PatternKey key = KeyFor(store, 0);
  const auto first = cache.GetPartitions(key, /*slot=*/0, 4);
  ASSERT_EQ(first.size(), 4u);
  const uint64_t misses_after_first = cache.misses();
  const auto second = cache.GetPartitions(key, 0, 4);
  EXPECT_EQ(cache.misses(), misses_after_first) << "second call must hit";
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first[i].get(), second[i].get());
  }
  // A different partition count is a different memo entry.
  const auto other = cache.GetPartitions(key, 0, 2);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_GT(cache.misses(), misses_after_first);
}

TEST(PostingCachePartitionsTest, PiecesFormTheFullList) {
  TripleStore store = MakeWideStore(3, 10);
  PostingListCache cache(&store);
  const PatternKey key = KeyFor(store, 1);
  const auto full = cache.Get(key);
  const auto pieces = cache.GetPartitions(key, 0, 3);
  size_t total = 0;
  for (const auto& piece : pieces) total += piece->size();
  EXPECT_EQ(total, full->size());
}

TEST(PostingCachePartitionsTest, CountTowardsBudgetAndClear) {
  TripleStore store = MakeWideStore(16, 4);
  PostingListCache cache(&store);
  const size_t before = cache.bytes();
  cache.GetPartitions(KeyFor(store, 0), 0, 4);
  EXPECT_GT(cache.bytes(), before) << "pieces must be accounted";
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  // And they are evictable: a tiny budget churns them out.
  PostingListCache bounded(&store, 1);
  for (size_t o = 0; o < 16; ++o) bounded.GetPartitions(KeyFor(store, o), 0, 4);
  EXPECT_GT(bounded.evictions(), 0u);
  EXPECT_LE(bounded.bytes(), 4096u);  // only the most recent survivors
}

TEST(PostingCacheEvictionTest, CountersMonotoneUnderChurn) {
  TripleStore store = MakeWideStore(64);
  PostingListCache cache(&store, 2 * 1024);
  uint64_t prev_hits = 0;
  uint64_t prev_misses = 0;
  uint64_t prev_evictions = 0;
  uint64_t gets = 0;
  for (int round = 0; round < 4; ++round) {
    for (size_t o = 0; o < 64; ++o) {
      cache.Get(KeyFor(store, o));
      ++gets;
      const uint64_t h = cache.hits();
      const uint64_t m = cache.misses();
      const uint64_t e = cache.evictions();
      EXPECT_GE(h, prev_hits);
      EXPECT_GE(m, prev_misses);
      EXPECT_GE(e, prev_evictions);
      EXPECT_EQ(h + m, gets);
      prev_hits = h;
      prev_misses = m;
      prev_evictions = e;
    }
  }
}

}  // namespace
}  // namespace specqp
