// Tests for the PostingListCache eviction policy (budgeted sharded LRU)
// and the counter-reset semantics of Clear().

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/posting_list.h"
#include "rdf/triple_store.h"

namespace specqp {
namespace {

// A store with `num_objects` distinct (p, o) pattern keys, each matching
// exactly `triples_per_object` triples — many small posting lists, ideal
// for exercising eviction churn.
TripleStore MakeWideStore(size_t num_objects, size_t triples_per_object = 1) {
  TripleStore store;
  for (size_t o = 0; o < num_objects; ++o) {
    for (size_t t = 0; t < triples_per_object; ++t) {
      store.Add("s" + std::to_string(o) + "_" + std::to_string(t), "p",
                "o" + std::to_string(o), 1.0 + static_cast<double>(t));
    }
  }
  store.Finalize();
  return store;
}

PatternKey KeyFor(const TripleStore& store, size_t object_index) {
  return PatternKey{kInvalidTermId, store.MustId("p"),
                    store.MustId("o" + std::to_string(object_index))};
}

TEST(PostingCacheClearTest, ClearResetsCounters) {
  // Regression: Clear() used to drop the lists but keep hits_/misses_, so
  // hit rates measured across warm/cold bench phases were wrong.
  TripleStore store = MakeWideStore(4);
  PostingListCache cache(&store);
  (void)cache.Get(KeyFor(store, 0));
  (void)cache.Get(KeyFor(store, 0));
  (void)cache.Get(KeyFor(store, 1));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  // The post-Clear phase counts from zero: one cold miss, one warm hit.
  (void)cache.Get(KeyFor(store, 0));
  (void)cache.Get(KeyFor(store, 0));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PostingCacheEvictionTest, BudgetRespectedUnderChurn) {
  TripleStore store = MakeWideStore(256);
  const size_t budget = 8 * 1024;
  PostingListCache cache(&store, budget);
  for (int round = 0; round < 3; ++round) {
    for (size_t o = 0; o < 256; ++o) {
      auto list = cache.Get(KeyFor(store, o));
      ASSERT_EQ(list->size(), 1u);
      // `list` is dropped here, so nothing stays pinned between Gets.
    }
    EXPECT_LE(cache.bytes(), budget) << "round " << round;
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LT(cache.size(), 256u);
}

TEST(PostingCacheEvictionTest, UnboundedByDefault) {
  TripleStore store = MakeWideStore(64);
  PostingListCache cache(&store);
  for (size_t o = 0; o < 64; ++o) (void)cache.Get(KeyFor(store, o));
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(PostingCacheEvictionTest, PinnedListsSurviveEviction) {
  TripleStore store = MakeWideStore(128);
  // A budget of 1 byte forces every unpinned list out.
  PostingListCache cache(&store, 1);
  auto pinned = cache.Get(KeyFor(store, 0));
  for (size_t o = 1; o < 128; ++o) (void)cache.Get(KeyFor(store, o));
  // The pinned list must still be resident: getting it again is a hit and
  // returns the same object.
  const uint64_t hits_before = cache.hits();
  auto again = cache.Get(KeyFor(store, 0));
  EXPECT_EQ(cache.hits(), hits_before + 1);
  EXPECT_EQ(pinned.get(), again.get());
  EXPECT_EQ(pinned->size(), 1u);
}

TEST(PostingCacheEvictionTest, EvictedListStaysUsableThroughSharedPtr) {
  TripleStore store = MakeWideStore(64, 3);
  PostingListCache cache(&store, 1);
  auto held = cache.Get(KeyFor(store, 0));
  // Drop the pin and churn: the entry is now evictable.
  std::shared_ptr<const PostingList> weak_copy = held;
  held.reset();
  for (size_t o = 1; o < 64; ++o) (void)cache.Get(KeyFor(store, o));
  // Whatever the cache did, the surviving shared_ptr still reads fine.
  ASSERT_EQ(weak_copy->size(), 3u);
  EXPECT_DOUBLE_EQ(weak_copy->entries[0].score, 1.0);
}

TEST(PostingCacheEvictionTest, LruOrderEvictsColdestFirst) {
  TripleStore store = MakeWideStore(32);
  PostingListCache cache(&store, 1);
  // Two keys in (usually) different shards; regardless of sharding, after
  // churning every other key, re-getting an old key must be a miss if it
  // was evicted — and the counters must reflect exactly one outcome.
  (void)cache.Get(KeyFor(store, 0));
  for (size_t o = 1; o < 32; ++o) (void)cache.Get(KeyFor(store, o));
  const uint64_t gets_before = cache.hits() + cache.misses();
  (void)cache.Get(KeyFor(store, 0));
  EXPECT_EQ(cache.hits() + cache.misses(), gets_before + 1);
  // With a 1-byte budget nothing unpinned survives, so this was a miss.
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(PostingCachePartitionsTest, MemoisedAcrossCalls) {
  TripleStore store = MakeWideStore(4, 8);
  PostingListCache cache(&store);
  const PatternKey key = KeyFor(store, 0);
  const auto first = cache.GetPartitions(key, /*slot=*/0, 4);
  ASSERT_EQ(first.size(), 4u);
  const uint64_t misses_after_first = cache.misses();
  const auto second = cache.GetPartitions(key, 0, 4);
  EXPECT_EQ(cache.misses(), misses_after_first) << "second call must hit";
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first[i].get(), second[i].get());
  }
  // A different partition count is a different memo entry.
  const auto other = cache.GetPartitions(key, 0, 2);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_GT(cache.misses(), misses_after_first);
}

TEST(PostingCachePartitionsTest, PiecesFormTheFullList) {
  TripleStore store = MakeWideStore(3, 10);
  PostingListCache cache(&store);
  const PatternKey key = KeyFor(store, 1);
  const auto full = cache.Get(key);
  const auto pieces = cache.GetPartitions(key, 0, 3);
  size_t total = 0;
  for (const auto& piece : pieces) total += piece->size();
  EXPECT_EQ(total, full->size());
}

TEST(PostingCachePartitionsTest, CountTowardsBudgetAndClear) {
  TripleStore store = MakeWideStore(16, 4);
  PostingListCache cache(&store);
  const size_t before = cache.bytes();
  (void)cache.GetPartitions(KeyFor(store, 0), 0, 4);
  EXPECT_GT(cache.bytes(), before) << "pieces must be accounted";
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  // And they are evictable: a tiny budget churns them out.
  PostingListCache bounded(&store, 1);
  for (size_t o = 0; o < 16; ++o) (void)bounded.GetPartitions(KeyFor(store, o), 0, 4);
  EXPECT_GT(bounded.evictions(), 0u);
  EXPECT_LE(bounded.bytes(), 4096u);  // only the most recent survivors
}

TEST(PostingCachePutPeekTest, PutInsertsAndPeekNeverBuilds) {
  TripleStore store = MakeWideStore(8, 4);
  PostingListCache cache(&store);
  const PatternKey key = KeyFor(store, 3);
  EXPECT_EQ(cache.Peek(key), nullptr);
  EXPECT_EQ(cache.misses(), 0u) << "Peek must not build or count";

  auto list = std::make_shared<const PostingList>(
      BuildPostingList(store, key));
  EXPECT_EQ(cache.Put(key, list).get(), list.get());
  EXPECT_EQ(cache.Peek(key).get(), list.get());
  // A Get after Put is a hit on the published list.
  const auto got = cache.Get(key);
  EXPECT_EQ(got.get(), list.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);

  // Put on a resident key keeps the existing list.
  auto other = std::make_shared<const PostingList>(
      BuildPostingList(store, key));
  EXPECT_EQ(cache.Put(key, other).get(), list.get());
}

// Builds a store where object 0 has one big (expensive-to-rebuild) posting
// list and every other object one tiny list, and returns `count` tiny-list
// keys that land in the same cache shard as the big key (so the per-shard
// budget arbitrates between them deterministically).
std::vector<PatternKey> SameShardSmallKeys(const TripleStore& store,
                                           const PatternKey& big,
                                           size_t count) {
  const size_t shard =
      PatternKeyHash{}(big) % PostingListCache::kNumShards;
  std::vector<PatternKey> keys;
  for (size_t o = 1; keys.size() < count; ++o) {
    const PatternKey key = KeyFor(store, o);
    if (PatternKeyHash{}(key) % PostingListCache::kNumShards == shard) {
      keys.push_back(key);
    }
  }
  return keys;
}

TEST(PostingCacheCostAwareTest, ExpensiveListOutlivesCheaperMoreRecent) {
  // Object 0: 512 triples (expensive to rebuild); objects 1..: 1 triple.
  TripleStore store;
  for (int t = 0; t < 512; ++t) {
    store.Add("s0_" + std::to_string(t), "p", "o0", 1.0 + t);
  }
  for (int o = 1; o < 64; ++o) {
    store.Add("s" + std::to_string(o), "p", "o" + std::to_string(o), 1.0);
  }
  store.Finalize();
  const PatternKey big = KeyFor(store, 0);
  const std::vector<PatternKey> small = SameShardSmallKeys(store, big, 2);

  // Budget the big key's shard to hold the big list plus one small list,
  // but not both smalls on top.
  const size_t big_bytes =
      PostingListCache::ApproxBytes(BuildPostingList(store, big));
  const size_t small_bytes =
      PostingListCache::ApproxBytes(BuildPostingList(store, small[0]));
  const size_t budget =
      PostingListCache::kNumShards * (big_bytes + small_bytes + 8);

  // Plain LRU: the big list is the coldest entry, so it is the victim —
  // despite costing ~500x more to rebuild than the small list it makes
  // room for.
  {
    PostingListCache lru(&store, budget, /*cost_aware=*/false);
    (void)lru.Get(big);
    (void)lru.Get(small[0]);
    (void)lru.Get(small[1]);  // over budget -> evict
    EXPECT_EQ(lru.Peek(big), nullptr) << "LRU evicts the cold big list";
    EXPECT_GT(lru.evictions(), 0u);
  }

  // Cost-aware: the cheap small list goes instead, and the expensive list
  // outlives the cheaper, more recently used one.
  {
    PostingListCache cost(&store, budget, /*cost_aware=*/true);
    (void)cost.Get(big);
    (void)cost.Get(small[0]);
    (void)cost.Get(small[1]);  // over budget -> evict
    EXPECT_NE(cost.Peek(big), nullptr)
        << "cost-aware keeps the expensive list";
    EXPECT_EQ(cost.Peek(small[0]), nullptr)
        << "the cheaper, more recent list is the victim";
    EXPECT_GT(cost.evictions(), 0u);
    // Re-getting the survivor is a hit.
    const uint64_t hits_before = cost.hits();
    (void)cost.Get(big);
    EXPECT_EQ(cost.hits(), hits_before + 1);
  }
}

TEST(PostingCacheEvictionTest, CountersMonotoneUnderChurn) {
  TripleStore store = MakeWideStore(64);
  PostingListCache cache(&store, 2 * 1024);
  uint64_t prev_hits = 0;
  uint64_t prev_misses = 0;
  uint64_t prev_evictions = 0;
  uint64_t gets = 0;
  for (int round = 0; round < 4; ++round) {
    for (size_t o = 0; o < 64; ++o) {
      (void)cache.Get(KeyFor(store, o));
      ++gets;
      const uint64_t h = cache.hits();
      const uint64_t m = cache.misses();
      const uint64_t e = cache.evictions();
      EXPECT_GE(h, prev_hits);
      EXPECT_GE(m, prev_misses);
      EXPECT_GE(e, prev_evictions);
      EXPECT_EQ(h + m, gets);
      prev_hits = h;
      prev_misses = m;
      prev_evictions = e;
    }
  }
}

}  // namespace
}  // namespace specqp
