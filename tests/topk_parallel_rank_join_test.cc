#include "topk/parallel_rank_join.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/posting_partition.h"
#include "test_util.h"
#include "topk/rank_join.h"
#include "topk/top_k.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace specqp {
namespace {

using specqp::testing::Drain;
using specqp::testing::VectorIterator;

ScoredRow MakeRow(TermId key, TermId payload, double score) {
  ScoredRow row(2, score);
  row.bindings[0] = key;
  row.bindings[1] = payload;
  return row;
}

std::unique_ptr<VectorIterator> SortedInput(std::vector<ScoredRow> rows) {
  std::sort(rows.begin(), rows.end(), RowBefore);
  return std::make_unique<VectorIterator>(std::move(rows));
}

TEST(ParallelRankJoinTest, MergesDisjointStreamsInRowBeforeOrder) {
  ExecStats stats;
  ExecContext ctx(&stats);  // no pool: refills run inline
  std::vector<std::unique_ptr<ScoredRowIterator>> parts;
  parts.push_back(SortedInput({MakeRow(1, 10, 0.9), MakeRow(3, 30, 0.5)}));
  parts.push_back(SortedInput({MakeRow(2, 20, 0.7), MakeRow(4, 40, 0.5)}));
  parts.push_back(SortedInput({}));
  ParallelRankJoin merge(std::move(parts), &ctx);
  const auto rows = Drain(&merge);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].bindings[0], 1u);
  EXPECT_EQ(rows[1].bindings[0], 2u);
  // The 0.5 tie breaks on bindings: key 3 before key 4.
  EXPECT_EQ(rows[2].bindings[0], 3u);
  EXPECT_EQ(rows[3].bindings[0], 4u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_TRUE(!RowBefore(rows[i], rows[i - 1])) << "rank " << i;
  }
}

TEST(ParallelRankJoinTest, AllPartitionsEmpty) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> parts;
  parts.push_back(SortedInput({}));
  parts.push_back(SortedInput({}));
  ParallelRankJoin merge(std::move(parts), &ctx);
  ScoredRow row;
  EXPECT_FALSE(merge.Next(&row));
  EXPECT_FALSE(merge.Next(&row));
  EXPECT_DOUBLE_EQ(merge.UpperBound(), ScoredRowIterator::kExhausted);
}

TEST(ParallelRankJoinTest, UpperBoundNeverIncreases) {
  ExecStats stats;
  ExecContext ctx(&stats);
  std::vector<std::unique_ptr<ScoredRowIterator>> parts;
  parts.push_back(SortedInput({MakeRow(1, 0, 0.9), MakeRow(5, 0, 0.3),
                               MakeRow(9, 0, 0.1)}));
  parts.push_back(SortedInput({MakeRow(2, 0, 0.8), MakeRow(6, 0, 0.35)}));
  ParallelRankJoin merge(std::move(parts), &ctx, /*batch_size=*/1);
  double prev = merge.UpperBound();
  ScoredRow row;
  while (merge.Next(&row)) {
    EXPECT_LE(row.score, prev + 1e-9);
    const double bound = merge.UpperBound();
    EXPECT_LE(bound, prev + 1e-9);
    prev = bound;
  }
}

// The load-bearing property: a hash-partitioned join merged by
// ParallelRankJoin equals the serial RankJoin row-for-row, at any thread
// count and batch size.
class ParallelRankJoinEquivalenceTest : public ::testing::TestWithParam<int> {
};

TEST_P(ParallelRankJoinEquivalenceTest, MatchesSerialRankJoin) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 4099 + 23);
  for (int trial = 0; trial < 8; ++trial) {
    // Random join inputs with plenty of score ties and shared keys.
    std::vector<ScoredRow> left;
    std::vector<ScoredRow> right;
    const size_t nl = 20 + rng.NextBounded(60);
    const size_t nr = 20 + rng.NextBounded(60);
    for (size_t i = 0; i < nl; ++i) {
      left.push_back(MakeRow(static_cast<TermId>(rng.NextBounded(16)),
                             kInvalidTermId,
                             0.1 * static_cast<double>(rng.NextBounded(9))));
    }
    for (size_t i = 0; i < nr; ++i) {
      right.push_back(MakeRow(static_cast<TermId>(rng.NextBounded(16)),
                              static_cast<TermId>(100 + rng.NextBounded(4)),
                              0.1 * static_cast<double>(rng.NextBounded(9))));
    }

    // Serial baseline.
    ExecStats serial_stats;
    ExecContext serial_ctx(&serial_stats);
    RankJoin serial(SortedInput(left), SortedInput(right), {0}, &serial_ctx);
    const auto expected = Drain(&serial);

    for (const size_t threads : {1u, 2u, 8u}) {
      for (const size_t batch : {1u, 4u, 32u}) {
        const uint32_t parts = static_cast<uint32_t>(threads);
        std::vector<std::vector<ScoredRow>> left_parts(parts);
        std::vector<std::vector<ScoredRow>> right_parts(parts);
        for (const ScoredRow& row : left) {
          left_parts[PostingPartitionOf(row.bindings[0], parts)].push_back(
              row);
        }
        for (const ScoredRow& row : right) {
          right_parts[PostingPartitionOf(row.bindings[0], parts)].push_back(
              row);
        }

        ThreadPool pool(threads - 1);
        ExecStats stats;
        ExecContext ctx(&stats, threads > 1 ? &pool : nullptr);
        std::vector<std::unique_ptr<ScoredRowIterator>> roots;
        for (uint32_t p = 0; p < parts; ++p) {
          roots.push_back(std::make_unique<RankJoin>(
              SortedInput(left_parts[p]), SortedInput(right_parts[p]),
              std::vector<VarId>{0}, ctx.ForPartition()));
        }
        ParallelRankJoin merge(std::move(roots), &ctx, batch);
        const auto actual = Drain(&merge);
        ctx.MergePartitionStats();

        ASSERT_EQ(actual.size(), expected.size())
            << "threads=" << threads << " batch=" << batch;
        for (size_t i = 0; i < actual.size(); ++i) {
          EXPECT_EQ(actual[i].bindings, expected[i].bindings)
              << "threads=" << threads << " batch=" << batch << " rank " << i;
          EXPECT_EQ(actual[i].score, expected[i].score)
              << "threads=" << threads << " batch=" << batch << " rank " << i;
        }
        // Partition counters were merged back into the root stats.
        EXPECT_EQ(stats.join_results, serial_stats.join_results)
            << "threads=" << threads << " batch=" << batch;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRankJoinEquivalenceTest,
                         ::testing::Range(0, 6));

TEST(ParallelRankJoinTest, TopKPrefixStableUnderBatchSize) {
  // PullTopK over the merger must not depend on how deep refills read.
  std::vector<ScoredRow> rows;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    rows.push_back(MakeRow(static_cast<TermId>(i), 0,
                           0.05 * static_cast<double>(rng.NextBounded(12))));
  }
  std::vector<std::vector<ScoredRow>> parts(4);
  for (const ScoredRow& row : rows) {
    parts[PostingPartitionOf(row.bindings[0], 4)].push_back(row);
  }
  std::vector<ScoredRow> first_result;
  for (const size_t batch : {1u, 3u, 64u}) {
    ExecStats stats;
    ExecContext ctx(&stats);
    std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
    for (auto& part : parts) inputs.push_back(SortedInput(part));
    ParallelRankJoin merge(std::move(inputs), &ctx, batch);
    auto result = PullTopK(&merge, 10, &stats);
    ASSERT_EQ(result.size(), 10u);
    if (first_result.empty()) {
      first_result = std::move(result);
      continue;
    }
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].bindings, first_result[i].bindings);
      EXPECT_EQ(result[i].score, first_result[i].score);
    }
  }
}

}  // namespace
}  // namespace specqp
