#include "rdf/triple_store.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

TripleStore MakeSmallStore() {
  TripleStore store;
  store.Add("a", "p", "x", 3.0);
  store.Add("a", "p", "y", 2.0);
  store.Add("b", "p", "x", 5.0);
  store.Add("b", "q", "x", 1.0);
  store.Add("c", "q", "y", 4.0);
  store.Finalize();
  return store;
}

TEST(TripleStoreTest, SizeAfterFinalize) {
  TripleStore store = MakeSmallStore();
  EXPECT_EQ(store.size(), 5u);
  EXPECT_TRUE(store.finalized());
}

TEST(TripleStoreTest, DuplicatesCollapseKeepingMaxScore) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  store.Add("a", "p", "x", 9.0);
  store.Add("a", "p", "x", 4.0);
  store.Finalize();
  ASSERT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.triple(0).score, 9.0);
}

TEST(TripleStoreTest, ContainsFullyBound) {
  TripleStore store = MakeSmallStore();
  EXPECT_TRUE(store.Contains(store.MustId("a"), store.MustId("p"),
                             store.MustId("x")));
  EXPECT_FALSE(store.Contains(store.MustId("a"), store.MustId("q"),
                              store.MustId("x")));
}

TEST(TripleStoreTest, MatchByPredicateObject) {
  TripleStore store = MakeSmallStore();
  PatternKey key{kInvalidTermId, store.MustId("p"), store.MustId("x")};
  const auto matches = store.MatchIndices(key);
  ASSERT_EQ(matches.size(), 2u);
  for (uint32_t idx : matches) {
    EXPECT_EQ(store.triple(idx).p, store.MustId("p"));
    EXPECT_EQ(store.triple(idx).o, store.MustId("x"));
  }
}

TEST(TripleStoreTest, MatchBySubjectOnly) {
  TripleStore store = MakeSmallStore();
  PatternKey key{store.MustId("b"), kInvalidTermId, kInvalidTermId};
  EXPECT_EQ(store.MatchIndices(key).size(), 2u);
}

TEST(TripleStoreTest, MatchBySubjectObject) {
  TripleStore store = MakeSmallStore();
  PatternKey key{store.MustId("b"), kInvalidTermId, store.MustId("x")};
  EXPECT_EQ(store.MatchIndices(key).size(), 2u);
}

TEST(TripleStoreTest, MatchAllWildcards) {
  TripleStore store = MakeSmallStore();
  PatternKey key;
  EXPECT_EQ(store.MatchIndices(key).size(), store.size());
}

TEST(TripleStoreTest, NoMatches) {
  TripleStore store = MakeSmallStore();
  PatternKey key{store.MustId("c"), store.MustId("p"), kInvalidTermId};
  EXPECT_TRUE(store.MatchIndices(key).empty());
  EXPECT_EQ(store.CountMatches(key), 0u);
}

TEST(TripleStoreTest, CountDistinct) {
  TripleStore store = MakeSmallStore();
  PatternKey key{kInvalidTermId, store.MustId("p"), kInvalidTermId};
  EXPECT_EQ(store.CountDistinct(key, 0), 2u);  // subjects a, b
  EXPECT_EQ(store.CountDistinct(key, 2), 2u);  // objects x, y
}

TEST(TripleStoreTest, MaxScore) {
  TripleStore store = MakeSmallStore();
  PatternKey key{kInvalidTermId, store.MustId("p"), store.MustId("x")};
  EXPECT_DOUBLE_EQ(store.MaxScore(key), 5.0);
  PatternKey none{store.MustId("c"), store.MustId("p"), kInvalidTermId};
  EXPECT_DOUBLE_EQ(store.MaxScore(none), 0.0);
}

TEST(TripleStoreTest, EmptyStoreFinalizes) {
  TripleStore store;
  store.Finalize();
  EXPECT_EQ(store.size(), 0u);
  PatternKey key;
  EXPECT_TRUE(store.MatchIndices(key).empty());
}

TEST(TripleStoreDeathTest, QueryBeforeFinalizeAborts) {
  TripleStore store;
  store.Add("a", "p", "x", 1.0);
  PatternKey key;
  EXPECT_DEATH((void)store.MatchIndices(key), "Finalize");
}

TEST(TripleStoreDeathTest, AddAfterFinalizeAborts) {
  TripleStore store;
  store.Finalize();
  EXPECT_DEATH(store.Add("a", "p", "x", 1.0), "Add after Finalize");
}

TEST(TripleStoreDeathTest, NegativeScoreAborts) {
  TripleStore store;
  EXPECT_DEATH(store.Add("a", "p", "x", -1.0), "negative");
}

// --- property sweep: every bound/free shape equals brute force -------------

struct ShapeCase {
  bool bind_s;
  bool bind_p;
  bool bind_o;
};

class TripleStoreShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TripleStoreShapeTest, MatchesEqualBruteForce) {
  const auto [seed, shape_mask] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  testing::RandomStoreConfig cfg;
  cfg.num_subjects = 12;
  cfg.num_predicates = 3;
  cfg.num_objects = 8;
  cfg.num_triples = 120;
  TripleStore store = testing::MakeRandomStore(&rng, cfg);

  // Try several random keys for this bound/free shape.
  for (int trial = 0; trial < 20; ++trial) {
    const Triple& anchor =
        store.triple(static_cast<uint32_t>(rng.NextBounded(store.size())));
    PatternKey key;
    if (shape_mask & 1) key.s = anchor.s;
    if (shape_mask & 2) key.p = anchor.p;
    if (shape_mask & 4) key.o = anchor.o;

    std::multiset<std::tuple<TermId, TermId, TermId>> expected;
    for (const Triple& t : store.triples()) {
      if (key.Matches(t)) expected.insert({t.s, t.p, t.o});
    }
    std::multiset<std::tuple<TermId, TermId, TermId>> actual;
    for (uint32_t idx : store.MatchIndices(key)) {
      const Triple& t = store.triple(idx);
      EXPECT_TRUE(key.Matches(t));
      actual.insert({t.s, t.p, t.o});
    }
    EXPECT_EQ(actual, expected) << "shape mask " << shape_mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapesAndSeeds, TripleStoreShapeTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 8)));

// Distinct counts also match brute force across shapes.
class TripleStoreDistinctTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleStoreDistinctTest, CountDistinctEqualsBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  testing::RandomStoreConfig cfg;
  cfg.num_triples = 200;
  TripleStore store = testing::MakeRandomStore(&rng, cfg);

  const Triple& anchor =
      store.triple(static_cast<uint32_t>(rng.NextBounded(store.size())));
  PatternKey key{kInvalidTermId, anchor.p, kInvalidTermId};

  for (int slot : {0, 2}) {
    std::set<TermId> expected;
    for (const Triple& t : store.triples()) {
      if (key.Matches(t)) expected.insert(slot == 0 ? t.s : t.o);
    }
    EXPECT_EQ(store.CountDistinct(key, slot), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStoreDistinctTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace specqp
