// Multi-process page-cache sharing: two forked readers open the SAME
// sharded bundle (read-only MAP_SHARED file mappings), answer the same
// queries bit-identically, and — with both fully resident at once — their
// proportional set size (Pss, which splits pages by the number of mappers)
// sums to roughly ONE copy of the bundle while their Rss sums to two.
// That is the bundle's deployment claim: N processes serving one store
// cost one store of physical memory.
//
// Linux-only (fork + /proc/self/smaps); skipped elsewhere.

#include <gtest/gtest.h>

#ifdef __linux__

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "rdf/sharded_store.h"
#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

namespace fs = std::filesystem;

// FNV-1a over the rows of a top-k answer: bindings plus raw score bits.
uint64_t FoldRows(uint64_t h, const std::vector<ScoredRow>& rows) {
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  mix(rows.size());
  for (const ScoredRow& row : rows) {
    for (const TermId id : row.bindings) mix(id);
    uint64_t bits = 0;
    std::memcpy(&bits, &row.score, sizeof(bits));
    mix(bits);
  }
  return h;
}

// Sums the Rss/Pss of this process's mappings of the bundle's shard files.
struct MappingUsage {
  uint64_t rss_kb = 0;
  uint64_t pss_kb = 0;
};

bool ReadShardMappingUsage(MappingUsage* usage) {
  std::ifstream smaps("/proc/self/smaps");
  if (!smaps.is_open()) return false;
  std::string line;
  bool in_shard_mapping = false;
  while (std::getline(smaps, line)) {
    // Mapping headers start with a lowercase-hex address range
    // ("7f..-7f.. r--s 00000000 08:01 123 /path/shard_0002.sqps");
    // attribute lines start with a capitalised name ("Pss:  1234 kB").
    const bool is_header =
        !line.empty() && ((line[0] >= '0' && line[0] <= '9') ||
                          (line[0] >= 'a' && line[0] <= 'f'));
    if (is_header) {
      in_shard_mapping = line.find("shard_") != std::string::npos &&
                         line.find(".sqps") != std::string::npos;
      continue;
    }
    if (!in_shard_mapping) continue;
    unsigned long kb = 0;
    if (std::sscanf(line.c_str(), "Rss: %lu kB", &kb) == 1) {
      usage->rss_kb += kb;
    } else if (std::sscanf(line.c_str(), "Pss: %lu kB", &kb) == 1) {
      usage->pss_kb += kb;
    }
  }
  return true;
}

struct ChildReport {
  uint64_t digest = 0;
  uint64_t rss_kb = 0;
  uint64_t pss_kb = 0;
};

bool WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = write(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool ReadAll(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

// The child's whole life: open the bundle with full eager verification
// (touching every mapped byte), answer the queries, then rendezvous with
// the parent so both children are resident when memory is measured.
[[noreturn]] void RunChild(const std::string& bundle_dir,
                           const RelaxationIndex& rules,
                           const std::vector<Query>& queries, int ready_fd,
                           int go_fd) {
  EngineOptions options;
  options.num_threads = 1;
  options.mmap_verify_all = true;  // eager CRC pass faults in every page
  auto opened = Engine::OpenFromPath(bundle_dir, &rules, options);
  if (!opened.ok()) _exit(3);

  uint64_t digest = 0xCBF29CE484222325ULL;
  for (const Query& query : queries) {
    const Engine::QueryResult result =
        testing::Execute(*opened.value().engine, query, 10,
                         Strategy::kSpecQp);
    digest = FoldRows(digest, result.rows);
  }

  char byte = 'R';
  if (!WriteAll(ready_fd, &byte, 1)) _exit(4);
  if (!ReadAll(go_fd, &byte, 1)) _exit(5);  // both children now resident

  MappingUsage usage;
  if (!ReadShardMappingUsage(&usage)) _exit(6);
  ChildReport report;
  report.digest = digest;
  report.rss_kb = usage.rss_kb;
  report.pss_kb = usage.pss_kb;
  if (!WriteAll(ready_fd, &report, sizeof(report))) _exit(7);
  // Hold the mapping until the parent has BOTH reports — exiting early
  // would hand this child's share of the pages to its sibling's Pss.
  if (!ReadAll(go_fd, &byte, 1)) _exit(8);
  _exit(0);
}

TEST(SharedMappingTest, TwoProcessesShareOneCopyOfTheBundle) {
  // A store big enough that page-granular accounting noise (a few hundred
  // kB of headers, tables, and dictionary tails) is far below the bounds.
  Rng rng(1234);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_subjects = 20000;
  cfg.num_predicates = 8;
  cfg.num_objects = 2000;
  cfg.num_triples = 400000;
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const RelaxationIndex rules =
      specqp::testing::MakeRandomRules(&rng, store, 3);
  std::vector<Query> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(specqp::testing::MakeRandomStarQuery(&rng, store, 2));
  }

  const std::string dir = ::testing::TempDir() + "/shared_mapping_bundle";
  fs::remove_all(dir);
  ShardBundleOptions bundle_options;
  bundle_options.shard_count = 4;
  ASSERT_TRUE(WriteShardBundle(store, dir, bundle_options).ok());

  // Learn bytes_mapped, then drop the mapping before forking so the
  // parent doesn't become a third mapper of the shard pages.
  uint64_t bytes_mapped = 0;
  {
    auto probe = ShardedStore::Open(dir);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    bytes_mapped = probe.value()->bytes_mapped();
  }
  ASSERT_GT(bytes_mapped, 8u * 1024 * 1024)
      << "store too small for meaningful page accounting";

  // Two children, each with a ready (child->parent) and go (parent->child)
  // pipe.
  int ready[2][2];
  int go[2][2];
  pid_t pids[2];
  for (int c = 0; c < 2; ++c) {
    ASSERT_EQ(pipe(ready[c]), 0);
    ASSERT_EQ(pipe(go[c]), 0);
    pids[c] = fork();
    ASSERT_GE(pids[c], 0);
    if (pids[c] == 0) {
      close(ready[c][0]);
      close(go[c][1]);
      RunChild(dir, rules, queries, ready[c][1], go[c][0]);
    }
    close(ready[c][1]);
    close(go[c][0]);
  }

  // Barrier 1: both children mapped, verified, and queried.
  for (int c = 0; c < 2; ++c) {
    char byte = 0;
    ASSERT_TRUE(ReadAll(ready[c][0], &byte, 1)) << "child " << c;
    ASSERT_EQ(byte, 'R');
  }
  for (int c = 0; c < 2; ++c) {
    const char byte = 'G';
    ASSERT_TRUE(WriteAll(go[c][1], &byte, 1));
  }

  // Collect both reports while both mappings are still alive, then
  // release the children.
  ChildReport reports[2];
  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(ReadAll(ready[c][0], &reports[c], sizeof(reports[c])));
  }
  for (int c = 0; c < 2; ++c) {
    const char byte = 'G';
    ASSERT_TRUE(WriteAll(go[c][1], &byte, 1));
    int status = 0;
    ASSERT_EQ(waitpid(pids[c], &status, 0), pids[c]);
    ASSERT_TRUE(WIFEXITED(status)) << "child " << c;
    ASSERT_EQ(WEXITSTATUS(status), 0) << "child " << c;
    close(ready[c][0]);
    close(go[c][1]);
  }

  // Identical answers from both processes.
  EXPECT_NE(reports[0].digest, 0u);
  EXPECT_EQ(reports[0].digest, reports[1].digest);

  const double mapped_kb = static_cast<double>(bytes_mapped) / 1024.0;
  const double rss_sum =
      static_cast<double>(reports[0].rss_kb + reports[1].rss_kb);
  const double pss_sum =
      static_cast<double>(reports[0].pss_kb + reports[1].pss_kb);

  // Eager verification touched every page in both children: combined Rss
  // is ~2x the bundle...
  EXPECT_GT(rss_sum, 1.6 * mapped_kb)
      << "children not fully resident; Rss " << reports[0].rss_kb << " + "
      << reports[1].rss_kb << " kB vs mapped " << mapped_kb << " kB";
  // ...while combined Pss stays near ONE copy: the mappings share the
  // page cache instead of duplicating it (the 2x-residency strawman).
  EXPECT_LT(pss_sum, 1.3 * mapped_kb)
      << "Pss " << reports[0].pss_kb << " + " << reports[1].pss_kb
      << " kB vs mapped " << mapped_kb << " kB";
  EXPECT_LT(pss_sum, 0.75 * rss_sum);
}

}  // namespace
}  // namespace specqp

#else  // !__linux__

TEST(SharedMappingTest, SkippedOffLinux) {
  GTEST_SKIP() << "fork + /proc/self/smaps are Linux-only";
}

#endif
