// End-to-end determinism and accounting of batched execution: for every
// strategy and thread count, BatchExecutor must return per-query results
// bit-identical (bindings AND scores) to sequential one-query runs,
// duplicates must collapse onto one execution, a parse failure must
// not affect the rest of a text batch, and the batch ledger must show
// shared scans resolved once.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_executor.h"
#include "core/engine.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MakeRandomRules;
using specqp::testing::MakeRandomStarQuery;
using specqp::testing::MakeRandomStore;
using specqp::testing::MusicFixture;

constexpr Strategy kStrategies[] = {Strategy::kSpecQp, Strategy::kTrinit,
                                    Strategy::kNoRelax};
constexpr int kThreadCounts[] = {1, 2, 8};

EngineOptions ThreadedOptions(int threads) {
  EngineOptions options;
  options.num_threads = threads;
  options.parallel_min_rows = 0;
  return options;
}

void ExpectIdenticalRows(const Engine::QueryResult& expected,
                         const Engine::QueryResult& actual,
                         const std::string& label) {
  ASSERT_EQ(actual.rows.size(), expected.rows.size()) << label;
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_EQ(actual.rows[i].bindings, expected.rows[i].bindings)
        << label << " rank " << i;
    EXPECT_EQ(actual.rows[i].score, expected.rows[i].score)
        << label << " rank " << i;
  }
}

std::vector<Query> MusicBatch(const MusicFixture& fx) {
  return {
      fx.TypeQuery({"singer", "lyricist"}),
      fx.TypeQuery({"singer", "lyricist", "guitarist"}),
      fx.TypeQuery({"singer", "lyricist", "guitarist", "pianist"}),
      fx.TypeQuery({"jazz_singer"}),
      fx.TypeQuery({"pianist", "guitarist"}),
  };
}

TEST(BatchExecutionTest, BitIdenticalToSequentialAcrossThreadsAndStrategies) {
  MusicFixture fx = MakeMusicFixture();
  const std::vector<Query> batch = MusicBatch(fx);
  for (size_t k : {1u, 3u, 10u}) {
    for (Strategy strategy : kStrategies) {
      // Sequential reference from a dedicated engine.
      Engine reference(&fx.store, &fx.rules, ThreadedOptions(1));
      std::vector<Engine::QueryResult> expected;
      for (const Query& query : batch) {
        expected.push_back(testing::Execute(reference, query, k, strategy));
      }
      for (int threads : kThreadCounts) {
        Engine engine(&fx.store, &fx.rules, ThreadedOptions(threads));
        BatchStats bs;
        const auto actual = testing::ExecuteBatch(engine, batch, k, strategy, &bs);
        ASSERT_EQ(actual.size(), batch.size());
        EXPECT_EQ(bs.batch_size, batch.size());
        EXPECT_EQ(bs.distinct_queries, batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          ExpectIdenticalRows(
              expected[i], actual[i],
              std::string(StrategyName(strategy)) + "/threads=" +
                  std::to_string(threads) + "/k=" + std::to_string(k) +
                  "/query=" + std::to_string(i));
        }
      }
    }
  }
}

TEST(BatchExecutionTest, RandomStoresBitIdenticalToSequential) {
  for (int seed = 0; seed < 3; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 6151 + 29);
    specqp::testing::RandomStoreConfig cfg;
    cfg.num_subjects = 30;
    cfg.num_predicates = 3;
    cfg.num_objects = 10;
    cfg.num_triples = 220;
    TripleStore store = MakeRandomStore(&rng, cfg);
    RelaxationIndex rules = MakeRandomRules(&rng, store, 4);

    std::vector<Query> batch;
    for (int q = 0; q < 6; ++q) {
      batch.push_back(MakeRandomStarQuery(&rng, store, 2 + rng.NextBounded(3)));
    }
    for (Strategy strategy : kStrategies) {
      Engine reference(&store, &rules, ThreadedOptions(1));
      std::vector<Engine::QueryResult> expected;
      for (const Query& query : batch) {
        expected.push_back(testing::Execute(reference, query, 10, strategy));
      }
      for (int threads : {2, 8}) {
        Engine engine(&store, &rules, ThreadedOptions(threads));
        const auto actual = testing::ExecuteBatch(engine, batch, 10, strategy);
        for (size_t i = 0; i < batch.size(); ++i) {
          ExpectIdenticalRows(expected[i], actual[i],
                              std::string(StrategyName(strategy)) + "/seed=" +
                                  std::to_string(seed) + "/threads=" +
                                  std::to_string(threads) + "/query=" +
                                  std::to_string(i));
        }
      }
    }
  }
}

TEST(BatchExecutionTest, DuplicateQueriesExecuteOnceAndFanOut) {
  MusicFixture fx = MakeMusicFixture();
  const Query a = fx.TypeQuery({"singer", "lyricist"});
  const Query b = fx.TypeQuery({"pianist", "guitarist"});
  const std::vector<Query> batch = {a, b, a, a, b};

  Engine engine(&fx.store, &fx.rules, ThreadedOptions(2));
  BatchStats bs;
  const auto results =
      testing::ExecuteBatch(engine, batch, 5, Strategy::kSpecQp, &bs);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(bs.batch_size, 5u);
  EXPECT_EQ(bs.distinct_queries, 2u);

  // Duplicates carry identical results (shared execution).
  ExpectIdenticalRows(results[0], results[2], "dup of a");
  ExpectIdenticalRows(results[0], results[3], "dup of a");
  ExpectIdenticalRows(results[1], results[4], "dup of b");
  EXPECT_EQ(results[0].stats.scan_rows, results[2].stats.scan_rows);

  // And each matches a stand-alone execution.
  Engine reference(&fx.store, &fx.rules, ThreadedOptions(1));
  ExpectIdenticalRows(testing::Execute(reference, a, 5, Strategy::kSpecQp), results[0],
                      "a vs sequential");
  ExpectIdenticalRows(testing::Execute(reference, b, 5, Strategy::kSpecQp), results[1],
                      "b vs sequential");
}

TEST(BatchExecutionTest, SharedScansCountedOnceAcrossTheBatch) {
  MusicFixture fx = MakeMusicFixture();
  // Three queries sharing the "singer" and "lyricist" patterns.
  const std::vector<Query> batch = {
      fx.TypeQuery({"singer", "lyricist"}),
      fx.TypeQuery({"singer", "guitarist"}),
      fx.TypeQuery({"lyricist", "guitarist", "singer"}),
  };
  Engine engine(&fx.store, &fx.rules, ThreadedOptions(1));
  BatchStats bs;
  testing::ExecuteBatch(engine, batch, 5, Strategy::kTrinit, &bs);

  // 3 distinct original patterns; with TriniT every relaxation list is in
  // the prepare wave: singer->3 targets, lyricist->1, guitarist->2, all
  // distinct => 9 resolved lists, none resolved twice.
  EXPECT_EQ(bs.distinct_patterns, 3u);
  EXPECT_EQ(bs.lists_resolved, 9u);
  // Execution re-reads the shared patterns once per query: 7 pattern
  // instances + 6 relaxation scans... every one of those Gets is a hit on
  // a list resolved exactly once.
  EXPECT_GT(bs.shared_scan_hits, bs.lists_resolved);
  EXPECT_EQ(bs.shared_scan_misses, 0u);
  // Relaxations were mined once per distinct pattern.
  EXPECT_EQ(bs.patterns_expanded, 3u);

  // Sequential execution of the same batch issues one engine-cache lookup
  // per pattern instance per query; the batch resolved each distinct list
  // once and served the rest from the shared map.
  Engine sequential(&fx.store, &fx.rules, ThreadedOptions(1));
  for (const Query& query : batch) {
    testing::Execute(sequential, query, 5, Strategy::kTrinit);
  }
  EXPECT_GT(sequential.postings().hits() + sequential.postings().misses(),
            engine.postings().hits() + engine.postings().misses())
      << "batch execution must issue fewer engine-cache lookups";
}

TEST(BatchExecutionTest, TextBatchParseFailureLeavesOthersUnaffected) {
  MusicFixture fx = MakeMusicFixture();
  const std::vector<std::string> texts = {
      "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <lyricist> }",
      "SELECT ?s WHERE { this is not a query",
      "SELECT ?s WHERE { ?s <rdf:type> <pianist> }",
  };
  Engine engine(&fx.store, &fx.rules, ThreadedOptions(2));
  BatchStats bs;
  const auto results =
      testing::ExecuteTextBatch(engine, texts, 5, Strategy::kSpecQp, &bs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(bs.batch_size, 2u) << "only parsed queries enter the batch";

  // The good slots match stand-alone text execution.
  Engine reference(&fx.store, &fx.rules, ThreadedOptions(1));
  const auto expected0 =
      testing::ExecuteText(reference, texts[0], 5, Strategy::kSpecQp);
  ASSERT_TRUE(expected0.ok());
  ExpectIdenticalRows(expected0.value(), results[0].value(), "text slot 0");
  const auto expected2 =
      testing::ExecuteText(reference, texts[2], 5, Strategy::kSpecQp);
  ASSERT_TRUE(expected2.ok());
  ExpectIdenticalRows(expected2.value(), results[2].value(), "text slot 2");
}

TEST(BatchExecutionTest, EmptyAndSingletonBatches) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules, ThreadedOptions(2));
  BatchStats bs;
  EXPECT_TRUE(
      testing::ExecuteBatch(engine, std::span<const Query>(), 5, Strategy::kSpecQp, &bs)
          .empty());
  EXPECT_EQ(bs.batch_size, 0u);

  const std::vector<Query> one = {fx.TypeQuery({"singer"})};
  const auto results = testing::ExecuteBatch(engine, one, 5, Strategy::kSpecQp, &bs);
  ASSERT_EQ(results.size(), 1u);
  Engine reference(&fx.store, &fx.rules, ThreadedOptions(1));
  ExpectIdenticalRows(testing::Execute(reference, one[0], 5, Strategy::kSpecQp),
                      results[0], "singleton batch");
}

TEST(BatchExecutionTest, MixedXkgTwitterWorkloadQueriesBitIdentical) {
  // Down-scaled XKG and Twitter generator datasets (same shape as the
  // bench bundles, sized for a unit test): a mixed batch of real workload
  // queries per dataset must stay bit-identical to sequential execution
  // across strategies and thread counts.
  XkgConfig xkg_config;
  xkg_config.num_entities = 1500;
  xkg_config.num_domains = 4;
  xkg_config.types_per_domain = 6;
  const XkgDataset xkg = GenerateXkg(xkg_config);
  XkgWorkloadConfig xkg_workload;
  xkg_workload.queries_per_size = 2;  // 2-, 3-, 4-pattern queries
  xkg_workload.min_relaxations = 3;
  const std::vector<Query> xkg_queries = MakeXkgWorkload(xkg, xkg_workload);
  ASSERT_FALSE(xkg_queries.empty());

  TwitterConfig twitter_config;
  twitter_config.num_tweets = 4000;
  twitter_config.num_topics = 6;
  twitter_config.tags_per_topic = 10;
  const TwitterDataset twitter = GenerateTwitter(twitter_config);
  TwitterWorkloadConfig twitter_workload;
  twitter_workload.queries_per_size = 3;  // 2- and 3-pattern queries
  twitter_workload.min_relaxations = 2;
  twitter_workload.min_relaxed_answers = 5;
  const std::vector<Query> twitter_queries =
      MakeTwitterWorkload(twitter, twitter_workload);
  ASSERT_FALSE(twitter_queries.empty());

  const struct {
    const char* name;
    const TripleStore* store;
    const RelaxationIndex* rules;
    const std::vector<Query>* workload;
  } bundles[] = {
      {"xkg", &xkg.store, &xkg.rules, &xkg_queries},
      {"twitter", &twitter.store, &twitter.rules, &twitter_queries},
  };
  for (const auto& bundle : bundles) {
    for (Strategy strategy : kStrategies) {
      Engine reference(bundle.store, bundle.rules, ThreadedOptions(1));
      std::vector<Engine::QueryResult> expected;
      for (const Query& query : *bundle.workload) {
        expected.push_back(testing::Execute(reference, query, 10, strategy));
      }
      for (int threads : kThreadCounts) {
        Engine engine(bundle.store, bundle.rules, ThreadedOptions(threads));
        const auto actual =
            testing::ExecuteBatch(engine, *bundle.workload, 10, strategy);
        for (size_t i = 0; i < bundle.workload->size(); ++i) {
          ExpectIdenticalRows(expected[i], actual[i],
                              std::string(bundle.name) + "/" +
                                  std::string(StrategyName(strategy)) +
                                  "/threads=" + std::to_string(threads) +
                                  "/query=" + std::to_string(i));
        }
      }
    }
  }
}

TEST(BatchExecutionTest, ChainRelaxationsInBatch) {
  // Chain rules add hop patterns to the shared-scan plan; batch answers
  // must still match sequential ones.
  TripleStore store;
  store.Add("ana", "plays", "guitar", 100.0);
  store.Add("ben", "plays", "bass", 90.0);
  store.Add("cem", "plays", "ukulele", 80.0);
  store.Add("dia", "plays", "piano", 70.0);
  store.Add("eli", "plays", "bass", 60.0);
  store.Add("bass", "relatedTo", "guitar", 1.0);
  store.Add("ukulele", "relatedTo", "guitar", 1.0);
  for (const char* person : {"ana", "ben", "cem", "dia", "eli"}) {
    store.Add(person, "type", "person", 50.0);
  }
  store.Finalize();

  RelaxationIndex rules;
  ChainRelaxationRule rule;
  rule.from = PatternKey{kInvalidTermId, store.MustId("plays"),
                         store.MustId("guitar")};
  rule.hop1_predicate = store.MustId("plays");
  rule.hop2_predicate = store.MustId("relatedTo");
  rule.hop2_object = store.MustId("guitar");
  rule.weight = 0.8;
  ASSERT_TRUE(rules.AddChainRule(rule).ok());

  Query query;
  const VarId s = query.GetOrAddVariable("s");
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(store.MustId("plays")),
                                 PatternTerm::Const(store.MustId("guitar"))));
  query.AddPattern(TriplePattern(PatternTerm::Var(s),
                                 PatternTerm::Const(store.MustId("type")),
                                 PatternTerm::Const(store.MustId("person"))));
  query.AddProjection(s);
  const std::vector<Query> batch = {query, query};

  for (Strategy strategy : kStrategies) {
    Engine reference(&store, &rules, ThreadedOptions(1));
    const auto expected = testing::Execute(reference, query, 10, strategy);
    Engine engine(&store, &rules, ThreadedOptions(4));
    const auto results = testing::ExecuteBatch(engine, batch, 10, strategy);
    for (size_t i = 0; i < batch.size(); ++i) {
      ExpectIdenticalRows(expected, results[i],
                          std::string(StrategyName(strategy)) + "/chain/" +
                              std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace specqp
