// Speculative plan racing (core/speculation.h): a forced race where the
// deliberately mis-estimated primary loses to the runner-up, the loser's
// <50 ms cancellation bound, winner-only (never double-counted) ExecStats,
// mid-query re-plan bit-identity, the calibration-log round trip through
// scripts/fit_estimator_correction.py, and the full 116-query probe
// asserting bit-identical answers with speculation forced on across all
// three strategies and 1/2/8 threads.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/request.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "rdf/store_format.h"
#include "stats/calibration.h"
#include "test_util.h"
#include "util/string_util.h"

// Sanitizer builds run ~5-15x slower; relax wall-clock assertions and trim
// the probe sweep there so the TSan/ASan gates stay fast while the release
// gate enforces the real latency bar.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SPECQP_SANITIZED_BUILD 1
#endif
#if !defined(SPECQP_SANITIZED_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SPECQP_SANITIZED_BUILD 1
#endif
#endif

namespace specqp {
namespace {

void ExpectSameRows(const std::vector<ScoredRow>& expected,
                    const std::vector<ScoredRow>& actual,
                    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].bindings, expected[i].bindings) << label << " #" << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " #" << i;
  }
}

// The bench's adversarial race shape (bench/micro_operators.cc RaceFixture)
// at test scale, with *distinct* answer scores so the top-k is unique and
// bit-identity is well defined even when the runner-up's emission order
// for ties would differ from the primary's.
//
// One 3-pattern star ?s p A . ?s p B . ?s p C over:
//   - kAnswers subjects matching A, B, C, and R at raw score 1000 - i
//     (normalised 1.0 down to 0.989; answer i scores 3 * (1000 - i)/1000,
//     all above the runner-up's certificate bound of (3-1) + 0.8 = 2.8);
//   - a kFillers-entry C-only tail descending 900 -> 890 (normalised
//     0.9 -> 0.89, clearly below the answer band): {A,B,C} folds
//     A |><| B, both sides exhaust after kAnswers rows, and the first
//     filler pull drops the corner bound to 2.0 + 0.9 < the k-th
//     answer's 2.973 — the top-k releases after ~kAnswers C pulls,
//     microseconds. The relaxed {B,C | A*} folds B |><| C first; the
//     outer join always prefers the inner's dominant upper bound
//     (1 + ub_C > the A* merge's 1.0), and after the kAnswers matches
//     the inner's Next() drains C's entire tail hunting for a
//     nonexistent further match — milliseconds;
//   - kRelaxJunk R-only subjects at raw 995, so relaxing A -> R (weight
//     0.8) looks juicy to the estimator and R stays non-empty (the
//     certificate bound is live, not the unconditional < 0 case).
//
// `poison` (preload before the first plan) claims A's matches are junk
// averaging ~0.1: E_Q(k) collapses, the planner wrongly relaxes the
// genuinely perfect A, the primary becomes the slow relaxed plan, and the
// runner-up — the correct {A,B,C} — must win the race on merit.
struct SpecFixture {
  static constexpr size_t kAnswers = 12;
  static constexpr size_t kFillers = 30000;
  static constexpr size_t kRelaxJunk = 3000;

  TripleStore store;
  RelaxationIndex rules;
  Query query;
  PatternKey key_a, key_c;
  std::vector<v2::StatsEntry> poison_a;  // planner wrongly relaxes A
  std::vector<v2::StatsEntry> poison_c;  // C's cardinality claimed tiny

  SpecFixture() {
    Dictionary& dict = store.dict();
    const TermId p = dict.Intern("rp");
    const TermId obj_a = dict.Intern("raceA");
    const TermId obj_b = dict.Intern("raceB");
    const TermId obj_c = dict.Intern("raceC");
    const TermId obj_r = dict.Intern("raceR");
    for (size_t i = 0; i < kAnswers; ++i) {
      const TermId m = dict.Intern("m" + std::to_string(i));
      const double score = 1000.0 - static_cast<double>(i);
      store.AddEncoded(m, p, obj_a, score);
      store.AddEncoded(m, p, obj_b, score);
      store.AddEncoded(m, p, obj_c, score);
      store.AddEncoded(m, p, obj_r, score);
    }
    for (size_t j = 0; j < kFillers; ++j) {
      const TermId f = dict.Intern("cf" + std::to_string(j));
      const double score = 900.0 - 10.0 * static_cast<double>(j) /
                                       static_cast<double>(kFillers - 1);
      store.AddEncoded(f, p, obj_c, score);
    }
    for (size_t j = 0; j < kRelaxJunk; ++j) {
      store.AddEncoded(dict.Intern("rf" + std::to_string(j)), p, obj_r,
                       995.0);
    }
    store.Finalize();

    RelaxationRule rule;
    rule.from = PatternKey{kInvalidTermId, p, obj_a};
    rule.to = PatternKey{kInvalidTermId, p, obj_r};
    rule.weight = 0.8;
    SPECQP_CHECK(rules.AddRule(rule).ok());

    const VarId s = query.GetOrAddVariable("s");
    query.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p),
                                   PatternTerm::Const(obj_a)));
    query.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p),
                                   PatternTerm::Const(obj_b)));
    query.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p),
                                   PatternTerm::Const(obj_c)));
    query.AddProjection(s);

    key_a = PatternKey{kInvalidTermId, p, obj_a};
    key_c = PatternKey{kInvalidTermId, p, obj_c};
    // avg score ~0.1 with the catalog's 80/20 mass split (s_r = 0.8 s_m).
    poison_a.push_back(
        v2::StatsEntry{kInvalidTermId, p, obj_a, 0, kAnswers, 0.1, 0.96, 1.2});
    // Honest shape but m claimed equal to the answer count: the C leaf
    // emits ~2500x its estimate, so any divergence factor trips.
    poison_c.push_back(
        v2::StatsEntry{kInvalidTermId, p, obj_c, 0, kAnswers, 1.0, 9.6, 12.0});
  }

  Engine::QueryResult Run(Engine& engine, size_t k = 10) const {
    // The paper's warm-cache setting — and a fairness requirement here: a
    // race must be decided by plan quality, not by which racer happens to
    // pay the one-off posting-list build for the shared store.
    engine.Warm(query);
    return testing::Execute(engine, query, k, Strategy::kSpecQp);
  }
};

SpecFixture& Fix() {
  static auto* fx = new SpecFixture();
  return *fx;
}

EngineOptions BaseOptions() {
  EngineOptions options;
  options.num_threads = 1;
  return options;
}

// --- plan racing -----------------------------------------------------------

TEST(SpeculativeExecutionTest, ForcedRaceRunnerUpMustWin) {
  SpecFixture& fx = Fix();

  // Reference: speculation off, no poison — the honest planner keeps
  // {A,B,C} and this is the ground-truth top-k.
  EngineOptions plain = BaseOptions();
  Engine reference(&fx.store, &fx.rules, plain);
  const Engine::QueryResult expected = fx.Run(reference);
  ASSERT_EQ(expected.rows.size(), 10u);
  EXPECT_EQ(expected.stats.plans_raced, 0u);

  // Poisoned stats + forced speculation: the primary is the slow relaxed
  // plan, the runner-up the correct join — and it must win the race.
  EngineOptions racing = BaseOptions();
  racing.num_threads = 2;
  racing.speculate_threshold = 2.0;  // confidence is in [0,1]: always race
  Engine engine(&fx.store, &fx.rules, racing);
  engine.catalog().Preload(fx.poison_a);
  const Engine::QueryResult result = fx.Run(engine);

  EXPECT_EQ(result.stats.plans_raced, 2u);
  EXPECT_EQ(result.stats.race_wins_by_runnerup, 1u)
      << "the mis-estimated primary should lose to the runner-up";
  ASSERT_TRUE(result.diagnostics.has_runner_up);
  EXPECT_LT(result.diagnostics.plan_confidence, 2.0);
  ExpectSameRows(expected.rows, result.rows, "runner-up win");
}

TEST(SpeculativeExecutionTest, RaceNeedsPoolAndThreshold) {
  SpecFixture& fx = Fix();

  // Serial engine: speculation configured but no pool to race on.
  EngineOptions serial = BaseOptions();
  serial.speculate_threshold = 2.0;
  Engine engine_serial(&fx.store, &fx.rules, serial);
  engine_serial.catalog().Preload(fx.poison_a);
  EXPECT_EQ(fx.Run(engine_serial).stats.plans_raced, 0u);

  // Threshold 0 (default): racing disabled even with a pool.
  EngineOptions off = BaseOptions();
  off.num_threads = 2;
  Engine engine_off(&fx.store, &fx.rules, off);
  engine_off.catalog().Preload(fx.poison_a);
  EXPECT_EQ(fx.Run(engine_off).stats.plans_raced, 0u);
}

// Load-tolerant bound, always on. The loser polls its interrupt per row,
// so the claim-to-wind-down latency is mechanically small; under a loaded
// runner (ctest -j8 sharing cores with seven other suites) the losing
// thread may simply not be scheduled for tens of milliseconds, which is
// scheduler noise, not a cancellation regression. 500 ms still catches the
// real failure mode (a loser that drains its inputs instead of aborting
// runs for seconds on the poisoned plan).
TEST(SpeculativeExecutionTest, LoserCancellationLatencyBound) {
  constexpr double kAbortBudgetMs = 500.0;
  SpecFixture& fx = Fix();
  EngineOptions racing = BaseOptions();
  racing.num_threads = 2;
  racing.speculate_threshold = 2.0;
  Engine engine(&fx.store, &fx.rules, racing);
  engine.catalog().Preload(fx.poison_a);

  for (int rep = 0; rep < 5; ++rep) {
    const Engine::QueryResult result = fx.Run(engine);
    ASSERT_EQ(result.stats.plans_raced, 2u);
    EXPECT_LT(result.stats.race_loser_abort_ms, kAbortBudgetMs)
        << "rep " << rep;
  }
}

// Strict <50 ms variant of the bound above (the PR 5 abort guarantee),
// gated on SPECQP_STRICT_TIMING because it needs an unloaded machine:
// run it standalone via
//   SPECQP_STRICT_TIMING=1 ./core_speculative_execution_test
//     (--gtest_filter='*LoserCancellationLatencyBoundStrict*')
TEST(SpeculativeExecutionTest, LoserCancellationLatencyBoundStrict) {
  if (std::getenv("SPECQP_STRICT_TIMING") == nullptr) {
    GTEST_SKIP() << "set SPECQP_STRICT_TIMING=1 on an unloaded machine to "
                    "enforce the strict 50 ms abort bound";
  }
#if defined(SPECQP_SANITIZED_BUILD)
  constexpr double kAbortBudgetMs = 500.0;
#else
  constexpr double kAbortBudgetMs = 50.0;
#endif
  SpecFixture& fx = Fix();
  EngineOptions racing = BaseOptions();
  racing.num_threads = 2;
  racing.speculate_threshold = 2.0;
  Engine engine(&fx.store, &fx.rules, racing);
  engine.catalog().Preload(fx.poison_a);

  for (int rep = 0; rep < 5; ++rep) {
    const Engine::QueryResult result = fx.Run(engine);
    ASSERT_EQ(result.stats.plans_raced, 2u);
    // The loser polls its interrupt per row; from the winner's claim to the
    // loser's wind-down must stay inside the abort budget.
    EXPECT_LT(result.stats.race_loser_abort_ms, kAbortBudgetMs)
        << "rep " << rep;
  }
}

TEST(SpeculativeExecutionTest, RacedStatsAreWinnerOnlyPlusLedger) {
  SpecFixture& fx = Fix();

  // Speculation off over the poisoned stats: the slow relaxed plan runs to
  // completion and its full drain shows up in the operator counters.
  EngineOptions off = BaseOptions();
  Engine engine_off(&fx.store, &fx.rules, off);
  engine_off.catalog().Preload(fx.poison_a);
  const Engine::QueryResult slow = fx.Run(engine_off);

  EngineOptions racing = BaseOptions();
  racing.num_threads = 2;
  racing.speculate_threshold = 2.0;
  Engine engine_on(&fx.store, &fx.rules, racing);
  engine_on.catalog().Preload(fx.poison_a);
  const Engine::QueryResult raced = fx.Run(engine_on);
  ASSERT_EQ(raced.stats.race_wins_by_runnerup, 1u);

  // Winner-only folding: the raced result's operator counters reflect the
  // fast winner, not winner + loser. The loser's materialised-but-discarded
  // answers land in the wasted-work ledger instead.
  EXPECT_LT(raced.stats.scan_rows, slow.stats.scan_rows)
      << "raced stats must not absorb the slow loser's scan work";
  EXPECT_EQ(raced.stats.plans_raced, 2u);
  EXPECT_EQ(raced.stats.replans_triggered, 0u);
  ExpectSameRows(slow.rows, raced.rows, "raced vs slow-plan rows");
}

// --- mid-query re-planning -------------------------------------------------

TEST(SpeculativeExecutionTest, ReplanRestartIsBitIdentical) {
  SpecFixture& fx = Fix();

  // No adaptivity: the poisoned slow plan runs straight through.
  EngineOptions plain = BaseOptions();
  Engine engine_plain(&fx.store, &fx.rules, plain);
  engine_plain.catalog().Preload(fx.poison_a);
  engine_plain.catalog().Preload(fx.poison_c);
  const Engine::QueryResult expected = fx.Run(engine_plain);
  EXPECT_EQ(expected.stats.replans_triggered, 0u);

  // Adaptive: C's cardinality is claimed ~2500x low, so the divergence
  // checkpoint fires mid-drain, the execution re-plans on warm memos, and
  // the restarted run must return the identical top-k.
  EngineOptions adaptive = BaseOptions();
  adaptive.replan_divergence_factor = 2.0;
  adaptive.replan_check_rows = 64;
  Engine engine_adaptive(&fx.store, &fx.rules, adaptive);
  engine_adaptive.catalog().Preload(fx.poison_a);
  engine_adaptive.catalog().Preload(fx.poison_c);
  const Engine::QueryResult replanned = fx.Run(engine_adaptive);

  EXPECT_EQ(replanned.stats.replans_triggered, 1u);
  ExpectSameRows(expected.rows, replanned.rows, "replan restart");
}

// --- calibration loop ------------------------------------------------------

TEST(SpeculativeExecutionTest, CalibrationRoundTripThroughFitScript) {
  if (std::system("python3 -c 'pass' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  SpecFixture& fx = Fix();

  // Run with C's match count claimed 2500x low; the calibration log then
  // holds (estimated_m=12, actual_m=30012) observations for class ?|rp|#.
  EngineOptions options = BaseOptions();
  Engine engine(&fx.store, &fx.rules, options);
  engine.catalog().Preload(fx.poison_c);
  (void)fx.Run(engine);
  const std::vector<CalibrationPatternRecord> records =
      engine.calibration_log().PatternRecords();
  ASSERT_FALSE(records.empty());

  // Dump the log the way a bench artifact would.
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir();
  const std::string artifact =
      dir + "/" + info->name() + "_calibration.json";
  const std::string table = dir + "/" + info->name() + "_table.tsv";
  {
    std::ofstream out(artifact);
    ASSERT_TRUE(out.good());
    out << "{\"calibration\":{\"patterns\":[";
    for (size_t i = 0; i < records.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"signature\":\"" << records[i].signature
          << "\",\"estimated_m\":" << records[i].estimated_m
          << ",\"actual_m\":" << records[i].actual_m << "}";
    }
    out << "]}}";
  }

  // tests/core_speculative_execution_test.cc -> <repo>/scripts/.
  std::string tests_dir = __FILE__;
  tests_dir = tests_dir.substr(0, tests_dir.find_last_of('/'));
  const std::string script =
      tests_dir + "/../scripts/fit_estimator_correction.py";
  const std::string command = "python3 '" + script + "' '" + artifact +
                              "' --out '" + table + "' 2>/dev/null";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  // A fresh engine opened with the fitted table estimates differently: the
  // ?|rp|# class carries a strong up-correction (clamped at the loader's
  // 100x bound), so the same preloaded claim of m=12 now reads as 1200.
  EngineOptions corrected_options = BaseOptions();
  corrected_options.calibration_path = table;
  Engine corrected(&fx.store, &fx.rules, corrected_options);
  EXPECT_GT(corrected.catalog().CorrectionFor(fx.key_c), 1.0);
  corrected.catalog().Preload(fx.poison_c);
  EXPECT_GT(corrected.catalog().GetStats(fx.key_c).m, SpecFixture::kAnswers);

  // Missing table: no corrections, not an error.
  EngineOptions missing = BaseOptions();
  missing.calibration_path = dir + "/does_not_exist.tsv";
  Engine uncorrected(&fx.store, &fx.rules, missing);
  EXPECT_EQ(uncorrected.catalog().CorrectionFor(fx.key_c), 1.0);
}

// --- the 116-query probe ---------------------------------------------------

// Speculation forced on (threshold 2.0 > any confidence) plus adaptive
// re-planning, across all three strategies and 1/2/8 threads: answers must
// be bit-identical to the serial speculation-off baseline for every bundled
// workload query. This is the paper-scale guarantee that racing is a pure
// latency optimisation.
TEST(SpeculativeExecutionTest, ProbeBitIdenticalWithSpeculationForcedOn) {
  XkgConfig xkg_config;
  xkg_config.num_entities = 6000;
  xkg_config.num_domains = 8;
  const XkgDataset xkg = GenerateXkg(xkg_config);
  XkgWorkloadConfig xkg_wl;
  xkg_wl.min_relaxations = 8;
  const std::vector<Query> xkg_queries = MakeXkgWorkload(xkg, xkg_wl);
  ASSERT_EQ(xkg_queries.size(), 66u);

  TwitterConfig twitter_config;
  twitter_config.num_tweets = 20000;
  twitter_config.num_topics = 12;
  const TwitterDataset twitter = GenerateTwitter(twitter_config);
  TwitterWorkloadConfig twitter_wl;
  twitter_wl.min_relaxations = 4;
  twitter_wl.min_relaxed_answers = 10;
  const std::vector<Query> twitter_queries =
      MakeTwitterWorkload(twitter, twitter_wl);
  ASSERT_EQ(twitter_queries.size(), 50u);
  ASSERT_EQ(xkg_queries.size() + twitter_queries.size(), 116u);

  struct Bundle {
    const char* name;
    const TripleStore* store;
    const RelaxationIndex* rules;
    const std::vector<Query>* workload;
  } bundles[] = {
      {"xkg", &xkg.store, &xkg.rules, &xkg_queries},
      {"twitter", &twitter.store, &twitter.rules, &twitter_queries},
  };
  constexpr Strategy kStrategies[] = {Strategy::kSpecQp, Strategy::kTrinit,
                                      Strategy::kNoRelax};
#if defined(SPECQP_SANITIZED_BUILD)
  const std::vector<int> thread_counts = {2};
#else
  const std::vector<int> thread_counts = {1, 2, 8};
#endif

  for (const Bundle& bundle : bundles) {
    for (const Strategy strategy : kStrategies) {
      EngineOptions base = BaseOptions();
      Engine baseline(bundle.store, bundle.rules, base);
      std::vector<std::vector<ScoredRow>> expected;
      expected.reserve(bundle.workload->size());
      for (const Query& query : *bundle.workload) {
        expected.push_back(
            testing::Execute(baseline, query, 10, strategy).rows);
      }

      for (const int threads : thread_counts) {
        EngineOptions options = BaseOptions();
        options.num_threads = threads;
        options.speculate_threshold = 2.0;
        options.replan_divergence_factor = 8.0;
        Engine engine(bundle.store, bundle.rules, options);
        uint64_t raced = 0;
        for (size_t q = 0; q < bundle.workload->size(); ++q) {
          const Engine::QueryResult result = testing::Execute(
              engine, (*bundle.workload)[q], 10, strategy);
          raced += result.stats.plans_raced;
          ExpectSameRows(
              expected[q], result.rows,
              StrFormat("%s/%s q%zu threads=%d", bundle.name,
                        std::string(StrategyName(strategy)).c_str(), q,
                        threads));
        }
        if (strategy == Strategy::kSpecQp && threads >= 2) {
          EXPECT_GT(raced, 0u)
              << bundle.name << " threads=" << threads
              << ": forced speculation should race at least one query";
        }
      }
    }
  }
}

}  // namespace
}  // namespace specqp
