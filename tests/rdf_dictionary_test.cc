#include "rdf/dictionary.h"

#include <string>

#include <gtest/gtest.h>

namespace specqp {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.Intern("same");
  EXPECT_EQ(dict.Intern("same"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, NameRoundTrips) {
  Dictionary dict;
  const TermId a = dict.Intern("rdf:type");
  const TermId b = dict.Intern("#intoyouvideo");
  EXPECT_EQ(dict.Name(a), "rdf:type");
  EXPECT_EQ(dict.Name(b), "#intoyouvideo");
}

TEST(DictionaryTest, FindExistingAndMissing) {
  Dictionary dict;
  dict.Intern("x");
  auto found = dict.Find("x");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0u);
  auto missing = dict.Find("y");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DictionaryTest, Contains) {
  Dictionary dict;
  dict.Intern("present");
  EXPECT_TRUE(dict.Contains("present"));
  EXPECT_FALSE(dict.Contains("absent"));
}

TEST(DictionaryTest, EmptyStringIsAValidTerm) {
  Dictionary dict;
  const TermId id = dict.Intern("");
  EXPECT_EQ(dict.Name(id), "");
  EXPECT_TRUE(dict.Contains(""));
}

TEST(DictionaryTest, ViewsStayValidAcrossGrowth) {
  Dictionary dict;
  const TermId first = dict.Intern("first-term-with-a-long-name");
  const std::string_view view = dict.Name(first);
  // Force plenty of growth; deque storage must not move existing strings.
  for (int i = 0; i < 10000; ++i) {
    dict.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(view, "first-term-with-a-long-name");
  EXPECT_EQ(dict.Find("first-term-with-a-long-name").value(), first);
}

TEST(DictionaryTest, ManyDistinctTerms) {
  Dictionary dict;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.Intern("t" + std::to_string(i)),
              static_cast<TermId>(i));
  }
  EXPECT_EQ(dict.size(), 5000u);
  EXPECT_EQ(dict.Find("t4999").value(), 4999u);
}

TEST(DictionaryDeathTest, NameOutOfRangeAborts) {
  Dictionary dict;
  dict.Intern("only");
  EXPECT_DEATH((void)dict.Name(5), "out of range");
}

}  // namespace
}  // namespace specqp
