#include "util/retry.h"

#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "util/result.h"

namespace specqp {
namespace {

using std::chrono::microseconds;

TEST(RetryPolicyTest, DefaultRetryableCodes) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(policy.IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(policy.IsRetryable(StatusCode::kIoError));
  EXPECT_FALSE(policy.IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(policy.IsRetryable(StatusCode::kCorruption));
  EXPECT_FALSE(policy.IsRetryable(StatusCode::kCancelled));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = microseconds(1000);
  policy.max_backoff = microseconds(8000);
  policy.multiplier = 2.0;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(policy.BackoffFor(1), microseconds(1000));
  EXPECT_EQ(policy.BackoffFor(2), microseconds(2000));
  EXPECT_EQ(policy.BackoffFor(3), microseconds(4000));
  EXPECT_EQ(policy.BackoffFor(4), microseconds(8000));
  EXPECT_EQ(policy.BackoffFor(10), microseconds(8000));  // capped
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff = microseconds(10000);
  policy.max_backoff = microseconds(10000000);
  policy.jitter_fraction = 0.25;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const microseconds a = policy.BackoffFor(attempt);
    const microseconds b = policy.BackoffFor(attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    const double base = 10000.0 * std::pow(2.0, attempt - 1);
    EXPECT_GE(a.count(), static_cast<int64_t>(base * 0.75) - 1);
    EXPECT_LE(a.count(), static_cast<int64_t>(base * 1.25) + 1);
  }
  // Different seeds shift the jitter.
  RetryPolicy other = policy;
  other.seed = policy.seed + 1;
  bool any_diff = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    any_diff |= other.BackoffFor(attempt) != policy.BackoffFor(attempt);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryPolicyTest, HintedBackoffTakesTheMaxButStaysCapped) {
  RetryPolicy policy;
  policy.initial_backoff = microseconds(1000);
  policy.max_backoff = microseconds(5000);
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(policy.BackoffFor(1, microseconds(3000)), microseconds(3000));
  EXPECT_EQ(policy.BackoffFor(1, microseconds(500)), microseconds(1000));
  EXPECT_EQ(policy.BackoffFor(1, microseconds(90000)), microseconds(5000));
}

RetryPolicy FastPolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff = microseconds(1);
  policy.max_backoff = microseconds(10);
  return policy;
}

TEST(RunWithRetryTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  int attempts = 0;
  Status s = RunWithRetry(
      FastPolicy(5),
      [&] {
        ++calls;
        if (calls < 3) return Status::Unavailable("warming up");
        return Status::Ok();
      },
      &attempts);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
}

TEST(RunWithRetryTest, StopsAtMaxAttempts) {
  int calls = 0;
  Status s = RunWithRetry(FastPolicy(3), [&] {
    ++calls;
    return Status::IoError("still broken");
  });
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RunWithRetryTest, NonRetryableFailsImmediately) {
  int calls = 0;
  Status s = RunWithRetry(FastPolicy(5), [&] {
    ++calls;
    return Status::Corruption("bad bytes");
  });
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetryTest, WorksWithResultValues) {
  int calls = 0;
  Result<int> r = RunWithRetry(FastPolicy(4), [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("not yet");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(calls, 2);
}

TEST(RunWithRetryTest, ZeroOrNegativeMaxAttemptsMeansOneTry) {
  int calls = 0;
  Status s = RunWithRetry(FastPolicy(0), [&] {
    ++calls;
    return Status::Unavailable("nope");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace specqp
