// Seeded chaos harness: replays the full 116-query workload (66 XKG + 50
// Twitter) against 8-shard bundles while the deterministic fault injector
// fires randomized schedules at every site the serving path crosses
// (shard.open, shard.read, block.decode, cache.alloc). The invariants are
// the ISSUE-9 serving contract, not any particular failure script:
//
//   1. The process never crashes, whatever the schedule does.
//   2. Every response is either (a) bit-identical to the no-fault baseline
//      when nothing answer-affecting fired during it, (b) a well-formed
//      degraded answer (<= k rows, score-descending, partial or with a
//      populated shard ledger), or (c) a well-formed refusal — one of
//      kUnavailable / kIoError, with no rows.
//   3. With an empty fault plan the injector is disarmed and every answer
//      is bit-identical at every thread count: the hooks are inert.
//
// Schedules are seeded, so a failure here replays exactly.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "rdf/sharded_store.h"
#include "rdf/store_io.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

// Sanitizer builds run ~5-15x slower; trim seeds and threads there (the
// release gate runs the full matrix).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SPECQP_SANITIZED_BUILD 1
#endif
#if !defined(SPECQP_SANITIZED_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SPECQP_SANITIZED_BUILD 1
#endif
#endif

namespace specqp {
namespace {

namespace fs = std::filesystem;

// Sites whose fires can change answers. cache.alloc is deliberately NOT
// here: a refused cache insert still serves the caller the full list, so
// answers must stay bit-identical under cache.alloc fires — the chaos
// rounds assert exactly that.
constexpr std::string_view kAnswerSites[] = {"shard.open", "shard.read",
                                             "block.decode"};

uint64_t AnswerFires() {
  uint64_t total = 0;
  for (const std::string_view site : kAnswerSites) {
    total += FaultInjector::Global().FireCount(site);
  }
  return total;
}

struct Workload {
  const char* name;
  const TripleStore* store;
  const RelaxationIndex* rules;
  std::vector<Query> queries;
  std::string bundle_dir;            // 8-shard subject-hashed bundle
  std::vector<std::vector<ScoredRow>> baseline;  // no-fault ground truth
};

class ChaosTest : public ::testing::Test {
 protected:
  // The datasets are expensive to generate; build them once per binary.
  static void SetUpTestSuite() {
    XkgConfig xkg_config;
    xkg_config.num_entities = 6000;
    xkg_config.num_domains = 8;
    xkg_ = new XkgDataset(GenerateXkg(xkg_config));
    XkgWorkloadConfig xkg_wl;
    xkg_wl.min_relaxations = 8;

    TwitterConfig twitter_config;
    twitter_config.num_tweets = 20000;
    twitter_config.num_topics = 12;
    twitter_ = new TwitterDataset(GenerateTwitter(twitter_config));
    TwitterWorkloadConfig twitter_wl;
    twitter_wl.min_relaxations = 4;
    twitter_wl.min_relaxed_answers = 10;

    workloads_ = new std::vector<Workload>();
    workloads_->push_back({"xkg", &xkg_->store, &xkg_->rules,
                           MakeXkgWorkload(*xkg_, xkg_wl)});
    workloads_->push_back({"twitter", &twitter_->store, &twitter_->rules,
                           MakeTwitterWorkload(*twitter_, twitter_wl)});
    ASSERT_EQ((*workloads_)[0].queries.size(), 66u);
    ASSERT_EQ((*workloads_)[1].queries.size(), 50u);

    const std::string dir = ::testing::TempDir() + "/chaos";
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (Workload& wl : *workloads_) {
      wl.bundle_dir = dir + "/" + wl.name;
      ShardBundleOptions bundle;
      bundle.shard_count = 8;
      ASSERT_TRUE(WriteShardBundle(*wl.store, wl.bundle_dir, bundle).ok());

      EngineOptions base;
      base.num_threads = 1;
      Engine baseline(wl.store, wl.rules, base);
      wl.baseline.reserve(wl.queries.size());
      for (const Query& query : wl.queries) {
        wl.baseline.push_back(
            testing::Execute(baseline, query, 10, Strategy::kSpecQp).rows);
      }
    }
  }

  static void TearDownTestSuite() {
    delete workloads_;
    workloads_ = nullptr;
    delete twitter_;
    twitter_ = nullptr;
    delete xkg_;
    xkg_ = nullptr;
  }

  void TearDown() override { FaultInjector::Global().Disarm(); }

  static QueryResponse Submit(Engine& engine, const Query& query) {
    QueryRequest request = QueryRequest::FromQuery(query, 10);
    request.admission = QueryRequest::Admission::kImmediate;
    return engine.Submit(std::move(request)).get();
  }

  static void ExpectWellFormed(const QueryResponse& response,
                               const std::string& label) {
    EXPECT_LE(response.rows.size(), 10u) << label;
    for (size_t i = 1; i < response.rows.size(); ++i) {
      EXPECT_GE(response.rows[i - 1].score, response.rows[i].score)
          << label << " row " << i << " breaks score order";
    }
  }

  static void ExpectSameRows(const std::vector<ScoredRow>& expected,
                             const std::vector<ScoredRow>& actual,
                             const std::string& label) {
    ASSERT_EQ(actual.size(), expected.size()) << label;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].bindings, expected[i].bindings)
          << label << " #" << i;
      EXPECT_EQ(actual[i].score, expected[i].score) << label << " #" << i;
    }
  }

  static XkgDataset* xkg_;
  static TwitterDataset* twitter_;
  static std::vector<Workload>* workloads_;
};

XkgDataset* ChaosTest::xkg_ = nullptr;
TwitterDataset* ChaosTest::twitter_ = nullptr;
std::vector<Workload>* ChaosTest::workloads_ = nullptr;

// Invariant 3: an empty fault plan means the hooks are inert — the
// injector stays disarmed and the whole workload is bit-identical to the
// in-memory baseline at every thread count, with nothing marked partial.
TEST_F(ChaosTest, EmptyPlanIsBitIdenticalAcrossThreadCounts) {
#if defined(SPECQP_SANITIZED_BUILD)
  const std::vector<int> thread_counts = {2};
#else
  const std::vector<int> thread_counts = {1, 2, 8};
#endif
  ASSERT_FALSE(FaultInjector::Global().armed());

  for (const Workload& wl : *workloads_) {
    for (const int threads : thread_counts) {
      EngineOptions options;
      options.num_threads = threads;
      options.degraded_reads = true;  // the knob alone must not change answers
      auto opened = Engine::OpenFromPath(wl.bundle_dir, wl.rules, options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      for (size_t q = 0; q < wl.queries.size(); ++q) {
        const std::string label =
            StrFormat("%s q%zu threads=%d", wl.name, q, threads);
        QueryResponse response =
            Submit(*opened.value().engine, wl.queries[q]);
        ASSERT_TRUE(response.ok()) << label << ": "
                                   << response.status.ToString();
        EXPECT_FALSE(response.partial) << label;
        EXPECT_EQ(response.stats.shards_failed, 0u) << label;
        EXPECT_EQ(response.stats.store_faults, 0u) << label;
        ExpectSameRows(wl.baseline[q], response.rows, label);
      }
    }
  }
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_EQ(AnswerFires(), 0u);
}

// Invariants 1 + 2: randomized fault schedules across every site. Each
// seed opens a fresh engine per dataset (so open-time faults get their
// turn too) and replays the full workload under fire.
TEST_F(ChaosTest, SeededFaultSchedulesNeverBreakTheServingContract) {
  // All three seeds run even under sanitizers — the acceptance bar is
  // "green across >= 3 seeds", and the rounds are cheap next to the
  // dataset generation (only the thread sweep above gets trimmed).
  const std::vector<int> seeds = {101, 202, 303};

  uint64_t clean = 0;     // responses proven bit-identical
  uint64_t degraded = 0;  // ok but partial / shards down
  uint64_t refused = 0;   // kUnavailable or kIoError
  for (const int seed : seeds) {
    // Fire caps (@n) bound the blast radius per seed: a quarantine is
    // permanent for the engine's lifetime, so an uncapped read-fault
    // probability would degrade every response after the first fire and
    // leave nothing to prove bit-identical. Capped, each round has clean
    // queries on both sides of the faults. cache.alloc stays uncapped —
    // its fires must never change an answer.
    ScopedFaultPlan plan(StrFormat(
        "seed=%d;shard.open=0.02@1;shard.read=0.001@1;block.decode=0.002@2;"
        "cache.alloc=0.01",
        seed));
    ASSERT_TRUE(FaultInjector::Global().armed());

    for (const Workload& wl : *workloads_) {
      EngineOptions options;
      options.num_threads = 1;
      options.degraded_reads = true;
      auto opened = Engine::OpenFromPath(wl.bundle_dir, wl.rules, options);
      if (!opened.ok()) {
        // A schedule may take out every shard at open despite retries.
        EXPECT_EQ(opened.status().code(), StatusCode::kUnavailable)
            << "seed " << seed << " " << wl.name << ": "
            << opened.status().ToString();
        continue;
      }

      for (size_t q = 0; q < wl.queries.size(); ++q) {
        const std::string label =
            StrFormat("seed=%d %s q%zu", seed, wl.name, q);
        const uint64_t fires_before = AnswerFires();
        QueryResponse response =
            Submit(*opened.value().engine, wl.queries[q]);
        const uint64_t fires_during = AnswerFires() - fires_before;

        if (response.ok()) {
          ExpectWellFormed(response, label);
          EXPECT_LE(response.stats.shards_failed,
                    response.stats.shards_total)
              << label;
          if (fires_during == 0 && !response.partial &&
              response.stats.shards_failed == 0 &&
              response.stats.store_faults == 0) {
            // Nothing answer-affecting fired (cache.alloc may have): the
            // answer must be exactly the baseline.
            ExpectSameRows(wl.baseline[q], response.rows, label);
            ++clean;
          } else {
            EXPECT_TRUE(response.partial ||
                        response.stats.shards_failed == 0)
                << label << ": shards down but answer not marked partial";
            ++degraded;
          }
        } else {
          EXPECT_TRUE(response.status.code() == StatusCode::kUnavailable ||
                      response.status.code() == StatusCode::kIoError)
              << label << ": unexpected terminal status "
              << response.status.ToString();
          EXPECT_TRUE(response.rows.empty()) << label;
          ++refused;
        }
      }
    }
  }
  FaultInjector::Global().Disarm();

  // The schedule must have actually exercised the machinery: some answers
  // proven clean, and some fault handling observed across the rounds.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(degraded + refused, 0u)
      << "no schedule perturbed any response; probabilities too low?";
}

}  // namespace
}  // namespace specqp
