// Streaming admission (Engine::Submit + AdmissionController): window close
// on max-size and max-delay, bit-identical answers to sequential Execute
// for every bundled workload query at window sizes 1-16 across all three
// strategies, concurrent submission from many threads, cooperative
// cancellation (< 50 ms out of a long join) and deadlines, and the
// duplicate-collapsing semantics when riders disagree about interruption.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/admission.h"
#include "core/engine.h"
#include "core/request.h"
#include "datasets/twitter_generator.h"
#include "datasets/workload.h"
#include "datasets/xkg_generator.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

// Sanitizer builds run the whole suite ~5-15x slower; relax the wall-clock
// assertions and trim the workload sweep there so the TSan/ASan gates stay
// fast while the release gate enforces the real latency bar.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SPECQP_SANITIZED_BUILD 1
#endif
#if !defined(SPECQP_SANITIZED_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SPECQP_SANITIZED_BUILD 1
#endif
#endif

namespace specqp {
namespace {

using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

constexpr Strategy kStrategies[] = {Strategy::kSpecQp, Strategy::kTrinit,
                                    Strategy::kNoRelax};

void ExpectSameRows(const std::vector<ScoredRow>& expected,
                    const std::vector<ScoredRow>& actual,
                    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].bindings, expected[i].bindings) << label << " #" << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " #" << i;
  }
}

// A store whose 2-pattern join degenerates to a full drain (uniform
// scores: the strict HRJN threshold can never be beaten until both inputs
// are exhausted), so executions run long enough to be interrupted.
struct SlowJoinFixture {
  TripleStore store;
  RelaxationIndex rules;  // empty
  Query query;

  explicit SlowJoinFixture(size_t num_subjects) {
    Dictionary& dict = store.dict();
    const TermId p0 = dict.Intern("p0");
    const TermId p1 = dict.Intern("p1");
    const TermId x = dict.Intern("x");
    const TermId y = dict.Intern("y");
    for (size_t i = 0; i < num_subjects; ++i) {
      const TermId s = dict.Intern(StrFormat("s%zu", i));
      store.AddEncoded(s, p0, x, 1.0);
      store.AddEncoded(s, p1, y, 1.0);
    }
    store.Finalize();

    const VarId s = query.GetOrAddVariable("s");
    query.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p0),
                                   PatternTerm::Const(x)));
    query.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p1),
                                   PatternTerm::Const(y)));
    query.AddProjection(s);
  }
};

TEST(AdmissionTest, AlreadyCancelledTokenAtSubmitTime) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  CancellationToken token = CancellationToken::Create();
  token.RequestCancel();

  for (const QueryRequest::Admission admission :
       {QueryRequest::Admission::kWindow,
        QueryRequest::Admission::kImmediate}) {
    QueryRequest request =
        QueryRequest::FromQuery(fx.TypeQuery({"singer"}), 5);
    request.cancel = token;
    request.admission = admission;
    const QueryResponse response = engine.Submit(std::move(request)).get();
    EXPECT_FALSE(response.ok());
    EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
    EXPECT_TRUE(response.rows.empty());
    EXPECT_FALSE(response.partial);
  }
  EXPECT_GE(engine.admission().stats().rejected_at_submit, 1u);
}

TEST(AdmissionTest, SingleQueryWindowClosesOnMaxDelayBitIdentical) {
  MusicFixture fx = MakeMusicFixture();
  Engine reference(&fx.store, &fx.rules);
  Engine engine(&fx.store, &fx.rules);  // default window: 16 / 2 ms
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  const Engine::QueryResult expected =
      testing::Execute(reference, query, 5, Strategy::kSpecQp);

  // One submission, no flush: only the max-delay close can dispatch it.
  const QueryResponse response =
      engine.Submit(QueryRequest::FromQuery(query, 5)).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.window_size, 1u);
  ExpectSameRows(expected.rows, response.rows, "delay-closed window of one");

  const AdmissionController::Stats stats = engine.admission().stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.windows_dispatched, 1u);
  EXPECT_EQ(stats.closed_on_delay, 1u);
  EXPECT_EQ(stats.closed_on_size, 0u);
}

TEST(AdmissionTest, WindowClosesOnMaxSizeWithoutWaitingForDelay) {
  MusicFixture fx = MakeMusicFixture();
  EngineOptions options;
  options.admission_max_batch = 4;
  options.admission_max_delay_ms = 60000.0;  // delay close would time out
  Engine engine(&fx.store, &fx.rules, options);
  Engine reference(&fx.store, &fx.rules);

  const std::vector<Query> queries = {
      fx.TypeQuery({"singer", "lyricist"}),
      fx.TypeQuery({"pianist"}),
      fx.TypeQuery({"guitarist", "singer"}),
      fx.TypeQuery({"jazz_singer"}),
  };
  std::vector<std::future<QueryResponse>> futures;
  for (const Query& query : queries) {
    futures.push_back(engine.Submit(QueryRequest::FromQuery(query, 5)));
  }
  WallTimer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(response.window_size, 4u);
    ExpectSameRows(testing::Execute(reference, queries[i], 5, Strategy::kSpecQp).rows,
                   response.rows, "size-closed window slot " +
                                      std::to_string(i));
  }
  // Way under the 60 s delay: the size close must have dispatched it.
  EXPECT_LT(timer.ElapsedMillis(), 30000.0);
  const AdmissionController::Stats stats = engine.admission().stats();
  EXPECT_EQ(stats.closed_on_size, 1u);
  EXPECT_EQ(stats.max_window_size, 4u);
}

TEST(AdmissionTest, FlushClosesPartialWindowsAndSplitsByKAndStrategy) {
  MusicFixture fx = MakeMusicFixture();
  EngineOptions options;
  options.admission_max_batch = 16;
  options.admission_max_delay_ms = 60000.0;
  Engine engine(&fx.store, &fx.rules, options);
  Engine reference(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});

  // Three different (k, strategy) combinations => three windows.
  auto f1 = engine.Submit(QueryRequest::FromQuery(query, 5));
  auto f2 = engine.Submit(QueryRequest::FromQuery(query, 7));
  auto f3 = engine.Submit(
      QueryRequest::FromQuery(query, 5, Strategy::kTrinit));
  engine.admission().Flush();

  const QueryResponse r1 = f1.get();
  const QueryResponse r2 = f2.get();
  const QueryResponse r3 = f3.get();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1.window_size, 1u);
  EXPECT_EQ(r2.window_size, 1u);
  EXPECT_EQ(r3.window_size, 1u);
  ExpectSameRows(testing::Execute(reference, query, 5, Strategy::kSpecQp).rows, r1.rows,
                 "k=5 spec");
  ExpectSameRows(testing::Execute(reference, query, 7, Strategy::kSpecQp).rows, r2.rows,
                 "k=7 spec");
  ExpectSameRows(testing::Execute(reference, query, 5, Strategy::kTrinit).rows, r3.rows,
                 "k=5 trinit");
  const AdmissionController::Stats stats = engine.admission().stats();
  EXPECT_EQ(stats.windows_dispatched, 3u);
  EXPECT_EQ(stats.closed_on_flush, 3u);
}

TEST(AdmissionTest, ConcurrentSubmitFromEightThreads) {
  MusicFixture fx = MakeMusicFixture();
  Engine reference(&fx.store, &fx.rules);
  const std::vector<Query> pool = {
      fx.TypeQuery({"singer", "lyricist"}),
      fx.TypeQuery({"pianist", "guitarist"}),
      fx.TypeQuery({"jazz_singer"}),
      fx.TypeQuery({"singer", "lyricist", "guitarist"}),
  };
  std::vector<Engine::QueryResult> expected;
  for (const Query& query : pool) {
    expected.push_back(testing::Execute(reference, query, 5, Strategy::kSpecQp));
  }

  Engine engine(&fx.store, &fx.rules);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 6;
  std::vector<std::vector<std::future<QueryResponse>>> futures(kThreads);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        futures[t].reserve(kPerThread);
        for (size_t i = 0; i < kPerThread; ++i) {
          QueryRequest request =
              QueryRequest::FromQuery(pool[(t + i) % pool.size()], 5);
          request.tag = std::to_string(t) + "/" + std::to_string(i);
          futures[t].push_back(engine.Submit(std::move(request)));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  engine.admission().Flush();
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      const QueryResponse response = futures[t][i].get();
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      EXPECT_EQ(response.tag,
                std::to_string(t) + "/" + std::to_string(i));
      ExpectSameRows(expected[(t + i) % pool.size()].rows, response.rows,
                     "thread " + std::to_string(t) + " submit " +
                         std::to_string(i));
    }
  }
  const AdmissionController::Stats stats = engine.admission().stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.batched_queries, kThreads * kPerThread);
  EXPECT_GE(stats.windows_dispatched, 1u);
}

TEST(AdmissionTest, DeadlineExpiredBeforeDispatch) {
  MusicFixture fx = MakeMusicFixture();
  Engine engine(&fx.store, &fx.rules);
  QueryRequest request = QueryRequest::FromQuery(fx.TypeQuery({"singer"}), 5);
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const QueryResponse response = engine.Submit(std::move(request)).get();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.rows.empty());
  EXPECT_FALSE(response.partial);
  EXPECT_GE(engine.admission().stats().deadline_exceeded, 1u);
}

TEST(AdmissionTest, DeadlineExpiringMidJoinReturnsDeadlineExceeded) {
  SlowJoinFixture slow(60000);
  Engine engine(&slow.store, &slow.rules);
  QueryRequest request = QueryRequest::FromQuery(slow.query, 10);
  request.WithTimeout(std::chrono::milliseconds(10));
  const QueryResponse response = engine.Submit(std::move(request)).get();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.rows.empty());
  EXPECT_FALSE(response.partial) << "no partial results on expiry";
}

TEST(AdmissionTest, CancellationDuringLongJoinReturnsPromptly) {
  SlowJoinFixture slow(200000);
  Engine engine(&slow.store, &slow.rules);

  // The bound under test is the *poll* latency — one join iteration plus
  // the promise handoff — not scheduler fairness, so take the best of a
  // few attempts (ctest runs suites concurrently on few cores, and a
  // single bad timeslice would otherwise flake this). Sanitizer builds
  // get proportional slack.
#ifdef SPECQP_SANITIZED_BUILD
  constexpr double kLatencyBoundMs = 500.0;
#else
  constexpr double kLatencyBoundMs = 50.0;
#endif
  double best_latency_ms = 1e9;
  for (int attempt = 0; attempt < 3 && best_latency_ms >= kLatencyBoundMs;
       ++attempt) {
    CancellationToken token = CancellationToken::Create();
    QueryRequest request = QueryRequest::FromQuery(slow.query, 10);
    request.cancel = token;
    std::future<QueryResponse> future = engine.Submit(std::move(request));
    engine.admission().Flush();

    // Let the join get going, then cancel and time the response.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    WallTimer cancel_timer;
    token.RequestCancel();
    const QueryResponse response = future.get();
    best_latency_ms = std::min(best_latency_ms, cancel_timer.ElapsedMillis());

    EXPECT_FALSE(response.ok());
    EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
    EXPECT_TRUE(response.rows.empty());
  }
  EXPECT_LT(best_latency_ms, kLatencyBoundMs);
  EXPECT_GE(engine.admission().stats().cancelled, 1u);
}

TEST(AdmissionTest, DuplicateQueriesWithMixedCancellation) {
  MusicFixture fx = MakeMusicFixture();
  EngineOptions options;
  options.admission_max_batch = 16;
  options.admission_max_delay_ms = 60000.0;
  Engine engine(&fx.store, &fx.rules, options);
  Engine reference(&fx.store, &fx.rules);
  const Query query = fx.TypeQuery({"singer", "lyricist"});

  CancellationToken token = CancellationToken::Create();
  auto plain = engine.Submit(QueryRequest::FromQuery(query, 5));
  QueryRequest cancellable = QueryRequest::FromQuery(query, 5);
  cancellable.cancel = token;
  auto doomed = engine.Submit(std::move(cancellable));
  token.RequestCancel();
  engine.admission().Flush();

  // The cancelled rider terminates with kCancelled; its twin still gets
  // the full, correct answer (mixed riders run uninterruptible).
  const QueryResponse ok_response = plain.get();
  ASSERT_TRUE(ok_response.ok()) << ok_response.status.ToString();
  ExpectSameRows(testing::Execute(reference, query, 5, Strategy::kSpecQp).rows,
                 ok_response.rows, "uncancelled twin");
  const QueryResponse cancelled_response = doomed.get();
  EXPECT_FALSE(cancelled_response.ok());
  EXPECT_EQ(cancelled_response.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(cancelled_response.rows.empty());
}

// Regression: every window is charged to exactly one close-reason counter,
// exactly once. Before windows carried a close-accounted flag, a Flush
// racing the dispatcher's delay scan (or a second Flush arriving while the
// first's windows still sat in the closed queue) could bump two counters
// for one window, so closed_on_* summed to more than windows_dispatched.
TEST(AdmissionTest, CloseReasonCountersSumToWindowsDispatched) {
  MusicFixture fx = MakeMusicFixture();
  EngineOptions options;
  options.admission_max_batch = 3;
  options.admission_max_delay_ms = 60000.0;  // only size/flush close windows
  Engine engine(&fx.store, &fx.rules, options);
  const Query query = fx.TypeQuery({"singer", "lyricist"});

  std::vector<std::future<QueryResponse>> futures;
  // Window 1: exactly max_batch riders -> closed_on_size.
  for (int i = 0; i < 3; ++i) {
    futures.push_back(engine.Submit(QueryRequest::FromQuery(query, 5)));
  }
  // Window 2: a partial window (different k) that only Flush can close.
  futures.push_back(engine.Submit(QueryRequest::FromQuery(query, 7)));
  // Repeated flushes: the first closes window 2; the rest find nothing
  // open and must not charge anything (empty windows are never accounted).
  for (int i = 0; i < 5; ++i) engine.admission().Flush();
  // Window 3: opened after the flush volley, closed by the next flush.
  futures.push_back(
      engine.Submit(QueryRequest::FromQuery(query, 5, Strategy::kTrinit)));
  engine.admission().Flush();
  engine.admission().Flush();

  for (auto& future : futures) {
    const QueryResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
  }
  const AdmissionController::Stats stats = engine.admission().stats();
  EXPECT_EQ(stats.submitted, futures.size());
  EXPECT_EQ(stats.closed_on_size, 1u);
  EXPECT_EQ(stats.closed_on_flush, 2u);
  EXPECT_EQ(stats.closed_on_delay, 0u);
  EXPECT_EQ(stats.windows_dispatched,
            stats.closed_on_size + stats.closed_on_delay +
                stats.closed_on_flush)
      << "every window must be charged to exactly one close reason";
}

// Same invariant under delay closes and the shutdown drain: short-delay
// windows close on the dispatcher's scan; a window submitted right before
// destruction is drained (charged as a flush close) by the dispatcher's
// shutdown path. The counters are read after the engine (and with it the
// controller's dispatcher thread) has fully drained.
TEST(AdmissionTest, CloseAccountingSurvivesDelayAndShutdownDrain) {
  MusicFixture fx = MakeMusicFixture();
  const Query query = fx.TypeQuery({"singer", "lyricist"});
  AdmissionController::Stats stats;
  {
    EngineOptions options;
    options.admission_max_batch = 16;
    options.admission_max_delay_ms = 1.0;
    Engine engine(&fx.store, &fx.rules, options);
    auto first = engine.Submit(QueryRequest::FromQuery(query, 5));
    ASSERT_TRUE(first.get().ok());  // forces the delay close to happen
    // Interleave a flush volley with fresh submissions so flush closes,
    // delay closes, and the shutdown drain all hit the same counters.
    auto second = engine.Submit(QueryRequest::FromQuery(query, 7));
    engine.admission().Flush();
    engine.admission().Flush();
    ASSERT_TRUE(second.get().ok());
    auto third = engine.Submit(QueryRequest::FromQuery(query, 9));
    stats = engine.admission().stats();
    // Not yet drained: the invariant below is only claimed after shutdown;
    // here the third window may still be open.
    ASSERT_TRUE(third.valid());
    // Engine destruction joins the dispatcher, which drains window 3.
    const QueryResponse last = third.get();
    ASSERT_TRUE(last.ok()) << last.status.ToString();
    stats = engine.admission().stats();
  }
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.windows_dispatched,
            stats.closed_on_size + stats.closed_on_delay +
                stats.closed_on_flush)
      << "drained controller: close reasons must partition the windows";
  EXPECT_GE(stats.closed_on_delay, 1u);
}

// The acceptance sweep: every bundled workload query (66 XKG + 50 Twitter
// = 116, the bench-bundle counts over test-sized datasets), submitted in
// mixed arrival order through windows of size 1-16, must return responses
// bit-identical to sequential Execute across all three strategies.
TEST(AdmissionTest, AllWorkloadQueriesBitIdenticalAcrossWindowSizes) {
  XkgConfig xkg_config;
  xkg_config.num_entities = 6000;
  xkg_config.num_domains = 8;
  const XkgDataset xkg = GenerateXkg(xkg_config);
  XkgWorkloadConfig xkg_wl;  // defaults: 22 per size of 2/3/4 => 66
  xkg_wl.min_relaxations = 8;
  const std::vector<Query> xkg_queries = MakeXkgWorkload(xkg, xkg_wl);
  ASSERT_EQ(xkg_queries.size(), 66u);

  TwitterConfig twitter_config;
  twitter_config.num_tweets = 20000;
  twitter_config.num_topics = 12;
  const TwitterDataset twitter = GenerateTwitter(twitter_config);
  TwitterWorkloadConfig twitter_wl;  // defaults: 25 per size of 2/3 => 50
  twitter_wl.min_relaxations = 4;
  twitter_wl.min_relaxed_answers = 10;
  const std::vector<Query> twitter_queries =
      MakeTwitterWorkload(twitter, twitter_wl);
  ASSERT_EQ(twitter_queries.size(), 50u);
  ASSERT_EQ(xkg_queries.size() + twitter_queries.size(), 116u);

  const struct {
    const char* name;
    const TripleStore* store;
    const RelaxationIndex* rules;
    const std::vector<Query>* workload;
  } bundles[] = {
      {"xkg", &xkg.store, &xkg.rules, &xkg_queries},
      {"twitter", &twitter.store, &twitter.rules, &twitter_queries},
  };

#ifdef SPECQP_SANITIZED_BUILD
  // Sanitizer gates cover the concurrency; one strategy keeps them fast.
  const std::vector<Strategy> strategies = {Strategy::kSpecQp};
#else
  const std::vector<Strategy> strategies(std::begin(kStrategies),
                                         std::end(kStrategies));
#endif

  Rng rng(20260729);
  for (const auto& bundle : bundles) {
    for (const Strategy strategy : strategies) {
      Engine reference(bundle.store, bundle.rules);
      std::vector<Engine::QueryResult> expected;
      expected.reserve(bundle.workload->size());
      for (const Query& query : *bundle.workload) {
        expected.push_back(testing::Execute(reference, query, 10, strategy));
      }
      for (const size_t max_batch : {size_t{1}, size_t{5}, size_t{16}}) {
        EngineOptions options;
        options.admission_max_batch = max_batch;
        options.admission_max_delay_ms = 5.0;
        Engine engine(bundle.store, bundle.rules, options);

        // Mixed arrival order (deterministic shuffle per configuration).
        std::vector<size_t> order(bundle.workload->size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        rng.Shuffle(&order);

        std::vector<std::future<QueryResponse>> futures(order.size());
        for (const size_t q : order) {
          futures[q] = engine.Submit(
              QueryRequest::FromQuery((*bundle.workload)[q], 10, strategy));
        }
        engine.admission().Flush();
        for (size_t q = 0; q < futures.size(); ++q) {
          const QueryResponse response = futures[q].get();
          ASSERT_TRUE(response.ok()) << response.status.ToString();
          EXPECT_GE(response.window_size, 1u);
          EXPECT_LE(response.window_size, max_batch);
          ExpectSameRows(expected[q].rows, response.rows,
                         std::string(bundle.name) + "/" +
                             std::string(StrategyName(strategy)) +
                             "/window=" + std::to_string(max_batch) +
                             "/query=" + std::to_string(q));
        }
        const AdmissionController::Stats stats = engine.admission().stats();
        EXPECT_EQ(stats.submitted, bundle.workload->size());
        EXPECT_EQ(stats.batched_queries, bundle.workload->size());
        EXPECT_LE(stats.max_window_size, max_batch);
      }
    }
  }
}

}  // namespace
}  // namespace specqp
