// BlockIterator over block-compressed posting lists: every traversal and
// skip must observe exactly the entries a flat scan observes (the codec is
// lossless, the headers are exact summaries), and the cache must be able
// to release decoded blocks without invalidating live readers.

#include "rdf/posting_list.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/mmap_store.h"
#include "rdf/posting_blocks.h"
#include "rdf/store_io.h"
#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// Synthetic posting entries: descending normalised scores with tie runs
// (ties cost one payload byte and exercise the boundary-equal skip case),
// ids drawn from [0, id_limit).
std::vector<PostingEntry> MakeEntries(Rng* rng, size_t count,
                                      uint32_t id_limit) {
  std::vector<PostingEntry> entries;
  entries.reserve(count);
  double score = 1.0;
  for (size_t i = 0; i < count; ++i) {
    if (rng->NextBounded(4) != 0 || i == 0) {
      score *= 0.75 + 0.25 * rng->NextDouble();  // strictly below previous
    }  // else: tie with the previous entry
    PostingEntry e;
    e.triple_index = static_cast<uint32_t>(rng->NextBounded(id_limit));
    e.score = score;
    entries.push_back(e);
  }
  // Enforce the list invariant: score desc, triple index asc on ties.
  std::sort(entries.begin(), entries.end(),
            [](const PostingEntry& a, const PostingEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.triple_index < b.triple_index;
            });
  return entries;
}

PostingList BlockListOf(const std::vector<PostingEntry>& entries,
                        uint32_t id_limit) {
  EncodedPostingBlocks encoded =
      EncodePostingBlocks(entries.data(), entries.size());
  return PostingList::FromBlocks(std::move(encoded.headers),
                                 std::move(encoded.payload), entries.size(),
                                 /*max_raw_score=*/1.0, id_limit);
}

TEST(BlockIteratorTest, RoundTripsBitIdenticalToFlat) {
  Rng rng(31);
  const uint32_t id_limit = 100000;
  // Sizes straddling every block-boundary shape: empty, single entry,
  // one-under/exact/one-over a block, an exact multiple, and a large list.
  constexpr size_t kN = kPostingBlockEntries;
  for (const size_t count :
       {size_t{0}, size_t{1}, kN - 1, kN, kN + 1, 3 * kN, size_t{1000}}) {
    const std::vector<PostingEntry> entries = MakeEntries(&rng, count, id_limit);
    const PostingList list = BlockListOf(entries, id_limit);
    ASSERT_TRUE(list.blocked());
    ASSERT_EQ(list.size(), count);
    EXPECT_TRUE(list.entries.empty());

    uint64_t decoded = 0;
    uint64_t skipped = 0;
    BlockIterator iter(&list, &decoded, &skipped);
    for (size_t i = 0; i < count; ++i, iter.Advance()) {
      ASSERT_FALSE(iter.AtEnd()) << "count " << count << " index " << i;
      EXPECT_EQ(iter.position(), i);
      EXPECT_EQ(iter.PeekScore(), entries[i].score);  // bitwise
      const PostingEntry& entry = iter.Entry();
      EXPECT_EQ(entry.triple_index, entries[i].triple_index);
      EXPECT_EQ(entry.score, entries[i].score);  // bitwise
    }
    EXPECT_TRUE(iter.AtEnd());
    EXPECT_EQ(decoded, list.blocks->num_blocks());
    EXPECT_EQ(skipped, 0u);
  }
}

TEST(BlockIteratorTest, RoundTripsOverRandomMappedStores) {
  for (const uint32_t seed : {41u, 42u, 43u}) {
    Rng rng(seed);
    specqp::testing::RandomStoreConfig cfg;
    cfg.num_triples = 200 + 300 * seed;  // spans one- and multi-block lists
    const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
    const std::string path =
        TempPath(("block_roundtrip_" + std::to_string(seed) + ".sqp").c_str());
    ASSERT_TRUE(SaveStore(store, path).ok());
    auto mapped = MmapStore::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

    for (size_t p = 0; p < cfg.num_predicates; ++p) {
      const PatternKey key{kInvalidTermId,
                           store.MustId("p" + std::to_string(p)),
                           kInvalidTermId};
      const PostingList flat = BuildPostingList(store, key);
      const PostingList blocked = BuildPostingList(mapped.value()->store(), key);
      ASSERT_TRUE(blocked.blocked());
      ASSERT_EQ(blocked.size(), flat.size());
      EXPECT_EQ(blocked.max_raw_score, flat.max_raw_score);  // bitwise
      BlockIterator iter(&blocked);
      for (size_t i = 0; i < flat.size(); ++i, iter.Advance()) {
        ASSERT_FALSE(iter.AtEnd());
        const PostingEntry& entry = iter.Entry();
        EXPECT_EQ(entry.triple_index, flat.entries[i].triple_index);
        EXPECT_EQ(entry.score, flat.entries[i].score);  // bitwise
      }
      EXPECT_TRUE(iter.AtEnd());
    }
  }
}

TEST(BlockIteratorTest, SkipToScoreBelowMatchesFlatScan) {
  Rng rng(55);
  const uint32_t id_limit = 50000;
  const std::vector<PostingEntry> entries = MakeEntries(&rng, 500, id_limit);
  const PostingList list = BlockListOf(entries, id_limit);
  const size_t num_blocks = list.blocks->num_blocks();
  ASSERT_GE(num_blocks, 3u);

  // Sweep bounds over every block ceiling (the boundary-equal case), every
  // boundary score nudged up (lands exactly on a block boundary), and a
  // few interior scores. The landing position must equal the flat scan's.
  std::vector<double> bounds = {2.0, 1.0, 0.0, -1.0};
  for (size_t b = 0; b < num_blocks; ++b) {
    const double ceiling = list.blocks->header(b).max_score;
    bounds.push_back(ceiling);
    bounds.push_back(ceiling * 1.0000001);
  }
  for (size_t i = 0; i < entries.size(); i += 37) {
    bounds.push_back(entries[i].score);
  }

  for (const double bound : bounds) {
    size_t expected = 0;
    while (expected < entries.size() && entries[expected].score >= bound) {
      ++expected;
    }
    uint64_t decoded = 0;
    uint64_t skipped = 0;
    {
      BlockIterator iter(&list, &decoded, &skipped);
      iter.SkipToScoreBelow(bound);
      EXPECT_EQ(iter.position(), expected) << "bound " << bound;
      if (expected < entries.size()) {
        ASSERT_FALSE(iter.AtEnd());
        EXPECT_EQ(iter.PeekScore(), entries[expected].score);
        EXPECT_EQ(iter.Entry().triple_index, entries[expected].triple_index);
      } else {
        EXPECT_TRUE(iter.AtEnd());
      }
    }
    // Every block is accounted exactly once, as decoded or as skipped.
    EXPECT_EQ(decoded + skipped, num_blocks) << "bound " << bound;
  }

  // A bound below the last block's ceiling provably skips whole blocks
  // without decoding them.
  uint64_t decoded = 0;
  uint64_t skipped = 0;
  {
    BlockIterator iter(&list, &decoded, &skipped);
    iter.SkipToScoreBelow(list.blocks->header(num_blocks - 1).max_score);
  }
  EXPECT_GT(skipped, 0u);
  EXPECT_LT(decoded, num_blocks);
}

TEST(BlockIteratorTest, SkipToIdMatchesFlatScan) {
  Rng rng(56);
  const uint32_t id_limit = 600;  // small id space => plenty of hits
  const std::vector<PostingEntry> entries = MakeEntries(&rng, 400, id_limit);
  const PostingList list = BlockListOf(entries, id_limit);

  for (uint32_t target = 0; target < id_limit; target += 7) {
    size_t expected = entries.size();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].triple_index == target) {
        expected = i;
        break;
      }
    }
    BlockIterator iter(&list);
    const bool found = iter.SkipToId(target);
    if (expected < entries.size()) {
      ASSERT_TRUE(found) << "target " << target;
      EXPECT_EQ(iter.position(), expected);
      EXPECT_EQ(iter.Entry().triple_index, target);
      EXPECT_EQ(iter.Entry().score, entries[expected].score);
    } else {
      EXPECT_FALSE(found) << "target " << target;
      EXPECT_TRUE(iter.AtEnd());
    }
  }
}

TEST(BlockIteratorTest, CacheReleasesDecodedBlocksUnderOneBlockBudget) {
  Rng rng(57);
  specqp::testing::RandomStoreConfig cfg;
  cfg.num_triples = 4000;  // ~1000 entries per predicate => ~8 blocks
  const TripleStore store = specqp::testing::MakeRandomStore(&rng, cfg);
  const std::string path = TempPath("block_evict.sqp");
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto mapped = MmapStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const TripleStore& view = mapped.value()->store();

  // Budget one decoded block (plus fixed overheads) per shard: a fully
  // decoded multi-block list must overflow it and get its memo released.
  const size_t one_block =
      sizeof(PostingList) + sizeof(PostingBlockSource) +
      kPostingBlockEntries * sizeof(PostingEntry) + 1024;
  PostingListCache cache(&view, one_block * PostingListCache::kNumShards);

  const PatternKey key{kInvalidTermId, view.MustId("p0"), kInvalidTermId};
  std::shared_ptr<const PostingList> list = cache.Get(key);
  ASSERT_TRUE(list->blocked());
  ASSERT_GE(list->blocks->num_blocks(), 2u);
  EXPECT_EQ(list->blocks->decoded_bytes(), 0u);  // nothing decoded yet

  // Reference copy of the full list before any eviction runs.
  std::vector<PostingEntry> reference;
  for (BlockIterator iter(list.get()); !iter.AtEnd(); iter.Advance()) {
    reference.push_back(iter.Entry());
  }
  ASSERT_GT(list->blocks->decoded_bytes(), one_block);

  // Park a reader mid-block, then trigger the eviction pass: the decoded
  // memo is released block-granularly even though the list is pinned.
  BlockIterator reader(list.get());
  for (int i = 0; i < 5; ++i) reader.Advance();
  const PostingEntry before = reader.Entry();
  const uint64_t evictions_before = cache.evictions();
  std::shared_ptr<const PostingList> again = cache.Get(key);
  EXPECT_EQ(again.get(), list.get());  // release, not eviction of the list
  EXPECT_EQ(list->blocks->decoded_bytes(), 0u);
  EXPECT_GT(cache.evictions(), evictions_before);

  // The parked reader still sees its block (shared_ptr snapshot), and a
  // fresh traversal re-decodes to bit-identical entries.
  EXPECT_EQ(reader.Entry().triple_index, before.triple_index);
  EXPECT_EQ(reader.Entry().score, before.score);
  size_t i = 5;
  for (; !reader.AtEnd(); reader.Advance(), ++i) {
    ASSERT_LT(i, reference.size());
    EXPECT_EQ(reader.Entry().triple_index, reference[i].triple_index);
    EXPECT_EQ(reader.Entry().score, reference[i].score);
  }
  EXPECT_EQ(i, reference.size());
}

TEST(BlockIteratorTest, SkipAllChargesRemainingBlocksAsSkipped) {
  Rng rng(58);
  const std::vector<PostingEntry> entries = MakeEntries(&rng, 300, 10000);
  const PostingList list = BlockListOf(entries, 10000);
  uint64_t decoded = 0;
  uint64_t skipped = 0;
  BlockIterator iter(&list, &decoded, &skipped);
  iter.Entry();  // materialise block 0
  iter.SkipAll();
  EXPECT_TRUE(iter.AtEnd());
  EXPECT_EQ(decoded, 1u);
  EXPECT_EQ(decoded + skipped, list.blocks->num_blocks());
}

}  // namespace
}  // namespace specqp
