#include "util/fault_injector.h"

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <thread>

#include <gtest/gtest.h>

namespace specqp {
namespace {

// Only meaningful in a fresh process with the env var exported BEFORE the
// first injector access — CI runs it in isolation:
//   SPECQP_FAULT_PLAN="seed=7;env.probe=1" util_fault_injector_test
//     (--gtest_filter='*EnvPlanIsPickedUp*')
// In a full-suite run (no env var, or earlier tests already reconfigured
// the singleton) it skips instead of asserting on clobbered state.
TEST(FaultInjectorTest, EnvPlanIsPickedUp) {
  const char* env = std::getenv("SPECQP_FAULT_PLAN");
  if (env == nullptr || std::string(env).find("env.probe=1") ==
                            std::string::npos) {
    GTEST_SKIP() << "SPECQP_FAULT_PLAN with an env.probe=1 clause not set";
  }
  EXPECT_TRUE(FaultInjector::Global().armed());
  EXPECT_EQ(FaultInjector::Global().plan(), env);
  EXPECT_TRUE(FaultShouldFail("env.probe"));
  EXPECT_GE(FaultInjector::Global().FireCount("env.probe"), 1u);
}

TEST(FaultInjectorTest, DisarmedByDefaultAndProbesAreNoOps) {
  FaultInjector::Global().Disarm();
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_FALSE(FaultShouldFail("shard.open"));
  EXPECT_FALSE(FaultShouldFail("shard.open", 3));
  EXPECT_EQ(FaultInjector::Global().plan(), "");
}

TEST(FaultInjectorTest, EmptyPlanDisarms) {
  ScopedFaultPlan plan("shard.open=1");
  EXPECT_TRUE(FaultInjector::Global().armed());
  ASSERT_TRUE(FaultInjector::Global().Configure("").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires) {
  ScopedFaultPlan plan("shard.open=1");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultShouldFail("shard.open"));
  }
  EXPECT_EQ(FaultInjector::Global().FireCount("shard.open"), 10u);
  EXPECT_EQ(FaultInjector::Global().ProbeCount("shard.open"), 10u);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFires) {
  ScopedFaultPlan plan("shard.open=0");
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FaultShouldFail("shard.open"));
  }
  EXPECT_EQ(FaultInjector::Global().FireCount("shard.open"), 0u);
}

TEST(FaultInjectorTest, UnknownSiteNeverFires) {
  ScopedFaultPlan plan("shard.open=1");
  EXPECT_FALSE(FaultShouldFail("block.decode"));
}

TEST(FaultInjectorTest, MaxFiresCapsInjection) {
  // "1@2": the first two probes fire, every later probe passes — the shape
  // used to exercise open-retry success after transient failures.
  ScopedFaultPlan plan("shard.open=1@2");
  EXPECT_TRUE(FaultShouldFail("shard.open"));
  EXPECT_TRUE(FaultShouldFail("shard.open"));
  EXPECT_FALSE(FaultShouldFail("shard.open"));
  EXPECT_FALSE(FaultShouldFail("shard.open"));
  EXPECT_EQ(FaultInjector::Global().FireCount("shard.open"), 2u);
}

TEST(FaultInjectorTest, InstanceQualifiedSiteTargetsOneShard) {
  ScopedFaultPlan plan("shard.open.3=1");
  EXPECT_FALSE(FaultShouldFail("shard.open", 0));
  EXPECT_FALSE(FaultShouldFail("shard.open", 2));
  EXPECT_TRUE(FaultShouldFail("shard.open", 3));
  // The bare site is not configured, so the unqualified probe passes too.
  EXPECT_FALSE(FaultShouldFail("shard.open"));
}

TEST(FaultInjectorTest, InstanceFallsBackToBareSite) {
  ScopedFaultPlan plan("shard.open=1");
  EXPECT_TRUE(FaultShouldFail("shard.open", 7));
}

TEST(FaultInjectorTest, DeterministicScheduleForFixedSeed) {
  std::vector<bool> first;
  {
    ScopedFaultPlan plan("seed=42;shard.read=0.3");
    for (int i = 0; i < 64; ++i) first.push_back(FaultShouldFail("shard.read"));
  }
  std::vector<bool> second;
  {
    ScopedFaultPlan plan("seed=42;shard.read=0.3");
    for (int i = 0; i < 64; ++i) {
      second.push_back(FaultShouldFail("shard.read"));
    }
  }
  EXPECT_EQ(first, second);
  // A fair-ish share of probes fired; probability 0.3 over 64 draws should
  // essentially never produce 0 or 64 fires.
  int fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules) {
  std::vector<bool> a, b;
  {
    ScopedFaultPlan plan("seed=1;shard.read=0.5");
    for (int i = 0; i < 128; ++i) a.push_back(FaultShouldFail("shard.read"));
  }
  {
    ScopedFaultPlan plan("seed=2;shard.read=0.5");
    for (int i = 0; i < 128; ++i) b.push_back(FaultShouldFail("shard.read"));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, SitesAreIndependentStreams) {
  ScopedFaultPlan plan("seed=9;shard.read=0.5;block.decode=0.5");
  std::vector<bool> a, b;
  for (int i = 0; i < 128; ++i) {
    a.push_back(FaultShouldFail("shard.read"));
    b.push_back(FaultShouldFail("block.decode"));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, MalformedPlansAreRejected) {
  FaultInjector& g = FaultInjector::Global();
  g.Disarm();
  EXPECT_FALSE(g.Configure("shard.open").ok());
  EXPECT_FALSE(g.Configure("=0.5").ok());
  EXPECT_FALSE(g.Configure("shard.open=1.5").ok());
  EXPECT_FALSE(g.Configure("shard.open=-0.1").ok());
  EXPECT_FALSE(g.Configure("shard.open=abc").ok());
  EXPECT_FALSE(g.Configure("shard.open=0.5@xyz").ok());
  EXPECT_FALSE(g.Configure("seed=notanumber;shard.open=1").ok());
  // A failed Configure leaves the previous (empty) plan in place.
  EXPECT_FALSE(g.armed());
}

TEST(FaultInjectorTest, MalformedConfigurePreservesPreviousPlan) {
  ScopedFaultPlan plan("shard.open=1");
  EXPECT_FALSE(FaultInjector::Global().Configure("bogus").ok());
  EXPECT_TRUE(FaultInjector::Global().armed());
  EXPECT_TRUE(FaultShouldFail("shard.open"));
}

TEST(FaultInjectorTest, ScopedPlanRestoresPrevious) {
  ASSERT_TRUE(FaultInjector::Global().Configure("shard.open=1").ok());
  {
    ScopedFaultPlan inner("block.decode=1");
    EXPECT_FALSE(FaultShouldFail("shard.open"));
    EXPECT_TRUE(FaultShouldFail("block.decode"));
  }
  EXPECT_TRUE(FaultShouldFail("shard.open"));
  EXPECT_FALSE(FaultShouldFail("block.decode"));
  FaultInjector::Global().Disarm();
}

TEST(FaultInjectorTest, ResetCountersZeroesObservability) {
  ScopedFaultPlan plan("shard.open=1");
  EXPECT_TRUE(FaultShouldFail("shard.open"));
  FaultInjector::Global().ResetCounters();
  EXPECT_EQ(FaultInjector::Global().FireCount("shard.open"), 0u);
  EXPECT_EQ(FaultInjector::Global().ProbeCount("shard.open"), 0u);
}

TEST(FaultInjectorTest, WhitespaceAndEmptyPiecesTolerated) {
  ScopedFaultPlan plan("  seed=7 ; shard.open=1 ; ;; block.decode=0 ");
  EXPECT_TRUE(FaultShouldFail("shard.open"));
  EXPECT_FALSE(FaultShouldFail("block.decode"));
}

TEST(FaultInjectorTest, ConcurrentConfigureNeverDisarmsNonEmptyPlans) {
  // Regression test: Configure used to decide the armed flag by reading
  // the member site map AFTER releasing its lock — a concurrent Configure
  // could observe the map mid-swap and publish "disarmed" even though both
  // threads installed non-empty plans. The arm decision must come from the
  // plan being installed, so any interleaving of non-empty Configures
  // leaves the injector armed. (TSan CI additionally proves the old
  // unsynchronised read is gone.)
  auto& injector = FaultInjector::Global();
  constexpr int kRounds = 200;
  std::thread other([&] {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(injector.Configure("shard.open=1;seed=7").ok());
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(injector.Configure("block.decode=1;seed=9").ok());
  }
  other.join();
  EXPECT_TRUE(injector.armed());
  injector.Disarm();
}

}  // namespace
}  // namespace specqp
