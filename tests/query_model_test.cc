#include "query/query.h"

#include <gtest/gtest.h>

#include "rdf/triple_pattern.h"

namespace specqp {
namespace {

Query MakeChainQuery() {
  // ?x p ?y . ?y p ?z . ?z p ?w
  Query q;
  const VarId x = q.GetOrAddVariable("x");
  const VarId y = q.GetOrAddVariable("y");
  const VarId z = q.GetOrAddVariable("z");
  const VarId w = q.GetOrAddVariable("w");
  q.AddPattern(TriplePattern(PatternTerm::Var(x), PatternTerm::Const(0),
                             PatternTerm::Var(y)));
  q.AddPattern(TriplePattern(PatternTerm::Var(y), PatternTerm::Const(0),
                             PatternTerm::Var(z)));
  q.AddPattern(TriplePattern(PatternTerm::Var(z), PatternTerm::Const(0),
                             PatternTerm::Var(w)));
  return q;
}

TEST(QueryTest, VariableRegistrationIsIdempotent) {
  Query q;
  const VarId a = q.GetOrAddVariable("s");
  const VarId b = q.GetOrAddVariable("s");
  EXPECT_EQ(a, b);
  EXPECT_EQ(q.num_vars(), 1u);
  EXPECT_EQ(q.var_name(a), "s");
}

TEST(QueryTest, FindVariable) {
  Query q;
  q.GetOrAddVariable("s");
  EXPECT_TRUE(q.FindVariable("s").ok());
  EXPECT_FALSE(q.FindVariable("t").ok());
}

TEST(QueryTest, SharedVarsOfStarQuery) {
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(1),
                             PatternTerm::Const(2)));
  q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(1),
                             PatternTerm::Const(3)));
  const auto shared = q.SharedVars(0, 1);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0], s);
}

TEST(QueryTest, SharedVarsOfChainQuery) {
  Query q = MakeChainQuery();
  EXPECT_EQ(q.SharedVars(0, 1).size(), 1u);  // y
  EXPECT_EQ(q.SharedVars(1, 2).size(), 1u);  // z
  EXPECT_TRUE(q.SharedVars(0, 2).empty());
}

TEST(QueryTest, SharedVarsWithSet) {
  Query q = MakeChainQuery();
  const auto shared = q.SharedVarsWithSet(1, {0, 2});
  EXPECT_EQ(shared.size(), 2u);  // y with pattern 0, z with pattern 2
}

TEST(QueryTest, ConnectedChain) {
  Query q = MakeChainQuery();
  EXPECT_TRUE(q.IsConnected());
}

TEST(QueryTest, DisconnectedQuery) {
  Query q;
  const VarId a = q.GetOrAddVariable("a");
  const VarId b = q.GetOrAddVariable("b");
  q.AddPattern(TriplePattern(PatternTerm::Var(a), PatternTerm::Const(0),
                             PatternTerm::Const(1)));
  q.AddPattern(TriplePattern(PatternTerm::Var(b), PatternTerm::Const(0),
                             PatternTerm::Const(2)));
  EXPECT_FALSE(q.IsConnected());
}

TEST(QueryTest, SinglePatternIsConnected) {
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(0),
                             PatternTerm::Const(1)));
  EXPECT_TRUE(q.IsConnected());
}

TEST(QueryTest, ReplacePattern) {
  Query q = MakeChainQuery();
  const TriplePattern replacement(PatternTerm::Var(0), PatternTerm::Const(9),
                                  PatternTerm::Var(1));
  q.ReplacePattern(0, replacement);
  EXPECT_EQ(q.pattern(0), replacement);
  EXPECT_EQ(q.num_patterns(), 3u);
}

TEST(QueryTest, ToStringRendersSparql) {
  Dictionary dict;
  const TermId type = dict.Intern("rdf:type");
  const TermId singer = dict.Intern("singer");
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(type),
                             PatternTerm::Const(singer)));
  q.AddProjection(s);
  EXPECT_EQ(q.ToString(dict),
            "SELECT ?s WHERE { ?s <rdf:type> <singer> }");
}

TEST(QueryTest, ToStringMultiPattern) {
  Dictionary dict;
  const TermId p = dict.Intern("p");
  const TermId a = dict.Intern("a");
  const TermId b = dict.Intern("b");
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p),
                             PatternTerm::Const(a)));
  q.AddPattern(TriplePattern(PatternTerm::Var(s), PatternTerm::Const(p),
                             PatternTerm::Const(b)));
  q.AddProjection(s);
  EXPECT_EQ(q.ToString(dict),
            "SELECT ?s WHERE { ?s <p> <a> . ?s <p> <b> }");
}

// --- TriplePattern / PatternKey ---------------------------------------------

TEST(PatternTermTest, ConstAndVarAccessors) {
  const PatternTerm c = PatternTerm::Const(7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.term(), 7u);
  const PatternTerm v = PatternTerm::Var(2);
  EXPECT_TRUE(v.is_variable());
  EXPECT_EQ(v.var(), 2u);
}

TEST(PatternTermDeathTest, WrongAccessorAborts) {
  const PatternTerm c = PatternTerm::Const(7);
  EXPECT_DEATH((void)c.var(), "on a constant");
  const PatternTerm v = PatternTerm::Var(2);
  EXPECT_DEATH((void)v.term(), "on a variable");
}

TEST(TriplePatternTest, KeyErasesVariables) {
  const TriplePattern q(PatternTerm::Var(0), PatternTerm::Const(5),
                        PatternTerm::Const(9));
  const PatternKey key = q.Key();
  EXPECT_FALSE(key.s_bound());
  EXPECT_TRUE(key.p_bound());
  EXPECT_TRUE(key.o_bound());
  EXPECT_EQ(key.p, 5u);
  EXPECT_EQ(key.o, 9u);
  EXPECT_EQ(key.num_bound(), 2);
}

TEST(TriplePatternTest, SameKeyForDifferentVariableNames) {
  const TriplePattern a(PatternTerm::Var(0), PatternTerm::Const(5),
                        PatternTerm::Const(9));
  const TriplePattern b(PatternTerm::Var(3), PatternTerm::Const(5),
                        PatternTerm::Const(9));
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_FALSE(a == b);
}

TEST(TriplePatternTest, VariablesDeduplicated) {
  const TriplePattern q(PatternTerm::Var(1), PatternTerm::Const(5),
                        PatternTerm::Var(1));
  VarId vars[3];
  EXPECT_EQ(q.Variables(vars), 1);
  EXPECT_EQ(vars[0], 1u);
}

TEST(TriplePatternTest, UsesVariable) {
  const TriplePattern q(PatternTerm::Var(1), PatternTerm::Const(5),
                        PatternTerm::Var(2));
  EXPECT_TRUE(q.UsesVariable(1));
  EXPECT_TRUE(q.UsesVariable(2));
  EXPECT_FALSE(q.UsesVariable(0));
}

TEST(TriplePatternTest, SlotOfVar) {
  const TriplePattern q(PatternTerm::Var(1), PatternTerm::Const(5),
                        PatternTerm::Var(2));
  EXPECT_EQ(SlotOfVar(q, 1), 0);
  EXPECT_EQ(SlotOfVar(q, 2), 2);
  EXPECT_EQ(SlotOfVar(q, 0), -1);
}

TEST(TriplePatternTest, ConsistentMatchRepeatedVariable) {
  const TriplePattern q(PatternTerm::Var(0), PatternTerm::Const(5),
                        PatternTerm::Var(0));
  EXPECT_TRUE(ConsistentMatch(q, Triple{3, 5, 3, 1.0}));
  EXPECT_FALSE(ConsistentMatch(q, Triple{3, 5, 4, 1.0}));
}

TEST(TriplePatternTest, ConsistentMatchDistinctVariables) {
  const TriplePattern q(PatternTerm::Var(0), PatternTerm::Const(5),
                        PatternTerm::Var(1));
  EXPECT_TRUE(ConsistentMatch(q, Triple{3, 5, 4, 1.0}));
  EXPECT_TRUE(ConsistentMatch(q, Triple{3, 5, 3, 1.0}));
}

TEST(PatternKeyTest, MatchesSemantics) {
  PatternKey key{kInvalidTermId, 5, 9};
  EXPECT_TRUE(key.Matches(Triple{1, 5, 9, 0.0}));
  EXPECT_TRUE(key.Matches(Triple{2, 5, 9, 0.0}));
  EXPECT_FALSE(key.Matches(Triple{1, 6, 9, 0.0}));
  EXPECT_FALSE(key.Matches(Triple{1, 5, 8, 0.0}));
}

TEST(PatternKeyTest, HashDistinguishesKeys) {
  PatternKeyHash h;
  PatternKey a{kInvalidTermId, 5, 9};
  PatternKey b{kInvalidTermId, 5, 10};
  PatternKey c{5, kInvalidTermId, 9};
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_EQ(h(a), h(PatternKey{kInvalidTermId, 5, 9}));
}

}  // namespace
}  // namespace specqp
