#include "rdf/posting_list.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace specqp {
namespace {

TripleStore MakeScoredStore() {
  TripleStore store;
  store.Add("a", "type", "singer", 100.0);
  store.Add("b", "type", "singer", 50.0);
  store.Add("c", "type", "singer", 25.0);
  store.Add("d", "type", "pianist", 10.0);
  store.Finalize();
  return store;
}

TEST(PostingListTest, SortedDescendingAndNormalised) {
  TripleStore store = MakeScoredStore();
  PatternKey key{kInvalidTermId, store.MustId("type"),
                 store.MustId("singer")};
  const PostingList list = BuildPostingList(store, key);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list.max_raw_score, 100.0);
  EXPECT_DOUBLE_EQ(list.entries[0].score, 1.0);
  EXPECT_DOUBLE_EQ(list.entries[1].score, 0.5);
  EXPECT_DOUBLE_EQ(list.entries[2].score, 0.25);
}

TEST(PostingListTest, TopNormalisedScoreIsAlwaysOne) {
  // Definition 5: the best match of any non-empty pattern scores exactly 1.
  TripleStore store = MakeScoredStore();
  PatternKey key{kInvalidTermId, store.MustId("type"),
                 store.MustId("pianist")};
  const PostingList list = BuildPostingList(store, key);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_DOUBLE_EQ(list.entries[0].score, 1.0);
}

TEST(PostingListTest, EmptyPattern) {
  TripleStore store = MakeScoredStore();
  PatternKey key{store.MustId("a"), store.MustId("type"),
                 store.MustId("pianist")};
  const PostingList list = BuildPostingList(store, key);
  EXPECT_TRUE(list.empty());
  EXPECT_DOUBLE_EQ(list.max_raw_score, 0.0);
}

TEST(PostingListTest, AllZeroScores) {
  TripleStore store;
  store.Add("a", "p", "x", 0.0);
  store.Add("b", "p", "x", 0.0);
  store.Finalize();
  PatternKey key{kInvalidTermId, store.MustId("p"), store.MustId("x")};
  const PostingList list = BuildPostingList(store, key);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list.entries[0].score, 0.0);
  EXPECT_DOUBLE_EQ(list.entries[1].score, 0.0);
}

TEST(PostingListTest, TiesBrokenByTripleIndex) {
  TripleStore store;
  store.Add("b", "p", "x", 5.0);
  store.Add("a", "p", "x", 5.0);
  store.Finalize();
  PatternKey key{kInvalidTermId, store.MustId("p"), store.MustId("x")};
  const PostingList list = BuildPostingList(store, key);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_LT(list.entries[0].triple_index, list.entries[1].triple_index);
}

TEST(PostingListCacheTest, HitsAndMisses) {
  TripleStore store = MakeScoredStore();
  PostingListCache cache(&store);
  PatternKey key{kInvalidTermId, store.MustId("type"),
                 store.MustId("singer")};
  auto first = cache.Get(key);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  auto second = cache.Get(key);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());
}

TEST(PostingListCacheTest, DifferentKeysDifferentLists) {
  TripleStore store = MakeScoredStore();
  PostingListCache cache(&store);
  PatternKey singer{kInvalidTermId, store.MustId("type"),
                    store.MustId("singer")};
  PatternKey pianist{kInvalidTermId, store.MustId("type"),
                     store.MustId("pianist")};
  auto a = cache.Get(singer);
  auto b = cache.Get(pianist);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PostingListCacheTest, ListSurvivesCacheClear) {
  TripleStore store = MakeScoredStore();
  PostingListCache cache(&store);
  PatternKey key{kInvalidTermId, store.MustId("type"),
                 store.MustId("singer")};
  auto list = cache.Get(key);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(list->size(), 3u);  // shared_ptr keeps it alive
}

// Property: normalised scores are in [0, 1], sorted, and proportional to
// the raw scores.
class PostingListPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PostingListPropertyTest, NormalisationInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 3);
  testing::RandomStoreConfig cfg;
  cfg.num_triples = 250;
  TripleStore store = testing::MakeRandomStore(&rng, cfg);

  for (int trial = 0; trial < 10; ++trial) {
    const Triple& anchor =
        store.triple(static_cast<uint32_t>(rng.NextBounded(store.size())));
    PatternKey key{kInvalidTermId, anchor.p, anchor.o};
    const PostingList list = BuildPostingList(store, key);
    ASSERT_FALSE(list.empty());
    double prev = 2.0;
    for (const PostingEntry& e : list.entries) {
      EXPECT_GE(e.score, 0.0);
      EXPECT_LE(e.score, 1.0);
      EXPECT_LE(e.score, prev);
      prev = e.score;
      EXPECT_NEAR(e.score * list.max_raw_score,
                  store.triple(e.triple_index).score, 1e-9);
    }
    EXPECT_DOUBLE_EQ(list.entries.front().score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingListPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace specqp
