#include "util/crc32.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace specqp {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
  // 32 zero bytes (RFC 3720 appendix example).
  unsigned char zeros[32];
  std::memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c("abc", 3), Crc32c("abd", 3));
  EXPECT_NE(Crc32c("abc", 3), Crc32c("ab", 2));
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {1u, 5u, 20u, 43u}) {
    const uint32_t part1 = Crc32c(data.data(), split);
    const uint32_t both = Crc32c(data.data() + split, data.size() - split,
                                 part1);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SeedChangesResult) {
  EXPECT_NE(Crc32c("abc", 3, 0), Crc32c("abc", 3, 1));
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(64, 'x');
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte : {0u, 13u, 63u}) {
    std::string corrupted = data;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 1);
    EXPECT_NE(Crc32c(corrupted.data(), corrupted.size()), clean);
  }
}

}  // namespace
}  // namespace specqp
