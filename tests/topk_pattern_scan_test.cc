#include "topk/pattern_scan.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace specqp {
namespace {

using specqp::testing::Drain;
using specqp::testing::MakeMusicFixture;
using specqp::testing::MusicFixture;

std::unique_ptr<PatternScan> MakeScan(const MusicFixture& fx,
                                      PostingListCache* cache,
                                      const char* type_name, double weight,
                                      ExecContext* ctx) {
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  const TriplePattern pattern(PatternTerm::Var(s), PatternTerm::Const(fx.type),
                              PatternTerm::Const(fx.store.MustId(type_name)));
  return std::make_unique<PatternScan>(&fx.store, cache->Get(pattern.Key()),
                                       pattern, q.num_vars(), weight, ctx);
}

TEST(PatternScanTest, EmitsDescendingNormalisedScores) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "singer", 1.0, &ctx);
  const auto rows = Drain(scan.get());
  ASSERT_EQ(rows.size(), 5u);  // five singers
  EXPECT_DOUBLE_EQ(rows[0].score, 1.0);  // shakira, popularity 100
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].score, rows[i - 1].score);
  }
  // Scores are popularity / 100.
  EXPECT_DOUBLE_EQ(rows[1].score, 0.9);   // beyonce
  EXPECT_DOUBLE_EQ(rows[4].score, 0.65);  // taylor
}

TEST(PatternScanTest, BindsSubjectVariable) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "singer", 1.0, &ctx);
  ScoredRow row;
  ASSERT_TRUE(scan->Next(&row));
  ASSERT_EQ(row.bindings.size(), 1u);
  EXPECT_EQ(row.bindings[0], fx.Id("shakira"));
}

TEST(PatternScanTest, WeightScalesScores) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "singer", 0.5, &ctx);
  const auto rows = Drain(scan.get());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows[0].score, 0.5);
  EXPECT_DOUBLE_EQ(rows[1].score, 0.45);
}

TEST(PatternScanTest, UpperBoundTracksNextRow) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "singer", 1.0, &ctx);
  EXPECT_DOUBLE_EQ(scan->UpperBound(), 1.0);
  ScoredRow row;
  ASSERT_TRUE(scan->Next(&row));
  EXPECT_DOUBLE_EQ(scan->UpperBound(), 0.9);
  while (scan->Next(&row)) {
  }
  EXPECT_DOUBLE_EQ(scan->UpperBound(), ScoredRowIterator::kExhausted);
}

TEST(PatternScanTest, UpperBoundNeverIncreases) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "artist", 0.8, &ctx);
  double prev = scan->UpperBound();
  ScoredRow row;
  while (scan->Next(&row)) {
    const double bound = scan->UpperBound();
    EXPECT_LE(bound, prev + 1e-12);
    EXPECT_LE(row.score, prev + 1e-12);
    prev = bound;
  }
}

TEST(PatternScanTest, CountsAnswerObjects) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "singer", 1.0, &ctx);
  Drain(scan.get());
  EXPECT_EQ(stats.scan_rows, 5u);
  EXPECT_EQ(stats.answer_objects, 5u);
}

TEST(PatternScanTest, LazyCounting) {
  // Only pulled rows are counted — the core of the paper's memory metric.
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  auto scan = MakeScan(fx, &cache, "artist", 1.0, &ctx);
  ScoredRow row;
  ASSERT_TRUE(scan->Next(&row));
  ASSERT_TRUE(scan->Next(&row));
  EXPECT_EQ(stats.answer_objects, 2u);
}

TEST(PatternScanTest, EmptyPattern) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  // A pattern with no matches: subject bound to an entity that is not a
  // type.
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  const TriplePattern pattern(PatternTerm::Const(fx.Id("shakira")),
                              PatternTerm::Const(fx.type),
                              PatternTerm::Var(s));
  auto list = cache.Get(PatternKey{fx.Id("shakira"), fx.type, kInvalidTermId});
  PatternScan scan(&fx.store, list, pattern, 1, 1.0, &ctx);
  // shakira has types: singer, vocalist, artist, musician, writer?,
  // percussionist... just count matches against the store.
  const auto rows = Drain(&scan);
  EXPECT_EQ(rows.size(), fx.store.CountMatches(pattern.Key()));
}

TEST(PatternScanTest, RepeatedVariableFiltered) {
  TripleStore store;
  store.Add("a", "p", "a", 10.0);
  store.Add("a", "p", "b", 5.0);
  store.Finalize();
  PostingListCache cache(&store);
  ExecStats stats;
  ExecContext ctx(&stats);
  const TermId p = store.MustId("p");
  const TriplePattern pattern(PatternTerm::Var(0), PatternTerm::Const(p),
                              PatternTerm::Var(0));
  PatternScan scan(&store, cache.Get(pattern.Key()), pattern, 1, 1.0, &ctx);
  const auto rows = Drain(&scan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].bindings[0], store.MustId("a"));
}

TEST(PatternScanDeathTest, InvalidWeightAborts) {
  MusicFixture fx = MakeMusicFixture();
  PostingListCache cache(&fx.store);
  ExecStats stats;
  ExecContext ctx(&stats);
  Query q;
  const VarId s = q.GetOrAddVariable("s");
  const TriplePattern pattern(PatternTerm::Var(s), PatternTerm::Const(fx.type),
                              PatternTerm::Const(fx.Id("singer")));
  auto list = cache.Get(pattern.Key());
  EXPECT_DEATH(PatternScan(&fx.store, list, pattern, 1, 0.0, &ctx),
               "weight");
  EXPECT_DEATH(PatternScan(&fx.store, list, pattern, 1, 1.5, &ctx),
               "weight");
}

}  // namespace
}  // namespace specqp
