#include "rdf/posting_blocks.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {
namespace {

// LEB128 varints. All shift arithmetic stays in uint64_t so the encode and
// decode of any byte pattern is defined behaviour (the UBSan job runs these
// suites).
void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

// Reads one varint from [*pos, end). Fails on truncation and on encodings
// longer than 10 bytes (the longest canonical uint64 varint) — a malformed
// continuation run must not walk off into unrelated bytes.
Status ReadVarint(const uint8_t* data, size_t size, size_t* pos,
                  uint64_t* value) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (*pos >= size) {
      return Status::Corruption("posting block: truncated varint");
    }
    const uint64_t byte = data[(*pos)++];
    if (shift == 63 && (byte & 0xFE) != 0) {
      return Status::Corruption("posting block: varint overflows uint64");
    }
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::Ok();
    }
  }
  return Status::Corruption("posting block: varint longer than 10 bytes");
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);  // arithmetic shift: sign smear
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

EncodedPostingBlocks EncodePostingBlocks(const PostingEntry* entries,
                                         size_t count) {
  EncodedPostingBlocks out;
  out.headers.reserve((count + kPostingBlockEntries - 1) / kPostingBlockEntries);
  for (size_t begin = 0; begin < count; begin += kPostingBlockEntries) {
    const size_t n = std::min(kPostingBlockEntries, count - begin);
    PostingBlockHeader header{};
    header.byte_offset = out.payload.size();
    header.entry_count = static_cast<uint16_t>(n);
    header.max_score = entries[begin].score;
    uint32_t min_id = entries[begin].triple_index;
    uint32_t max_id = min_id;
    uint32_t prev_id = 0;
    uint64_t prev_bits = 0;
    for (size_t i = 0; i < n; ++i) {
      const PostingEntry& e = entries[begin + i];
      const uint64_t bits = std::bit_cast<uint64_t>(e.score);
      if (i == 0) {
        AppendVarint(ZigzagEncode(static_cast<int64_t>(e.triple_index)),
                     &out.payload);
        AppendVarint(bits, &out.payload);
      } else {
        AppendVarint(ZigzagEncode(static_cast<int64_t>(e.triple_index) -
                                  static_cast<int64_t>(prev_id)),
                     &out.payload);
        SPECQP_DCHECK(bits <= prev_bits)
            << "posting entries not sorted by descending score";
        AppendVarint(prev_bits - bits, &out.payload);
      }
      min_id = std::min(min_id, e.triple_index);
      max_id = std::max(max_id, e.triple_index);
      prev_id = e.triple_index;
      prev_bits = bits;
    }
    header.byte_length =
        static_cast<uint32_t>(out.payload.size() - header.byte_offset);
    header.min_id = min_id;
    header.max_id = max_id;
    out.headers.push_back(header);
  }
  return out;
}

Status DecodePostingBlock(const PostingBlockHeader& header,
                          std::span<const uint8_t> payload, uint32_t id_limit,
                          DecodedPostingBlock* out) {
  if (header.reserved != 0) {
    return Status::Corruption("posting block header: reserved bits set");
  }
  if (header.entry_count == 0 || header.entry_count > kPostingBlockEntries) {
    return Status::Corruption(
        StrFormat("posting block header: entry_count %u outside [1, %zu]",
                  header.entry_count, kPostingBlockEntries));
  }
  if (header.byte_offset > payload.size() ||
      header.byte_length > payload.size() - header.byte_offset) {
    return Status::Corruption(
        "posting block header: byte range outside payload section");
  }
  const uint8_t* data = payload.data() + header.byte_offset;
  const size_t size = header.byte_length;
  size_t pos = 0;

  out->entries.clear();
  out->entries.reserve(header.entry_count);
  uint32_t prev_id = 0;
  uint64_t prev_bits = 0;
  uint32_t min_id = 0;
  uint32_t max_id = 0;
  for (size_t i = 0; i < header.entry_count; ++i) {
    uint64_t id_delta = 0;
    uint64_t score_delta = 0;
    SPECQP_RETURN_IF_ERROR(ReadVarint(data, size, &pos, &id_delta));
    SPECQP_RETURN_IF_ERROR(ReadVarint(data, size, &pos, &score_delta));

    uint64_t bits;
    if (i == 0) {
      const int64_t id = ZigzagDecode(id_delta);
      if (id < 0 || static_cast<uint64_t>(id) >= id_limit) {
        return Status::Corruption("posting block: first id out of range");
      }
      prev_id = static_cast<uint32_t>(id);
      min_id = max_id = prev_id;
      bits = score_delta;
      if (std::bit_cast<double>(bits) != header.max_score) {
        return Status::Corruption(
            "posting block: first score disagrees with header max_score");
      }
    } else {
      const int64_t id =
          static_cast<int64_t>(prev_id) + ZigzagDecode(id_delta);
      if (id < 0 || static_cast<uint64_t>(id) >= id_limit) {
        return Status::Corruption("posting block: id delta out of range");
      }
      if (score_delta > prev_bits) {
        return Status::Corruption(
            "posting block: score delta underflows (ascending score)");
      }
      bits = prev_bits - score_delta;
      if (score_delta == 0 && static_cast<uint32_t>(id) <= prev_id) {
        return Status::Corruption(
            "posting block: tied scores with non-ascending ids");
      }
      prev_id = static_cast<uint32_t>(id);
      min_id = std::min(min_id, prev_id);
      max_id = std::max(max_id, prev_id);
    }
    const double score = std::bit_cast<double>(bits);
    // The sign-bit check also rejects NaNs with the sign bit set; positive
    // NaNs fail the <= 1.0 comparison. Scores are normalised into [0, 1].
    if ((bits >> 63) != 0 || !(score <= 1.0)) {
      return Status::Corruption("posting block: score outside [0, 1]");
    }
    prev_bits = bits;
    out->entries.push_back(PostingEntry{prev_id, score});
  }
  if (pos != size) {
    return Status::Corruption(StrFormat(
        "posting block: %zu trailing payload bytes", size - pos));
  }
  if (min_id != header.min_id || max_id != header.max_id) {
    return Status::Corruption(
        "posting block: id range disagrees with header min_id/max_id");
  }
  return Status::Ok();
}

PostingBlockSource::PostingBlockSource(
    std::span<const PostingBlockHeader> headers,
    std::span<const uint8_t> payload, uint64_t entry_count, uint32_t id_limit)
    : headers_(headers),
      payload_(payload),
      entry_count_(entry_count),
      id_limit_(id_limit),
      slots_(headers.size()) {}

PostingBlockSource::PostingBlockSource(std::vector<PostingBlockHeader> headers,
                                       std::vector<uint8_t> payload,
                                       uint64_t entry_count, uint32_t id_limit)
    : owned_headers_(std::move(headers)),
      owned_payload_(std::move(payload)),
      headers_(owned_headers_),
      payload_(owned_payload_),
      entry_count_(entry_count),
      id_limit_(id_limit),
      owned_bytes_(owned_headers_.capacity() * sizeof(PostingBlockHeader) +
                   owned_payload_.capacity()),
      slots_(headers_.size()) {}

std::shared_ptr<const DecodedPostingBlock> PostingBlockSource::Decode(
    size_t block) const {
  SPECQP_CHECK(block < headers_.size());
  MutexLock lock(mu_);
  if (slots_[block] != nullptr) return slots_[block];
  auto decoded = std::make_shared<DecodedPostingBlock>();
  Status status;
  if (FaultShouldFail("block.decode", block)) {
    status = Status::IoError("injected fault: block.decode");
  } else {
    status =
        DecodePostingBlock(headers_[block], payload_, id_limit_, decoded.get());
  }
  if (!status.ok()) {
    // Serve a shape-correct placeholder instead of CHECK-dying: exactly
    // the entry count the iterator expects from the header geometry (the
    // header may itself be damaged — clamp to the format ceiling), ids 0,
    // scores 0. The fault count makes the scan above abort before any
    // placeholder row reaches an answer. Not memoised: a later query
    // against a repaired source decodes afresh.
    fault_count_.fetch_add(1, std::memory_order_acq_rel);
    // A full block regardless of what the (possibly damaged) header
    // claims: iterator positions are always < kPostingBlockEntries into
    // the block, so this bounds every access.
    decoded->entries.assign(kPostingBlockEntries, PostingEntry{});
    return decoded;
  }
  decoded_bytes_.fetch_add(decoded->entries.capacity() * sizeof(PostingEntry),
                           std::memory_order_relaxed);
  slots_[block] = std::move(decoded);
  return slots_[block];
}

size_t PostingBlockSource::ReleaseDecodedBlocks() const {
  MutexLock lock(mu_);
  size_t released = 0;
  for (auto& slot : slots_) {
    if (slot != nullptr) {
      released += slot->entries.capacity() * sizeof(PostingEntry);
      slot.reset();
    }
  }
  decoded_bytes_.fetch_sub(released, std::memory_order_relaxed);
  return released;
}

}  // namespace specqp
