#include "rdf/shared_scan_cache.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <utility>

#include "rdf/store_format.h"
#include "util/logging.h"

namespace specqp {

namespace {

// Estimated cost of building a posting list of `n` entries from scratch
// (index probe + copy + comparison sort), in entry-visit units. Matches the
// cost model of PostingListCache's cost-aware eviction.
double BuildCost(size_t n) {
  return n == 0 ? 1.0
               : static_cast<double>(n) *
                     (std::log2(static_cast<double>(n) + 1.0) + 1.0);
}

// Staged bucket -> final posting list: `owned` holds {triple_index, RAW
// score}; normalise and sort exactly like BuildPostingList so the result
// is bit-identical to a direct build.
void FinalizeRawBucket(PostingList* list) {
  double max_raw = 0.0;
  for (const PostingEntry& e : list->owned) {
    max_raw = std::max(max_raw, e.score);
  }
  list->max_raw_score = max_raw;
  for (PostingEntry& e : list->owned) {
    e.score = max_raw > 0.0 ? e.score / max_raw : 0.0;
  }
  std::sort(list->owned.begin(), list->owned.end(),
            [](const PostingEntry& a, const PostingEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.triple_index < b.triple_index;
            });
  list->Seal();
}

}  // namespace

SharedScanCache::SharedScanCache(const TripleStore* store,
                                 PostingListCache* base)
    : store_(store), base_(base) {
  SPECQP_CHECK(store_ != nullptr && base_ != nullptr);
}

PostingList SharedScanCache::DeriveObjectList(const TripleStore& store,
                                              const PostingList& base,
                                              TermId object) {
  PostingList list;
  for (BlockIterator it(&base); !it.AtEnd(); it.Advance()) {
    const PostingEntry& e = it.Entry();
    const Triple& t = store.triple(e.triple_index);
    if (t.o != object) continue;
    list.owned.push_back(PostingEntry{e.triple_index, t.score});  // raw
  }
  FinalizeRawBucket(&list);
  return list;
}

std::shared_ptr<const PostingList> SharedScanCache::ResolveOne(
    const PatternKey& key) {
  auto list = base_->Get(key);
  MutexLock lock(mu_);
  if (map_.emplace(key, list).second) ++counters_.resolved_lists;
  return list;
}

void SharedScanCache::DeriveGroup(TermId p,
                                  const std::vector<TermId>& objects) {
  const PatternKey base_key{kInvalidTermId, p, kInvalidTermId};
  const auto base = base_->Get(base_key);
  {
    // counters_ is guarded: even though Prepare runs single-threaded, a
    // concurrent Get() may be copying the counters snapshot.
    MutexLock lock(mu_);
    ++counters_.base_scans;
  }

  // One pass over the predicate's base list, routing each entry (with its
  // exact RAW triple score) to its object's bucket.
  std::unordered_map<TermId, size_t> bucket_of;
  std::vector<PostingList> buckets(objects.size());
  bucket_of.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) bucket_of.emplace(objects[i], i);
  for (BlockIterator iter(&*base); !iter.AtEnd(); iter.Advance()) {
    const PostingEntry& e = iter.Entry();
    const Triple& t = store_->triple(e.triple_index);
    const auto it = bucket_of.find(t.o);
    if (it == bucket_of.end()) continue;
    buckets[it->second].owned.push_back(PostingEntry{e.triple_index, t.score});
  }

  for (size_t i = 0; i < objects.size(); ++i) {
    FinalizeRawBucket(&buckets[i]);
    auto list = std::make_shared<const PostingList>(std::move(buckets[i]));
    const PatternKey key{kInvalidTermId, p, objects[i]};
    // Publish into the base cache so post-batch queries (and the batch's
    // statistics pass) reuse the derived list instead of rebuilding it.
    // Put returns the list actually resident (an earlier insert wins a
    // race); memoise that one so every layer pins the same object.
    auto resident = base_->Put(key, std::move(list));
    MutexLock lock(mu_);
    if (map_.emplace(key, std::move(resident)).second) {
      ++counters_.resolved_lists;
      ++counters_.derived_lists;
    }
  }
}

void SharedScanCache::Prepare(std::span<const PatternKey> keys) {
  // Deduplicate against both the request span and the already-resolved map.
  std::vector<PatternKey> todo;
  todo.reserve(keys.size());
  {
    MutexLock lock(mu_);
    for (const PatternKey& key : keys) {
      if (map_.find(key) == map_.end()) todo.push_back(key);
    }
  }
  std::sort(todo.begin(), todo.end(),
            [](const PatternKey& a, const PatternKey& b) {
              return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
            });
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());

  // Group the (?s <p> <o>) keys by predicate; everything else resolves
  // directly through the base cache.
  std::map<TermId, std::vector<TermId>> by_predicate;
  std::vector<PatternKey> direct;
  for (const PatternKey& key : todo) {
    if (!key.s_bound() && key.p_bound() && key.o_bound()) {
      by_predicate[key.p].push_back(key.o);
    } else {
      direct.push_back(key);
    }
  }

  for (auto& [p, objects] : by_predicate) {
    const PatternKey base_key{kInvalidTermId, p, kInvalidTermId};
    bool derive = objects.size() >= 2;
    if (derive) {
      // Derive only when one pass over the base list undercuts per-key
      // builds. The base list is free when it is already resident (or the
      // store maps a zero-copy per-predicate directory); otherwise its own
      // build cost is charged to the derivation side.
      double direct_cost = 0.0;
      for (TermId o : objects) {
        direct_cost +=
            BuildCost(store_->CountMatches(PatternKey{kInvalidTermId, p, o}));
      }
      const size_t base_count = store_->CountMatches(base_key);
      const MappedPostingLists* mapped = store_->mapped_postings();
      const MappedBlockPostings* blocked = store_->mapped_block_postings();
      const bool base_free =
          (mapped != nullptr && mapped->Find(p) != nullptr) ||
          (blocked != nullptr && blocked->Find(p) != nullptr) ||
          base_->Peek(base_key) != nullptr;
      double derive_cost = static_cast<double>(base_count);
      for (TermId o : objects) {
        derive_cost += static_cast<double>(
            store_->CountMatches(PatternKey{kInvalidTermId, p, o}));
      }
      if (!base_free) derive_cost += BuildCost(base_count);
      derive = derive_cost < direct_cost;
    }
    if (derive) {
      DeriveGroup(p, objects);
    } else {
      for (TermId o : objects) ResolveOne(PatternKey{kInvalidTermId, p, o});
    }
  }
  for (const PatternKey& key : direct) ResolveOne(key);
}

std::shared_ptr<const PostingList> SharedScanCache::Get(
    const PatternKey& key) {
  {
    MutexLock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++counters_.hits;
      return it->second;
    }
    ++counters_.misses;
  }
  // Unprepared key (e.g. a pattern shape the prepare pass did not
  // anticipate): fall through to the base cache — outside our lock, the
  // build may be slow — then memoise. The first resolver wins so every
  // caller sees one stable list.
  auto list = base_->Get(key);
  MutexLock lock(mu_);
  return map_.emplace(key, std::move(list)).first->second;
}

SharedScanCache::Counters SharedScanCache::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

size_t SharedScanCache::size() const {
  MutexLock lock(mu_);
  return map_.size();
}

}  // namespace specqp
