#include "rdf/triple_store.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace specqp {

namespace {

// Projects a triple into the comparison tuple of each index order and
// compares against a (possibly partial) key where kInvalidTermId acts as a
// -inf/+inf wildcard depending on the bound used. We instead compare only
// the bound prefix, so equal_range over the prefix yields the match range.

struct SpoPrefixLess {
  std::span<const Triple> triples;
  // key packs (s, p, o); prefix_len in [0,3]
  int prefix_len;
  bool operator()(uint32_t idx, const PatternKey& k) const {
    const Triple& t = triples[idx];
    if (prefix_len >= 1 && t.s != k.s) return t.s < k.s;
    if (prefix_len >= 2 && t.p != k.p) return t.p < k.p;
    if (prefix_len >= 3 && t.o != k.o) return t.o < k.o;
    return false;
  }
  bool operator()(const PatternKey& k, uint32_t idx) const {
    const Triple& t = triples[idx];
    if (prefix_len >= 1 && t.s != k.s) return k.s < t.s;
    if (prefix_len >= 2 && t.p != k.p) return k.p < t.p;
    if (prefix_len >= 3 && t.o != k.o) return k.o < t.o;
    return false;
  }
};

struct PosPrefixLess {
  std::span<const Triple> triples;
  int prefix_len;  // over (p, o)
  bool operator()(uint32_t idx, const PatternKey& k) const {
    const Triple& t = triples[idx];
    if (prefix_len >= 1 && t.p != k.p) return t.p < k.p;
    if (prefix_len >= 2 && t.o != k.o) return t.o < k.o;
    return false;
  }
  bool operator()(const PatternKey& k, uint32_t idx) const {
    const Triple& t = triples[idx];
    if (prefix_len >= 1 && t.p != k.p) return k.p < t.p;
    if (prefix_len >= 2 && t.o != k.o) return k.o < t.o;
    return false;
  }
};

struct OspPrefixLess {
  std::span<const Triple> triples;
  int prefix_len;  // over (o, s)
  bool operator()(uint32_t idx, const PatternKey& k) const {
    const Triple& t = triples[idx];
    if (prefix_len >= 1 && t.o != k.o) return t.o < k.o;
    if (prefix_len >= 2 && t.s != k.s) return t.s < k.s;
    return false;
  }
  bool operator()(const PatternKey& k, uint32_t idx) const {
    const Triple& t = triples[idx];
    if (prefix_len >= 1 && t.o != k.o) return k.o < t.o;
    if (prefix_len >= 2 && t.s != k.s) return k.s < t.s;
    return false;
  }
};

}  // namespace

TripleStore TripleStore::FromView(Dictionary dict,
                                  std::span<const Triple> triples,
                                  std::span<const uint32_t> spo,
                                  std::span<const uint32_t> pos,
                                  std::span<const uint32_t> osp,
                                  const MappedPostingLists* postings,
                                  const MappedBlockPostings* block_postings) {
  SPECQP_CHECK(spo.size() == triples.size() && pos.size() == triples.size() &&
               osp.size() == triples.size());
  SPECQP_CHECK(postings == nullptr || block_postings == nullptr)
      << "a store has either a flat or a block posting directory";
  TripleStore store;
  store.dict_ = std::move(dict);
  store.view_ = true;
  store.finalized_ = true;  // view stores are born finalized
  store.triples_view_ = triples;
  store.spo_view_ = spo;
  store.pos_view_ = pos;
  store.osp_view_ = osp;
  store.mapped_postings_ = postings;
  store.mapped_block_postings_ = block_postings;
  return store;
}

TripleStore TripleStore::FromShardedSource(Dictionary dict,
                                           const ShardedTripleSource* source) {
  SPECQP_CHECK(source != nullptr);
  TripleStore store;
  store.dict_ = std::move(dict);
  store.sharded_ = source;
  store.finalized_ = true;  // sharded facades are born finalized
  return store;
}

void TripleStore::Add(std::string_view s, std::string_view p,
                      std::string_view o, double score) {
  AddEncoded(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o), score);
}

void TripleStore::AddEncoded(TermId s, TermId p, TermId o, double score) {
  SPECQP_CHECK(!finalized_) << "Add after Finalize";
  SPECQP_CHECK(score >= 0.0) << "negative triple score";
  triples_.push_back(Triple{s, p, o, score});
}

void TripleStore::Finalize() {
  if (finalized_) return;

  // Deduplicate identical (s,p,o), keeping the max score. Sort in SPO order
  // first so duplicates are adjacent.
  std::sort(triples_.begin(), triples_.end(), [](const Triple& a,
                                                 const Triple& b) {
    return std::tie(a.s, a.p, a.o, b.score) < std::tie(b.s, b.p, b.o, a.score);
  });
  triples_.erase(
      std::unique(triples_.begin(), triples_.end(),
                  [](const Triple& a, const Triple& b) {
                    return a.s == b.s && a.p == b.p && a.o == b.o;
                  }),
      triples_.end());

  const uint32_t n = static_cast<uint32_t>(triples_.size());
  spo_.resize(n);
  pos_.resize(n);
  osp_.resize(n);
  for (uint32_t i = 0; i < n; ++i) spo_[i] = pos_[i] = osp_[i] = i;
  // triples_ is already SPO-sorted, so spo_ is the identity permutation.
  std::sort(pos_.begin(), pos_.end(), [this](uint32_t a, uint32_t b) {
    return OrderPos()(triples_[a], triples_[b]);
  });
  std::sort(osp_.begin(), osp_.end(), [this](uint32_t a, uint32_t b) {
    return OrderOsp()(triples_[a], triples_[b]);
  });
  finalized_ = true;
}

void TripleStore::CheckFinalized() const {
  SPECQP_CHECK(finalized_) << "TripleStore queried before Finalize()";
}

std::span<const uint32_t> TripleStore::MatchIndices(
    const PatternKey& key) const {
  CheckFinalized();
  if (sharded_ != nullptr) {
    // Scatter-gather backend: the source merges the shards' per-index
    // subranges into the same value order the branches below produce.
    return sharded_->Match(key);
  }
  const bool sb = key.s_bound();
  const bool pb = key.p_bound();
  const bool ob = key.o_bound();

  const std::span<const Triple> rows = triples();
  auto make_span = [](std::span<const uint32_t> idx, auto range) {
    return idx.subspan(static_cast<size_t>(range.first - idx.begin()),
                       static_cast<size_t>(range.second - range.first));
  };

  if (sb) {
    // SPO handles (s), (s,p), (s,p,o); OSP handles (s,o).
    if (ob && !pb) {
      const auto osp = OspIndex();
      auto r = std::equal_range(osp.begin(), osp.end(), key,
                                OspPrefixLess{rows, 2});
      return make_span(osp, r);
    }
    const int prefix = 1 + (pb ? 1 : 0) + ((pb && ob) ? 1 : 0);
    const auto spo = SpoIndex();
    auto r = std::equal_range(spo.begin(), spo.end(), key,
                              SpoPrefixLess{rows, prefix});
    return make_span(spo, r);
  }
  if (pb) {
    const int prefix = 1 + (ob ? 1 : 0);
    const auto pos = PosIndex();
    auto r = std::equal_range(pos.begin(), pos.end(), key,
                              PosPrefixLess{rows, prefix});
    return make_span(pos, r);
  }
  if (ob) {
    const auto osp = OspIndex();
    auto r = std::equal_range(osp.begin(), osp.end(), key,
                              OspPrefixLess{rows, 1});
    return make_span(osp, r);
  }
  return SpoIndex();
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  PatternKey key{s, p, o};
  return !MatchIndices(key).empty();
}

size_t TripleStore::CountDistinct(const PatternKey& key, int slot) const {
  CheckFinalized();
  SPECQP_CHECK(slot >= 0 && slot <= 2);
  std::unordered_set<TermId> seen;
  for (uint32_t idx : MatchIndices(key)) {
    const Triple& t = triple(idx);
    switch (slot) {
      case 0:
        seen.insert(t.s);
        break;
      case 1:
        seen.insert(t.p);
        break;
      default:
        seen.insert(t.o);
        break;
    }
  }
  return seen.size();
}

double TripleStore::MaxScore(const PatternKey& key) const {
  double best = 0.0;
  for (uint32_t idx : MatchIndices(key)) {
    best = std::max(best, triple(idx).score);
  }
  return best;
}

TermId TripleStore::MustId(std::string_view term) const {
  auto r = dict_.Find(term);
  SPECQP_CHECK(r.ok()) << "unknown term: " << term;
  return r.value();
}

}  // namespace specqp
