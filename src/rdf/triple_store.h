#ifndef SPECQP_RDF_TRIPLE_STORE_H_
#define SPECQP_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_pattern.h"
#include "util/logging.h"
#include "util/status.h"

namespace specqp {

struct MappedPostingLists;   // rdf/store_format.h
struct MappedBlockPostings;  // rdf/store_format.h

// Backend interface of a sharded (bundle-backed) TripleStore facade: the
// triples live in N cooperating mapped shard stores, addressed through a
// GLOBAL index space defined as the merged SPO order of all shards — the
// exact order a single-file store over the same triples would use, which
// is what keeps posting lists (and therefore answers) bit-identical
// across backends. Implemented by ShardedStore (rdf/sharded_store.h);
// TripleStore::FromShardedSource wraps an instance so every query-side
// consumer (posting lists, statistics, scans) works unchanged.
class ShardedTripleSource {
 public:
  virtual ~ShardedTripleSource() = default;

  // Total triples across all shards (the global index space).
  virtual size_t NumTriples() const = 0;

  // The triple at a global index; the reference aliases a shard mapping.
  virtual const Triple& TripleAt(uint32_t global_index) const = 0;

  // Global indices matching `key`, in the same value order single-file
  // MatchIndices uses (gathered from the shards' indexes and merged).
  // The span stays valid for the source's lifetime.
  virtual std::span<const uint32_t> Match(const PatternKey& key) const = 0;

  // True when the shards serve block-compressed (v3) postings, so
  // facade-built posting lists should be block-encoded too.
  virtual bool blocked_postings() const = 0;

  // --- failure surface (rdf/mapped_fault.h, degraded reads) ---------------
  //
  // A source that can lose shards at runtime reports the loss here; the
  // defaults describe a monolithic source that is either fully up or gone.

  // Number of shards behind this source (1 for monolithic sources).
  virtual uint32_t ShardsTotal() const { return 1; }

  // Shards currently quarantined (failed at open or faulted at runtime).
  // Answers computed while this is nonzero cover only the survivors.
  virtual uint32_t ShardsFailed() const { return 0; }

  // Monotonic counter bumped every time a shard is quarantined. The
  // engine snapshots it around a query: a change mid-query means derived
  // state (posting-list caches, partial answers) may mix pre- and
  // post-fault data and must be discarded.
  virtual uint64_t FaultEpoch() const { return 0; }

  // Sweeps for latched mapping faults (SIGBUS containment) and
  // quarantines affected shards. Called by the engine before and after
  // each query; a no-op for monolithic sources.
  virtual void PollFaults() const {}
};

// In-memory scored triple store with three permutation indexes (SPO, POS,
// OSP). Together they answer every bound/free combination of a triple
// pattern with a binary-searched contiguous range:
//
//   bound slots      index    prefix
//   --------------   ------   -----------
//   (none)           SPO      full scan
//   s / s,p / s,p,o  SPO      (s) / (s,p) / (s,p,o)
//   p / p,o          POS      (p) / (p,o)
//   o / o,s          OSP      (o) / (o,s)
//
// This plays the role PostgreSQL played in the paper: the source of the
// matches of a triple pattern (posting_list.h adds the ORDER BY score DESC
// on top).
//
// Usage: Add() triples, then Finalize() once; all query methods require a
// finalized store. Duplicate (s,p,o) rows are collapsed by Finalize keeping
// the maximum score.
//
// A second, read-only backend (FromView) serves the same query interface
// zero-copy over a memory-mapped SQPSTOR2 file: the triple array and the
// three permutation indexes are spans into the mapping, so opening does no
// per-triple parsing and no index build (see rdf/mmap_store.h and
// docs/FORMATS.md). View stores are born finalized; Add/AddEncoded on
// them CHECK-fail.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  // View-backed construction over mapped memory. `triples` must be in SPO
  // order, `spo`/`pos`/`osp` the matching permutations of its indices, and
  // at most one of `postings` (v2 flat directory) / `block_postings` (v3
  // block directory) non-null. The caller (MmapStore) owns the mapping and
  // guarantees it outlives the store and that span bounds were validated
  // against the file.
  static TripleStore FromView(Dictionary dict,
                              std::span<const Triple> triples,
                              std::span<const uint32_t> spo,
                              std::span<const uint32_t> pos,
                              std::span<const uint32_t> osp,
                              const MappedPostingLists* postings,
                              const MappedBlockPostings* block_postings =
                                  nullptr);

  // Sharded-backend construction (rdf/sharded_store.h): every query
  // method delegates per-triple and per-pattern access to `source`,
  // which must outlive the store. Born finalized and read-only; there
  // is no contiguous triple array, so triples() CHECK-fails — callers
  // that need raw iteration (SaveStore) must reject sharded facades.
  static TripleStore FromShardedSource(Dictionary dict,
                                       const ShardedTripleSource* source);

  // --- loading phase -------------------------------------------------------

  // Interns the strings and records the triple. Score must be >= 0.
  void Add(std::string_view s, std::string_view p, std::string_view o,
           double score);

  // Records a triple over already-interned ids.
  void AddEncoded(TermId s, TermId p, TermId o, double score);

  // Builds the permutation indexes; idempotent. Must be called before any
  // query method.
  void Finalize();

  bool finalized() const { return finalized_; }

  // --- query phase ---------------------------------------------------------

  size_t size() const {
    return sharded_ != nullptr ? sharded_->NumTriples() : triples().size();
  }
  const Triple& triple(uint32_t index) const {
    return sharded_ != nullptr ? sharded_->TripleAt(index) : triples()[index];
  }
  // The contiguous triple array (SPO order). A sharded facade has none —
  // its triples live in N shard mappings — so iteration must go through
  // size()/triple() instead; calling triples() on one CHECK-fails.
  std::span<const Triple> triples() const {
    SPECQP_CHECK(sharded_ == nullptr)
        << "sharded stores have no contiguous triple array";
    return view_ ? triples_view_ : std::span<const Triple>(triples_);
  }

  // Non-null only on view stores opened from a v2 file with a posting
  // directory: zero-copy per-predicate posting lists (consumed by
  // BuildPostingList / the posting-list cache).
  const MappedPostingLists* mapped_postings() const {
    return mapped_postings_;
  }
  // v3 counterpart: zero-copy block-compressed posting lists. At most one
  // of the two directories is non-null.
  const MappedBlockPostings* mapped_block_postings() const {
    return mapped_block_postings_;
  }
  bool is_view() const { return view_; }
  bool is_sharded() const { return sharded_ != nullptr; }
  // The sharded backend behind this facade (nullptr for monolithic
  // stores); the engine uses it to poll the failure surface above.
  const ShardedTripleSource* sharded_source() const { return sharded_; }
  // True on sharded facades whose shards serve v3 block postings:
  // BuildPostingList re-encodes facade-built lists into blocks so the
  // block accounting (blocks_decoded/blocks_skipped) and header-guided
  // skipping stay live on sharded backends too.
  bool sharded_block_postings() const {
    return sharded_ != nullptr && sharded_->blocked_postings();
  }

  // Indices (into triples()) of all triples matching the key, in index
  // order. The returned span aliases internal storage.
  std::span<const uint32_t> MatchIndices(const PatternKey& key) const;

  size_t CountMatches(const PatternKey& key) const {
    return MatchIndices(key).size();
  }

  // True iff the fully-bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Number of distinct values taken by the given slot (0 = s, 1 = p, 2 = o)
  // across the matches of `key`. The slot must be free in `key`. Used by the
  // independence-assumption selectivity estimator.
  size_t CountDistinct(const PatternKey& key, int slot) const;

  // Maximum raw score among matches of `key`; 0 if no matches. This is the
  // normaliser of Definition 5.
  double MaxScore(const PatternKey& key) const;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  // Convenience: id for an existing term; CHECK-fails if absent (intended
  // for tests and examples where the term is known to exist).
  TermId MustId(std::string_view term) const;

 private:
  void CheckFinalized() const;
  std::span<const uint32_t> SpoIndex() const {
    return view_ ? spo_view_ : std::span<const uint32_t>(spo_);
  }
  std::span<const uint32_t> PosIndex() const {
    return view_ ? pos_view_ : std::span<const uint32_t>(pos_);
  }
  std::span<const uint32_t> OspIndex() const {
    return view_ ? osp_view_ : std::span<const uint32_t>(osp_);
  }

  Dictionary dict_;
  std::vector<Triple> triples_;
  bool finalized_ = false;

  // Permutations of [0, triples_.size()) sorted by the respective order.
  std::vector<uint32_t> spo_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> osp_;

  // View backend (mapped stores): non-owning spans into the mapping.
  bool view_ = false;
  std::span<const Triple> triples_view_;
  std::span<const uint32_t> spo_view_;
  std::span<const uint32_t> pos_view_;
  std::span<const uint32_t> osp_view_;
  const MappedPostingLists* mapped_postings_ = nullptr;
  const MappedBlockPostings* mapped_block_postings_ = nullptr;

  // Sharded backend (bundle facades): non-owning; see FromShardedSource.
  const ShardedTripleSource* sharded_ = nullptr;
};

}  // namespace specqp

#endif  // SPECQP_RDF_TRIPLE_STORE_H_
