#ifndef SPECQP_RDF_TRIPLE_STORE_H_
#define SPECQP_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_pattern.h"
#include "util/status.h"

namespace specqp {

// In-memory scored triple store with three permutation indexes (SPO, POS,
// OSP). Together they answer every bound/free combination of a triple
// pattern with a binary-searched contiguous range:
//
//   bound slots      index    prefix
//   --------------   ------   -----------
//   (none)           SPO      full scan
//   s / s,p / s,p,o  SPO      (s) / (s,p) / (s,p,o)
//   p / p,o          POS      (p) / (p,o)
//   o / o,s          OSP      (o) / (o,s)
//
// This plays the role PostgreSQL played in the paper: the source of the
// matches of a triple pattern (posting_list.h adds the ORDER BY score DESC
// on top).
//
// Usage: Add() triples, then Finalize() once; all query methods require a
// finalized store. Duplicate (s,p,o) rows are collapsed by Finalize keeping
// the maximum score.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  // --- loading phase -------------------------------------------------------

  // Interns the strings and records the triple. Score must be >= 0.
  void Add(std::string_view s, std::string_view p, std::string_view o,
           double score);

  // Records a triple over already-interned ids.
  void AddEncoded(TermId s, TermId p, TermId o, double score);

  // Builds the permutation indexes; idempotent. Must be called before any
  // query method.
  void Finalize();

  bool finalized() const { return finalized_; }

  // --- query phase ---------------------------------------------------------

  size_t size() const { return triples_.size(); }
  const Triple& triple(uint32_t index) const { return triples_[index]; }
  std::span<const Triple> triples() const { return triples_; }

  // Indices (into triples()) of all triples matching the key, in index
  // order. The returned span aliases internal storage.
  std::span<const uint32_t> MatchIndices(const PatternKey& key) const;

  size_t CountMatches(const PatternKey& key) const {
    return MatchIndices(key).size();
  }

  // True iff the fully-bound triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  // Number of distinct values taken by the given slot (0 = s, 1 = p, 2 = o)
  // across the matches of `key`. The slot must be free in `key`. Used by the
  // independence-assumption selectivity estimator.
  size_t CountDistinct(const PatternKey& key, int slot) const;

  // Maximum raw score among matches of `key`; 0 if no matches. This is the
  // normaliser of Definition 5.
  double MaxScore(const PatternKey& key) const;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  // Convenience: id for an existing term; CHECK-fails if absent (intended
  // for tests and examples where the term is known to exist).
  TermId MustId(std::string_view term) const;

 private:
  void CheckFinalized() const;

  Dictionary dict_;
  std::vector<Triple> triples_;
  bool finalized_ = false;

  // Permutations of [0, triples_.size()) sorted by the respective order.
  std::vector<uint32_t> spo_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> osp_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_TRIPLE_STORE_H_
