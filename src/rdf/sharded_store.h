#ifndef SPECQP_RDF_SHARDED_STORE_H_
#define SPECQP_RDF_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/mmap_store.h"
#include "rdf/store_format.h"
#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/status.h"

namespace specqp {

class ThreadPool;  // util/thread_pool.h

// Sharded store bundles ("SQPBNDL1", docs/FORMATS.md): one manifest plus
// N self-contained SQPSTOR2/3 shard files, hash-partitioned on subject or
// predicate. The reader side is ShardedStore below; the writer side is
// WriteShardBundle (split an existing finalized store) and
// WriteBundleManifest (seal a directory of shard files written by any
// producer — tools/store_shard streams per-shard generation through it
// without ever materialising the whole graph).

// Deterministic shard assignment: a multiplicative hash of the term id,
// reduced mod shard_count. Part of the on-disk contract — the manifest
// records only the scheme (subject/predicate), not the hash, so readers
// and writers must agree on this function forever.
inline uint32_t BundleShardOf(TermId key, uint32_t shard_count) {
  const uint64_t h = (uint64_t{key} + 1) * 0x9E3779B97F4A7C15ULL;
  return static_cast<uint32_t>((h >> 32) % shard_count);
}

// The triple's shard under a scheme: hash of the subject or predicate.
inline uint32_t BundleShardOfTriple(const Triple& t,
                                    bundle::HashScheme scheme,
                                    uint32_t shard_count) {
  return BundleShardOf(
      scheme == bundle::HashScheme::kPredicate ? t.p : t.s, shard_count);
}

// "shard_0007.sqps" — the bundle's shard file naming contract.
std::string BundleShardFileName(uint32_t shard_id);

// True when `path` names a bundle: a directory holding manifest.sqpb, or
// the manifest file itself (identified by its magic). Engine::OpenFromPath
// probes this before the single-file store formats.
bool IsBundlePath(const std::string& path);

struct ShardBundleOptions {
  uint32_t shard_count = 2;
  bundle::HashScheme scheme = bundle::HashScheme::kSubject;
  // Per-shard store file format: 3 (block postings, default) or 2.
  uint32_t format_version = 3;
  bool posting_directory = true;
  // Shard files are built and written concurrently when a pool is given
  // (one task per shard); null builds them sequentially.
  ThreadPool* pool = nullptr;
};

// Splits a finalized (non-sharded) store into `options.shard_count` shard
// files under the directory `dir` (created if absent) and writes the
// manifest. Every shard file carries the full dictionary in the store's
// intern order, so shard TermIds are the store's TermIds.
Status WriteShardBundle(const TripleStore& store, const std::string& dir,
                        const ShardBundleOptions& options = {});

// Seals a bundle directory: reads back the header + section table of every
// shard_<id>.sqps (0 <= id < shard_count), checks they agree on format
// version and dictionary, and writes manifest.sqpb with their sizes,
// triple counts, and digests. Writers that stream shards to disk call
// this once after the last shard lands.
Status WriteBundleManifest(const std::string& dir, uint32_t shard_count,
                           bundle::HashScheme scheme,
                           uint32_t format_version);

// N cooperating MmapStores behind one TripleStore facade.
//
// Open() validates the manifest (magic, version, counts, trailing CRC,
// per-shard digests, one dictionary across all shards), maps every shard,
// and builds the GLOBAL triple index space: an N-way merge of the shards'
// SPO-sorted triple arrays into locator arrays (global -> shard, local)
// and (shard, local) -> global. Because each shard is locally SPO-sorted
// and the merge is by the same total order, the global space IS the SPO
// order of the union — exactly the index space a single-file store over
// the same triples would have. PatternScan and posting resolution then
// scatter per-pattern lookups across the shards' own permutation indexes
// and gather the subranges back through the same merge order, so posting
// lists — and therefore top-k answers — are bit-identical to the
// single-file backend at any shard count (the determinism argument is
// spelled out in docs/ARCHITECTURE.md).
//
// The merge doubles as integrity checking: any cross-shard duplicate
// triple or locally unsorted shard breaks strict SPO ascent and returns
// Status::Corruption. Verify::kEager additionally CRC-verifies every
// shard section and re-hashes every triple's shard assignment, rejecting
// bundles whose triples landed in the wrong shard.
//
// Thread-safe for concurrent queries: per-pattern gathers are memoised
// under a mutex (spans stay valid for the store's lifetime), per-triple
// access is lock-free.
class ShardedStore : public ShardedTripleSource {
 public:
  struct Options {
    Options() : verify(MmapStore::Verify::kLazy) {}
    MmapStore::Verify verify;
  };

  static Result<std::unique_ptr<ShardedStore>> Open(
      const std::string& path, const Options& options = Options());

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // The merged zero-copy facade (finalized, read-only). Valid while this
  // ShardedStore is alive.
  const TripleStore& store() const { return facade_; }

  uint32_t shard_count() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const MmapStore& shard(size_t i) const { return *shards_[i]; }
  bundle::HashScheme scheme() const { return scheme_; }
  uint32_t store_format() const { return store_format_; }

  // Sum of the shard mappings' sizes.
  size_t bytes_mapped() const;

  // Per-shard slice of the scatter-gather ledger: static shape (triples,
  // mapped bytes) plus the gather counters accumulated since open —
  // triples resolved through this shard and patterns whose scatter hit
  // it. Bench artifacts fold these under the per-run ExecStats.
  struct ShardCounters {
    uint32_t shard_id = 0;
    uint64_t triple_count = 0;
    uint64_t bytes_mapped = 0;
    uint64_t triples_gathered = 0;
    uint64_t patterns_scattered = 0;
  };
  std::vector<ShardCounters> Counters() const;

  // --- ShardedTripleSource (consumed via the TripleStore facade) ----------
  size_t NumTriples() const override { return loc_shard_.size(); }
  const Triple& TripleAt(uint32_t global_index) const override;
  std::span<const uint32_t> Match(const PatternKey& key) const override;
  bool blocked_postings() const override {
    return store_format_ == v3::kFormatVersion;
  }

 private:
  ShardedStore() = default;

  // Uncounted triple access for internal merge/compare paths.
  const Triple& TripleUncounted(uint32_t global_index) const {
    return shards_[loc_shard_[global_index]]->store().triple(
        loc_local_[global_index]);
  }

  Status BuildGlobalOrder();

  std::vector<std::unique_ptr<MmapStore>> shards_;
  bundle::HashScheme scheme_ = bundle::HashScheme::kSubject;
  uint32_t store_format_ = 0;

  // Locators: global index -> (shard, local index) and back.
  std::vector<uint16_t> loc_shard_;
  std::vector<uint32_t> loc_local_;
  std::vector<std::vector<uint32_t>> global_of_;  // [shard][local] -> global

  TripleStore facade_;

  // Memoised per-pattern gathers; vector heap buffers are stable, so the
  // spans handed out stay valid across rehashes.
  mutable std::mutex memo_mutex_;
  mutable std::unordered_map<PatternKey, std::vector<uint32_t>,
                             PatternKeyHash>
      match_memo_;

  struct alignas(64) GatherCounters {
    std::atomic<uint64_t> triples{0};
    std::atomic<uint64_t> patterns{0};
  };
  std::unique_ptr<GatherCounters[]> gather_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_SHARDED_STORE_H_
