#ifndef SPECQP_RDF_SHARDED_STORE_H_
#define SPECQP_RDF_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/mmap_store.h"
#include "rdf/store_format.h"
#include "rdf/triple_store.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace specqp {

class ThreadPool;  // util/thread_pool.h

// Sharded store bundles ("SQPBNDL1", docs/FORMATS.md): one manifest plus
// N self-contained SQPSTOR2/3 shard files, hash-partitioned on subject or
// predicate. The reader side is ShardedStore below; the writer side is
// WriteShardBundle (split an existing finalized store) and
// WriteBundleManifest (seal a directory of shard files written by any
// producer — tools/store_shard streams per-shard generation through it
// without ever materialising the whole graph).

// Deterministic shard assignment: a multiplicative hash of the term id,
// reduced mod shard_count. Part of the on-disk contract — the manifest
// records only the scheme (subject/predicate), not the hash, so readers
// and writers must agree on this function forever.
inline uint32_t BundleShardOf(TermId key, uint32_t shard_count) {
  const uint64_t h = (uint64_t{key} + 1) * 0x9E3779B97F4A7C15ULL;
  return static_cast<uint32_t>((h >> 32) % shard_count);
}

// The triple's shard under a scheme: hash of the subject or predicate.
inline uint32_t BundleShardOfTriple(const Triple& t,
                                    bundle::HashScheme scheme,
                                    uint32_t shard_count) {
  return BundleShardOf(
      scheme == bundle::HashScheme::kPredicate ? t.p : t.s, shard_count);
}

// "shard_0007.sqps" — the bundle's shard file naming contract.
std::string BundleShardFileName(uint32_t shard_id);

// True when `path` names a bundle: a directory holding manifest.sqpb, or
// the manifest file itself (identified by its magic). Engine::OpenFromPath
// probes this before the single-file store formats.
bool IsBundlePath(const std::string& path);

struct ShardBundleOptions {
  uint32_t shard_count = 2;
  bundle::HashScheme scheme = bundle::HashScheme::kSubject;
  // Per-shard store file format: 3 (block postings, default) or 2.
  uint32_t format_version = 3;
  bool posting_directory = true;
  // Shard files are built and written concurrently when a pool is given
  // (one task per shard); null builds them sequentially.
  ThreadPool* pool = nullptr;
};

// Splits a finalized (non-sharded) store into `options.shard_count` shard
// files under the directory `dir` (created if absent) and writes the
// manifest. Every shard file carries the full dictionary in the store's
// intern order, so shard TermIds are the store's TermIds.
[[nodiscard]] Status WriteShardBundle(const TripleStore& store, const std::string& dir,
                        const ShardBundleOptions& options = {});

// Seals a bundle directory: reads back the header + section table of every
// shard_<id>.sqps (0 <= id < shard_count), checks they agree on format
// version and dictionary, and writes manifest.sqpb with their sizes,
// triple counts, and digests. Writers that stream shards to disk call
// this once after the last shard lands.
[[nodiscard]] Status WriteBundleManifest(const std::string& dir, uint32_t shard_count,
                           bundle::HashScheme scheme,
                           uint32_t format_version);

// N cooperating MmapStores behind one TripleStore facade.
//
// Open() validates the manifest (magic, version, counts, trailing CRC,
// per-shard digests, one dictionary across all shards), maps every shard,
// and builds the GLOBAL triple index space: an N-way merge of the shards'
// SPO-sorted triple arrays into locator arrays (global -> shard, local)
// and (shard, local) -> global. Because each shard is locally SPO-sorted
// and the merge is by the same total order, the global space IS the SPO
// order of the union — exactly the index space a single-file store over
// the same triples would have. PatternScan and posting resolution then
// scatter per-pattern lookups across the shards' own permutation indexes
// and gather the subranges back through the same merge order, so posting
// lists — and therefore top-k answers — are bit-identical to the
// single-file backend at any shard count (the determinism argument is
// spelled out in docs/ARCHITECTURE.md).
//
// The merge doubles as integrity checking: any cross-shard duplicate
// triple or locally unsorted shard breaks strict SPO ascent and returns
// Status::Corruption. Verify::kEager additionally CRC-verifies every
// shard section and re-hashes every triple's shard assignment, rejecting
// bundles whose triples landed in the wrong shard.
//
// Thread-safe for concurrent queries: per-pattern gathers are memoised
// under a mutex (spans stay valid for the store's lifetime), per-triple
// access is lock-free.
// Shard failure isolation (opt-in via Options::allow_quarantine):
//
//   open time   A shard that fails to open — missing file, IO error,
//               digest/format/count mismatch, injected "shard.open" fault
//               — is retried under Options::open_retry (IO-class failures
//               only; corruption is final) and then QUARANTINED: the
//               bundle opens over the survivors, whose N-way merge
//               defines the (reduced) global space. All shards failing
//               turns Open into kUnavailable.
//
//   runtime     A shard whose mapping loses pages (SIGBUS containment,
//               rdf/mapped_fault.h) or that draws an injected
//               "shard.read" fault is quarantined mid-flight: it keeps
//               its slots in the ORIGINAL global space (locators stay
//               valid — quarantine never renumbers anything) but every
//               later scatter skips it, so new answers cover survivors
//               only. Each quarantine bumps fault_epoch(); memoised
//               gathers are epoch-tagged and stale entries are retired
//               (never freed while the store lives, so previously handed
//               out spans stay valid) and recomputed on next use. The
//               engine snapshots the epoch around each query: a bump
//               mid-query invalidates that query's answer and derived
//               caches.
//
// With allow_quarantine false (the default) every failure above is
// surfaced exactly as before: Open returns the shard's error and runtime
// faults surface through the engine's poll as IoError — nothing is
// masked. This keeps strict single-writer deployments and the hostile-
// input battery byte-for-byte unchanged.
class ShardedStore : public ShardedTripleSource {
 public:
  struct Options {
    Options() : verify(MmapStore::Verify::kLazy), allow_quarantine(false) {
      // Shard opens are latency-sensitive (N of them, serial): keep the
      // default retry budget small. Callers tune open_retry directly.
      open_retry.max_attempts = 3;
      open_retry.initial_backoff = std::chrono::microseconds(500);
      open_retry.max_backoff = std::chrono::microseconds(10000);
    }
    MmapStore::Verify verify;
    // Opt into degraded serving: failed shards are quarantined instead of
    // failing the whole bundle (see the class comment).
    bool allow_quarantine;
    // Backoff schedule for transient (IO-class) shard-open failures; only
    // consulted when allow_quarantine is set.
    RetryPolicy open_retry;
  };

  [[nodiscard]] static Result<std::unique_ptr<ShardedStore>> Open(
      const std::string& path, const Options& options = Options());

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // The merged zero-copy facade (finalized, read-only). Valid while this
  // ShardedStore is alive.
  const TripleStore& store() const { return facade_; }

  uint32_t shard_count() const {
    return static_cast<uint32_t>(shards_.size());
  }
  // Precondition: shard_alive(i) — a quarantined-at-open shard has no
  // mapping behind it.
  const MmapStore& shard(size_t i) const { return *shards_[i]; }
  bundle::HashScheme scheme() const { return scheme_; }
  uint32_t store_format() const { return store_format_; }

  // --- failure surface ------------------------------------------------------

  // True when shard i opened and has not been quarantined.
  bool shard_alive(size_t i) const {
    return shards_[i] != nullptr &&
           !runtime_[i].quarantined.load(std::memory_order_acquire);
  }
  // Why shard i is quarantined; empty for live shards.
  std::string quarantine_reason(size_t i) const;
  // Pulls shard i out of serving (idempotent): later scatters skip it,
  // the fault epoch bumps, memoised gathers against the old shard set go
  // stale. Exposed for tests and operational tooling; production callers
  // are the fault sweeps.
  void Quarantine(size_t i, const std::string& reason) const;

  uint32_t ShardsTotal() const override {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t ShardsFailed() const override {
    return quarantined_count_.load(std::memory_order_acquire);
  }
  uint64_t FaultEpoch() const override {
    return fault_epoch_.load(std::memory_order_acquire);
  }
  // Quarantines every live shard whose mapping latched a SIGBUS
  // containment fault. Cheap (one relaxed load per shard) — called
  // before/after each query and between Match scatter passes.
  void PollFaults() const override;

  // Sum of the shard mappings' sizes.
  size_t bytes_mapped() const;

  // Per-shard slice of the scatter-gather ledger: static shape (triples,
  // mapped bytes) plus the gather counters accumulated since open —
  // triples resolved through this shard and patterns whose scatter hit
  // it. Bench artifacts fold these under the per-run ExecStats.
  struct ShardCounters {
    uint32_t shard_id = 0;
    uint64_t triple_count = 0;
    uint64_t bytes_mapped = 0;
    uint64_t triples_gathered = 0;
    uint64_t patterns_scattered = 0;
  };
  std::vector<ShardCounters> Counters() const;

  // --- ShardedTripleSource (consumed via the TripleStore facade) ----------
  size_t NumTriples() const override { return loc_shard_.size(); }
  const Triple& TripleAt(uint32_t global_index) const override;
  std::span<const uint32_t> Match(const PatternKey& key) const override;
  bool blocked_postings() const override {
    return store_format_ == v3::kFormatVersion;
  }

 private:
  ShardedStore() = default;

  // Uncounted triple access for internal merge/compare paths.
  const Triple& TripleUncounted(uint32_t global_index) const {
    return shards_[loc_shard_[global_index]]->store().triple(
        loc_local_[global_index]);
  }

  [[nodiscard]] Status BuildGlobalOrder();

  // nullptr = failed at open under allow_quarantine (excluded from the
  // global order; no mapping behind the slot).
  std::vector<std::unique_ptr<MmapStore>> shards_;
  bundle::HashScheme scheme_ = bundle::HashScheme::kSubject;
  uint32_t store_format_ = 0;

  // Locators: global index -> (shard, local index) and back.
  std::vector<uint16_t> loc_shard_;
  std::vector<uint32_t> loc_local_;
  std::vector<std::vector<uint32_t>> global_of_;  // [shard][local] -> global

  TripleStore facade_;

  // Per-shard runtime quarantine flag (separate from shards_ so the flag
  // is atomic and the mapping stays alive for in-flight readers).
  struct ShardRuntime {
    std::atomic<bool> quarantined{false};
  };
  std::unique_ptr<ShardRuntime[]> runtime_;
  mutable std::atomic<uint32_t> quarantined_count_{0};
  mutable std::atomic<uint64_t> fault_epoch_{0};
  // Serialises Quarantine() (reason bookkeeping); never held on read
  // paths.
  mutable Mutex quarantine_mutex_;
  mutable std::vector<std::string> quarantine_reasons_
      SPECQP_GUARDED_BY(quarantine_mutex_);

  // Memoised per-pattern gathers, tagged with the fault epoch they were
  // computed under; a stale entry is recomputed and its old buffer moved
  // to retired_ (spans already handed out must stay valid for the store's
  // lifetime — bounded: one generation per quarantine event).
  struct MemoEntry {
    uint64_t epoch = 0;
    std::vector<uint32_t> ids;
  };
  mutable Mutex memo_mutex_;
  mutable std::unordered_map<PatternKey, MemoEntry, PatternKeyHash> match_memo_
      SPECQP_GUARDED_BY(memo_mutex_);
  mutable std::vector<std::vector<uint32_t>> retired_
      SPECQP_GUARDED_BY(memo_mutex_);

  struct alignas(64) GatherCounters {
    std::atomic<uint64_t> triples{0};
    std::atomic<uint64_t> patterns{0};
  };
  std::unique_ptr<GatherCounters[]> gather_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_SHARDED_STORE_H_
