#ifndef SPECQP_RDF_MAPPED_FAULT_H_
#define SPECQP_RDF_MAPPED_FAULT_H_

#include <cstddef>
#include <cstdint>

namespace specqp {

// SIGBUS containment for memory-mapped store files.
//
// A file-backed mapping raises SIGBUS when a load touches a page past the
// file's current end — e.g. the file was truncated while mapped, or the
// device dropped out from under it. Left unhandled that kills the whole
// process, taking every healthy shard down with the broken one.
//
// The containment strategy here deliberately avoids longjmp-style frame
// unwinding: posting lists are built under the PostingListCache shard
// mutex and block decode holds the PostingBlockSource memo mutex, so
// jumping out of the faulting frame would abandon locks. Instead the
// handler *repairs the page in place*:
//
//   1. Each MmapStore registers its mapping in a fixed-size, lock-free
//      registry (async-signal-safe to read).
//   2. The process-wide SIGBUS handler checks si_addr against the
//      registry. For an address inside a registered mapping it mmaps an
//      anonymous zero page MAP_FIXED over the faulting page, latches the
//      region's fault counter, and returns — the faulting load re-executes
//      and reads zeros.
//   3. Faults for addresses outside every registered region chain to the
//      previously installed handler (sanitizer runtimes, default action),
//      so unrelated bugs still crash loudly.
//
// Execution therefore continues over well-defined garbage (zeros) with no
// lock left dangling and no frame unwound; readers that bound-check ids
// stay memory-safe, and the engine notices the latched fault at its next
// poll point (ShardedStore::PollFaults, post-query checks) and fails the
// query with IoError / quarantines the shard instead of crashing.
//
// The healthy path costs nothing per read: no per-access checks, only a
// relaxed counter load at explicit poll points.

// Registers [base, base+len) for SIGBUS containment. Installs the signal
// handler on first use. Returns a token (>= 0) for the region, or -1 when
// the registry is full (the mapping simply stays uncontained — a fault in
// it falls through to the chained handler). Thread-safe.
int RegisterMappedRegion(const void* base, size_t len);

// Removes a region from the registry. The token is recycled; callers must
// not use it afterwards. Passing -1 is a no-op.
void UnregisterMappedRegion(int token);

// Number of pages zero-filled by the handler inside this region since
// registration. Nonzero means some reads through the mapping returned
// zeros instead of file bytes and the data backed by it must not be
// trusted. Monotonic; -1 tokens report 0.
uint64_t MappedRegionFaults(int token);

// Test hook: raises a contained fault on `addr` as if the kernel had
// delivered SIGBUS there (addr must lie inside a registered region for
// the call to return true). Used to exercise the poll/quarantine paths
// without having to truncate real files in-process.
bool SimulateMappedFault(const void* addr);

}  // namespace specqp

#endif  // SPECQP_RDF_MAPPED_FAULT_H_
