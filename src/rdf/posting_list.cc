#include "rdf/posting_list.h"

#include <algorithm>
#include <cmath>

#include "rdf/posting_partition.h"
#include "rdf/store_format.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/stop_probe.h"

namespace specqp {

const v2::PostingDirEntry* MappedPostingLists::Find(TermId predicate) const {
  auto it = std::lower_bound(
      directory.begin(), directory.end(), predicate,
      [](const v2::PostingDirEntry& e, TermId p) { return e.predicate < p; });
  if (it == directory.end() || it->predicate != predicate) return nullptr;
  return &*it;
}

const v3::BlockPostingDirEntry* MappedBlockPostings::Find(
    TermId predicate) const {
  auto it = std::lower_bound(directory.begin(), directory.end(), predicate,
                             [](const v3::BlockPostingDirEntry& e, TermId p) {
                               return e.predicate < p;
                             });
  if (it == directory.end() || it->predicate != predicate) return nullptr;
  return &*it;
}

PostingList PostingList::View(std::span<const PostingEntry> mapped,
                              double max_raw_score) {
  PostingList list;
  list.entries = mapped;
  list.max_raw_score = max_raw_score;
  return list;
}

PostingList PostingList::BlockView(std::span<const PostingBlockHeader> headers,
                                   std::span<const uint8_t> payload,
                                   uint64_t entry_count, double max_raw_score,
                                   uint32_t id_limit) {
  PostingList list;
  list.blocks = std::make_unique<PostingBlockSource>(headers, payload,
                                                     entry_count, id_limit);
  list.max_raw_score = max_raw_score;
  return list;
}

PostingList PostingList::FromBlocks(std::vector<PostingBlockHeader> headers,
                                    std::vector<uint8_t> payload,
                                    uint64_t entry_count, double max_raw_score,
                                    uint32_t id_limit) {
  PostingList list;
  list.blocks = std::make_unique<PostingBlockSource>(
      std::move(headers), std::move(payload), entry_count, id_limit);
  list.max_raw_score = max_raw_score;
  return list;
}

BlockIterator::BlockIterator(const PostingList* list, uint64_t* decoded_counter,
                             uint64_t* skipped_counter)
    : decoded_counter_(decoded_counter), skipped_counter_(skipped_counter) {
  SPECQP_CHECK(list != nullptr);
  if (list->blocked()) {
    source_ = list->blocks.get();
    size_ = static_cast<size_t>(source_->entry_count());
    faults_at_start_ = source_->fault_count();
  } else {
    flat_ = list->entries;
    size_ = flat_.size();
  }
}

BlockIterator::~BlockIterator() {
  // Blocks the iterator never needed — the tail PullTopK left untouched
  // once it had its k answers — are charged as skipped here. SkipAll()
  // advances accounted_until_, so an explicitly discarded iterator does
  // not double-charge.
  if (source_ != nullptr && skipped_counter_ != nullptr) {
    *skipped_counter_ += source_->num_blocks() - accounted_until_;
  }
}

bool BlockIterator::faulted() const {
  return source_ != nullptr && source_->fault_count() > faults_at_start_;
}

void BlockIterator::Materialize(size_t b) {
  if (cur_block_ == b && cur_ != nullptr) return;
  cur_ = source_->Decode(b);
  cur_block_ = b;
  if (b >= accounted_until_) {
    if (skipped_counter_ != nullptr) {
      *skipped_counter_ += b - accounted_until_;
    }
    accounted_until_ = b + 1;
  }
  if (decoded_counter_ != nullptr) ++*decoded_counter_;
}

double BlockIterator::PeekScore() const {
  SPECQP_DCHECK(!AtEnd());
  if (source_ == nullptr) return flat_[pos_].score;
  const size_t b = pos_ / kPostingBlockEntries;
  if (cur_block_ == b && cur_ != nullptr) {
    return cur_->entries[pos_ % kPostingBlockEntries].score;
  }
  // Advance() keeps mid-block positions materialised, so an undecoded
  // position sits on a boundary, where the header's ceiling IS the
  // current entry's score (bit-equal by format validation).
  SPECQP_DCHECK(pos_ % kPostingBlockEntries == 0);
  return source_->header(b).max_score;
}

const PostingEntry& BlockIterator::Entry() {
  SPECQP_DCHECK(!AtEnd());
  if (source_ == nullptr) return flat_[pos_];
  Materialize(pos_ / kPostingBlockEntries);
  return cur_->entries[pos_ % kPostingBlockEntries];
}

void BlockIterator::Advance() {
  SPECQP_DCHECK(!AtEnd());
  ++pos_;
  if (source_ == nullptr || AtEnd()) return;
  // Invariant: a mid-block position has its block materialised, so
  // PeekScore() stays exact and const. Landing on a boundary defers the
  // decode — the next skip may discard the block whole.
  if (pos_ % kPostingBlockEntries != 0) {
    Materialize(pos_ / kPostingBlockEntries);
  }
}

void BlockIterator::SkipToScoreBelow(double bound) {
  if (source_ == nullptr) {
    // Entries are sorted descending, so "score >= bound" is a prefix.
    auto it = std::partition_point(
        flat_.begin() + pos_, flat_.end(),
        [bound](const PostingEntry& e) { return e.score >= bound; });
    pos_ = static_cast<size_t>(it - flat_.begin());
    return;
  }
  while (!AtEnd()) {
    const size_t b = pos_ / kPostingBlockEntries;
    const size_t off = pos_ % kPostingBlockEntries;
    if (off == 0 && !(cur_block_ == b && cur_ != nullptr)) {
      if (source_->header(b).max_score < bound) return;  // already below
      // Discard block b undecoded iff the NEXT block's ceiling proves
      // every entry of b scores >= bound: scores never ascend, so b's
      // last entry >= header(b + 1).max_score.
      if (b + 1 < source_->num_blocks() &&
          source_->header(b + 1).max_score >= bound) {
        pos_ = (b + 1) * kPostingBlockEntries;
        continue;
      }
    }
    // The boundary sits inside this block (or we start mid-block): decode
    // and walk to it.
    Materialize(b);
    const size_t block_end = std::min(size_, (b + 1) * kPostingBlockEntries);
    while (pos_ < block_end &&
           cur_->entries[pos_ % kPostingBlockEntries].score >= bound) {
      ++pos_;
    }
    if (pos_ < block_end) return;
  }
}

bool BlockIterator::SkipToId(uint32_t target) {
  if (source_ == nullptr) {
    while (pos_ < size_ && flat_[pos_].triple_index != target) ++pos_;
    return pos_ < size_;
  }
  while (!AtEnd()) {
    const size_t b = pos_ / kPostingBlockEntries;
    const size_t off = pos_ % kPostingBlockEntries;
    if (off == 0 && !(cur_block_ == b && cur_ != nullptr)) {
      const PostingBlockHeader& h = source_->header(b);
      if (target < h.min_id || target > h.max_id) {
        pos_ = std::min(size_, (b + 1) * kPostingBlockEntries);
        continue;
      }
    }
    Materialize(b);
    const size_t block_end = std::min(size_, (b + 1) * kPostingBlockEntries);
    while (pos_ < block_end) {
      if (cur_->entries[pos_ % kPostingBlockEntries].triple_index == target) {
        return true;
      }
      ++pos_;
    }
  }
  return false;
}

void BlockIterator::SkipAll() {
  if (source_ != nullptr) {
    if (skipped_counter_ != nullptr) {
      *skipped_counter_ += source_->num_blocks() - accounted_until_;
    }
    accounted_until_ = source_->num_blocks();
  }
  pos_ = size_;
  cur_.reset();
}

PostingList BuildPostingList(const TripleStore& store, const PatternKey& key) {
  // Mapped-store fast path: pure predicate patterns come straight from the
  // file's posting directory, zero-copy and pre-sorted.
  if (const MappedPostingLists* mapped = store.mapped_postings();
      mapped != nullptr && !key.s_bound() && key.p_bound() && !key.o_bound()) {
    if (const v2::PostingDirEntry* dir = mapped->Find(key.p)) {
      return PostingList::View(
          mapped->entries.subspan(dir->entry_begin, dir->entry_count),
          dir->max_raw_score);
    }
  }
  // v3 fast path: same zero-copy idea, but the directory addresses block
  // headers — nothing is decoded until an iterator asks.
  if (const MappedBlockPostings* blocked = store.mapped_block_postings();
      blocked != nullptr && !key.s_bound() && key.p_bound() && !key.o_bound()) {
    if (const v3::BlockPostingDirEntry* dir = blocked->Find(key.p)) {
      return PostingList::BlockView(
          blocked->headers.subspan(dir->block_begin, dir->block_count),
          blocked->payload, dir->entry_count, dir->max_raw_score,
          static_cast<uint32_t>(store.size()));
    }
  }

  PostingList list;
  const auto indices = store.MatchIndices(key);
  list.owned.reserve(indices.size());
  double max_raw = 0.0;
  for (uint32_t idx : indices) {
    max_raw = std::max(max_raw, store.triple(idx).score);
  }
  list.max_raw_score = max_raw;
  for (uint32_t idx : indices) {
    const double raw = store.triple(idx).score;
    const double norm = max_raw > 0.0 ? raw / max_raw : 0.0;
    list.owned.push_back(PostingEntry{idx, norm});
  }
  std::sort(list.owned.begin(), list.owned.end(),
            [](const PostingEntry& a, const PostingEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.triple_index < b.triple_index;
            });
  // On a block-backed (v3) store, scan-built bound lists are re-encoded
  // into blocks as well: the cache then holds the compact payload and
  // decodes on demand, and header-guided skipping (plus the
  // blocks_decoded/blocks_skipped accounting) covers every list the store
  // serves, not just the pure-predicate directory views. The codec is
  // lossless, so iterators observe entries bit-identical to the flat
  // build. Sharded facades over v3 shards take the same branch — they
  // have no mapped directory of their own, but their lists should stay
  // block-shaped so skipping behaves identically across backends.
  if ((store.mapped_block_postings() != nullptr ||
       store.sharded_block_postings()) &&
      !list.owned.empty()) {
    EncodedPostingBlocks encoded =
        EncodePostingBlocks(list.owned.data(), list.owned.size());
    const size_t count = list.owned.size();
    return PostingList::FromBlocks(std::move(encoded.headers),
                                   std::move(encoded.payload), count, max_raw,
                                   static_cast<uint32_t>(store.size()));
  }
  list.Seal();
  return list;
}

size_t PostingListCache::ApproxBytes(const PostingList& list) {
  size_t bytes =
      sizeof(PostingList) + list.owned.capacity() * sizeof(PostingEntry);
  if (list.blocks != nullptr) {
    // A blocked list's footprint is dominated by whatever its iterators
    // have decoded so far (mapped headers/payload are not heap bytes);
    // owned_bytes covers the in-memory FromBlocks variant.
    bytes += sizeof(PostingBlockSource) + list.blocks->owned_bytes() +
             list.blocks->decoded_bytes();
  }
  return bytes;
}

double PostingListCache::RebuildCost(size_t num_entries) {
  if (num_entries == 0) return 1.0;
  const double n = static_cast<double>(num_entries);
  return n * (std::log2(n + 1.0) + 1.0);
}

PostingListCache::Shard& PostingListCache::ShardFor(const PatternKey& key) {
  return shards_[PatternKeyHash{}(key) % kNumShards];
}

void PostingListCache::SyncBlockBytes(Shard& shard) {
  for (auto& [key, entry] : shard.map) {
    if (!entry.list->blocked()) continue;
    const size_t now = ApproxBytes(*entry.list);
    if (now == entry.bytes) continue;
    shard.bytes += now;
    shard.bytes -= entry.bytes;
    entry.bytes = now;
  }
}

void PostingListCache::EvictIfOver(Shard& shard, const PatternKey& keep,
                                   const PartitionKey* keep_parts) {
  if (budget_bytes_ == 0) return;
  // Decoded-block memos grow outside the shard lock while operators
  // iterate, so the accounting is refreshed before any budget decision.
  SyncBlockBytes(shard);
  const size_t shard_budget = budget_bytes_ / kNumShards;

  // Block-granular pass first: releasing a decoded-block memo frees real
  // bytes without evicting the (cheap) header view, and is safe even for
  // pinned or just-requested lists — live iterators hold their current
  // block via shared_ptr, later touches simply decode again. LRU order so
  // hot lists keep their working set longest.
  if (shard.bytes > shard_budget) {
    std::vector<Entry*> blocked;
    for (auto& [key, entry] : shard.map) {
      if (entry.list->blocked() && entry.list->blocks->decoded_bytes() > 0) {
        blocked.push_back(&entry);
      }
    }
    std::sort(blocked.begin(), blocked.end(), [](const Entry* a,
                                                 const Entry* b) {
      return a->last_used < b->last_used;
    });
    for (Entry* entry : blocked) {
      if (shard.bytes <= shard_budget) break;
      const size_t released = entry->list->blocks->ReleaseDecodedBlocks();
      if (released == 0) continue;
      shard.bytes -= std::min(shard.bytes, released);
      entry->bytes -= std::min(entry->bytes, released);
      ++shard.evictions;
    }
  }
  // Victim ordering: cost-aware compares GreedyDual priorities (rebuild
  // cost on top of the shard's inflation floor), plain LRU compares last
  // use; ties break towards the older entry either way so eviction stays
  // deterministic.
  const auto before = [this](uint64_t last_a, double prio_a, uint64_t last_b,
                             double prio_b) {
    if (cost_aware_ && prio_a != prio_b) return prio_a < prio_b;
    return last_a < last_b;
  };
  while (shard.bytes > shard_budget) {
    // Scan evictable lists and partition-piece sets: never the
    // just-requested one, and never pinned entries (use_count > 1 means a
    // live operator tree still reads it; evicting would not free the
    // memory anyway).
    auto list_victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->first == keep) continue;
      if (it->second.list.use_count() > 1) continue;
      if (list_victim == shard.map.end() ||
          before(it->second.last_used, it->second.priority,
                 list_victim->second.last_used,
                 list_victim->second.priority)) {
        list_victim = it;
      }
    }
    auto parts_victim = shard.partitions.end();
    for (auto it = shard.partitions.begin(); it != shard.partitions.end();
         ++it) {
      if (keep_parts != nullptr && it->first == *keep_parts) continue;
      bool pinned = false;
      for (const auto& piece : it->second.pieces) {
        if (piece.use_count() > 1) {
          pinned = true;
          break;
        }
      }
      if (pinned) continue;
      if (parts_victim == shard.partitions.end() ||
          before(it->second.last_used, it->second.priority,
                 parts_victim->second.last_used,
                 parts_victim->second.priority)) {
        parts_victim = it;
      }
    }

    const bool have_list = list_victim != shard.map.end();
    const bool have_parts = parts_victim != shard.partitions.end();
    if (!have_list && !have_parts) return;  // everything pinned or kept
    // Prefer the list victim unless the partition victim strictly precedes
    // it (matching the old "<=" tie preference).
    if (have_list &&
        (!have_parts || !before(parts_victim->second.last_used,
                                parts_victim->second.priority,
                                list_victim->second.last_used,
                                list_victim->second.priority))) {
      if (cost_aware_) {
        shard.inflation = std::max(shard.inflation,
                                   list_victim->second.priority);
      }
      shard.bytes -= list_victim->second.bytes;
      shard.map.erase(list_victim);
    } else {
      if (cost_aware_) {
        shard.inflation = std::max(shard.inflation,
                                   parts_victim->second.priority);
      }
      shard.bytes -= parts_victim->second.bytes;
      shard.partitions.erase(parts_victim);
    }
    ++shard.evictions;
  }
}

std::shared_ptr<const PostingList> PostingListCache::GetLocked(
    Shard& shard, const PatternKey& key, bool count_stats) {
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (count_stats) ++shard.hits;
    it->second.last_used = ++shard.clock;
    if (cost_aware_) {
      it->second.priority =
          shard.inflation + RebuildCost(it->second.list->size());
    }
    return it->second.list;
  }
  if (count_stats) ++shard.misses;
  // Built under the shard lock: a concurrent request for the same key
  // waits and then hits; requests for other shards are unaffected.
  auto list = std::make_shared<const PostingList>(
      BuildPostingList(*store_, key));
  // Two reasons a freshly built list must NOT enter the cache:
  //  - the query driving this build was stopped (cancel / deadline /
  //    fault): a sharded Match returns early with a truncated index set,
  //    so the list may be incomplete — caching it would poison later
  //    queries long after the cancellation;
  //  - an injected "cache.alloc" fault simulates allocation pressure on
  //    the insert path (the list is still served to this caller).
  if (ScopedStopProbe::StopRequested() || FaultShouldFail("cache.alloc")) {
    return list;
  }
  Entry entry;
  entry.list = list;
  entry.bytes = ApproxBytes(*list);
  entry.last_used = ++shard.clock;
  if (cost_aware_) entry.priority = shard.inflation + RebuildCost(list->size());
  shard.bytes += entry.bytes;
  shard.map.emplace(key, std::move(entry));
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::Get(
    const PatternKey& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto list = GetLocked(shard, key, /*count_stats=*/true);
  EvictIfOver(shard, key);
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::GetUncounted(
    const PatternKey& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto list = GetLocked(shard, key, /*count_stats=*/false);
  EvictIfOver(shard, key);
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::Peek(
    const PatternKey& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second.list;
}

std::shared_ptr<const PostingList> PostingListCache::Put(
    const PatternKey& key, std::shared_ptr<const PostingList> list) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) return it->second.list;
  Entry entry;
  entry.list = list;
  entry.bytes = ApproxBytes(*list);
  entry.last_used = ++shard.clock;
  if (cost_aware_) entry.priority = shard.inflation + RebuildCost(list->size());
  shard.bytes += entry.bytes;
  shard.map.emplace(key, std::move(entry));
  EvictIfOver(shard, key);
  return list;
}

std::vector<std::shared_ptr<const PostingList>>
PostingListCache::GetPartitions(const PatternKey& key, int slot,
                                uint32_t num_partitions) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const PartitionKey part_key{key.s, key.p, key.o, slot, num_partitions};
  auto it = shard.partitions.find(part_key);
  if (it != shard.partitions.end()) {
    ++shard.hits;
    it->second.last_used = ++shard.clock;
    if (cost_aware_) {
      size_t total_entries = 0;
      for (const auto& piece : it->second.pieces) {
        total_entries += piece->size();
      }
      it->second.priority = shard.inflation + RebuildCost(total_entries);
    }
    return it->second.pieces;
  }
  ++shard.misses;
  auto base = GetLocked(shard, key, /*count_stats=*/false);
  PartitionEntry entry;
  entry.pieces = PartitionPostingList(*store_, *base, slot, num_partitions);
  size_t total_entries = 0;
  for (const auto& piece : entry.pieces) {
    entry.bytes += ApproxBytes(*piece);
    total_entries += piece->size();
  }
  entry.last_used = ++shard.clock;
  if (cost_aware_) {
    entry.priority = shard.inflation + RebuildCost(total_entries);
  }
  shard.bytes += entry.bytes;
  auto pieces = entry.pieces;
  shard.partitions.emplace(part_key, std::move(entry));
  EvictIfOver(shard, key, &part_key);
  return pieces;
}

void PostingListCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.map.clear();
    shard.partitions.clear();
    shard.bytes = 0;
    shard.clock = 0;
    shard.inflation = 0.0;
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

uint64_t PostingListCache::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

uint64_t PostingListCache::misses() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

uint64_t PostingListCache::evictions() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.evictions;
  }
  return total;
}

size_t PostingListCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

size_t PostingListCache::bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace specqp
