#include "rdf/posting_list.h"

#include <algorithm>
#include <cmath>

#include "rdf/posting_partition.h"
#include "rdf/store_format.h"

namespace specqp {

const v2::PostingDirEntry* MappedPostingLists::Find(TermId predicate) const {
  auto it = std::lower_bound(
      directory.begin(), directory.end(), predicate,
      [](const v2::PostingDirEntry& e, TermId p) { return e.predicate < p; });
  if (it == directory.end() || it->predicate != predicate) return nullptr;
  return &*it;
}

PostingList PostingList::View(std::span<const PostingEntry> mapped,
                              double max_raw_score) {
  PostingList list;
  list.entries = mapped;
  list.max_raw_score = max_raw_score;
  return list;
}

PostingList BuildPostingList(const TripleStore& store, const PatternKey& key) {
  // Mapped-store fast path: pure predicate patterns come straight from the
  // file's posting directory, zero-copy and pre-sorted.
  if (const MappedPostingLists* mapped = store.mapped_postings();
      mapped != nullptr && !key.s_bound() && key.p_bound() && !key.o_bound()) {
    if (const v2::PostingDirEntry* dir = mapped->Find(key.p)) {
      return PostingList::View(
          mapped->entries.subspan(dir->entry_begin, dir->entry_count),
          dir->max_raw_score);
    }
  }

  PostingList list;
  const auto indices = store.MatchIndices(key);
  list.owned.reserve(indices.size());
  double max_raw = 0.0;
  for (uint32_t idx : indices) {
    max_raw = std::max(max_raw, store.triple(idx).score);
  }
  list.max_raw_score = max_raw;
  for (uint32_t idx : indices) {
    const double raw = store.triple(idx).score;
    const double norm = max_raw > 0.0 ? raw / max_raw : 0.0;
    list.owned.push_back(PostingEntry{idx, norm});
  }
  std::sort(list.owned.begin(), list.owned.end(),
            [](const PostingEntry& a, const PostingEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.triple_index < b.triple_index;
            });
  list.Seal();
  return list;
}

size_t PostingListCache::ApproxBytes(const PostingList& list) {
  return sizeof(PostingList) + list.owned.capacity() * sizeof(PostingEntry);
}

double PostingListCache::RebuildCost(size_t num_entries) {
  if (num_entries == 0) return 1.0;
  const double n = static_cast<double>(num_entries);
  return n * (std::log2(n + 1.0) + 1.0);
}

PostingListCache::Shard& PostingListCache::ShardFor(const PatternKey& key) {
  return shards_[PatternKeyHash{}(key) % kNumShards];
}

void PostingListCache::EvictIfOver(Shard& shard, const PatternKey& keep,
                                   const PartitionKey* keep_parts) {
  if (budget_bytes_ == 0) return;
  const size_t shard_budget = budget_bytes_ / kNumShards;
  // Victim ordering: cost-aware compares GreedyDual priorities (rebuild
  // cost on top of the shard's inflation floor), plain LRU compares last
  // use; ties break towards the older entry either way so eviction stays
  // deterministic.
  const auto before = [this](uint64_t last_a, double prio_a, uint64_t last_b,
                             double prio_b) {
    if (cost_aware_ && prio_a != prio_b) return prio_a < prio_b;
    return last_a < last_b;
  };
  while (shard.bytes > shard_budget) {
    // Scan evictable lists and partition-piece sets: never the
    // just-requested one, and never pinned entries (use_count > 1 means a
    // live operator tree still reads it; evicting would not free the
    // memory anyway).
    auto list_victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->first == keep) continue;
      if (it->second.list.use_count() > 1) continue;
      if (list_victim == shard.map.end() ||
          before(it->second.last_used, it->second.priority,
                 list_victim->second.last_used,
                 list_victim->second.priority)) {
        list_victim = it;
      }
    }
    auto parts_victim = shard.partitions.end();
    for (auto it = shard.partitions.begin(); it != shard.partitions.end();
         ++it) {
      if (keep_parts != nullptr && it->first == *keep_parts) continue;
      bool pinned = false;
      for (const auto& piece : it->second.pieces) {
        if (piece.use_count() > 1) {
          pinned = true;
          break;
        }
      }
      if (pinned) continue;
      if (parts_victim == shard.partitions.end() ||
          before(it->second.last_used, it->second.priority,
                 parts_victim->second.last_used,
                 parts_victim->second.priority)) {
        parts_victim = it;
      }
    }

    const bool have_list = list_victim != shard.map.end();
    const bool have_parts = parts_victim != shard.partitions.end();
    if (!have_list && !have_parts) return;  // everything pinned or kept
    // Prefer the list victim unless the partition victim strictly precedes
    // it (matching the old "<=" tie preference).
    if (have_list &&
        (!have_parts || !before(parts_victim->second.last_used,
                                parts_victim->second.priority,
                                list_victim->second.last_used,
                                list_victim->second.priority))) {
      if (cost_aware_) {
        shard.inflation = std::max(shard.inflation,
                                   list_victim->second.priority);
      }
      shard.bytes -= list_victim->second.bytes;
      shard.map.erase(list_victim);
    } else {
      if (cost_aware_) {
        shard.inflation = std::max(shard.inflation,
                                   parts_victim->second.priority);
      }
      shard.bytes -= parts_victim->second.bytes;
      shard.partitions.erase(parts_victim);
    }
    ++shard.evictions;
  }
}

std::shared_ptr<const PostingList> PostingListCache::GetLocked(
    Shard& shard, const PatternKey& key, bool count_stats) {
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (count_stats) ++shard.hits;
    it->second.last_used = ++shard.clock;
    if (cost_aware_) {
      it->second.priority =
          shard.inflation + RebuildCost(it->second.list->size());
    }
    return it->second.list;
  }
  if (count_stats) ++shard.misses;
  // Built under the shard lock: a concurrent request for the same key
  // waits and then hits; requests for other shards are unaffected.
  auto list = std::make_shared<const PostingList>(
      BuildPostingList(*store_, key));
  Entry entry;
  entry.list = list;
  entry.bytes = ApproxBytes(*list);
  entry.last_used = ++shard.clock;
  if (cost_aware_) entry.priority = shard.inflation + RebuildCost(list->size());
  shard.bytes += entry.bytes;
  shard.map.emplace(key, std::move(entry));
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::Get(
    const PatternKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto list = GetLocked(shard, key, /*count_stats=*/true);
  EvictIfOver(shard, key);
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::GetUncounted(
    const PatternKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto list = GetLocked(shard, key, /*count_stats=*/false);
  EvictIfOver(shard, key);
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::Peek(
    const PatternKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second.list;
}

std::shared_ptr<const PostingList> PostingListCache::Put(
    const PatternKey& key, std::shared_ptr<const PostingList> list) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) return it->second.list;
  Entry entry;
  entry.list = list;
  entry.bytes = ApproxBytes(*list);
  entry.last_used = ++shard.clock;
  if (cost_aware_) entry.priority = shard.inflation + RebuildCost(list->size());
  shard.bytes += entry.bytes;
  shard.map.emplace(key, std::move(entry));
  EvictIfOver(shard, key);
  return list;
}

std::vector<std::shared_ptr<const PostingList>>
PostingListCache::GetPartitions(const PatternKey& key, int slot,
                                uint32_t num_partitions) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const PartitionKey part_key{key.s, key.p, key.o, slot, num_partitions};
  auto it = shard.partitions.find(part_key);
  if (it != shard.partitions.end()) {
    ++shard.hits;
    it->second.last_used = ++shard.clock;
    if (cost_aware_) {
      size_t total_entries = 0;
      for (const auto& piece : it->second.pieces) {
        total_entries += piece->size();
      }
      it->second.priority = shard.inflation + RebuildCost(total_entries);
    }
    return it->second.pieces;
  }
  ++shard.misses;
  auto base = GetLocked(shard, key, /*count_stats=*/false);
  PartitionEntry entry;
  entry.pieces = PartitionPostingList(*store_, *base, slot, num_partitions);
  size_t total_entries = 0;
  for (const auto& piece : entry.pieces) {
    entry.bytes += ApproxBytes(*piece);
    total_entries += piece->size();
  }
  entry.last_used = ++shard.clock;
  if (cost_aware_) {
    entry.priority = shard.inflation + RebuildCost(total_entries);
  }
  shard.bytes += entry.bytes;
  auto pieces = entry.pieces;
  shard.partitions.emplace(part_key, std::move(entry));
  EvictIfOver(shard, key, &part_key);
  return pieces;
}

void PostingListCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.partitions.clear();
    shard.bytes = 0;
    shard.clock = 0;
    shard.inflation = 0.0;
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

uint64_t PostingListCache::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

uint64_t PostingListCache::misses() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

uint64_t PostingListCache::evictions() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.evictions;
  }
  return total;
}

size_t PostingListCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

size_t PostingListCache::bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace specqp
