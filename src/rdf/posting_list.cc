#include "rdf/posting_list.h"

#include <algorithm>

namespace specqp {

PostingList BuildPostingList(const TripleStore& store, const PatternKey& key) {
  PostingList list;
  const auto indices = store.MatchIndices(key);
  list.entries.reserve(indices.size());
  double max_raw = 0.0;
  for (uint32_t idx : indices) {
    max_raw = std::max(max_raw, store.triple(idx).score);
  }
  list.max_raw_score = max_raw;
  for (uint32_t idx : indices) {
    const double raw = store.triple(idx).score;
    const double norm = max_raw > 0.0 ? raw / max_raw : 0.0;
    list.entries.push_back(PostingEntry{idx, norm});
  }
  std::sort(list.entries.begin(), list.entries.end(),
            [](const PostingEntry& a, const PostingEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.triple_index < b.triple_index;
            });
  return list;
}

std::shared_ptr<const PostingList> PostingListCache::Get(
    const PatternKey& key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto list = std::make_shared<const PostingList>(
      BuildPostingList(*store_, key));
  cache_.emplace(key, list);
  return list;
}

}  // namespace specqp
