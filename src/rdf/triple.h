#ifndef SPECQP_RDF_TRIPLE_H_
#define SPECQP_RDF_TRIPLE_H_

#include <tuple>

#include "rdf/term.h"

namespace specqp {

// One scored RDF statement <s p o>. The score is the raw, KG-level score
// (confidence / popularity, Definition 1); per-pattern normalisation
// (Definition 5) happens when posting lists are materialised.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;
  double score = 0.0;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o && a.score == b.score;
  }
};

// Term value of triple `t` at slot 0 (s), 1 (p), 2 (o).
inline TermId SlotValue(const Triple& t, int slot) {
  switch (slot) {
    case 0:
      return t.s;
    case 1:
      return t.p;
    default:
      return t.o;
  }
}

// Positional comparators for the three permutation indexes.
struct OrderSpo {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};
struct OrderPos {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};
struct OrderOsp {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
  }
};

}  // namespace specqp

#endif  // SPECQP_RDF_TRIPLE_H_
