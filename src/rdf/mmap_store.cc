#include "rdf/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>

#include "rdf/mapped_fault.h"
#include "rdf/posting_list.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace specqp {

namespace {

// Typed view of `count` records of T starting `byte_offset` into a mapped
// section. Alignment holds by construction: the mapping is page-aligned,
// section offsets are 8-byte aligned and gapless, and every record type
// has alignof <= 8.
template <typename T>
std::span<const T> RecordSpan(const char* data, uint64_t byte_offset,
                              uint64_t count) {
  return std::span<const T>(reinterpret_cast<const T*>(data + byte_offset),
                            static_cast<size_t>(count));
}

Status Corrupt(const char* what) { return Status::Corruption(what); }

}  // namespace

MmapStore::~MmapStore() {
  if (map_ != nullptr) {
    UnregisterMappedRegion(fault_token_);
    ::munmap(map_, map_size_);
  }
}

const MmapStore::Section* MmapStore::FindSection(v2::SectionId id) const {
  for (size_t i = 0; i < section_count_; ++i) {
    if (sections_[i].id == id) return &sections_[i];
  }
  return nullptr;
}

Result<std::unique_ptr<MmapStore>> MmapStore::Open(const std::string& path,
                                                   const Options& options) {
  if (FaultShouldFail("store.open")) {
    return Status::IoError(
        StrFormat("injected fault: store.open for '%s'", path.c_str()));
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot open '%s': %s", path.c_str(),
                                     std::strerror(errno)));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError(
        StrFormat("cannot stat '%s': %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < sizeof(v2::FileHeader)) {
    ::close(fd);
    return Corrupt("truncated header");
  }

  std::unique_ptr<MmapStore> store(new MmapStore());
  // Read-only MAP_SHARED: the store is never written through the mapping
  // (PROT_READ), and sharing the pages means N processes serving the same
  // file — the sharded-bundle deployment shape — keep ONE copy of each
  // resident page in the page cache instead of N CoW-tracked private
  // copies (verified by the PSS accounting in core_shared_mapping_test).
  void* base =
      ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, /*offset=*/0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IoError(StrFormat("mmap of '%s' failed: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  store->map_ = base;
  store->map_size_ = static_cast<size_t>(file_size);
  // Contain SIGBUS for the whole lifetime of the mapping: a page lost to
  // truncate-while-mapped reads back as zeros and latches mapping_faults()
  // instead of killing the process (rdf/mapped_fault.h).
  store->fault_token_ = RegisterMappedRegion(base, store->map_size_);
  const char* bytes = static_cast<const char*>(base);

  // --- header + section table (structural validation) ----------------------

  v2::FileHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  const bool v2_magic =
      std::memcmp(header.magic, v2::kMagic, sizeof(v2::kMagic)) == 0;
  const bool v3_magic =
      std::memcmp(header.magic, v3::kMagic, sizeof(v3::kMagic)) == 0;
  if (!v2_magic && !v3_magic) {
    return Corrupt("bad magic; not a SQPSTOR2/SQPSTOR3 store file");
  }
  if ((v2_magic && header.version != v2::kFormatVersion) ||
      (v3_magic && header.version != v3::kFormatVersion)) {
    return Status::Corruption(
        StrFormat("unsupported version %u", header.version));
  }
  store->version_ = header.version;
  if (header.file_size != file_size) {
    return Corrupt("header file size does not match the actual file");
  }
  if (header.section_count == 0 || header.section_count > v2::kMaxSections) {
    return Corrupt("implausible section count");
  }
  const uint64_t table_end = sizeof(v2::FileHeader) +
                             uint64_t{header.section_count} *
                                 sizeof(v2::SectionEntry);
  if (table_end > file_size) {
    return Corrupt("truncated section table");
  }

  const auto table = RecordSpan<v2::SectionEntry>(
      bytes, sizeof(v2::FileHeader), header.section_count);
  std::set<uint32_t> seen_ids;
  uint64_t cursor = table_end;  // sections are laid out back to back
  for (size_t i = 0; i < table.size(); ++i) {
    const v2::SectionEntry& entry = table[i];
    if (entry.flags != 0 || entry.reserved != 0) {
      return Corrupt("nonzero reserved bits in section table");
    }
    // Sections 11/12 exist only in v3, and v3 retired the flat
    // kPostingEntries section — mixing generations is a sign of a
    // stitched-together file.
    const uint32_t max_id = static_cast<uint32_t>(
        header.version == v3::kFormatVersion ? v2::SectionId::kPostingBlocks
                                             : v2::SectionId::kStats);
    if (entry.id < static_cast<uint32_t>(v2::SectionId::kDictOffsets) ||
        entry.id > max_id) {
      return Corrupt("unknown section id");
    }
    if (header.version == v3::kFormatVersion &&
        entry.id == static_cast<uint32_t>(v2::SectionId::kPostingEntries)) {
      return Corrupt("flat posting entries section in a v3 file");
    }
    if (!seen_ids.insert(entry.id).second) {
      return Corrupt("duplicate section id");
    }
    if (entry.offset % v2::kSectionAlignment != 0 ||
        entry.length % v2::kSectionAlignment != 0) {
      return Corrupt("misaligned section offset or length");
    }
    if (entry.offset != cursor || entry.length > file_size - entry.offset) {
      return Corrupt("section offsets are not gapless ascending");
    }
    cursor = entry.offset + entry.length;
    store->sections_[i] = Section{static_cast<v2::SectionId>(entry.id),
                                  bytes + entry.offset, entry.length,
                                  entry.crc32c};
  }
  if (cursor != file_size) {
    return Corrupt("trailing bytes after the last section");
  }
  store->section_count_ = table.size();
  store->triple_count_ = header.triple_count;
  store->term_count_ = header.term_count;

  // --- cross-section length consistency -------------------------------------

  const uint64_t terms = header.term_count;
  const uint64_t triples = header.triple_count;
  const Section* dict_offsets = store->FindSection(v2::SectionId::kDictOffsets);
  const Section* dict_blob = store->FindSection(v2::SectionId::kDictBlob);
  const Section* dict_sorted = store->FindSection(v2::SectionId::kDictSorted);
  const Section* triple_sec = store->FindSection(v2::SectionId::kTriples);
  const Section* spo = store->FindSection(v2::SectionId::kSpoIndex);
  const Section* pos = store->FindSection(v2::SectionId::kPosIndex);
  const Section* osp = store->FindSection(v2::SectionId::kOspIndex);
  if (dict_offsets == nullptr || dict_blob == nullptr ||
      dict_sorted == nullptr || triple_sec == nullptr || pos == nullptr ||
      osp == nullptr) {
    return Corrupt("missing required section");
  }
  // v2 maps its SPO permutation; v3 omits the section entirely (the SPO
  // order of an SPO-sorted triple array is the identity, synthesised
  // below) and a v3 file carrying one is malformed.
  if (header.version == v2::kFormatVersion && spo == nullptr) {
    return Corrupt("missing required section");
  }
  if (header.version == v3::kFormatVersion && spo != nullptr) {
    return Corrupt("v3 file carries a redundant SPO index section");
  }
  if (terms >= kInvalidTermId) return Corrupt("implausible term count");
  if (triples > UINT32_MAX) return Corrupt("implausible triple count");
  if (dict_offsets->length != v2::AlignUp((terms + 1) * 8)) {
    return Corrupt("dictionary offset table length mismatch");
  }
  const auto offsets = RecordSpan<uint64_t>(dict_offsets->data, 0, terms + 1);
  if (offsets[0] != 0 || offsets[terms] > dict_blob->length ||
      v2::AlignUp(offsets[terms]) != dict_blob->length) {
    return Corrupt("dictionary blob length mismatch");
  }
  if (dict_sorted->length != v2::AlignUp(terms * 4)) {
    return Corrupt("dictionary sorted-permutation length mismatch");
  }
  if (triple_sec->length != triples * sizeof(Triple)) {
    return Corrupt("triple section length mismatch");
  }
  for (const Section* index : {spo, pos, osp}) {
    if (index != nullptr && index->length != v2::AlignUp(triples * 4)) {
      return Corrupt("permutation index length mismatch");
    }
  }

  if (header.version == v2::kFormatVersion) {
    const Section* dir = store->FindSection(v2::SectionId::kPostingDir);
    const Section* dir_entries =
        store->FindSection(v2::SectionId::kPostingEntries);
    if ((dir == nullptr) != (dir_entries == nullptr)) {
      return Corrupt("posting directory sections must come in pairs");
    }
    if (dir != nullptr) {
      if (dir->length < 8) return Corrupt("truncated posting directory");
      uint64_t count = 0;
      std::memcpy(&count, dir->data, 8);
      // Bound the count before the multiply below can wrap.
      if (count > (dir->length - 8) / sizeof(v2::PostingDirEntry) ||
          dir->length !=
              v2::AlignUp(8 + count * sizeof(v2::PostingDirEntry))) {
        return Corrupt("posting directory length mismatch");
      }
      if (dir_entries->length % sizeof(PostingEntry) != 0) {
        return Corrupt("posting entries length mismatch");
      }
      const uint64_t total_entries =
          dir_entries->length / sizeof(PostingEntry);
      const auto rows =
          RecordSpan<v2::PostingDirEntry>(dir->data, /*byte_offset=*/8, count);
      TermId prev = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        const v2::PostingDirEntry& row = rows[i];
        if (row.reserved != 0) {
          return Corrupt("nonzero reserved bits in posting directory");
        }
        if (row.predicate >= terms ||
            (i > 0 && row.predicate <= prev)) {
          return Corrupt("posting directory predicates not ascending");
        }
        prev = row.predicate;
        if (row.entry_count > total_entries ||
            row.entry_begin > total_entries - row.entry_count) {
          return Corrupt("posting directory entry range out of bounds");
        }
      }
      store->postings_.directory = rows;
      store->postings_.entries =
          RecordSpan<PostingEntry>(dir_entries->data, 0, total_entries);
      store->has_posting_directory_ = true;
    }
  } else {
    // v3: the posting directory addresses block headers which address
    // byte ranges of the payload section. The O(blocks) geometry is
    // pinned here — gapless ascending byte ranges, full non-terminal
    // blocks, ceilings in range and non-increasing per list — so every
    // later header-guided skip is memory-safe; the O(entries) decode
    // validation lives under the lazily verified kPostingBlocks section.
    const Section* dir = store->FindSection(v2::SectionId::kPostingDir);
    const Section* index = store->FindSection(v2::SectionId::kPostingBlockIndex);
    const Section* blocks = store->FindSection(v2::SectionId::kPostingBlocks);
    const int present = (dir != nullptr) + (index != nullptr) +
                        (blocks != nullptr);
    if (present != 0 && present != 3) {
      return Corrupt("block posting sections must come as a trio");
    }
    if (dir != nullptr) {
      if (dir->length < 8) return Corrupt("truncated posting directory");
      uint64_t count = 0;
      std::memcpy(&count, dir->data, 8);
      if (count > (dir->length - 8) / sizeof(v3::BlockPostingDirEntry) ||
          dir->length !=
              v2::AlignUp(8 + count * sizeof(v3::BlockPostingDirEntry))) {
        return Corrupt("posting directory length mismatch");
      }
      if (index->length % sizeof(PostingBlockHeader) != 0) {
        return Corrupt("posting block index length mismatch");
      }
      const uint64_t total_blocks =
          index->length / sizeof(PostingBlockHeader);
      const auto rows = RecordSpan<v3::BlockPostingDirEntry>(
          dir->data, /*byte_offset=*/8, count);
      const auto headers =
          RecordSpan<PostingBlockHeader>(index->data, 0, total_blocks);

      TermId prev = 0;
      uint64_t block_cursor = 0;
      uint64_t byte_cursor = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        const v3::BlockPostingDirEntry& row = rows[i];
        if (row.reserved != 0) {
          return Corrupt("nonzero reserved bits in posting directory");
        }
        if (row.predicate >= terms || (i > 0 && row.predicate <= prev)) {
          return Corrupt("posting directory predicates not ascending");
        }
        prev = row.predicate;
        if (row.block_begin != block_cursor ||
            row.block_count > total_blocks - block_cursor) {
          return Corrupt("posting directory block ranges not gapless");
        }
        block_cursor += row.block_count;
        if ((row.entry_count == 0) != (row.block_count == 0)) {
          return Corrupt("posting directory entry/block count mismatch");
        }
        uint64_t entries_in_row = 0;
        for (uint64_t b = 0; b < row.block_count; ++b) {
          const PostingBlockHeader& h = headers[row.block_begin + b];
          if (h.reserved != 0) {
            return Corrupt("nonzero reserved bits in posting block header");
          }
          if (h.entry_count == 0 || h.entry_count > kPostingBlockEntries) {
            return Corrupt("posting block entry count out of range");
          }
          if (b + 1 < row.block_count &&
              h.entry_count != kPostingBlockEntries) {
            return Corrupt("non-terminal posting block not full");
          }
          if (h.byte_offset != byte_cursor ||
              h.byte_length > blocks->length - byte_cursor) {
            return Corrupt("posting block byte ranges not gapless");
          }
          byte_cursor += h.byte_length;
          if (!(h.max_score >= 0.0 && h.max_score <= 1.0)) {
            return Corrupt("posting block ceiling not normalised");
          }
          if (b > 0 &&
              headers[row.block_begin + b - 1].max_score < h.max_score) {
            return Corrupt("posting block ceilings not non-increasing");
          }
          if (h.min_id > h.max_id || h.max_id >= triples) {
            return Corrupt("posting block id range out of bounds");
          }
          entries_in_row += h.entry_count;
        }
        if (entries_in_row != row.entry_count) {
          return Corrupt("posting directory entry count mismatch");
        }
      }
      if (block_cursor != total_blocks) {
        return Corrupt("unreferenced posting blocks");
      }
      if (v2::AlignUp(byte_cursor) != blocks->length) {
        return Corrupt("posting block payload length mismatch");
      }
      store->block_postings_.directory = rows;
      store->block_postings_.headers = headers;
      store->block_postings_.payload = RecordSpan<uint8_t>(
          blocks->data, 0, byte_cursor);
      store->has_block_directory_ = true;
    }
  }

  const Section* stats = store->FindSection(v2::SectionId::kStats);
  if (stats != nullptr) {
    if (stats->length < 16) return Corrupt("truncated statistics snapshot");
    double head_fraction = 0.0;
    uint64_t count = 0;
    std::memcpy(&head_fraction, stats->data, 8);
    std::memcpy(&count, stats->data + 8, 8);
    // Bound the count before the multiply below can wrap.
    if (count > (stats->length - 16) / sizeof(v2::StatsEntry) ||
        stats->length != v2::AlignUp(16 + count * sizeof(v2::StatsEntry))) {
      return Corrupt("statistics snapshot length mismatch");
    }
    store->stats_head_fraction_ = head_fraction;
    store->stats_entries_ =
        RecordSpan<v2::StatsEntry>(stats->data, /*byte_offset=*/16, count);
  }

  // --- assemble the zero-copy views -----------------------------------------

  Dictionary dict = Dictionary::FromView(
      offsets, dict_blob->data, offsets[terms],
      RecordSpan<uint32_t>(dict_sorted->data, 0, terms));
  std::span<const uint32_t> spo_span;
  if (spo != nullptr) {
    spo_span = RecordSpan<uint32_t>(spo->data, 0, triples);
  } else {
    store->synthesised_spo_.resize(triples);
    for (uint64_t i = 0; i < triples; ++i) {
      store->synthesised_spo_[i] = static_cast<uint32_t>(i);
    }
    spo_span = store->synthesised_spo_;
  }
  store->store_ = TripleStore::FromView(
      std::move(dict), RecordSpan<Triple>(triple_sec->data, 0, triples),
      spo_span,
      RecordSpan<uint32_t>(pos->data, 0, triples),
      RecordSpan<uint32_t>(osp->data, 0, triples),
      store->has_posting_directory_ ? &store->postings_ : nullptr,
      store->has_block_directory_ ? &store->block_postings_ : nullptr);

  if (options.verify == Verify::kEager) {
    const Status verified = store->VerifyAllSections();
    if (!verified.ok()) return verified;
  }
  return store;
}

Dictionary MmapStore::NewDictionaryView() const {
  const Section* offsets = FindSection(v2::SectionId::kDictOffsets);
  const Section* blob = FindSection(v2::SectionId::kDictBlob);
  const Section* sorted = FindSection(v2::SectionId::kDictSorted);
  SPECQP_CHECK(offsets != nullptr && blob != nullptr && sorted != nullptr);
  const auto offset_span =
      RecordSpan<uint64_t>(offsets->data, 0, term_count_ + 1);
  return Dictionary::FromView(
      offset_span, blob->data, offset_span[term_count_],
      RecordSpan<uint32_t>(sorted->data, 0, term_count_));
}

Status MmapStore::ValidateSectionValues(const Section& section) const {
  // Besides range checks, this enforces the ORDERING invariants binary
  // search and the rank-join bound logic rely on — a crafted file with
  // self-consistent CRCs but an unsorted permutation would otherwise
  // produce silently wrong answers while every Status stays Ok.
  switch (section.id) {
    case v2::SectionId::kDictOffsets: {
      // Monotonicity makes every Name(id) slice well-formed; the first
      // and last entries were already pinned structurally at Open.
      const auto offsets = RecordSpan<uint64_t>(section.data, 0,
                                                term_count_ + 1);
      for (size_t i = 1; i < offsets.size(); ++i) {
        if (offsets[i - 1] > offsets[i]) {
          return Corrupt("dictionary offsets not monotonic");
        }
      }
      return Status::Ok();
    }
    case v2::SectionId::kDictSorted: {
      // Strictly ascending by term bytes: implies unique terms and a
      // well-formed binary-search order. Uses the mapped dictionary
      // view, whose offsets section is validated before this one on the
      // eager/metadata paths (Name stays memory-safe regardless).
      const auto ids = RecordSpan<uint32_t>(section.data, 0, term_count_);
      for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] >= term_count_) {
          return Corrupt("sorted term id out of range");
        }
        if (i > 0 && store_.dict().Name(ids[i - 1]) >=
                         store_.dict().Name(ids[i])) {
          return Corrupt("dictionary permutation not sorted/unique");
        }
      }
      return Status::Ok();
    }
    case v2::SectionId::kTriples: {
      const auto triples = RecordSpan<Triple>(section.data, 0, triple_count_);
      for (size_t i = 0; i < triples.size(); ++i) {
        const Triple& t = triples[i];
        if (t.s >= term_count_ || t.p >= term_count_ || t.o >= term_count_) {
          return Corrupt("triple references unknown term id");
        }
        if (!(t.score >= 0.0)) return Corrupt("triple has invalid score");
        if (i > 0 && !OrderSpo()(triples[i - 1], t)) {
          return Corrupt("triples not in strict SPO order");
        }
      }
      return Status::Ok();
    }
    case v2::SectionId::kSpoIndex:
    case v2::SectionId::kPosIndex:
    case v2::SectionId::kOspIndex: {
      // Range plus strict ordering under the section's comparator. Over
      // unique triples, strict order also implies the indexes are
      // distinct, i.e. a true permutation.
      const auto perm = RecordSpan<uint32_t>(section.data, 0, triple_count_);
      const auto triples = store_.triples();
      auto in_order = [&](uint32_t a, uint32_t b) {
        switch (section.id) {
          case v2::SectionId::kPosIndex:
            return OrderPos()(triples[a], triples[b]);
          case v2::SectionId::kOspIndex:
            return OrderOsp()(triples[a], triples[b]);
          default:
            return OrderSpo()(triples[a], triples[b]);
        }
      };
      for (size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] >= triple_count_) {
          return Corrupt("permutation index out of range");
        }
        if (i > 0 && !in_order(perm[i - 1], perm[i])) {
          return Corrupt("permutation index not in index order");
        }
      }
      return Status::Ok();
    }
    case v2::SectionId::kPostingEntries: {
      // Per-directory-slice invariants: scores normalised into [0, 1],
      // descending with ties broken by ascending triple index, triple
      // indexes in range. Lives under the (bulk, lazily verified)
      // entries section so the metadata pass stays O(terms), not
      // O(triples). The directory rows themselves — ascending
      // predicates, slice bounds — were validated structurally at Open.
      for (const v2::PostingDirEntry& row : postings_.directory) {
        const auto slice =
            postings_.entries.subspan(row.entry_begin, row.entry_count);
        for (size_t i = 0; i < slice.size(); ++i) {
          const PostingEntry& e = slice[i];
          if (e.triple_index >= triple_count_) {
            return Corrupt("posting entry triple index out of range");
          }
          if (!(e.score >= 0.0 && e.score <= 1.0)) {
            return Corrupt("posting entry score not normalised");
          }
          if (i > 0) {
            const PostingEntry& prev = slice[i - 1];
            if (prev.score < e.score ||
                (prev.score == e.score &&
                 prev.triple_index >= e.triple_index)) {
              return Corrupt("posting entries not in sorted order");
            }
          }
        }
      }
      return Status::Ok();
    }
    case v2::SectionId::kPostingBlocks: {
      // Full decode of every block: exact varint byte consumption, ids in
      // range, scores normalised and non-increasing, header agreement
      // (first score bit-equal to max_score, exact min/max id range) —
      // see DecodePostingBlock. Plus continuity ACROSS block boundaries,
      // which single-block decoding cannot see: each list must descend by
      // (score, -triple_index) from the last entry of one block to the
      // first of the next. This is the check that rejects a file whose
      // ceilings are self-consistent but whose contents disagree — the
      // skip logic would otherwise silently drop live entries.
      DecodedPostingBlock decoded;
      for (const v3::BlockPostingDirEntry& row : block_postings_.directory) {
        PostingEntry prev_last{};
        for (uint64_t b = 0; b < row.block_count; ++b) {
          const PostingBlockHeader& h =
              block_postings_.headers[row.block_begin + b];
          const Status status = DecodePostingBlock(
              h, block_postings_.payload,
              static_cast<uint32_t>(triple_count_), &decoded);
          if (!status.ok()) return status;
          const PostingEntry& first = decoded.entries.front();
          if (b > 0 && (prev_last.score < first.score ||
                        (prev_last.score == first.score &&
                         prev_last.triple_index >= first.triple_index))) {
            return Corrupt("posting blocks not sorted across boundaries");
          }
          prev_last = decoded.entries.back();
        }
      }
      return Status::Ok();
    }
    default:
      // kDictBlob is free-form bytes; kPostingDir rows were validated
      // structurally at Open (their entry/block slices are covered under
      // kPostingEntries / kPostingBlocks); kPostingBlockIndex geometry
      // was pinned at Open and its content agreement is covered by the
      // kPostingBlocks decode pass; kStats values are advisory planner
      // inputs validated for shape at Open.
      return Status::Ok();
  }
}

Status MmapStore::VerifySectionIndex(size_t index) {
  const Section& section = sections_[index];
  uint8_t state = verified_[index].load(std::memory_order_acquire);
  if (state == 0) {
    // kDictSorted's value check compares term names, which dereference
    // the offset table — make sure that table is sound first (memoised,
    // O(terms); keeps Name() from CHECK-failing on a crafted file even
    // when sections are verified out of file order).
    if (section.id == v2::SectionId::kDictSorted) {
      const Status offsets = VerifySection(v2::SectionId::kDictOffsets);
      if (!offsets.ok()) {
        verified_[index].store(2, std::memory_order_release);
        return Status::Corruption(
            StrFormat("section %u failed checksum or value validation",
                      static_cast<uint32_t>(section.id)));
      }
    }
    const bool ok = Crc32c(section.data, section.length) == section.crc32c &&
                    ValidateSectionValues(section).ok();
    state = ok ? 1 : 2;
    // Concurrent verifiers compute the same verdict; last store wins.
    verified_[index].store(state, std::memory_order_release);
  }
  if (state != 1) {
    return Status::Corruption(
        StrFormat("section %u failed checksum or value validation",
                  static_cast<uint32_t>(section.id)));
  }
  return Status::Ok();
}

Status MmapStore::VerifySection(v2::SectionId id) {
  for (size_t i = 0; i < section_count_; ++i) {
    if (sections_[i].id == id) return VerifySectionIndex(i);
  }
  return Status::Ok();  // absent (optional) section: nothing to verify
}

Status MmapStore::VerifyAllSections() {
  for (size_t i = 0; i < section_count_; ++i) {
    const Status status = VerifySectionIndex(i);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status MmapStore::VerifyMetadataSections() {
  for (const v2::SectionId id :
       {v2::SectionId::kDictOffsets, v2::SectionId::kDictBlob,
        v2::SectionId::kDictSorted, v2::SectionId::kPostingDir,
        v2::SectionId::kStats}) {
    const Status status = VerifySection(id);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace specqp
