#include "rdf/mapped_fault.h"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace specqp {

namespace {

// Fixed-size lock-free registry. The SIGBUS handler may run on any thread
// at any point, so lookups must be async-signal-safe: plain atomic loads
// over a static array, no locks, no allocation.
constexpr int kMaxRegions = 1024;

// Slot lifecycle: kFree -> kClaimed (registrar fills base/len) -> kActive.
// The handler only trusts kActive slots, and the registrar publishes
// base/len before the release-store of kActive, so a handler that observes
// kActive observes a coherent region.
enum SlotState : uint8_t { kFree = 0, kClaimed = 1, kActive = 2 };

struct RegionSlot {
  std::atomic<uintptr_t> base{0};
  std::atomic<size_t> len{0};
  std::atomic<uint64_t> faults{0};
  std::atomic<uint8_t> state{kFree};
};

RegionSlot g_regions[kMaxRegions];
std::atomic<size_t> g_page_size{0};
struct sigaction g_old_action;
std::once_flag g_install_once;

size_t PageSize() {
  size_t cached = g_page_size.load(std::memory_order_relaxed);
  if (cached == 0) {
    cached = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    g_page_size.store(cached, std::memory_order_relaxed);
  }
  return cached;
}

// Maps an anonymous zero page over the page containing `addr` and latches
// the slot's fault counter. Async-signal-safe (mmap is on the POSIX
// async-signal-safe list as of POSIX.1-2008 TC1 — and on Linux it is a
// plain syscall either way). Returns false if the kernel refuses.
bool ZeroFillFaultingPage(RegionSlot* slot, uintptr_t addr) {
  const size_t page = g_page_size.load(std::memory_order_relaxed);
  if (page == 0) return false;  // registry never initialised; can't be ours
  void* page_base = reinterpret_cast<void*>(addr & ~(page - 1));
  void* mapped = ::mmap(page_base, page, PROT_READ,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  if (mapped == MAP_FAILED) return false;
  slot->faults.fetch_add(1, std::memory_order_release);
  return true;
}

RegionSlot* FindSlot(uintptr_t addr) {
  for (int i = 0; i < kMaxRegions; ++i) {
    RegionSlot& slot = g_regions[i];
    if (slot.state.load(std::memory_order_acquire) != kActive) continue;
    const uintptr_t base = slot.base.load(std::memory_order_relaxed);
    const size_t len = slot.len.load(std::memory_order_relaxed);
    if (addr >= base && addr - base < len) return &slot;
  }
  return nullptr;
}

void HandleSigbus(int signo, siginfo_t* info, void* /*ucontext*/) {
  const uintptr_t addr = reinterpret_cast<uintptr_t>(info->si_addr);
  RegionSlot* slot = FindSlot(addr);
  if (slot != nullptr && ZeroFillFaultingPage(slot, addr)) {
    return;  // the faulting load re-executes and reads zeros
  }
  // Not one of our mappings (or the repair failed): chain to whatever was
  // installed before us — a sanitizer's reporter or the default action —
  // by restoring it and returning; the instruction re-faults and the old
  // disposition takes over. sigaction is async-signal-safe.
  ::sigaction(signo, &g_old_action, nullptr);
}

void InstallHandler() {
  PageSize();
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_SIGINFO | SA_ONSTACK;
  action.sa_sigaction = &HandleSigbus;
  ::sigaction(SIGBUS, &action, &g_old_action);
}

}  // namespace

int RegisterMappedRegion(const void* base, size_t len) {
  if (base == nullptr || len == 0) return -1;
  std::call_once(g_install_once, InstallHandler);
  for (int i = 0; i < kMaxRegions; ++i) {
    RegionSlot& slot = g_regions[i];
    uint8_t expected = kFree;
    if (!slot.state.compare_exchange_strong(expected, kClaimed,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    slot.base.store(reinterpret_cast<uintptr_t>(base),
                    std::memory_order_relaxed);
    slot.len.store(len, std::memory_order_relaxed);
    slot.faults.store(0, std::memory_order_relaxed);
    slot.state.store(kActive, std::memory_order_release);
    return i;
  }
  return -1;  // registry full; this mapping stays uncontained
}

void UnregisterMappedRegion(int token) {
  if (token < 0 || token >= kMaxRegions) return;
  g_regions[token].state.store(kFree, std::memory_order_release);
}

uint64_t MappedRegionFaults(int token) {
  if (token < 0 || token >= kMaxRegions) return 0;
  return g_regions[token].faults.load(std::memory_order_acquire);
}

bool SimulateMappedFault(const void* addr) {
  const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
  RegionSlot* slot = FindSlot(a);
  if (slot == nullptr) return false;
  return ZeroFillFaultingPage(slot, a);
}

}  // namespace specqp
