#ifndef SPECQP_RDF_POSTING_LIST_H_
#define SPECQP_RDF_POSTING_LIST_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"

namespace specqp {

// One match of a triple pattern, carrying the pattern-normalised score of
// Definition 5: S(t|q) = S(t) / max_{t' in matches(q)} S(t').
//
// Doubles as the on-disk record of the SQPSTOR2 posting-entries section
// (docs/FORMATS.md), hence the layout asserts below; the writer zeroes
// the 4 padding bytes.
struct PostingEntry {
  uint32_t triple_index = 0;  // into TripleStore::triples()
  double score = 0.0;         // normalised, in [0, 1]
};
static_assert(sizeof(PostingEntry) == 16 && alignof(PostingEntry) == 8 &&
              offsetof(PostingEntry, triple_index) == 0 &&
              offsetof(PostingEntry, score) == 8);

// All matches of one pattern, sorted by descending normalised score (ties
// broken by triple index for determinism). This is the "sorted list of
// matches" every operator in the paper consumes via sorted access.
//
// Two backends behind one read interface: built lists own their entries in
// `owned` (with `entries` aliasing it — call Seal() after filling), while
// lists opened from a mapped SQPSTOR2 store point `entries` straight at
// the mapped posting-entries section with no per-entry work. Readers only
// touch `entries`. Copying is deleted because a copy's span would alias
// the source's buffer; moves are safe (vector moves keep the heap buffer,
// mapped memory is position-stable).
struct PostingList {
  std::vector<PostingEntry> owned;
  std::span<const PostingEntry> entries;
  double max_raw_score = 0.0;  // the Definition 5 normaliser

  PostingList() = default;
  PostingList(PostingList&&) noexcept = default;
  PostingList& operator=(PostingList&&) noexcept = default;
  PostingList(const PostingList&) = delete;
  PostingList& operator=(const PostingList&) = delete;

  // Points `entries` at `owned`; call once `owned` is fully built.
  void Seal() { entries = owned; }

  // A zero-copy list over mapped memory (the caller keeps the mapping
  // alive; MmapStore guarantees this for cache-held lists).
  static PostingList View(std::span<const PostingEntry> mapped,
                          double max_raw_score);

  size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }
};

// Builds a posting list for `key` by scanning the store's match range,
// sorting by score, and normalising. Standalone helper used by the cache
// and by tests. When the store is a mapped v2 view and `key` is a pure
// predicate pattern (?s <p> ?o), returns a zero-copy view over the file's
// posting directory instead of building.
PostingList BuildPostingList(const TripleStore& store, const PatternKey& key);

// Materialised posting lists keyed by PatternKey, built on first use.
//
// This models the paper's setup of a database engine that returns matches
// "in sorted order" with warm caches (section 4.4: 5 runs, average of the
// last 3): the first access pays the sort, later accesses are pointer
// lookups.
//
// Thread-safe: the cache is sharded by key hash, with one mutex per shard,
// so concurrent executions (and the parallel partition builder) can share
// one cache. A build for a missing key holds only its shard's lock.
//
// Eviction: when `budget_bytes` is non-zero, each shard keeps its resident
// lists within budget_bytes / kNumShards (approximate byte accounting via
// ApproxBytes), evicting least-recently-used lists first. Lists still
// referenced outside the cache ("pinned" by a live operator tree) are never
// evicted, and neither is the most recently requested list — so a single
// oversized or in-use list can push a shard past its slice of the budget,
// but the steady state under churn stays bounded.
//
// Cost-aware eviction (`cost_aware` = true, EngineOptions::cache_cost_aware):
// victim selection weighs how expensive a list is to rebuild, not just how
// recently it was used. Each entry carries a GreedyDual-style priority
//
//   priority = shard inflation at last use + rebuild_cost(list)
//
// where rebuild_cost is the comparison-sort estimate n·(log2(n+1)+1) over
// the list's entry count n — the same per-pattern match count m the
// StatisticsCatalog snapshots. The victim is the minimum-priority unpinned
// entry, and the shard's inflation rises to the victim's priority, so
// cheap lists age out quickly while an expensive-to-rebuild list can
// outlive many cheaper, more recently used ones until the inflation
// catches up. With cost_aware = false the policy is plain LRU.
class PostingListCache {
 public:
  // `budget_bytes` == 0 means unbounded (no eviction).
  explicit PostingListCache(const TripleStore* store, size_t budget_bytes = 0,
                            bool cost_aware = false)
      : store_(store),
        budget_bytes_(budget_bytes),
        cost_aware_(cost_aware) {}

  PostingListCache(const PostingListCache&) = delete;
  PostingListCache& operator=(const PostingListCache&) = delete;

  // Shared ownership so operator trees can outlive cache eviction.
  std::shared_ptr<const PostingList> Get(const PatternKey& key);

  // Like Get() but without touching the hit/miss counters — for internal
  // probes (e.g. the executor's parallel-eligibility sizing pass) that
  // should not skew the telemetry exported to bench artifacts.
  std::shared_ptr<const PostingList> GetUncounted(const PatternKey& key);

  // The key's list if resident, nullptr otherwise — never builds and never
  // touches the counters or the LRU clock. Used by the shared-scan layer
  // to decide whether a base list is free to reuse.
  std::shared_ptr<const PostingList> Peek(const PatternKey& key);

  // Inserts an externally built list (e.g. one derived by a shared scan)
  // if the key is not already resident, so later Gets hit instead of
  // rebuilding. Returns the resident list (the existing one on conflict).
  // Counts neither a hit nor a miss.
  std::shared_ptr<const PostingList> Put(
      const PatternKey& key, std::shared_ptr<const PostingList> list);

  // The key's posting list split into `num_partitions` hash partitions on
  // triple slot `slot` (see rdf/posting_partition.h), memoised so repeated
  // parallel executions of the same query do not re-partition on every
  // Execute(). Piece sets share the key's shard (lock, LRU clock, byte
  // budget) with the plain lists.
  std::vector<std::shared_ptr<const PostingList>> GetPartitions(
      const PatternKey& key, int slot, uint32_t num_partitions);

  // Drops every resident list AND resets the hit/miss/eviction counters,
  // so hit rates measured across Clear() boundaries (e.g. a benchmark's
  // cold phase after a warm phase) start from zero.
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;   // resident lists
  size_t bytes() const;  // approximate resident bytes
  size_t budget_bytes() const { return budget_bytes_; }

  // Approximate heap footprint of one list (entries + header).
  static size_t ApproxBytes(const PostingList& list);

  // Rebuild-cost estimate (comparison sort over n entries) used by the
  // cost-aware policy; exposed for tests.
  static double RebuildCost(size_t num_entries);

  static constexpr size_t kNumShards = 8;

  bool cost_aware() const { return cost_aware_; }

 private:
  struct Entry {
    std::shared_ptr<const PostingList> list;
    size_t bytes = 0;
    uint64_t last_used = 0;   // shard LRU clock
    double priority = 0.0;    // GreedyDual priority (cost-aware policy)
  };

  // (key, slot, num_partitions) -> memoised partition pieces.
  using PartitionKey = std::tuple<TermId, TermId, TermId, int, uint32_t>;
  struct PartitionEntry {
    std::vector<std::shared_ptr<const PostingList>> pieces;
    size_t bytes = 0;
    uint64_t last_used = 0;
    double priority = 0.0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PatternKey, Entry, PatternKeyHash> map;
    std::map<PartitionKey, PartitionEntry> partitions;
    uint64_t clock = 0;
    size_t bytes = 0;  // lists + partition pieces
    double inflation = 0.0;  // floor for cost-aware priorities
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const PatternKey& key);
  // The key's list, building and inserting on miss. Caller holds shard.mu.
  // `count_stats` is false for internal lookups (e.g. the base list behind
  // a partition request) so one logical Get counts one hit or miss.
  std::shared_ptr<const PostingList> GetLocked(Shard& shard,
                                               const PatternKey& key,
                                               bool count_stats);
  // Evicts LRU unpinned lists/piece sets (never `keep` or `keep_parts`)
  // until the shard fits its budget slice. Caller holds the shard lock.
  void EvictIfOver(Shard& shard, const PatternKey& keep,
                   const PartitionKey* keep_parts = nullptr);

  const TripleStore* store_;
  size_t budget_bytes_;
  bool cost_aware_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_POSTING_LIST_H_
