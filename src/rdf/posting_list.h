#ifndef SPECQP_RDF_POSTING_LIST_H_
#define SPECQP_RDF_POSTING_LIST_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"

namespace specqp {

// One match of a triple pattern, carrying the pattern-normalised score of
// Definition 5: S(t|q) = S(t) / max_{t' in matches(q)} S(t').
struct PostingEntry {
  uint32_t triple_index = 0;  // into TripleStore::triples()
  double score = 0.0;         // normalised, in [0, 1]
};

// All matches of one pattern, sorted by descending normalised score (ties
// broken by triple index for determinism). This is the "sorted list of
// matches" every operator in the paper consumes via sorted access.
struct PostingList {
  std::vector<PostingEntry> entries;
  double max_raw_score = 0.0;  // the Definition 5 normaliser

  size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }
};

// Builds a posting list for `key` by scanning the store's match range,
// sorting by score, and normalising. Standalone helper used by the cache
// and by tests.
PostingList BuildPostingList(const TripleStore& store, const PatternKey& key);

// Materialised posting lists keyed by PatternKey, built on first use.
//
// This models the paper's setup of a database engine that returns matches
// "in sorted order" with warm caches (section 4.4: 5 runs, average of the
// last 3): the first access pays the sort, later accesses are pointer
// lookups. Single-threaded by design (one cache per engine/benchmark
// thread).
class PostingListCache {
 public:
  explicit PostingListCache(const TripleStore* store) : store_(store) {}

  PostingListCache(const PostingListCache&) = delete;
  PostingListCache& operator=(const PostingListCache&) = delete;

  // Shared ownership so operator trees can outlive cache eviction.
  std::shared_ptr<const PostingList> Get(const PatternKey& key);

  void Clear() { cache_.clear(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  const TripleStore* store_;
  std::unordered_map<PatternKey, std::shared_ptr<const PostingList>,
                     PatternKeyHash>
      cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace specqp

#endif  // SPECQP_RDF_POSTING_LIST_H_
