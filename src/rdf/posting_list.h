#ifndef SPECQP_RDF_POSTING_LIST_H_
#define SPECQP_RDF_POSTING_LIST_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "rdf/posting_blocks.h"
#include "rdf/posting_entry.h"
#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace specqp {

// All matches of one pattern, sorted by descending normalised score (ties
// broken by triple index for determinism). This is the "sorted list of
// matches" every operator in the paper consumes via sorted access.
//
// Three backends behind one read interface:
//   * built lists own their entries in `owned` (with `entries` aliasing
//     it — call Seal() after filling);
//   * lists opened from a mapped SQPSTOR2 (v2) store point `entries`
//     straight at the mapped posting-entries section;
//   * lists opened from a mapped SQPSTOR3 (v3) store carry a
//     PostingBlockSource in `blocks` and have an EMPTY `entries` span —
//     their entries exist only block-by-block, decoded on demand.
//
// BlockIterator (below) is the canonical access path and reads all three
// uniformly; code that touches `entries` directly must first check
// !blocked() (flat-only consumers assert this). Copying is deleted because
// a copy's span would alias the source's buffer; moves are safe (vector
// moves keep the heap buffer, mapped memory is position-stable).
struct PostingList {
  std::vector<PostingEntry> owned;
  std::span<const PostingEntry> entries;
  std::unique_ptr<PostingBlockSource> blocks;  // block backend, or null
  double max_raw_score = 0.0;  // the Definition 5 normaliser

  PostingList() = default;
  PostingList(PostingList&&) noexcept = default;
  PostingList& operator=(PostingList&&) noexcept = default;
  PostingList(const PostingList&) = delete;
  PostingList& operator=(const PostingList&) = delete;

  // Points `entries` at `owned`; call once `owned` is fully built.
  void Seal() { entries = owned; }

  // A zero-copy list over mapped memory (the caller keeps the mapping
  // alive; MmapStore guarantees this for cache-held lists).
  static PostingList View(std::span<const PostingEntry> mapped,
                          double max_raw_score);

  // A zero-copy block-compressed list over a mapped v3 store's header and
  // payload sections (the caller keeps the mapping alive). `id_limit`
  // bounds decoded triple indexes (pass the store's triple count).
  static PostingList BlockView(std::span<const PostingBlockHeader> headers,
                               std::span<const uint8_t> payload,
                               uint64_t entry_count, double max_raw_score,
                               uint32_t id_limit);

  // An owning block-compressed list (in-memory stores, tests).
  static PostingList FromBlocks(std::vector<PostingBlockHeader> headers,
                                std::vector<uint8_t> payload,
                                uint64_t entry_count, double max_raw_score,
                                uint32_t id_limit);

  bool blocked() const { return blocks != nullptr; }
  size_t size() const {
    return blocks != nullptr ? static_cast<size_t>(blocks->entry_count())
                             : entries.size();
  }
  bool empty() const { return size() == 0; }
};

// Cursor over a PostingList that understands both backends: flat spans are
// walked directly, block-compressed lists are decoded one block at a time
// into the source's reusable per-block buffers. This is the canonical
// access path for everything that consumes posting lists — PatternScan,
// the store writer, partitioning, shared-scan derivation, the stats
// catalog.
//
// Skipping uses the block headers and never changes which entries the
// caller observes, only how many bytes get decoded on the way:
//   * PeekScore() at an undecoded block boundary answers from the header's
//     max_score, which the format guarantees is bit-equal to the block's
//     first entry score — so bound computations (PatternScan::UpperBound)
//     are bit-identical with and without decoding;
//   * SkipToScoreBelow(bound) discards whole blocks whose every entry
//     provably scores >= bound (the NEXT block's ceiling >= bound implies
//     it, since scores only descend);
//   * SkipToId(target) discards blocks whose [min_id, max_id] range
//     excludes the target.
//
// `decoded_counter` / `skipped_counter` (both optional) receive this
// iterator's per-block accounting: +1 decoded per block this iterator
// materialises (memo hits included — the counters describe the access
// pattern, not cache state, so they are deterministic), and +1 skipped per
// block it provably never needed, charged when the iterator is destroyed
// or skips past them. Flat lists touch neither counter. The iterator does
// not own the list; the caller keeps `list` (and its mapping) alive.
class BlockIterator {
 public:
  explicit BlockIterator(const PostingList* list,
                         uint64_t* decoded_counter = nullptr,
                         uint64_t* skipped_counter = nullptr);
  ~BlockIterator();

  BlockIterator(const BlockIterator&) = delete;
  BlockIterator& operator=(const BlockIterator&) = delete;

  size_t size() const { return size_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  // True once the backing block source failed a decode during this
  // iterator's lifetime (always false for flat lists). Scans poll this
  // each Next(): entries served after a fault are shape-safe
  // placeholders, not data, so the query must stop and fail with IoError.
  // Scoped to the iterator — a later query re-decodes and recovers when
  // the fault was transient, fails afresh when the block is corrupt.
  bool faulted() const;

  // The current entry's score without forcing a decode: exact when the
  // position's block is materialised (or the list is flat), the block
  // header's max_score — bit-equal to the same value — when positioned at
  // an undecoded block boundary. Precondition: !AtEnd().
  double PeekScore() const;

  // The current entry, materialising its block. Precondition: !AtEnd().
  // The reference is valid until the iterator moves to another block.
  const PostingEntry& Entry();

  // Steps to the next entry. Decoding stays deferred when the step lands
  // exactly on a block boundary (the skip primitives may then discard that
  // block untouched).
  void Advance();

  // Advances past every entry with score >= bound: afterwards AtEnd() or
  // PeekScore() < bound. Whole blocks are discarded undecoded when the
  // following block's ceiling proves them uniformly >= bound.
  void SkipToScoreBelow(double bound);

  // Advances to the first entry at or after the current position with
  // triple_index == target, returning true; exhausts the iterator and
  // returns false when no such entry remains. Blocks whose id range
  // excludes `target` are discarded undecoded.
  bool SkipToId(uint32_t target);

  // Exhausts the iterator, charging all unvisited blocks as skipped now
  // (operators discard provably dead inputs through this, so the charge
  // lands in ExecStats before the merge, not at tree teardown).
  void SkipAll();

 private:
  // Decodes block `b` (memoised in the source) and runs the accounting:
  // blocks passed over since the last materialisation are charged as
  // skipped, `b` itself as decoded.
  void Materialize(size_t b);

  std::span<const PostingEntry> flat_;
  const PostingBlockSource* source_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  std::shared_ptr<const DecodedPostingBlock> cur_;
  size_t cur_block_ = SIZE_MAX;
  size_t accounted_until_ = 0;  // first block not yet charged either way
  uint64_t faults_at_start_ = 0;  // source fault_count() at construction
  uint64_t* decoded_counter_ = nullptr;
  uint64_t* skipped_counter_ = nullptr;
};

// Builds a posting list for `key` by scanning the store's match range,
// sorting by score, and normalising. Standalone helper used by the cache
// and by tests. When the store is a mapped view and `key` is a pure
// predicate pattern (?s <p> ?o), returns a zero-copy list over the file's
// posting directory instead of building: a flat span for v2 stores, a
// block-compressed BlockView for v3 stores.
[[nodiscard]] PostingList BuildPostingList(const TripleStore& store,
                                           const PatternKey& key);

// Materialised posting lists keyed by PatternKey, built on first use.
//
// This models the paper's setup of a database engine that returns matches
// "in sorted order" with warm caches (section 4.4: 5 runs, average of the
// last 3): the first access pays the sort, later accesses are pointer
// lookups.
//
// Thread-safe: the cache is sharded by key hash, with one mutex per shard,
// so concurrent executions (and the parallel partition builder) can share
// one cache. A build for a missing key holds only its shard's lock.
//
// Eviction: when `budget_bytes` is non-zero, each shard keeps its resident
// lists within budget_bytes / kNumShards (approximate byte accounting via
// ApproxBytes), evicting least-recently-used lists first. Lists still
// referenced outside the cache ("pinned" by a live operator tree) are never
// evicted, and neither is the most recently requested list — so a single
// oversized or in-use list can push a shard past its slice of the budget,
// but the steady state under churn stays bounded.
//
// Block-compressed lists are accounted at block granularity: a blocked
// list's footprint grows as iterators decode blocks into its
// PostingBlockSource memo, and an over-budget shard first RELEASES decoded
// blocks (cheapest-to-restore bytes, LRU entry order) before falling back
// to whole-entry eviction. Releasing is safe even for pinned or
// just-requested lists — live iterators hold their current block through
// a shared_ptr, and a released block simply decodes again on next touch —
// so cold queries keep only the blocks their bound actually required.
//
// Cost-aware eviction (`cost_aware` = true, EngineOptions::cache_cost_aware):
// victim selection weighs how expensive a list is to rebuild, not just how
// recently it was used. Each entry carries a GreedyDual-style priority
//
//   priority = shard inflation at last use + rebuild_cost(list)
//
// where rebuild_cost is the comparison-sort estimate n·(log2(n+1)+1) over
// the list's entry count n — the same per-pattern match count m the
// StatisticsCatalog snapshots. The victim is the minimum-priority unpinned
// entry, and the shard's inflation rises to the victim's priority, so
// cheap lists age out quickly while an expensive-to-rebuild list can
// outlive many cheaper, more recently used ones until the inflation
// catches up. With cost_aware = false the policy is plain LRU.
class PostingListCache {
 public:
  // `budget_bytes` == 0 means unbounded (no eviction).
  explicit PostingListCache(const TripleStore* store, size_t budget_bytes = 0,
                            bool cost_aware = false)
      : store_(store),
        budget_bytes_(budget_bytes),
        cost_aware_(cost_aware) {}

  PostingListCache(const PostingListCache&) = delete;
  PostingListCache& operator=(const PostingListCache&) = delete;

  // Shared ownership so operator trees can outlive cache eviction. The
  // returned pin is what keeps the list resident — discarding it silently
  // re-triggers a build on the next Get, hence [[nodiscard]].
  [[nodiscard]] std::shared_ptr<const PostingList> Get(const PatternKey& key);

  // Like Get() but without touching the hit/miss counters — for internal
  // probes (e.g. the executor's parallel-eligibility sizing pass) that
  // should not skew the telemetry exported to bench artifacts.
  [[nodiscard]] std::shared_ptr<const PostingList> GetUncounted(
      const PatternKey& key);

  // The key's list if resident, nullptr otherwise — never builds and never
  // touches the counters or the LRU clock. Used by the shared-scan layer
  // to decide whether a base list is free to reuse.
  [[nodiscard]] std::shared_ptr<const PostingList> Peek(const PatternKey& key);

  // Inserts an externally built list (e.g. one derived by a shared scan)
  // if the key is not already resident, so later Gets hit instead of
  // rebuilding. Returns the resident list (the existing one on conflict).
  // Counts neither a hit nor a miss.
  std::shared_ptr<const PostingList> Put(
      const PatternKey& key, std::shared_ptr<const PostingList> list);

  // The key's posting list split into `num_partitions` hash partitions on
  // triple slot `slot` (see rdf/posting_partition.h), memoised so repeated
  // parallel executions of the same query do not re-partition on every
  // Execute(). Piece sets share the key's shard (lock, LRU clock, byte
  // budget) with the plain lists.
  [[nodiscard]] std::vector<std::shared_ptr<const PostingList>> GetPartitions(
      const PatternKey& key, int slot, uint32_t num_partitions);

  // Drops every resident list AND resets the hit/miss/eviction counters,
  // so hit rates measured across Clear() boundaries (e.g. a benchmark's
  // cold phase after a warm phase) start from zero.
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;   // resident lists
  size_t bytes() const;  // approximate resident bytes
  size_t budget_bytes() const { return budget_bytes_; }

  // Approximate heap footprint of one list (entries + header).
  static size_t ApproxBytes(const PostingList& list);

  // Rebuild-cost estimate (comparison sort over n entries) used by the
  // cost-aware policy; exposed for tests.
  static double RebuildCost(size_t num_entries);

  static constexpr size_t kNumShards = 8;

  bool cost_aware() const { return cost_aware_; }

 private:
  struct Entry {
    std::shared_ptr<const PostingList> list;
    size_t bytes = 0;
    uint64_t last_used = 0;   // shard LRU clock
    double priority = 0.0;    // GreedyDual priority (cost-aware policy)
  };

  // (key, slot, num_partitions) -> memoised partition pieces.
  using PartitionKey = std::tuple<TermId, TermId, TermId, int, uint32_t>;
  struct PartitionEntry {
    std::vector<std::shared_ptr<const PostingList>> pieces;
    size_t bytes = 0;
    uint64_t last_used = 0;
    double priority = 0.0;
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<PatternKey, Entry, PatternKeyHash> map
        SPECQP_GUARDED_BY(mu);
    std::map<PartitionKey, PartitionEntry> partitions SPECQP_GUARDED_BY(mu);
    uint64_t clock SPECQP_GUARDED_BY(mu) = 0;
    size_t bytes SPECQP_GUARDED_BY(mu) = 0;  // lists + partition pieces
    double inflation SPECQP_GUARDED_BY(mu) = 0.0;  // cost-aware floor
    uint64_t hits SPECQP_GUARDED_BY(mu) = 0;
    uint64_t misses SPECQP_GUARDED_BY(mu) = 0;
    uint64_t evictions SPECQP_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const PatternKey& key);
  // The key's list, building and inserting on miss.
  // `count_stats` is false for internal lookups (e.g. the base list behind
  // a partition request) so one logical Get counts one hit or miss.
  std::shared_ptr<const PostingList> GetLocked(Shard& shard,
                                               const PatternKey& key,
                                               bool count_stats)
      SPECQP_REQUIRES(shard.mu);
  // Brings the shard's byte accounting for blocked lists up to date
  // (decoded-block memos grow outside the lock while operators iterate).
  void SyncBlockBytes(Shard& shard) SPECQP_REQUIRES(shard.mu);
  // Evicts until the shard fits its budget slice: first releases decoded
  // blocks from blocked lists (LRU order, pinned and `keep` included —
  // release never invalidates readers), then evicts LRU unpinned
  // lists/piece sets (never `keep` or `keep_parts`).
  void EvictIfOver(Shard& shard, const PatternKey& keep,
                   const PartitionKey* keep_parts = nullptr)
      SPECQP_REQUIRES(shard.mu);

  const TripleStore* store_;
  size_t budget_bytes_;
  bool cost_aware_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_POSTING_LIST_H_
