#include "rdf/triple_pattern.h"

#include "util/logging.h"

namespace specqp {

TermId PatternTerm::term() const {
  SPECQP_CHECK(!is_var_) << "PatternTerm::term() on a variable";
  return static_cast<TermId>(id_);
}

VarId PatternTerm::var() const {
  SPECQP_CHECK(is_var_) << "PatternTerm::var() on a constant";
  return static_cast<VarId>(id_);
}

PatternKey TriplePattern::Key() const {
  PatternKey key;
  if (s.is_constant()) key.s = s.term();
  if (p.is_constant()) key.p = p.term();
  if (o.is_constant()) key.o = o.term();
  return key;
}

int TriplePattern::Variables(VarId out[3]) const {
  int n = 0;
  auto add = [&](const PatternTerm& t) {
    if (!t.is_variable()) return;
    for (int i = 0; i < n; ++i) {
      if (out[i] == t.var()) return;
    }
    out[n++] = t.var();
  };
  add(s);
  add(p);
  add(o);
  return n;
}

int SlotOfVar(const TriplePattern& q, VarId v) {
  if (q.s.is_variable() && q.s.var() == v) return 0;
  if (q.p.is_variable() && q.p.var() == v) return 1;
  if (q.o.is_variable() && q.o.var() == v) return 2;
  return -1;
}

bool ConsistentMatch(const TriplePattern& q, const Triple& t) {
  if (q.s.is_variable()) {
    if (q.p.is_variable() && q.p.var() == q.s.var() && t.p != t.s) return false;
    if (q.o.is_variable() && q.o.var() == q.s.var() && t.o != t.s) return false;
  }
  if (q.p.is_variable() && q.o.is_variable() && q.o.var() == q.p.var() &&
      t.o != t.p) {
    return false;
  }
  return true;
}

bool TriplePattern::UsesVariable(VarId v) const {
  return (s.is_variable() && s.var() == v) ||
         (p.is_variable() && p.var() == v) ||
         (o.is_variable() && o.var() == v);
}

}  // namespace specqp
