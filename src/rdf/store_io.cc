#include "rdf/store_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/crc32.h"
#include "util/string_util.h"

namespace specqp {

namespace {

constexpr char kMagic[8] = {'S', 'Q', 'P', 'S', 'T', 'O', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;

static_assert(sizeof(double) == 8, "store format assumes 8-byte doubles");

void AppendU32(std::string* buf, uint32_t v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  buf->append(tmp, 4);
}

void AppendU64(std::string* buf, uint64_t v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->append(tmp, 8);
}

void AppendF64(std::string* buf, double v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->append(tmp, 8);
}

// Sequential reader over an in-memory blob with bounds checking.
class BlobReader {
 public:
  BlobReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadBytes(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, 8); }
  bool ReadF64(double* v) { return ReadBytes(v, 8); }

  const char* cursor() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }
  void Advance(size_t n) { pos_ += n; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveStore(const TripleStore& store, const std::string& path) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("SaveStore requires a finalized store");
  }

  std::string dict_section;
  const Dictionary& dict = store.dict();
  AppendU32(&dict_section, static_cast<uint32_t>(dict.size()));
  for (TermId id = 0; id < dict.size(); ++id) {
    std::string_view name = dict.Name(id);
    AppendU32(&dict_section, static_cast<uint32_t>(name.size()));
    dict_section.append(name);
  }

  std::string triple_section;
  AppendU64(&triple_section, store.size());
  for (const Triple& t : store.triples()) {
    AppendU32(&triple_section, t.s);
    AppendU32(&triple_section, t.p);
    AppendU32(&triple_section, t.o);
    AppendF64(&triple_section, t.score);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), 4);

  for (const std::string* section : {&dict_section, &triple_section}) {
    out.write(section->data(), static_cast<std::streamsize>(section->size()));
    const uint32_t crc = Crc32c(section->data(), section->size());
    out.write(reinterpret_cast<const char*>(&crc), 4);
  }
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::Ok();
}

Result<TripleStore> LoadStore(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::string blob(static_cast<size_t>(file_size), '\0');
  in.read(blob.data(), file_size);
  if (!in) {
    return Status::IoError(StrFormat("short read from '%s'", path.c_str()));
  }

  BlobReader reader(blob.data(), blob.size());
  char magic[8];
  if (!reader.ReadBytes(magic, 8) || std::memcmp(magic, kMagic, 8) != 0) {
    return Status::Corruption("bad magic; not a Spec-QP store file");
  }
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) return Status::Corruption("truncated header");
  if (version != kFormatVersion) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }

  TripleStore store;

  // Dictionary section.
  {
    const char* section_start = reader.cursor();
    uint32_t term_count = 0;
    if (!reader.ReadU32(&term_count)) {
      return Status::Corruption("truncated dictionary header");
    }
    for (uint32_t i = 0; i < term_count; ++i) {
      uint32_t len = 0;
      if (!reader.ReadU32(&len) || reader.remaining() < len) {
        return Status::Corruption("truncated dictionary entry");
      }
      std::string_view name(reader.cursor(), len);
      reader.Advance(len);
      const TermId id = store.dict().Intern(name);
      if (id != i) {
        return Status::Corruption("duplicate term in dictionary section");
      }
    }
    const size_t section_len =
        static_cast<size_t>(reader.cursor() - section_start);
    uint32_t stored_crc = 0;
    if (!reader.ReadU32(&stored_crc)) {
      return Status::Corruption("missing dictionary CRC");
    }
    if (Crc32c(section_start, section_len) != stored_crc) {
      return Status::Corruption("dictionary section CRC mismatch");
    }
  }

  // Triple section.
  {
    const char* section_start = reader.cursor();
    uint64_t triple_count = 0;
    if (!reader.ReadU64(&triple_count)) {
      return Status::Corruption("truncated triple header");
    }
    const size_t dict_size = store.dict().size();
    for (uint64_t i = 0; i < triple_count; ++i) {
      uint32_t s = 0;
      uint32_t p = 0;
      uint32_t o = 0;
      double score = 0.0;
      if (!reader.ReadU32(&s) || !reader.ReadU32(&p) || !reader.ReadU32(&o) ||
          !reader.ReadF64(&score)) {
        return Status::Corruption("truncated triple entry");
      }
      if (s >= dict_size || p >= dict_size || o >= dict_size) {
        return Status::Corruption("triple references unknown term id");
      }
      if (!(score >= 0.0)) {
        return Status::Corruption("triple has invalid score");
      }
      store.AddEncoded(s, p, o, score);
    }
    const size_t section_len =
        static_cast<size_t>(reader.cursor() - section_start);
    uint32_t stored_crc = 0;
    if (!reader.ReadU32(&stored_crc)) {
      return Status::Corruption("missing triple CRC");
    }
    if (Crc32c(section_start, section_len) != stored_crc) {
      return Status::Corruption("triple section CRC mismatch");
    }
  }

  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after triple section");
  }

  store.Finalize();
  return store;
}

}  // namespace specqp
