#include "rdf/store_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "rdf/mmap_store.h"
#include "rdf/posting_list.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace specqp {

namespace {

constexpr char kMagicV1[8] = {'S', 'Q', 'P', 'S', 'T', 'O', 'R', '1'};
constexpr uint32_t kFormatVersionV1 = 1;

void AppendU16(std::string* buf, uint16_t v) {
  char tmp[2];
  std::memcpy(tmp, &v, 2);
  buf->append(tmp, 2);
}

void AppendU32(std::string* buf, uint32_t v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  buf->append(tmp, 4);
}

void AppendU64(std::string* buf, uint64_t v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->append(tmp, 8);
}

void AppendF64(std::string* buf, double v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->append(tmp, 8);
}

// Sequential reader over an in-memory blob with bounds checking.
class BlobReader {
 public:
  BlobReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadBytes(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, 8); }
  bool ReadF64(double* v) { return ReadBytes(v, 8); }

  const char* cursor() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }
  void Advance(size_t n) { pos_ += n; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- v2 writer --------------------------------------------------------------

// One serialised section: payload padded to the section alignment with
// zero bytes that are covered by the CRC, so the written file has no
// unprotected gaps (docs/FORMATS.md).
struct SectionBuf {
  v2::SectionId id;
  std::string payload;
};

void PadSection(std::string* payload) {
  while (payload->size() % v2::kSectionAlignment != 0) {
    payload->push_back('\0');
  }
}

// Permutation of [0, n) ordering `triples` by the given comparator; equals
// the index TripleStore::Finalize builds because finalized stores have no
// duplicate (s,p,o) and the orders are total.
template <typename Order>
std::vector<uint32_t> SortedPermutation(std::span<const Triple> triples) {
  std::vector<uint32_t> perm(triples.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return Order()(triples[a], triples[b]);
  });
  return perm;
}

void AppendIndexSection(std::vector<SectionBuf>* sections, v2::SectionId id,
                        const std::vector<uint32_t>& perm) {
  SectionBuf section{id, {}};
  section.payload.reserve(perm.size() * 4 + v2::kSectionAlignment);
  for (uint32_t v : perm) AppendU32(&section.payload, v);
  sections->push_back(std::move(section));
}

Status WriteSections(const std::string& path, std::vector<SectionBuf> sections,
                     uint64_t triple_count, uint64_t term_count,
                     uint32_t format_version) {
  for (SectionBuf& section : sections) PadSection(&section.payload);

  v2::FileHeader header{};
  std::memcpy(header.magic,
              format_version == v3::kFormatVersion ? v3::kMagic : v2::kMagic,
              sizeof(v2::kMagic));
  header.version = format_version;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.triple_count = triple_count;
  header.term_count = term_count;

  std::vector<v2::SectionEntry> table(sections.size());
  uint64_t cursor =
      sizeof(v2::FileHeader) + sections.size() * sizeof(v2::SectionEntry);
  for (size_t i = 0; i < sections.size(); ++i) {
    table[i] = v2::SectionEntry{
        static_cast<uint32_t>(sections[i].id), /*flags=*/0, cursor,
        sections[i].payload.size(),
        Crc32c(sections[i].payload.data(), sections[i].payload.size()),
        /*reserved=*/0};
    cursor += sections[i].payload.size();
  }
  header.file_size = cursor;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() * sizeof(table[0])));
  for (const SectionBuf& section : sections) {
    out.write(section.payload.data(),
              static_cast<std::streamsize>(section.payload.size()));
  }
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::Ok();
}

// Walks a posting list through the canonical BlockIterator path so the
// writer handles flat, mapped-flat, and block-compressed lists uniformly
// (re-saving a store opened from a mapped v3 file included).
std::vector<PostingEntry> MaterializeEntries(const PostingList& list) {
  std::vector<PostingEntry> out;
  out.reserve(list.size());
  for (BlockIterator it(&list); !it.AtEnd(); it.Advance()) {
    out.push_back(it.Entry());
  }
  return out;
}

}  // namespace

Status SaveStore(const TripleStore& store, const std::string& path,
                 const SaveStoreOptions& options) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("SaveStore requires a finalized store");
  }
  if (store.is_sharded()) {
    // A sharded facade has no contiguous triple array to serialise — its
    // shard files are already on disk (rdf/sharded_store.h owns them).
    return Status::FailedPrecondition(
        "SaveStore cannot serialise a sharded store facade");
  }
  if (options.format_version != v2::kFormatVersion &&
      options.format_version != v3::kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("SaveStore cannot write format version %u",
                  options.format_version));
  }
  const Dictionary& dict = store.dict();
  const std::span<const Triple> triples = store.triples();
  std::vector<SectionBuf> sections;

  // Dictionary: offset table, blob, lexicographic permutation.
  {
    SectionBuf offsets{v2::SectionId::kDictOffsets, {}};
    SectionBuf blob{v2::SectionId::kDictBlob, {}};
    uint64_t cursor = 0;
    AppendU64(&offsets.payload, 0);
    for (TermId id = 0; id < dict.size(); ++id) {
      const std::string_view name = dict.Name(id);
      cursor += name.size();
      AppendU64(&offsets.payload, cursor);
      blob.payload.append(name);
    }
    SectionBuf sorted{v2::SectionId::kDictSorted, {}};
    std::vector<uint32_t> perm(dict.size());
    for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(), [&dict](uint32_t a, uint32_t b) {
      return dict.Name(a) < dict.Name(b);
    });
    for (uint32_t id : perm) AppendU32(&sorted.payload, id);
    sections.push_back(std::move(offsets));
    sections.push_back(std::move(blob));
    sections.push_back(std::move(sorted));
  }

  // Triple array (SPO order, padding bytes zeroed) + permutation indexes.
  {
    SectionBuf section{v2::SectionId::kTriples, {}};
    section.payload.reserve(triples.size() * sizeof(Triple));
    for (const Triple& t : triples) {
      AppendU32(&section.payload, t.s);
      AppendU32(&section.payload, t.p);
      AppendU32(&section.payload, t.o);
      AppendU32(&section.payload, 0);  // struct padding, CRC-covered
      AppendF64(&section.payload, t.score);
    }
    sections.push_back(std::move(section));

    // The SPO permutation of an SPO-sorted triple array is the identity;
    // v3 stops spending file bytes on it (readers synthesise the view),
    // while v2 keeps its frozen layout.
    if (options.format_version != v3::kFormatVersion) {
      std::vector<uint32_t> identity(triples.size());
      for (uint32_t i = 0; i < identity.size(); ++i) identity[i] = i;
      AppendIndexSection(&sections, v2::SectionId::kSpoIndex, identity);
    }
    AppendIndexSection(&sections, v2::SectionId::kPosIndex,
                       SortedPermutation<OrderPos>(triples));
    AppendIndexSection(&sections, v2::SectionId::kOspIndex,
                       SortedPermutation<OrderOsp>(triples));
  }

  // Per-predicate posting directory: every (?s <p> ?o) list, normalised
  // and pre-sorted, so mapped stores serve them zero-copy. v2 stores the
  // entries flat; v3 stores them block-compressed with a shared header
  // array (rdf/posting_blocks.h).
  if (options.posting_directory) {
    std::vector<TermId> predicates;
    predicates.reserve(triples.size());
    for (const Triple& t : triples) predicates.push_back(t.p);
    std::sort(predicates.begin(), predicates.end());
    predicates.erase(std::unique(predicates.begin(), predicates.end()),
                     predicates.end());

    if (options.format_version == v3::kFormatVersion) {
      SectionBuf dir{v2::SectionId::kPostingDir, {}};
      SectionBuf index{v2::SectionId::kPostingBlockIndex, {}};
      SectionBuf blocks{v2::SectionId::kPostingBlocks, {}};
      AppendU64(&dir.payload, predicates.size());
      uint64_t block_cursor = 0;
      for (TermId p : predicates) {
        const PostingList list = BuildPostingList(
            store, PatternKey{kInvalidTermId, p, kInvalidTermId});
        const std::vector<PostingEntry> flat = MaterializeEntries(list);
        const EncodedPostingBlocks encoded =
            EncodePostingBlocks(flat.data(), flat.size());
        AppendU32(&dir.payload, p);
        AppendU32(&dir.payload, 0);  // reserved
        AppendU64(&dir.payload, block_cursor);
        AppendU64(&dir.payload, encoded.headers.size());
        AppendU64(&dir.payload, flat.size());
        AppendF64(&dir.payload, list.max_raw_score);
        // The encoder's offsets are list-local; rebase onto this file's
        // shared payload section.
        const uint64_t payload_base = blocks.payload.size();
        for (const PostingBlockHeader& h : encoded.headers) {
          AppendU64(&index.payload, h.byte_offset + payload_base);
          AppendU32(&index.payload, h.byte_length);
          AppendU16(&index.payload, h.entry_count);
          AppendU16(&index.payload, 0);  // reserved
          AppendF64(&index.payload, h.max_score);
          AppendU32(&index.payload, h.min_id);
          AppendU32(&index.payload, h.max_id);
        }
        blocks.payload.append(
            reinterpret_cast<const char*>(encoded.payload.data()),
            encoded.payload.size());
        block_cursor += encoded.headers.size();
      }
      sections.push_back(std::move(dir));
      sections.push_back(std::move(index));
      sections.push_back(std::move(blocks));
    } else {
      SectionBuf dir{v2::SectionId::kPostingDir, {}};
      SectionBuf entries{v2::SectionId::kPostingEntries, {}};
      AppendU64(&dir.payload, predicates.size());
      uint64_t entry_cursor = 0;
      for (TermId p : predicates) {
        const PostingList list = BuildPostingList(
            store, PatternKey{kInvalidTermId, p, kInvalidTermId});
        AppendU32(&dir.payload, p);
        AppendU32(&dir.payload, 0);  // reserved
        AppendU64(&dir.payload, entry_cursor);
        AppendU64(&dir.payload, list.size());
        AppendF64(&dir.payload, list.max_raw_score);
        for (const PostingEntry& e : MaterializeEntries(list)) {
          AppendU32(&entries.payload, e.triple_index);
          AppendU32(&entries.payload, 0);  // struct padding, CRC-covered
          AppendF64(&entries.payload, e.score);
        }
        entry_cursor += list.size();
      }
      sections.push_back(std::move(dir));
      sections.push_back(std::move(entries));
    }
  }

  // Statistics snapshot.
  if (!options.stats.empty()) {
    std::vector<v2::StatsEntry> rows = options.stats;
    std::sort(rows.begin(), rows.end(),
              [](const v2::StatsEntry& a, const v2::StatsEntry& b) {
                return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
              });
    SectionBuf section{v2::SectionId::kStats, {}};
    AppendF64(&section.payload, options.stats_head_fraction);
    AppendU64(&section.payload, rows.size());
    for (const v2::StatsEntry& row : rows) {
      AppendU32(&section.payload, row.s);
      AppendU32(&section.payload, row.p);
      AppendU32(&section.payload, row.o);
      AppendU32(&section.payload, 0);  // reserved
      AppendU64(&section.payload, row.m);
      AppendF64(&section.payload, row.sigma_r);
      AppendF64(&section.payload, row.s_r);
      AppendF64(&section.payload, row.s_m);
    }
    sections.push_back(std::move(section));
  }

  return WriteSections(path, std::move(sections), triples.size(), dict.size(),
                       options.format_version);
}

Status SaveStoreV1(const TripleStore& store, const std::string& path) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("SaveStore requires a finalized store");
  }
  if (store.is_sharded()) {
    return Status::FailedPrecondition(
        "SaveStore cannot serialise a sharded store facade");
  }

  std::string dict_section;
  const Dictionary& dict = store.dict();
  AppendU32(&dict_section, static_cast<uint32_t>(dict.size()));
  for (TermId id = 0; id < dict.size(); ++id) {
    std::string_view name = dict.Name(id);
    AppendU32(&dict_section, static_cast<uint32_t>(name.size()));
    dict_section.append(name);
  }

  std::string triple_section;
  AppendU64(&triple_section, store.size());
  for (const Triple& t : store.triples()) {
    AppendU32(&triple_section, t.s);
    AppendU32(&triple_section, t.p);
    AppendU32(&triple_section, t.o);
    AppendF64(&triple_section, t.score);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  out.write(kMagicV1, sizeof(kMagicV1));
  uint32_t version = kFormatVersionV1;
  out.write(reinterpret_cast<const char*>(&version), 4);

  for (const std::string* section : {&dict_section, &triple_section}) {
    out.write(section->data(), static_cast<std::streamsize>(section->size()));
    const uint32_t crc = Crc32c(section->data(), section->size());
    out.write(reinterpret_cast<const char*>(&crc), 4);
  }
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::Ok();
}

namespace {

Result<TripleStore> LoadStoreV1(const std::string& blob) {
  BlobReader reader(blob.data(), blob.size());
  char magic[8];
  if (!reader.ReadBytes(magic, 8) ||
      std::memcmp(magic, kMagicV1, 8) != 0) {
    return Status::Corruption("bad magic; not a Spec-QP store file");
  }
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) return Status::Corruption("truncated header");
  if (version != kFormatVersionV1) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }

  TripleStore store;

  // Dictionary section.
  {
    const char* section_start = reader.cursor();
    uint32_t term_count = 0;
    if (!reader.ReadU32(&term_count)) {
      return Status::Corruption("truncated dictionary header");
    }
    for (uint32_t i = 0; i < term_count; ++i) {
      uint32_t len = 0;
      if (!reader.ReadU32(&len) || reader.remaining() < len) {
        return Status::Corruption("truncated dictionary entry");
      }
      std::string_view name(reader.cursor(), len);
      reader.Advance(len);
      const TermId id = store.dict().Intern(name);
      if (id != i) {
        return Status::Corruption("duplicate term in dictionary section");
      }
    }
    const size_t section_len =
        static_cast<size_t>(reader.cursor() - section_start);
    uint32_t stored_crc = 0;
    if (!reader.ReadU32(&stored_crc)) {
      return Status::Corruption("missing dictionary CRC");
    }
    if (Crc32c(section_start, section_len) != stored_crc) {
      return Status::Corruption("dictionary section CRC mismatch");
    }
  }

  // Triple section.
  {
    const char* section_start = reader.cursor();
    uint64_t triple_count = 0;
    if (!reader.ReadU64(&triple_count)) {
      return Status::Corruption("truncated triple header");
    }
    const size_t dict_size = store.dict().size();
    for (uint64_t i = 0; i < triple_count; ++i) {
      uint32_t s = 0;
      uint32_t p = 0;
      uint32_t o = 0;
      double score = 0.0;
      if (!reader.ReadU32(&s) || !reader.ReadU32(&p) || !reader.ReadU32(&o) ||
          !reader.ReadF64(&score)) {
        return Status::Corruption("truncated triple entry");
      }
      if (s >= dict_size || p >= dict_size || o >= dict_size) {
        return Status::Corruption("triple references unknown term id");
      }
      if (!(score >= 0.0)) {
        return Status::Corruption("triple has invalid score");
      }
      store.AddEncoded(s, p, o, score);
    }
    const size_t section_len =
        static_cast<size_t>(reader.cursor() - section_start);
    uint32_t stored_crc = 0;
    if (!reader.ReadU32(&stored_crc)) {
      return Status::Corruption("missing triple CRC");
    }
    if (Crc32c(section_start, section_len) != stored_crc) {
      return Status::Corruption("triple section CRC mismatch");
    }
  }

  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after triple section");
  }

  store.Finalize();
  return store;
}

// Materialises an owned store from a (checksum-verified) mapped v2/v3
// file. This is the compatibility path: the zero-copy path is MmapStore
// itself.
Result<TripleStore> MaterializeMapped(const MmapStore& mapped) {
  const TripleStore& view = mapped.store();
  const Dictionary& view_dict = view.dict();
  TripleStore store;
  for (TermId id = 0; id < view_dict.size(); ++id) {
    if (store.dict().Intern(view_dict.Name(id)) != id) {
      return Status::Corruption("duplicate term in dictionary section");
    }
  }
  const size_t dict_size = store.dict().size();
  for (const Triple& t : view.triples()) {
    if (t.s >= dict_size || t.p >= dict_size || t.o >= dict_size) {
      return Status::Corruption("triple references unknown term id");
    }
    if (!(t.score >= 0.0)) {
      return Status::Corruption("triple has invalid score");
    }
    store.AddEncoded(t.s, t.p, t.o, t.score);
  }
  store.Finalize();
  return store;
}

}  // namespace

Result<TripleStore> LoadStore(const std::string& path) {
  if (FaultShouldFail("store.open")) {
    return Status::IoError(
        StrFormat("injected fault: store.open for '%s'", path.c_str()));
  }
  SPECQP_ASSIGN_OR_RETURN(const uint32_t version, PeekStoreVersion(path));
  if (version == v2::kFormatVersion || version == v3::kFormatVersion) {
    // Full (eager) checksum verification before any byte is trusted —
    // for v3 this includes decode-validating every posting block.
    MmapStore::Options options;
    options.verify = MmapStore::Verify::kEager;
    SPECQP_ASSIGN_OR_RETURN(std::unique_ptr<MmapStore> mapped,
                            MmapStore::Open(path, options));
    return MaterializeMapped(*mapped);
  }

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::string blob(static_cast<size_t>(file_size), '\0');
  in.read(blob.data(), file_size);
  if (!in) {
    return Status::IoError(StrFormat("short read from '%s'", path.c_str()));
  }
  return LoadStoreV1(blob);
}

Result<uint32_t> PeekStoreVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  char magic[8] = {};
  uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) return Status::Corruption("truncated header");
  const bool v1_magic = std::memcmp(magic, kMagicV1, 8) == 0;
  const bool v2_magic = std::memcmp(magic, v2::kMagic, 8) == 0;
  const bool v3_magic = std::memcmp(magic, v3::kMagic, 8) == 0;
  if (!v1_magic && !v2_magic && !v3_magic) {
    return Status::Corruption("bad magic; not a Spec-QP store file");
  }
  if ((v1_magic && version != kFormatVersionV1) ||
      (v2_magic && version != v2::kFormatVersion) ||
      (v3_magic && version != v3::kFormatVersion)) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }
  return version;
}

}  // namespace specqp
