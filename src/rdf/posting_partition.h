#ifndef SPECQP_RDF_POSTING_PARTITION_H_
#define SPECQP_RDF_POSTING_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rdf/posting_list.h"
#include "rdf/triple_store.h"

namespace specqp {

// Hash-partitioning of posting lists by join-key binding.
//
// A rank join over inputs that all bind a common variable v decomposes
// into independent per-partition joins: rows whose v-bindings hash to
// different buckets can never join, so running one HRJN per bucket and
// merging the per-partition streams yields exactly the serial result.
// These helpers produce the per-bucket posting lists that feed such
// partitioned operator trees.

// Stable bucket of term `t` among `num_partitions` buckets (splitmix64
// finalizer — uniform even for dense consecutive TermIds). Deterministic
// across runs, platforms, and thread counts.
uint32_t PostingPartitionOf(TermId t, uint32_t num_partitions);

// Splits `list` into `num_partitions` sub-lists by the bucket of the term
// in triple slot `slot` (0 = subject, 1 = predicate, 2 = object) of each
// entry's triple. Entry order — and therefore the descending-score sort —
// is preserved within every sub-list, and `max_raw_score` (the Definition 5
// normaliser) is copied so partitioned scores stay identical to the
// unpartitioned ones. The union of the sub-lists is exactly `list`.
std::vector<std::shared_ptr<const PostingList>> PartitionPostingList(
    const TripleStore& store, const PostingList& list, int slot,
    uint32_t num_partitions);

}  // namespace specqp

#endif  // SPECQP_RDF_POSTING_PARTITION_H_
