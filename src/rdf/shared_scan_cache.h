#ifndef SPECQP_RDF_SHARED_SCAN_CACHE_H_
#define SPECQP_RDF_SHARED_SCAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/posting_list.h"
#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace specqp {

// Batch-scoped shared-scan layer above the PostingListCache.
//
// A query batch touches the same pattern keys over and over — identical
// patterns across queries, and many object-bound siblings (?s <p> <o_i>)
// of one predicate. This cache resolves every distinct key of a batch
// exactly once (Prepare), pins the resolved lists for the lifetime of the
// batch (the shared_ptrs held here keep the underlying cache from evicting
// them mid-batch), and serves the per-query operator trees lock-cheaply
// during execution.
//
// Shared scans: when several object-bound keys share a predicate, their
// posting lists are *derived* from a single pass over the predicate's base
// list (?s <p> ?o) instead of one store probe + sort per key. The derived
// lists are byte-identical to what BuildPostingList would produce (same
// entry set, same normalisation arithmetic, same sort order — see
// DeriveObjectList), so execution over them returns bit-identical answers;
// they are also published back into the underlying PostingListCache so
// later sequential queries reuse them. With a mapped v2 store the base
// list is a zero-copy view, making the derivation pass the only cost.
//
// Thread-safety: Prepare runs single-threaded (the batch prepare phase);
// Get is safe to call from concurrent per-query execution tasks.
class SharedScanCache {
 public:
  struct Counters {
    uint64_t hits = 0;            // Get() served from the batch map
    uint64_t misses = 0;          // Get() fell through to the base cache
    uint64_t resolved_lists = 0;  // distinct lists resolved by Prepare()
    uint64_t derived_lists = 0;   // of those, derived from a base scan
    uint64_t base_scans = 0;      // base predicate lists used for derivation
  };

  SharedScanCache(const TripleStore* store, PostingListCache* base);

  SharedScanCache(const SharedScanCache&) = delete;
  SharedScanCache& operator=(const SharedScanCache&) = delete;

  // Resolves every key in `keys` (duplicates and already-resolved keys are
  // skipped). Object-bound sibling keys of one predicate are derived from
  // a single shared scan of the predicate's base list when the estimated
  // derivation cost undercuts per-key builds; everything else goes through
  // the base cache. Call from one thread, before execution starts.
  void Prepare(std::span<const PatternKey> keys);

  // The key's posting list: from the batch map when prepared (a shared
  // scan hit), else through the base cache (counted as a miss here, and
  // inserted so the next Get hits). Thread-safe.
  [[nodiscard]] std::shared_ptr<const PostingList> Get(const PatternKey& key);

  Counters counters() const;
  size_t size() const;

  // Derives the posting list of (?s <p> <o>) from the predicate's base
  // list in one pass, bit-identical to BuildPostingList(store, key):
  // identical entry set (the base list covers every p-triple), identical
  // normalisation (scores recomputed from the store's raw triple scores,
  // not rescaled from the base list's normalised ones) and identical
  // (score desc, triple index asc) order. Exposed for tests.
  static PostingList DeriveObjectList(const TripleStore& store,
                                      const PostingList& base, TermId object);

 private:
  std::shared_ptr<const PostingList> ResolveOne(const PatternKey& key);
  // Resolves all of `objects` under predicate `p` from one base-list pass.
  void DeriveGroup(TermId p, const std::vector<TermId>& objects);

  const TripleStore* store_;
  PostingListCache* base_;

  mutable Mutex mu_;
  std::unordered_map<PatternKey, std::shared_ptr<const PostingList>,
                     PatternKeyHash>
      map_ SPECQP_GUARDED_BY(mu_);
  Counters counters_ SPECQP_GUARDED_BY(mu_);
};

}  // namespace specqp

#endif  // SPECQP_RDF_SHARED_SCAN_CACHE_H_
