#include "rdf/sharded_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "rdf/store_io.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/stop_probe.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace specqp {

namespace fs = std::filesystem;

namespace {

// Everything read back from a shard file's fixed-size prefix (header +
// section table), by raw file reads — no mapping, no MmapStore. Both the
// manifest writer and the bundle reader derive their digests from this,
// so the two sides agree byte for byte on what is being pinned.
struct ShardTable {
  uint32_t version = 0;
  uint64_t file_size = 0;
  uint64_t triple_count = 0;
  uint64_t term_count = 0;
  uint32_t table_crc32c = 0;  // over bytes [0, table_end)
  uint32_t dict_crc32c = 0;   // over the 3 dictionary section CRCs
};

Result<ShardTable> ReadShardTable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open shard file: " + path);

  v2::FileHeader header{};
  if (!in.read(reinterpret_cast<char*>(&header), sizeof(header))) {
    return Status::Corruption("shard file shorter than its header: " + path);
  }
  const bool v2_magic =
      std::memcmp(header.magic, v2::kMagic, sizeof(header.magic)) == 0;
  const bool v3_magic =
      std::memcmp(header.magic, v3::kMagic, sizeof(header.magic)) == 0;
  if (!v2_magic && !v3_magic) {
    return Status::Corruption("bad shard file magic: " + path);
  }
  if (header.section_count == 0 || header.section_count > v2::kMaxSections) {
    return Status::Corruption("implausible shard section count: " + path);
  }

  const uint64_t table_end =
      sizeof(v2::FileHeader) +
      uint64_t{header.section_count} * sizeof(v2::SectionEntry);
  std::error_code ec;
  const uint64_t actual_size = fs::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat shard file: " + path);
  if (table_end > actual_size) {
    return Status::Corruption("shard section table past end of file: " + path);
  }

  std::vector<char> table_bytes(table_end);
  in.seekg(0);
  if (!in.read(table_bytes.data(),
               static_cast<std::streamsize>(table_bytes.size()))) {
    return Status::Corruption("shard file truncated in section table: " +
                              path);
  }

  uint32_t dict_crcs[3] = {0, 0, 0};
  bool dict_seen[3] = {false, false, false};
  const auto* entries = reinterpret_cast<const v2::SectionEntry*>(
      table_bytes.data() + sizeof(v2::FileHeader));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    switch (static_cast<v2::SectionId>(entries[i].id)) {
      case v2::SectionId::kDictOffsets:
        dict_crcs[0] = entries[i].crc32c;
        dict_seen[0] = true;
        break;
      case v2::SectionId::kDictBlob:
        dict_crcs[1] = entries[i].crc32c;
        dict_seen[1] = true;
        break;
      case v2::SectionId::kDictSorted:
        dict_crcs[2] = entries[i].crc32c;
        dict_seen[2] = true;
        break;
      default:
        break;
    }
  }
  if (!dict_seen[0] || !dict_seen[1] || !dict_seen[2]) {
    return Status::Corruption("shard file lacks dictionary sections: " + path);
  }

  ShardTable result;
  result.version = header.version;
  result.file_size = actual_size;
  result.triple_count = header.triple_count;
  result.term_count = header.term_count;
  result.table_crc32c = Crc32c(table_bytes.data(), table_bytes.size());
  result.dict_crc32c = Crc32c(dict_crcs, sizeof(dict_crcs));
  return result;
}

// The three permutation orders MatchIndices routes through, so the gather
// can merge per-shard subranges in exactly the order the single-file index
// would enumerate them.
enum class Route { kSpo, kPos, kOsp };

Route RouteOf(const PatternKey& key) {
  const bool sb = key.s_bound();
  const bool pb = key.p_bound();
  const bool ob = key.o_bound();
  if (sb) return (ob && !pb) ? Route::kOsp : Route::kSpo;
  if (pb) return Route::kPos;
  if (ob) return Route::kOsp;
  return Route::kSpo;
}

bool RouteBefore(const Triple& a, const Triple& b, Route route) {
  switch (route) {
    case Route::kSpo:
      return OrderSpo()(a, b);
    case Route::kPos:
      return OrderPos()(a, b);
    case Route::kOsp:
      return OrderOsp()(a, b);
  }
  return false;
}

uint64_t CountBundleShardFiles(const fs::path& dir) {
  uint64_t count = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.starts_with("shard_") && name.ends_with(".sqps")) ++count;
  }
  return count;
}

}  // namespace

std::string BundleShardFileName(uint32_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%04u.sqps", shard_id);
  return buf;
}

bool IsBundlePath(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    return fs::exists(fs::path(path) / bundle::kManifestFileName, ec);
  }
  if (!fs::is_regular_file(path, ec)) return false;
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  return in.read(magic, sizeof(magic)) &&
         std::memcmp(magic, bundle::kMagic, sizeof(magic)) == 0;
}

Status WriteBundleManifest(const std::string& dir, uint32_t shard_count,
                           bundle::HashScheme scheme,
                           uint32_t format_version) {
  if (shard_count == 0 || shard_count > bundle::kMaxShards) {
    return Status::InvalidArgument("bundle shard count out of range");
  }

  bundle::ManifestHeader header{};
  std::memcpy(header.magic, bundle::kMagic, sizeof(header.magic));
  header.version = bundle::kFormatVersion;
  header.shard_count = shard_count;
  header.hash_scheme = static_cast<uint32_t>(scheme);
  header.store_format = format_version;

  std::vector<bundle::ManifestShardEntry> entries(shard_count);
  uint32_t dict_crc0 = 0;
  for (uint32_t i = 0; i < shard_count; ++i) {
    const std::string shard_path =
        (fs::path(dir) / BundleShardFileName(i)).string();
    SPECQP_ASSIGN_OR_RETURN(ShardTable table, ReadShardTable(shard_path));
    if (table.version != format_version) {
      return Status::InvalidArgument("shard file format mismatch: " +
                                     shard_path);
    }
    if (i == 0) {
      dict_crc0 = table.dict_crc32c;
      header.term_count = table.term_count;
    } else if (table.dict_crc32c != dict_crc0 ||
               table.term_count != header.term_count) {
      return Status::InvalidArgument(
          "shard dictionaries differ; every shard must carry the full "
          "dictionary in identical intern order: " +
          shard_path);
    }
    header.total_triples += table.triple_count;
    entries[i] = bundle::ManifestShardEntry{
        /*shard_id=*/i,          /*reserved=*/0,
        table.file_size,         table.triple_count,
        table.table_crc32c,      table.dict_crc32c};
  }

  std::vector<char> bytes(sizeof(header) +
                          entries.size() * sizeof(entries[0]) +
                          sizeof(uint32_t));
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::memcpy(bytes.data() + sizeof(header), entries.data(),
              entries.size() * sizeof(entries[0]));
  const uint32_t crc =
      Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));

  const std::string manifest_path =
      (fs::path(dir) / bundle::kManifestFileName).string();
  std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size())) ||
      !out.flush()) {
    return Status::IoError("cannot write bundle manifest: " + manifest_path);
  }
  return Status::Ok();
}

Status WriteShardBundle(const TripleStore& store, const std::string& dir,
                        const ShardBundleOptions& options) {
  if (!store.finalized()) {
    return Status::FailedPrecondition(
        "WriteShardBundle requires a finalized store");
  }
  if (store.is_sharded()) {
    return Status::FailedPrecondition(
        "WriteShardBundle cannot re-shard a sharded facade; "
        "use tools/store_shard on the source data instead");
  }
  if (options.shard_count == 0 || options.shard_count > bundle::kMaxShards) {
    return Status::InvalidArgument("bundle shard count out of range");
  }

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create bundle directory: " + dir);

  // Partition the (already deduplicated, SPO-sorted) triples. Duplicates
  // of one (s,p,o) share the hashed term by construction, so per-shard
  // dedup in any later Finalize is identical to the global one.
  std::vector<std::vector<uint32_t>> partition(options.shard_count);
  const std::span<const Triple> triples = store.triples();
  for (uint32_t i = 0; i < triples.size(); ++i) {
    partition[BundleShardOfTriple(triples[i], options.scheme,
                                  options.shard_count)]
        .push_back(i);
  }

  // Each shard file carries the full dictionary in the store's intern
  // order, so TermIds are bundle-global and no id translation exists
  // anywhere in the read path.
  const Dictionary& dict = store.dict();
  std::vector<Status> statuses(options.shard_count);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(options.shard_count);
  for (uint32_t shard = 0; shard < options.shard_count; ++shard) {
    tasks.push_back([&, shard] {
      TripleStore shard_store;
      for (TermId id = 0; id < dict.size(); ++id) {
        shard_store.dict().Intern(dict.Name(id));
      }
      for (uint32_t idx : partition[shard]) {
        const Triple& t = triples[idx];
        shard_store.AddEncoded(t.s, t.p, t.o, t.score);
      }
      shard_store.Finalize();
      SaveStoreOptions save;
      save.format_version = options.format_version;
      save.posting_directory = options.posting_directory;
      statuses[shard] = SaveStore(
          shard_store, (fs::path(dir) / BundleShardFileName(shard)).string(),
          save);
    });
  }
  if (options.pool != nullptr) {
    options.pool->RunAndWait(&tasks);
  } else {
    for (auto& task : tasks) task();
  }
  for (const Status& status : statuses) SPECQP_RETURN_IF_ERROR(status);

  return WriteBundleManifest(dir, options.shard_count, options.scheme,
                             options.format_version);
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& path, const Options& options) {
  std::error_code ec;
  fs::path dir(path);
  if (!fs::is_directory(dir, ec)) dir = dir.parent_path();
  const std::string manifest_path =
      (dir / bundle::kManifestFileName).string();

  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) return Status::IoError("cannot open bundle manifest: " +
                                  manifest_path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(bundle::ManifestHeader) + sizeof(uint32_t)) {
    return Status::Corruption("truncated bundle manifest: " + manifest_path);
  }

  bundle::ManifestHeader header{};
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, bundle::kMagic, sizeof(header.magic)) != 0) {
    return Status::Corruption("bad bundle manifest magic: " + manifest_path);
  }
  if (header.version != bundle::kFormatVersion) {
    return Status::Corruption("unsupported bundle manifest version: " +
                              manifest_path);
  }
  if (header.shard_count == 0 || header.shard_count > bundle::kMaxShards) {
    return Status::Corruption("bundle shard count out of range: " +
                              manifest_path);
  }
  const auto scheme = static_cast<bundle::HashScheme>(header.hash_scheme);
  if (scheme != bundle::HashScheme::kSubject &&
      scheme != bundle::HashScheme::kPredicate) {
    return Status::Corruption("unknown bundle hash scheme: " + manifest_path);
  }
  if (header.store_format != v2::kFormatVersion &&
      header.store_format != v3::kFormatVersion) {
    return Status::Corruption("unsupported bundle store format: " +
                              manifest_path);
  }
  const size_t expected_size = sizeof(header) +
                               uint64_t{header.shard_count} *
                                   sizeof(bundle::ManifestShardEntry) +
                               sizeof(uint32_t);
  if (bytes.size() != expected_size) {
    return Status::Corruption("bundle manifest size disagrees with its "
                              "shard count: " +
                              manifest_path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t)) != stored_crc) {
    return Status::Corruption("bundle manifest checksum mismatch: " +
                              manifest_path);
  }

  std::vector<bundle::ManifestShardEntry> entries(header.shard_count);
  std::memcpy(entries.data(), bytes.data() + sizeof(header),
              entries.size() * sizeof(entries[0]));
  for (uint32_t i = 0; i < header.shard_count; ++i) {
    if (entries[i].shard_id != i || entries[i].reserved != 0) {
      return Status::Corruption("bundle manifest shard ids must be 0..N-1 "
                                "in order: " +
                                manifest_path);
    }
  }

  // Every shard file the manifest names must exist, and no extra shard
  // files may be present — a stray or missing shard_*.sqps is treated as
  // corruption, not silently ignored or half-opened. Under quarantine a
  // MISSING shard is a per-shard failure handled below (retry, then serve
  // degraded), but an EXTRA shard file is still a writer-contract breach
  // no amount of retrying fixes.
  const uint64_t present = CountBundleShardFiles(dir);
  if (options.allow_quarantine ? present > header.shard_count
                               : present != header.shard_count) {
    return Status::Corruption(
        "bundle shard file count disagrees with manifest: " + manifest_path);
  }

  auto sharded = std::unique_ptr<ShardedStore>(new ShardedStore());
  sharded->scheme_ = scheme;
  sharded->store_format_ = header.store_format;
  sharded->runtime_ =
      std::make_unique<ShardRuntime[]>(header.shard_count);
  {
    // Pre-publication (no concurrent readers yet), but taking the lock
    // keeps the guarded_by contract unconditional.
    MutexLock lock(sharded->quarantine_mutex_);
    sharded->quarantine_reasons_.resize(header.shard_count);
  }

  uint64_t total_triples = 0;
  for (uint32_t i = 0; i < header.shard_count; ++i) {
    const std::string shard_path = (dir / BundleShardFileName(i)).string();
    // One open attempt: validate the prefix against the manifest, then
    // map. Returned (not thrown) statuses classify retryability:
    // IoError-class failures (missing file, injected shard.open) may be
    // transient; Corruption (digest/format/count/dict mismatches) is
    // final.
    const auto open_one = [&]() -> Result<std::unique_ptr<MmapStore>> {
      if (FaultShouldFail("shard.open", i)) {
        return Status::IoError("injected fault: shard.open for " + shard_path);
      }
      SPECQP_ASSIGN_OR_RETURN(ShardTable table, ReadShardTable(shard_path));
      // The digest check precedes the version check so a v2 file smuggled
      // into a v3 bundle in place of a shard (different bytes, different
      // digest) reports as the integrity failure it is.
      if (table.file_size != entries[i].file_size ||
          table.table_crc32c != entries[i].table_crc32c) {
        return Status::Corruption(
            "shard file disagrees with manifest digest: " + shard_path);
      }
      if (table.version != header.store_format) {
        return Status::Corruption("shard file format differs from manifest: " +
                                  shard_path);
      }
      if (table.triple_count != entries[i].triple_count ||
          table.term_count != header.term_count) {
        return Status::Corruption("shard counts disagree with manifest: " +
                                  shard_path);
      }
      if (table.dict_crc32c != entries[i].dict_crc32c ||
          table.dict_crc32c != entries[0].dict_crc32c) {
        return Status::Corruption(
            "shard dictionary differs across the bundle: " + shard_path);
      }
      MmapStore::Options open_options;
      open_options.verify = options.verify;
      return MmapStore::Open(shard_path, open_options);
    };

    Result<std::unique_ptr<MmapStore>> shard =
        options.allow_quarantine ? RunWithRetry(options.open_retry, open_one)
                                 : open_one();
    if (!shard.ok()) {
      if (!options.allow_quarantine) return shard.status();
      // Exhausted its retries (or failed finally): quarantine the slot
      // and serve from the survivors.
      sharded->shards_.push_back(nullptr);
      sharded->runtime_[i].quarantined.store(true, std::memory_order_release);
      sharded->quarantined_count_.fetch_add(1, std::memory_order_acq_rel);
      {
        MutexLock lock(sharded->quarantine_mutex_);
        sharded->quarantine_reasons_[i] = shard.status().ToString();
      }
      continue;
    }
    total_triples += entries[i].triple_count;
    sharded->shards_.push_back(std::move(shard.value()));
  }
  const uint32_t failed_at_open =
      sharded->quarantined_count_.load(std::memory_order_acquire);
  if (failed_at_open == header.shard_count) {
    return Status::Unavailable(
        "every shard of the bundle failed to open: " + manifest_path);
  }
  if (failed_at_open == 0 && total_triples != header.total_triples) {
    return Status::Corruption("bundle triple total disagrees with manifest: " +
                              manifest_path);
  }

  // Eager verification re-hashes every triple's shard assignment: a
  // triple sitting in the wrong shard is invisible to the merge (which is
  // hash-agnostic) but breaks the writer contract and would desync any
  // out-of-process re-shard, so strict readers reject it.
  if (options.verify == MmapStore::Verify::kEager) {
    for (uint32_t shard = 0; shard < sharded->shards_.size(); ++shard) {
      if (sharded->shards_[shard] == nullptr) continue;
      for (const Triple& t : sharded->shards_[shard]->store().triples()) {
        if (BundleShardOfTriple(t, scheme,
                                static_cast<uint32_t>(
                                    sharded->shards_.size())) != shard) {
          return Status::Corruption("triple hashed into the wrong shard: " +
                                    (dir / BundleShardFileName(shard))
                                        .string());
        }
      }
    }
  }

  SPECQP_RETURN_IF_ERROR(sharded->BuildGlobalOrder());

  sharded->gather_ =
      std::make_unique<GatherCounters[]>(sharded->shards_.size());
  const MmapStore* first_alive = nullptr;
  for (const auto& shard : sharded->shards_) {
    if (shard != nullptr) {
      first_alive = shard.get();
      break;
    }
  }
  // Every shard carries the full dictionary in identical intern order, so
  // any survivor's view is THE bundle dictionary.
  sharded->facade_ = TripleStore::FromShardedSource(
      first_alive->NewDictionaryView(), sharded.get());
  return sharded;
}

Status ShardedStore::BuildGlobalOrder() {
  const size_t n = shards_.size();
  uint64_t total = 0;
  std::vector<std::span<const Triple>> rows(n);
  for (size_t s = 0; s < n; ++s) {
    // A shard quarantined at open contributes nothing: the global space
    // is the SPO merge of the SURVIVORS (what a single-file store over
    // the surviving triples would look like).
    if (shards_[s] != nullptr) rows[s] = shards_[s]->store().triples();
    total += rows[s].size();
  }
  if (total > UINT32_MAX) {
    return Status::Corruption("bundle exceeds the 2^32 global triple space");
  }

  loc_shard_.resize(total);
  loc_local_.resize(total);
  global_of_.resize(n);
  for (size_t s = 0; s < n; ++s) {
    global_of_[s].resize(rows[s].size());
  }

  // N-way merge by SPO order. Each shard is locally SPO-sorted (its
  // writer finalized it), so the merged sequence must be STRICTLY
  // ascending; an equal or descending step means a cross-shard duplicate
  // triple or an unsorted shard — either way the bundle is corrupt.
  std::vector<size_t> head(n, 0);
  const Triple* prev = nullptr;
  for (uint64_t global = 0; global < total; ++global) {
    size_t best = n;
    for (size_t s = 0; s < n; ++s) {
      if (head[s] == rows[s].size()) continue;
      if (best == n ||
          OrderSpo()(rows[s][head[s]], rows[best][head[best]])) {
        best = s;
      }
    }
    const Triple& t = rows[best][head[best]];
    if (prev != nullptr && !OrderSpo()(*prev, t)) {
      return Status::Corruption(
          "bundle shards overlap or are unsorted: duplicate or descending "
          "triple in the SPO merge");
    }
    prev = &t;
    loc_shard_[global] = static_cast<uint16_t>(best);
    loc_local_[global] = static_cast<uint32_t>(head[best]);
    global_of_[best][head[best]] = static_cast<uint32_t>(global);
    ++head[best];
  }
  return Status::Ok();
}

const Triple& ShardedStore::TripleAt(uint32_t global_index) const {
  return TripleUncounted(global_index);
}

std::span<const uint32_t> ShardedStore::Match(const PatternKey& key) const {
  const size_t n = shards_.size();
  // A shard can fault mid-gather (zero-filled pages, injected
  // shard.read): quarantine it and RESTART the whole scatter over the
  // survivors rather than patching a half-built merge. Each restart
  // needs a fresh quarantine, so the loop is bounded by the shard count.
  for (size_t attempt = 0; attempt <= n + 1; ++attempt) {
    const uint64_t epoch0 = fault_epoch_.load(std::memory_order_acquire);
    {
      MutexLock lock(memo_mutex_);
      auto it = match_memo_.find(key);
      if (it != match_memo_.end() && it->second.epoch == epoch0) {
        return it->second.ids;
      }
    }

    // Scatter: each live shard answers the pattern from its own
    // permutation indexes, in the route's value order, as local indices
    // mapped to the global space here.
    const Route route = RouteOf(key);
    std::vector<std::vector<uint32_t>> scattered(n);
    size_t total = 0;
    bool restart = false;
    for (size_t s = 0; s < n && !restart; ++s) {
      if (!shard_alive(s)) continue;
      // Poll cancellation between per-shard probes so a cancelled query
      // aborts promptly even mid-scatter over large shards. Returned
      // early results are NEVER memoised (and the posting-list cache
      // skips inserts under an active stop), so a truncated gather can't
      // poison later queries.
      if (ScopedStopProbe::StopRequested()) return {};
      if (FaultShouldFail("shard.read", s)) {
        Quarantine(s, "injected fault: shard.read");
        restart = true;
        break;
      }
      const std::span<const uint32_t> local =
          shards_[s]->store().MatchIndices(key);
      scattered[s].reserve(local.size());
      // Bound-check against zero-page garbage: a faulted mapping's index
      // pages read as zeros, which can produce out-of-range locals. The
      // sweep below catches the fault; the clamp keeps this pass safe.
      const std::vector<uint32_t>& to_global = global_of_[s];
      for (uint32_t idx : local) {
        if (idx < to_global.size()) scattered[s].push_back(to_global[idx]);
      }
      total += scattered[s].size();
    }
    PollFaults();
    if (restart || fault_epoch_.load(std::memory_order_acquire) != epoch0) {
      continue;
    }

    // Gather: K-way merge under the route's total order. Each per-shard
    // list is already in that order and the orders are total over unique
    // triples, so the merge has no ties and reproduces exactly the
    // subrange a single-file store's index would return.
    std::vector<uint32_t> merged;
    merged.reserve(total);
    std::vector<size_t> head(n, 0);
    uint32_t steps = 0;
    while (merged.size() < total) {
      if ((++steps & 8191u) == 0 && ScopedStopProbe::StopRequested()) {
        return {};
      }
      size_t best = n;
      for (size_t s = 0; s < n; ++s) {
        if (head[s] == scattered[s].size()) continue;
        if (best == n ||
            RouteBefore(TripleUncounted(scattered[s][head[s]]),
                        TripleUncounted(scattered[best][head[best]]), route)) {
          best = s;
        }
      }
      merged.push_back(scattered[best][head[best]++]);
    }
    // The merge dereferenced triples through the shard mappings; sweep
    // again so a page lost DURING the merge invalidates this pass.
    PollFaults();

    MutexLock lock(memo_mutex_);
    if (fault_epoch_.load(std::memory_order_acquire) != epoch0) continue;
    for (size_t s = 0; s < n; ++s) {
      if (scattered[s].empty() && !shard_alive(s)) continue;
      gather_[s].patterns.fetch_add(1, std::memory_order_relaxed);
      gather_[s].triples.fetch_add(scattered[s].size(),
                                   std::memory_order_relaxed);
    }
    auto [it, inserted] = match_memo_.try_emplace(key);
    if (!inserted) {
      if (it->second.epoch == epoch0) return it->second.ids;  // racer won
      // Stale generation: its buffer may back spans already handed out,
      // so retire it instead of freeing it.
      retired_.push_back(std::move(it->second.ids));
    }
    it->second.epoch = epoch0;
    it->second.ids = std::move(merged);
    return it->second.ids;
  }
  // Unreachable without a quarantine per attempt; by then every shard is
  // gone and the empty answer is the right degraded one.
  return {};
}

void ShardedStore::Quarantine(size_t i, const std::string& reason) const {
  MutexLock lock(quarantine_mutex_);
  if (runtime_[i].quarantined.load(std::memory_order_acquire)) return;
  // Order matters for readers without the lock: the per-shard flag first
  // (scatters stop touching the shard), the epoch last (a reader that
  // sees the old epoch and serves a pre-fault answer is then invalidated
  // by its own post-pass epoch check).
  runtime_[i].quarantined.store(true, std::memory_order_release);
  quarantined_count_.fetch_add(1, std::memory_order_acq_rel);
  quarantine_reasons_[i] = reason;
  fault_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::string ShardedStore::quarantine_reason(size_t i) const {
  MutexLock lock(quarantine_mutex_);
  return quarantine_reasons_[i];
}

void ShardedStore::PollFaults() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_alive(s) && shards_[s]->mapping_faults() > 0) {
      Quarantine(s, StrFormat("mapping lost %llu page(s) (SIGBUS contained, "
                              "zero-filled)",
                              static_cast<unsigned long long>(
                                  shards_[s]->mapping_faults())));
    }
  }
}

size_t ShardedStore::bytes_mapped() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    if (shard != nullptr) total += shard->bytes_mapped();
  }
  return total;
}

std::vector<ShardedStore::ShardCounters> ShardedStore::Counters() const {
  std::vector<ShardCounters> out(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    out[s].shard_id = static_cast<uint32_t>(s);
    if (shards_[s] != nullptr) {
      out[s].triple_count = shards_[s]->store().size();
      out[s].bytes_mapped = shards_[s]->bytes_mapped();
    }
    out[s].triples_gathered =
        gather_[s].triples.load(std::memory_order_relaxed);
    out[s].patterns_scattered =
        gather_[s].patterns.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace specqp
