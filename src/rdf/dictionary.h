#ifndef SPECQP_RDF_DICTIONARY_H_
#define SPECQP_RDF_DICTIONARY_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"
#include "util/result.h"

namespace specqp {

// Bidirectional string <-> TermId mapping. Interning the same string twice
// returns the same id; ids are dense, starting at 0, in insertion order.
//
// Strings are stored in a deque so that the string_view keys of the reverse
// index stay valid as the dictionary grows (deque growth never moves
// existing elements).
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  // Returns the id for `term`, interning it if unseen.
  TermId Intern(std::string_view term);

  // Returns the id for `term` or kNotFound if never interned.
  Result<TermId> Find(std::string_view term) const;

  // True iff `term` has been interned.
  bool Contains(std::string_view term) const;

  // The string for `id`; id must be < size().
  std::string_view Name(TermId id) const;

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, TermId> index_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_DICTIONARY_H_
