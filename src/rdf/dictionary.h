#ifndef SPECQP_RDF_DICTIONARY_H_
#define SPECQP_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"
#include "util/result.h"

namespace specqp {

// Bidirectional string <-> TermId mapping. Interning the same string twice
// returns the same id; ids are dense, starting at 0, in insertion order.
//
// Two backends share the same query interface:
//
//  * Owned (default): strings live in a deque so the string_view keys of
//    the reverse index stay valid as the dictionary grows (deque growth
//    never moves existing elements). Intern() of unseen terms is allowed.
//
//  * View (FromView): a frozen, zero-copy dictionary over a mapped
//    SQPSTOR2 file (docs/FORMATS.md). Name() slices the mapped blob with
//    no allocation; Find() binary-searches the file's lexicographic term
//    permutation, so opening costs O(1) — no reverse-index build, no
//    string copies. Intern() of a term that is already present returns
//    its id; interning an unseen term CHECK-fails (views are read-only).
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  // View over mapped memory: term i occupies blob[offsets[i], offsets[i+1])
  // (so `offsets` has size()+1 elements and offsets[0] == 0) and `sorted`
  // lists all term ids in lexicographic term order. The caller guarantees
  // the mapping outlives the dictionary and that the spans were bounds-
  // checked against the mapped file (MmapStore does both).
  static Dictionary FromView(std::span<const uint64_t> offsets,
                             const char* blob, size_t blob_size,
                             std::span<const uint32_t> sorted);

  // Returns the id for `term`, interning it if unseen (owned backend
  // only; a view dictionary CHECK-fails on unseen terms).
  TermId Intern(std::string_view term);

  // Returns the id for `term` or NotFound if never interned.
  [[nodiscard]] Result<TermId> Find(std::string_view term) const;

  // True iff `term` has been interned.
  bool Contains(std::string_view term) const;

  // The string for `id`; id must be < size(). Zero-copy on both backends.
  std::string_view Name(TermId id) const;

  size_t size() const {
    return view_ ? view_offsets_.size() - 1 : terms_.size();
  }
  bool empty() const { return size() == 0; }
  bool is_view() const { return view_; }

 private:
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, TermId> index_;

  // View backend (non-owning; valid while the mapping is alive).
  bool view_ = false;
  std::span<const uint64_t> view_offsets_;
  const char* view_blob_ = nullptr;
  size_t view_blob_size_ = 0;
  std::span<const uint32_t> view_sorted_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_DICTIONARY_H_
