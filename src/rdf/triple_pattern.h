#ifndef SPECQP_RDF_TRIPLE_PATTERN_H_
#define SPECQP_RDF_TRIPLE_PATTERN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace specqp {

// One position of a triple pattern: either a constant term or a variable.
class PatternTerm {
 public:
  PatternTerm() : is_var_(true), id_(kInvalidVarId) {}

  static PatternTerm Const(TermId t) { return PatternTerm(false, t); }
  static PatternTerm Var(VarId v) { return PatternTerm(true, v); }

  bool is_variable() const { return is_var_; }
  bool is_constant() const { return !is_var_; }

  TermId term() const;
  VarId var() const;

  friend bool operator==(const PatternTerm& a, const PatternTerm& b) {
    return a.is_var_ == b.is_var_ && a.id_ == b.id_;
  }

 private:
  PatternTerm(bool is_var, uint32_t id) : is_var_(is_var), id_(id) {}

  bool is_var_;
  uint32_t id_;  // TermId if constant, VarId if variable
};

// Identifies the *match set* of a pattern: bound constants with
// kInvalidTermId in free positions. Two patterns with equal keys match
// exactly the same triples regardless of how their variables are named, so
// the statistics catalog, posting-list cache, and relaxation index are all
// keyed on PatternKey.
struct PatternKey {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool s_bound() const { return s != kInvalidTermId; }
  bool p_bound() const { return p != kInvalidTermId; }
  bool o_bound() const { return o != kInvalidTermId; }
  int num_bound() const {
    return (s_bound() ? 1 : 0) + (p_bound() ? 1 : 0) + (o_bound() ? 1 : 0);
  }

  // True iff `t` agrees with every bound position.
  bool Matches(const Triple& t) const {
    return (!s_bound() || t.s == s) && (!p_bound() || t.p == p) &&
           (!o_bound() || t.o == o);
  }

  friend bool operator==(const PatternKey& a, const PatternKey& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

struct PatternKeyHash {
  size_t operator()(const PatternKey& k) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix(k.s);
    mix(k.p);
    mix(k.o);
    return static_cast<size_t>(h);
  }
};

// A triple pattern <S P O> (Definition 2): each position is a constant or a
// query variable.
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  TriplePattern() = default;
  TriplePattern(PatternTerm s_in, PatternTerm p_in, PatternTerm o_in)
      : s(s_in), p(p_in), o(o_in) {}

  // The match-set key (variable names erased).
  PatternKey Key() const;

  // Variables appearing in this pattern (at most 3, without duplicates).
  // Returns the count and fills `out[0..count)`.
  int Variables(VarId out[3]) const;

  bool UsesVariable(VarId v) const;

  friend bool operator==(const TriplePattern& a, const TriplePattern& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

// First slot (0=s, 1=p, 2=o) where variable `v` occurs in `q`, or -1.
int SlotOfVar(const TriplePattern& q, VarId v);

// True when triple `t` is a consistent match for `q` even if `q` repeats a
// variable (e.g. <?x p ?x> requires t.s == t.o). Constant agreement is
// assumed to be guaranteed by the index lookup already.
bool ConsistentMatch(const TriplePattern& q, const Triple& t);

struct TriplePatternHash {
  size_t operator()(const TriplePattern& q) const {
    PatternKeyHash kh;
    size_t h = kh(q.Key());
    auto mix_var = [&h](const PatternTerm& t) {
      h = h * 1315423911u + (t.is_variable() ? 0x85EBCA6Bu + t.var() : 0u);
    };
    mix_var(q.s);
    mix_var(q.p);
    mix_var(q.o);
    return h;
  }
};

}  // namespace specqp

#endif  // SPECQP_RDF_TRIPLE_PATTERN_H_
