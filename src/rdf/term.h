#ifndef SPECQP_RDF_TERM_H_
#define SPECQP_RDF_TERM_H_

#include <cstdint>
#include <limits>

namespace specqp {

// Dictionary-encoded identifier for an RDF term (entity, predicate, or
// literal token). Every string in the knowledge graph is interned exactly
// once; triples and patterns carry TermIds only.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId =
    std::numeric_limits<TermId>::max();

// Index of a variable inside one query's variable table (see
// query/query.h). Variables are per-query, not global.
using VarId = uint16_t;

inline constexpr VarId kInvalidVarId = std::numeric_limits<VarId>::max();

}  // namespace specqp

#endif  // SPECQP_RDF_TERM_H_
