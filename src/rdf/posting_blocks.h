#ifndef SPECQP_RDF_POSTING_BLOCKS_H_
#define SPECQP_RDF_POSTING_BLOCKS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rdf/posting_entry.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace specqp {

// Block-compressed posting lists (store format v3, docs/FORMATS.md).
//
// A posting list — entries sorted by (normalised score descending, triple
// index ascending) — is cut into fixed-size blocks of kPostingBlockEntries
// entries (the last block may be shorter). Each block is delta-encoded
// into a private byte range of the payload section and summarised by a
// 32-byte header, so readers can reason about a block (its score ceiling,
// its id range, its location) without decoding it:
//
//   * triple indexes as zigzag varints of the delta to the previous entry
//     (the first entry deltas against 0);
//   * scores as varints of the difference between consecutive IEEE-754
//     bit patterns. Scores are non-negative and non-increasing, and for
//     non-negative doubles the total order of values equals the total
//     order of their bit patterns read as uint64 — so the deltas are
//     non-negative, score ties cost one byte, and decoding reproduces
//     every score bit-for-bit. This is the "quantisation onto the
//     IEEE-754 grid": residuals are exact by construction, which is what
//     keeps v3 answers bit-identical to v2.
//
// Every decode path validates: exact byte consumption, header/content
// agreement (max_score is the first entry's score, min_id/max_id are the
// block's exact id range), ordering within the block, and score range.
// Malformed payloads surface as Status::Corruption, never as a crash.

inline constexpr size_t kPostingBlockEntries = 64;

// One block's summary. `byte_offset`/`byte_length` locate the encoded
// payload inside the kPostingBlocks section; `max_score` equals the
// block's first (highest) entry score exactly; `min_id`/`max_id` are the
// smallest and largest triple index appearing in the block (the id-range
// summary SkipToId prunes with). `reserved` must be zero.
struct PostingBlockHeader {
  uint64_t byte_offset;
  uint32_t byte_length;
  uint16_t entry_count;  // in [1, kPostingBlockEntries]
  uint16_t reserved;
  double max_score;
  uint32_t min_id;
  uint32_t max_id;
};
static_assert(sizeof(PostingBlockHeader) == 32 &&
              alignof(PostingBlockHeader) == 8 &&
              offsetof(PostingBlockHeader, byte_offset) == 0 &&
              offsetof(PostingBlockHeader, byte_length) == 8 &&
              offsetof(PostingBlockHeader, entry_count) == 12 &&
              offsetof(PostingBlockHeader, reserved) == 14 &&
              offsetof(PostingBlockHeader, max_score) == 16 &&
              offsetof(PostingBlockHeader, min_id) == 24 &&
              offsetof(PostingBlockHeader, max_id) == 28);

// Encoder output: headers with byte offsets relative to the start of
// `payload` (a writer concatenating several lists rebases them).
struct EncodedPostingBlocks {
  std::vector<PostingBlockHeader> headers;
  std::vector<uint8_t> payload;
};

// Cuts `entries` (sorted by score desc, id asc) into blocks and encodes
// them. Deterministic byte-for-byte for a given input.
EncodedPostingBlocks EncodePostingBlocks(const PostingEntry* entries,
                                         size_t count);

// One decoded block's entries, shared between the memoising source and any
// live iterators (so dropping the memo never invalidates a reader).
struct DecodedPostingBlock {
  std::vector<PostingEntry> entries;
};

// Decodes and validates the block `header` describes against the whole
// payload section. `id_limit` bounds triple indexes (pass the store's
// triple count; UINT32_MAX disables the check). On success `out->entries`
// holds exactly header.entry_count entries.
[[nodiscard]] Status DecodePostingBlock(const PostingBlockHeader& header,
                                        std::span<const uint8_t> payload,
                                        uint32_t id_limit,
                                        DecodedPostingBlock* out);

// The block backend of a PostingList: block headers plus the encoded
// payload (zero-copy spans into a mapping, or owned buffers), with a
// thread-safe per-block memo of decoded entries.
//
// Decoded blocks are handed out as shared_ptr so the cache layer can
// release the memo (block-granular eviction, see PostingListCache) while
// iterators mid-block keep their snapshot alive. decoded_bytes() feeds the
// cache's byte accounting.
class PostingBlockSource {
 public:
  // Zero-copy over mapped memory; the caller keeps the mapping alive.
  PostingBlockSource(std::span<const PostingBlockHeader> headers,
                     std::span<const uint8_t> payload, uint64_t entry_count,
                     uint32_t id_limit = UINT32_MAX);
  // Owning variant (in-memory blocked lists, tests).
  PostingBlockSource(std::vector<PostingBlockHeader> headers,
                     std::vector<uint8_t> payload, uint64_t entry_count,
                     uint32_t id_limit = UINT32_MAX);

  PostingBlockSource(const PostingBlockSource&) = delete;
  PostingBlockSource& operator=(const PostingBlockSource&) = delete;

  size_t num_blocks() const { return headers_.size(); }
  uint64_t entry_count() const { return entry_count_; }
  const PostingBlockHeader& header(size_t block) const {
    return headers_[block];
  }

  // The block's decoded entries, memoised. A payload that fails to decode
  // — a crafted file that slipped past lazy verification, a mapping page
  // the SIGBUS handler zero-filled mid-query, or an injected
  // "block.decode" fault — raises fault_count() and yields a placeholder
  // block of {id 0, score 0} entries (shape-correct, never cached), so
  // the iterator stays memory-safe and the scan above notices the fault
  // at its next poll instead of the process CHECK-dying.
  std::shared_ptr<const DecodedPostingBlock> Decode(size_t block) const;

  // Number of Decode calls that have failed over the source's lifetime.
  // Iterators snapshot this at construction and treat any increase as
  // "my data may contain placeholders" — which fails the query with
  // IoError but does not poison later queries: the placeholder is never
  // memoised, so a transiently-faulted block decodes afresh next time,
  // while genuine corruption fails again and re-raises the count.
  uint64_t fault_count() const {
    return fault_count_.load(std::memory_order_acquire);
  }

  // Bytes held by the decoded-block memo right now.
  size_t decoded_bytes() const {
    return decoded_bytes_.load(std::memory_order_relaxed);
  }
  // Owned (non-mapped) header/payload bytes; 0 for zero-copy sources.
  size_t owned_bytes() const { return owned_bytes_; }

  // Drops every memoised decoded block and returns the bytes released.
  // Safe at any time: live iterators keep their current block through
  // their own shared_ptr; later accesses simply decode again.
  size_t ReleaseDecodedBlocks() const;

 private:
  std::vector<PostingBlockHeader> owned_headers_;
  std::vector<uint8_t> owned_payload_;
  std::span<const PostingBlockHeader> headers_;
  std::span<const uint8_t> payload_;
  uint64_t entry_count_ = 0;
  uint32_t id_limit_ = UINT32_MAX;
  size_t owned_bytes_ = 0;

  mutable Mutex mu_;
  mutable std::vector<std::shared_ptr<const DecodedPostingBlock>> slots_
      SPECQP_GUARDED_BY(mu_);
  mutable std::atomic<size_t> decoded_bytes_{0};
  mutable std::atomic<uint64_t> fault_count_{0};
};

}  // namespace specqp

#endif  // SPECQP_RDF_POSTING_BLOCKS_H_
