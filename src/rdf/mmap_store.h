#ifndef SPECQP_RDF_MMAP_STORE_H_
#define SPECQP_RDF_MMAP_STORE_H_

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rdf/mapped_fault.h"
#include "rdf/store_format.h"
#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/status.h"

namespace specqp {

// Zero-copy reader for store formats v2 ("SQPSTOR2") and v3 ("SQPSTOR3")
// (docs/FORMATS.md).
//
// Open() memory-maps the file read-only, validates the header and section
// table structurally (magic, version, exact file size, section ids,
// 8-byte alignment, gapless back-to-back layout, cross-section length
// consistency; for v3 also the block-header geometry — gapless byte
// ranges, full non-terminal blocks, per-list ceilings non-increasing),
// and builds a read-only TripleStore view whose triple array, permutation
// indexes, dictionary, and per-predicate posting lists are spans straight
// into the mapping — no per-triple parsing, no index build, no string
// copies. Open cost is O(sections + predicates) for v2 and O(sections +
// blocks) for v3, independent of the number of triples. v3 posting lists
// stay encoded in the mapping; BlockIterator decodes them block-by-block
// on first touch.
//
// Section payload CRC-32C checks are *lazy* by default: Open trusts the
// structural validation and defers checksums until VerifySection /
// VerifyAllSections is called (results are memoised, thread-safe).
// Verify::kEager checks every section before Open returns — this is what
// LoadStore uses, and what callers handling untrusted files should use.
//
// The MmapStore owns the mapping; the TripleStore view (and every
// PostingList view handed out through the posting directory) is valid
// only while the MmapStore is alive. Engine::OpenFromPath ties these
// lifetimes together.
class MmapStore {
 public:
  enum class Verify {
    kLazy,   // structural checks only; CRCs on demand
    kEager,  // every section CRC-verified before Open returns
  };
  struct Options {
    // Constructor instead of a default member initializer so Options can
    // be a default argument of Open below (NSDMIs of a nested class are
    // unusable before the enclosing class is complete).
    Options() : verify(Verify::kLazy) {}
    Verify verify;
  };

  [[nodiscard]] static Result<std::unique_ptr<MmapStore>> Open(
      const std::string& path, const Options& options = Options());

  ~MmapStore();

  MmapStore(const MmapStore&) = delete;
  MmapStore& operator=(const MmapStore&) = delete;

  // The zero-copy store view (finalized, read-only).
  const TripleStore& store() const { return store_; }

  // A fresh zero-copy Dictionary view over this file's mapped dictionary
  // sections (the same spans store().dict() wraps). Dictionary is
  // move-only, so facades that need their own instance — ShardedStore
  // builds its merged view over shard 0's dictionary — re-make one here
  // instead of copying. Valid only while this MmapStore is alive.
  Dictionary NewDictionaryView() const;

  // The file's format version (2 or 3).
  uint32_t version() const { return version_; }

  // Total bytes of the mapping (the file size).
  size_t bytes_mapped() const { return map_size_; }

  // Base address of the mapping (for fault-simulation test hooks).
  const void* mapped_base() const { return map_; }

  // Pages of this mapping the SIGBUS containment handler has zero-filled
  // (rdf/mapped_fault.h). Nonzero means reads through this store may have
  // observed zeros instead of file bytes — the data is no longer
  // trustworthy and the shard should be quarantined. Cheap (one relaxed
  // atomic load); polled by ShardedStore between queries and after each
  // scatter pass.
  uint64_t mapping_faults() const { return MappedRegionFaults(fault_token_); }

  // Statistics snapshot (section kStats); empty when the file has none.
  bool has_stats() const { return !stats_entries_.empty(); }
  double stats_head_fraction() const { return stats_head_fraction_; }
  std::span<const v2::StatsEntry> stats_entries() const {
    return stats_entries_;
  }

  // Verifies one section, memoised: the first call pays a CRC-32C pass
  // over the payload plus a value-range pass (dictionary offsets
  // monotonic, permutation/posting/triple ids within bounds), later
  // calls return the cached verdict. Unknown-to-this-file ids return Ok
  // (nothing to verify). Thread-safe. A verified section can be
  // dereferenced without CHECK-failures even on a crafted file; an
  // UNverified section of a lazily opened store is trusted — use
  // Verify::kEager (or VerifyAllSections) for untrusted input.
  [[nodiscard]] Status VerifySection(v2::SectionId id);

  // Verifies every section in the file (memoised per section).
  [[nodiscard]] Status VerifyAllSections();

  // Verifies only the small metadata sections the reader dereferences
  // eagerly (the whole dictionary, posting directory, statistics
  // snapshot) — the O(triples) bulk sections stay lazy. This is the
  // default integrity level of Engine::OpenFromPath.
  [[nodiscard]] Status VerifyMetadataSections();

 private:
  MmapStore() = default;

  struct Section {
    v2::SectionId id;
    const char* data = nullptr;
    uint64_t length = 0;  // stored (padded) length
    uint32_t crc32c = 0;
  };

  const Section* FindSection(v2::SectionId id) const;
  [[nodiscard]] Status VerifySectionIndex(size_t index);
  // Value-range validation behind VerifySection (checksums alone cannot
  // reject crafted files, whose CRCs are self-consistent).
  [[nodiscard]] Status ValidateSectionValues(const Section& section) const;

  void* map_ = nullptr;
  size_t map_size_ = 0;
  int fault_token_ = -1;  // SIGBUS containment registry slot
  uint64_t triple_count_ = 0;
  uint64_t term_count_ = 0;
  uint32_t version_ = 0;

  std::array<Section, v2::kMaxSections> sections_{};
  size_t section_count_ = 0;
  // 0 = unverified, 1 = CRC ok, 2 = CRC mismatch.
  std::array<std::atomic<uint8_t>, v2::kMaxSections> verified_{};

  // v3 files omit the kSpoIndex section (it is always the identity
  // permutation over the SPO-sorted triple array); the view synthesises
  // it here at open. Empty for v2 files, which map theirs.
  std::vector<uint32_t> synthesised_spo_;

  MappedPostingLists postings_{};
  bool has_posting_directory_ = false;
  MappedBlockPostings block_postings_{};
  bool has_block_directory_ = false;
  TripleStore store_;

  double stats_head_fraction_ = 0.0;
  std::span<const v2::StatsEntry> stats_entries_;
};

}  // namespace specqp

#endif  // SPECQP_RDF_MMAP_STORE_H_
