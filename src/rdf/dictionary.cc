#include "rdf/dictionary.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {

Dictionary Dictionary::FromView(std::span<const uint64_t> offsets,
                                const char* blob, size_t blob_size,
                                std::span<const uint32_t> sorted) {
  SPECQP_CHECK(!offsets.empty()) << "view offsets need a terminating entry";
  SPECQP_CHECK(sorted.size() == offsets.size() - 1);
  Dictionary dict;
  dict.view_ = true;
  dict.view_offsets_ = offsets;
  dict.view_blob_ = blob;
  dict.view_blob_size_ = blob_size;
  dict.view_sorted_ = sorted;
  return dict;
}

TermId Dictionary::Intern(std::string_view term) {
  if (view_) {
    auto found = Find(term);
    SPECQP_CHECK(found.ok()) << "Intern of unseen term on a view "
                             << "dictionary (read-only): " << term;
    return found.value();
  }
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  SPECQP_CHECK(terms_.size() < kInvalidTermId) << "dictionary full";
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(std::string_view(terms_.back()), id);
  return id;
}

Result<TermId> Dictionary::Find(std::string_view term) const {
  if (view_) {
    auto it = std::lower_bound(
        view_sorted_.begin(), view_sorted_.end(), term,
        [this](uint32_t id, std::string_view t) { return Name(id) < t; });
    if (it != view_sorted_.end() && Name(*it) == term) return TermId{*it};
  } else {
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  return Status::NotFound(StrFormat("term '%.*s' not in dictionary",
                                    static_cast<int>(term.size()),
                                    term.data()));
}

bool Dictionary::Contains(std::string_view term) const {
  return Find(term).ok();
}

std::string_view Dictionary::Name(TermId id) const {
  if (view_) {
    SPECQP_CHECK(id < view_offsets_.size() - 1)
        << "TermId out of range: " << id;
    const uint64_t begin = view_offsets_[id];
    const uint64_t end = view_offsets_[id + 1];
    // Guards Name() against a corrupted (non-monotonic or out-of-blob)
    // offset table when the caller opened the store without CRC
    // verification; see MmapStore::VerifySection.
    SPECQP_CHECK(begin <= end && end <= view_blob_size_)
        << "corrupt dictionary offsets for term " << id;
    return std::string_view(view_blob_ + begin,
                            static_cast<size_t>(end - begin));
  }
  SPECQP_CHECK(id < terms_.size()) << "TermId out of range: " << id;
  return terms_[id];
}

}  // namespace specqp
