#include "rdf/dictionary.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {

TermId Dictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  SPECQP_CHECK(terms_.size() < kInvalidTermId) << "dictionary full";
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(std::string_view(terms_.back()), id);
  return id;
}

Result<TermId> Dictionary::Find(std::string_view term) const {
  auto it = index_.find(term);
  if (it == index_.end()) {
    return Status::NotFound(
        StrFormat("term '%.*s' not in dictionary",
                  static_cast<int>(term.size()), term.data()));
  }
  return it->second;
}

bool Dictionary::Contains(std::string_view term) const {
  return index_.find(term) != index_.end();
}

std::string_view Dictionary::Name(TermId id) const {
  SPECQP_CHECK(id < terms_.size()) << "TermId out of range: " << id;
  return terms_[id];
}

}  // namespace specqp
