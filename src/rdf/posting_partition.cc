#include "rdf/posting_partition.h"

#include "util/logging.h"

namespace specqp {

uint32_t PostingPartitionOf(TermId t, uint32_t num_partitions) {
  SPECQP_DCHECK(num_partitions > 0);
  // splitmix64 finalizer.
  uint64_t x = static_cast<uint64_t>(t) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x = x ^ (x >> 31);
  return static_cast<uint32_t>(x % num_partitions);
}

std::vector<std::shared_ptr<const PostingList>> PartitionPostingList(
    const TripleStore& store, const PostingList& list, int slot,
    uint32_t num_partitions) {
  SPECQP_CHECK(slot >= 0 && slot <= 2);
  SPECQP_CHECK(num_partitions > 0);

  std::vector<PostingList> pieces(num_partitions);
  for (PostingList& piece : pieces) {
    piece.max_raw_score = list.max_raw_score;
  }
  // Canonical access path: a block-compressed base list decodes one block
  // at a time while its entries are dealt to the pieces, so partitioning
  // never needs the whole list flat. Pieces stay flat regardless of the
  // base's backend — partition order equals list order either way.
  for (BlockIterator it(&list); !it.AtEnd(); it.Advance()) {
    const PostingEntry& entry = it.Entry();
    const Triple& t = store.triple(entry.triple_index);
    const TermId term = slot == 0 ? t.s : (slot == 1 ? t.p : t.o);
    pieces[PostingPartitionOf(term, num_partitions)].owned.push_back(entry);
  }

  std::vector<std::shared_ptr<const PostingList>> out;
  out.reserve(num_partitions);
  for (PostingList& piece : pieces) {
    piece.Seal();
    out.push_back(std::make_shared<const PostingList>(std::move(piece)));
  }
  return out;
}

}  // namespace specqp
