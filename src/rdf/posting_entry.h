#ifndef SPECQP_RDF_POSTING_ENTRY_H_
#define SPECQP_RDF_POSTING_ENTRY_H_

#include <cstddef>
#include <cstdint>

namespace specqp {

// One match of a triple pattern, carrying the pattern-normalised score of
// Definition 5: S(t|q) = S(t) / max_{t' in matches(q)} S(t').
//
// Doubles as the on-disk record of the SQPSTOR2 posting-entries section
// (docs/FORMATS.md), hence the layout asserts below; the writer zeroes
// the 4 padding bytes. Format v3 stores the same logical records
// block-compressed instead (rdf/posting_blocks.h).
struct PostingEntry {
  uint32_t triple_index = 0;  // into TripleStore::triples()
  double score = 0.0;         // normalised, in [0, 1]
};
static_assert(sizeof(PostingEntry) == 16 && alignof(PostingEntry) == 8 &&
              offsetof(PostingEntry, triple_index) == 0 &&
              offsetof(PostingEntry, score) == 8);

}  // namespace specqp

#endif  // SPECQP_RDF_POSTING_ENTRY_H_
