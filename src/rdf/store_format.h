#ifndef SPECQP_RDF_STORE_FORMAT_H_
#define SPECQP_RDF_STORE_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "rdf/triple.h"

namespace specqp {

struct PostingEntry;  // rdf/posting_list.h

// On-disk layout of store format v2 ("SQPSTOR2").
//
// The normative byte-level specification lives in docs/FORMATS.md; this
// header defines the record structs shared by the writer (rdf/store_io.cc)
// and the zero-copy reader (rdf/mmap_store.cc), and the static_asserts
// that make casting mapped bytes to these structs legal on this target.
//
// Layout discipline (docs/FORMATS.md §SQPSTOR2):
//   * little-endian, asserted at build time;
//   * every section payload starts at an 8-byte-aligned offset and its
//     stored length is padded up to a multiple of 8 with zero bytes that
//     ARE covered by the section CRC — the file has no unprotected gaps;
//   * sections are laid out back to back in section-table order, so
//     entry[i].offset == end of entry[i-1] and the last section ends at
//     header.file_size;
//   * all struct padding bytes are written as zero.
namespace v2 {

inline constexpr char kMagic[8] = {'S', 'Q', 'P', 'S', 'T', 'O', 'R', '2'};
inline constexpr uint32_t kFormatVersion = 2;
inline constexpr uint64_t kSectionAlignment = 8;

// Hard cap on section_count: structural sanity, not a format limit we
// expect to approach (v2 defines ten section kinds).
inline constexpr uint32_t kMaxSections = 64;

enum class SectionId : uint32_t {
  kDictOffsets = 1,     // u64[term_count + 1], byte offsets into kDictBlob
  kDictBlob = 2,        // concatenated term bytes
  kDictSorted = 3,      // u32[term_count], term ids in lexicographic order
  kTriples = 4,         // TripleRecord[triple_count], SPO order
  kSpoIndex = 5,        // u32[triple_count] (identity permutation)
  kPosIndex = 6,        // u32[triple_count]
  kOspIndex = 7,        // u32[triple_count]
  kPostingDir = 8,      // u64 count, then PostingDirEntry[count], by predicate
  kPostingEntries = 9,  // PostingEntryRecord[*], referenced by kPostingDir
  kStats = 10,          // f64 head_fraction, u64 count, StatsEntry[count]
  // v3-only sections (rejected by a v2 reader, which predates them):
  kPostingBlockIndex = 11,  // PostingBlockHeader[*], referenced by v3 dir
  kPostingBlocks = 12,      // delta-encoded block payload bytes
};

// Fixed 40-byte file header at offset 0, immediately followed by the
// section table.
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t file_size;  // must equal the actual file size
  uint64_t triple_count;
  uint64_t term_count;
};
static_assert(sizeof(FileHeader) == 40);

// One section-table row. `flags` and `reserved` must be zero (validated on
// open so no table byte escapes verification).
struct SectionEntry {
  uint32_t id;
  uint32_t flags;
  uint64_t offset;  // from file start; 8-byte aligned
  uint64_t length;  // stored (padded) payload length in bytes
  uint32_t crc32c;  // CRC-32C of payload[offset, offset + length)
  uint32_t reserved;
};
static_assert(sizeof(SectionEntry) == 32);

// kPostingDir row: the posting list of pattern (?s <predicate> ?o), stored
// as entries [entry_begin, entry_begin + entry_count) of kPostingEntries,
// descending by (normalised score, -triple_index).
struct PostingDirEntry {
  uint32_t predicate;
  uint32_t reserved;  // zero
  uint64_t entry_begin;
  uint64_t entry_count;
  double max_raw_score;
};
static_assert(sizeof(PostingDirEntry) == 32);

// kStats row: one memoised stats::PatternStats under the snapshot's
// head_fraction, keyed by PatternKey (kInvalidTermId in free slots).
struct StatsEntry {
  uint32_t s;
  uint32_t p;
  uint32_t o;
  uint32_t reserved;  // zero
  uint64_t m;
  double sigma_r;
  double s_r;
  double s_m;
};
static_assert(sizeof(StatsEntry) == 48);

// The in-memory Triple and PostingEntry structs double as the on-disk
// records, so mapped sections can be used through std::span with no
// per-record decoding. The writer zeroes their padding bytes.
static_assert(std::endian::native == std::endian::little,
              "store format v2 is little-endian");
static_assert(sizeof(Triple) == 24 && alignof(Triple) == 8 &&
              offsetof(Triple, s) == 0 && offsetof(Triple, p) == 4 &&
              offsetof(Triple, o) == 8 && offsetof(Triple, score) == 16);
static_assert(sizeof(double) == 8, "store format assumes 8-byte doubles");

inline uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace v2

// On-disk layout of store format v3 ("SQPSTOR3").
//
// v3 keeps v2's envelope byte for byte — FileHeader, SectionEntry, the
// alignment/gapless/CRC discipline, and every section other than the
// posting lists — and replaces the flat kPostingEntries section with
// block-compressed postings (rdf/posting_blocks.h):
//
//   * kPostingDir holds BlockPostingDirEntry rows (one per predicate)
//     addressing a contiguous run of block headers;
//   * kPostingBlockIndex is a flat PostingBlockHeader array for all
//     predicates, in directory order;
//   * kPostingBlocks is the concatenated delta-encoded block payload
//     (padded to 8 bytes like every section).
//
// kPostingEntries (9) must not appear in a v3 file, and sections 11/12
// must not appear in a v2 file.
namespace v3 {

inline constexpr char kMagic[8] = {'S', 'Q', 'P', 'S', 'T', 'O', 'R', '3'};
inline constexpr uint32_t kFormatVersion = 3;

// v3 kPostingDir row: the posting list of (?s <predicate> ?o), stored as
// blocks [block_begin, block_begin + block_count) of kPostingBlockIndex,
// holding entry_count entries in total, descending by
// (normalised score, -triple_index) across block boundaries.
struct BlockPostingDirEntry {
  uint32_t predicate;
  uint32_t reserved;  // zero
  uint64_t block_begin;
  uint64_t block_count;
  uint64_t entry_count;
  double max_raw_score;
};
static_assert(sizeof(BlockPostingDirEntry) == 40);

}  // namespace v3

// On-disk layout of a sharded store bundle ("SQPBNDL1").
//
// A bundle is a directory holding one manifest file (kManifestFileName)
// plus shard_count complete, self-contained store files named
// shard_0000.sqps, shard_0001.sqps, ... — each an ordinary SQPSTOR2/3
// file carrying the FULL dictionary (identical intern order in every
// shard, enforced via the dictionary section CRCs) and the hash-assigned
// subset of the triples, locally SPO-sorted with its own permutation
// indexes and posting directory. Triples are assigned to shards by
// hashing the subject (HashScheme::kSubject, the default) or the
// predicate (kPredicate); the scheme is recorded in the manifest.
//
// Manifest layout (little-endian, like the store files):
//
//   ManifestHeader                       40 bytes
//   ManifestShardEntry[shard_count]      32 bytes each, shard_id == index
//   uint32_t crc32c                      over all preceding bytes
//
// Each shard entry pins the shard file's exact size, triple count, a
// CRC-32C digest of the file's header + section table (which itself
// holds every section's CRC, so the digest transitively covers the whole
// file), and a digest of the three dictionary-section CRCs (equal across
// all shards of a well-formed bundle). The reader (rdf/sharded_store.h)
// returns Status::Corruption for any disagreement and never CHECK-fails
// on untrusted bytes.
namespace bundle {

inline constexpr char kMagic[8] = {'S', 'Q', 'P', 'B', 'N', 'D', 'L', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr char kManifestFileName[] = "manifest.sqpb";

// Structural sanity cap, far above any deployment we expect.
inline constexpr uint32_t kMaxShards = 1024;

enum class HashScheme : uint32_t {
  kSubject = 1,    // shard on the triple's subject (the default)
  kPredicate = 2,  // shard on the predicate (co-locates posting lists)
};

struct ManifestHeader {
  char magic[8];
  uint32_t version;        // kFormatVersion
  uint32_t shard_count;    // in [1, kMaxShards]
  uint32_t hash_scheme;    // HashScheme
  uint32_t store_format;   // per-shard file format: 2 or 3
  uint64_t total_triples;  // sum of the shard triple counts
  uint64_t term_count;     // shared dictionary size (identical per shard)
};
static_assert(sizeof(ManifestHeader) == 40);

struct ManifestShardEntry {
  uint32_t shard_id;       // must equal the entry's index
  uint32_t reserved;       // zero
  uint64_t file_size;      // exact size of shard_<id>.sqps in bytes
  uint64_t triple_count;   // the shard file's header triple count
  uint32_t table_crc32c;   // CRC-32C of the file's header + section table
  uint32_t dict_crc32c;    // CRC-32C over the 3 dictionary section CRCs
};
static_assert(sizeof(ManifestShardEntry) == 32);

}  // namespace bundle

// Zero-copy posting directory decoded from a mapped v2 file: hands out
// PostingList views over the mapped kPostingEntries section so opening a
// predicate's posting list does no per-entry work. Owned by MmapStore and
// surfaced through TripleStore::mapped_postings().
struct MappedPostingLists {
  std::span<const v2::PostingDirEntry> directory;  // ascending by predicate
  std::span<const PostingEntry> entries;           // kPostingEntries payload

  // The directory row for `predicate`, or nullptr when absent.
  const v2::PostingDirEntry* Find(TermId predicate) const;
};

struct PostingBlockHeader;  // rdf/posting_blocks.h

// Block posting directory of a mapped v3 file: per-predicate block runs
// over the shared header array and payload bytes. Owned by MmapStore and
// surfaced through TripleStore::mapped_block_postings(); BuildPostingList
// wraps a row in a PostingBlockSource without touching the payload.
struct MappedBlockPostings {
  std::span<const v3::BlockPostingDirEntry> directory;  // ascending predicate
  std::span<const PostingBlockHeader> headers;  // kPostingBlockIndex payload
  std::span<const uint8_t> payload;             // kPostingBlocks payload

  // The directory row for `predicate`, or nullptr when absent.
  const v3::BlockPostingDirEntry* Find(TermId predicate) const;
};

}  // namespace specqp

#endif  // SPECQP_RDF_STORE_FORMAT_H_
