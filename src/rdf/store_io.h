#ifndef SPECQP_RDF_STORE_IO_H_
#define SPECQP_RDF_STORE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/store_format.h"
#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/status.h"

namespace specqp {

// Serialised store files. The byte-level format specifications (v1
// "SQPSTOR1", v2 "SQPSTOR2", v3 "SQPSTOR3") live in docs/FORMATS.md; the
// shared record structs live in rdf/store_format.h.
//
// Public API contract:
//
//  * SaveStore writes format v3 by default (format_version selects 2): a
//    section-table layout whose sections (dictionary, triple array,
//    permutation indexes, per-predicate posting directory, optional
//    statistics snapshot) can be memory-mapped and used in place by
//    MmapStore (rdf/mmap_store.h) with no per-triple parsing. v3 stores
//    the posting lists block-compressed (rdf/posting_blocks.h) — a
//    fraction of the flat v2 bytes, decoded block-by-block on demand.
//    Requires a finalized store; deterministic byte-for-byte for a given
//    store + options.
//  * SaveStoreV1 writes the legacy v1 stream; kept so migration (and the
//    v1-vs-v2 load benchmark) can produce old files.
//  * LoadStore reads ALL versions into an owned, finalized TripleStore,
//    re-verifying every section checksum. This is the migration and
//    compatibility path — for the O(ms) zero-copy path over v2/v3 files
//    use MmapStore::Open instead.
//  * PeekStoreVersion reads just the file header (1/2/3) so callers
//    (e.g. Engine::OpenFromPath) can pick mmap vs parse.
//
// All load paths return Status::Corruption on malformed input (bad magic,
// truncation, checksum mismatch, misaligned or overlapping sections,
// out-of-range ids) and never CHECK-fail on untrusted bytes.

struct SaveStoreOptions {
  // Target on-disk format: 3 (block-compressed postings, the default) or
  // 2 (flat postings, for compatibility round-trips and A/B probes).
  uint32_t format_version = 3;

  // Embed the per-predicate posting-list directory (sections kPostingDir +
  // kPostingEntries in v2; kPostingDir + kPostingBlockIndex +
  // kPostingBlocks in v3), giving mapped stores zero-copy posting lists
  // for every (?s <p> ?o) pattern.
  bool posting_directory = true;

  // Optional statistics snapshot (section kStats): the memoised
  // PatternStats rows of a StatisticsCatalog, exported via
  // StatisticsCatalog::Snapshot(). Rows are written sorted by key;
  // head_fraction records the 80/20 boundary they were computed under so
  // loaders only reuse them for a matching engine configuration.
  std::vector<v2::StatsEntry> stats;
  double stats_head_fraction = 0.0;
};

[[nodiscard]] Status SaveStore(const TripleStore& store, const std::string& path,
                 const SaveStoreOptions& options = {});

[[nodiscard]] Status SaveStoreV1(const TripleStore& store, const std::string& path);

[[nodiscard]] Result<TripleStore> LoadStore(const std::string& path);

[[nodiscard]] Result<uint32_t> PeekStoreVersion(const std::string& path);

}  // namespace specqp

#endif  // SPECQP_RDF_STORE_IO_H_
