#ifndef SPECQP_RDF_STORE_IO_H_
#define SPECQP_RDF_STORE_IO_H_

#include <string>

#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/status.h"

namespace specqp {

// Binary store format "SQPSTOR1":
//
//   [8]  magic "SQPSTOR1"
//   [4]  u32 format version (currently 1)
//   dictionary section:
//     [4] u32 term count
//     per term: [4] u32 byte length, [len] bytes
//     [4] u32 CRC-32C of the section payload
//   triple section:
//     [8] u64 triple count
//     per triple: [4]*3 u32 s,p,o, [8] f64 score
//     [4] u32 CRC-32C of the section payload
//
// All integers little-endian (asserted at build time for this target).
// Load verifies magic, version, CRCs, and id ranges, and returns a
// finalized store.

Status SaveStore(const TripleStore& store, const std::string& path);

Result<TripleStore> LoadStore(const std::string& path);

}  // namespace specqp

#endif  // SPECQP_RDF_STORE_IO_H_
