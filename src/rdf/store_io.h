#ifndef SPECQP_RDF_STORE_IO_H_
#define SPECQP_RDF_STORE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/store_format.h"
#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/status.h"

namespace specqp {

// Serialised store files. The byte-level format specifications (v1
// "SQPSTOR1" and v2 "SQPSTOR2") live in docs/FORMATS.md; the shared v2
// record structs live in rdf/store_format.h.
//
// Public API contract:
//
//  * SaveStore writes format v2: a section-table layout whose sections
//    (dictionary, triple array, permutation indexes, per-predicate posting
//    directory, optional statistics snapshot) can be memory-mapped and
//    used in place by MmapStore (rdf/mmap_store.h) with no per-triple
//    parsing. Requires a finalized store; deterministic byte-for-byte for
//    a given store + options.
//  * SaveStoreV1 writes the legacy v1 stream; kept so migration (and the
//    v1-vs-v2 load benchmark) can produce old files.
//  * LoadStore reads BOTH versions into an owned, finalized TripleStore,
//    re-verifying every section checksum. This is the migration and
//    compatibility path — for the O(ms) zero-copy path over v2 files use
//    MmapStore::Open instead.
//  * PeekStoreVersion reads just the file header (1 = v1, 2 = v2) so
//    callers (e.g. Engine::OpenFromPath) can pick mmap vs parse.
//
// All load paths return Status::Corruption on malformed input (bad magic,
// truncation, checksum mismatch, misaligned or overlapping sections,
// out-of-range ids) and never CHECK-fail on untrusted bytes.

struct SaveStoreOptions {
  // Embed the per-predicate posting-list directory (sections kPostingDir +
  // kPostingEntries), giving mapped stores zero-copy posting lists for
  // every (?s <p> ?o) pattern.
  bool posting_directory = true;

  // Optional statistics snapshot (section kStats): the memoised
  // PatternStats rows of a StatisticsCatalog, exported via
  // StatisticsCatalog::Snapshot(). Rows are written sorted by key;
  // head_fraction records the 80/20 boundary they were computed under so
  // loaders only reuse them for a matching engine configuration.
  std::vector<v2::StatsEntry> stats;
  double stats_head_fraction = 0.0;
};

Status SaveStore(const TripleStore& store, const std::string& path,
                 const SaveStoreOptions& options = {});

Status SaveStoreV1(const TripleStore& store, const std::string& path);

Result<TripleStore> LoadStore(const std::string& path);

Result<uint32_t> PeekStoreVersion(const std::string& path);

}  // namespace specqp

#endif  // SPECQP_RDF_STORE_IO_H_
