#include "topk/project.h"

#include "util/logging.h"

namespace specqp {

ProjectIterator::ProjectIterator(std::unique_ptr<ScoredRowIterator> input,
                                 std::vector<VarId> cleared_vars)
    : input_(std::move(input)), cleared_vars_(std::move(cleared_vars)) {
  SPECQP_CHECK(input_ != nullptr);
}

// specqp-lint: allow-no-interrupt-poll (pure per-row transform; the child
// iterator's Next polls ExecInterrupt on every pull, so projection adds no
// uninterruptible work between polls)
bool ProjectIterator::Next(ScoredRow* out) {
  if (!input_->Next(out)) return false;
  for (VarId v : cleared_vars_) {
    SPECQP_DCHECK(v < out->bindings.size());
    out->bindings[v] = kInvalidTermId;
  }
  return true;
}

}  // namespace specqp
