#include "topk/rank_join.h"

#include <algorithm>

#include "util/logging.h"

namespace specqp {

RankJoin::RankJoin(std::unique_ptr<ScoredRowIterator> left,
                   std::unique_ptr<ScoredRowIterator> right,
                   std::vector<VarId> join_vars, ExecContext* ctx)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_vars_(std::move(join_vars)),
      ctx_(ctx),
      stats_(ctx == nullptr ? nullptr : ctx->stats()) {
  SPECQP_CHECK(left_ != nullptr && right_ != nullptr && stats_ != nullptr);
  // Pre-size the output queue's backing store: the buffered band between
  // the threshold and the emitted frontier regularly reaches dozens of
  // rows, and growing the heap mid-join moves every buffered ScoredRow.
  std::vector<ScoredRow> storage;
  storage.reserve(64);
  queue_ = decltype(queue_)(QueueOrder(), std::move(storage));
}

RankJoin::JoinKey RankJoin::KeyOf(const ScoredRow& row) const {
  JoinKey key;
  key.reserve(join_vars_.size());
  for (VarId v : join_vars_) {
    SPECQP_DCHECK(row.bindings[v] != kInvalidTermId)
        << "join variable unbound in input row";
    key.push_back(row.bindings[v]);
  }
  return key;
}

double RankJoin::Threshold() const {
  const double ub_l = left_done_ ? -kInf : left_->UpperBound();
  const double ub_r = right_done_ ? -kInf : right_->UpperBound();
  // Before any row is seen on a side, its "top" defaults to the side's
  // upper bound (conservative).
  const double top_l = left_seen_ ? left_top_ : std::max(ub_l, 0.0);
  const double top_r = right_seen_ ? right_top_ : std::max(ub_r, 0.0);

  // Corner bounds: (seen left) x (unseen right) and (unseen left) x (seen
  // right). A corner with an exhausted unseen side cannot produce results.
  const double corner_lr = right_done_ ? -kInf : top_l + ub_r;
  const double corner_rl = left_done_ ? -kInf : ub_l + top_r;
  return std::max(corner_lr, corner_rl);
}

bool RankJoin::Advance() {
  // HRJN* pull strategy: take from the input whose unseen rows have the
  // higher bound; alternate on ties.
  const double ub_l = left_done_ ? -kInf : left_->UpperBound();
  const double ub_r = right_done_ ? -kInf : right_->UpperBound();
  if (left_done_ && right_done_) return false;

  bool pull_left;
  if (left_done_) {
    pull_left = false;
  } else if (right_done_) {
    pull_left = true;
  } else if (ub_l != ub_r) {
    pull_left = ub_l > ub_r;
  } else {
    pull_left = pull_left_next_;
    pull_left_next_ = !pull_left_next_;
  }

  ScoredRowIterator* input = pull_left ? left_.get() : right_.get();
  ScoredRow row;
  if (!input->Next(&row)) {
    (pull_left ? left_done_ : right_done_) = true;
    // Dead-side pruning: a side that exhausted without producing a single
    // row (its hash table is empty) can never supply a join partner, so no
    // row the other input still holds can contribute a result. Discarding
    // the other side lets block-backed scans account their remaining blocks
    // as skipped instead of decoding them. Both the trigger (an input's
    // contents) and the effect (suppressing rows that would join against an
    // empty table) are pull-order independent, so emitted answers are
    // unchanged.
    if (pull_left && !right_done_ && left_table_.empty()) {
      right_->Discard();
      right_done_ = true;
    } else if (!pull_left && !left_done_ && right_table_.empty()) {
      left_->Discard();
      left_done_ = true;
    }
    return true;  // state changed; caller re-evaluates
  }

  if (pull_left) {
    if (!left_seen_) {
      left_seen_ = true;
      left_top_ = row.score;
    }
  } else {
    if (!right_seen_) {
      right_seen_ = true;
      right_top_ = row.score;
    }
  }

  JoinKey key = KeyOf(row);  // non-const so the move below is real
  HashTable& own = pull_left ? left_table_ : right_table_;
  HashTable& other = pull_left ? right_table_ : left_table_;

  ++stats_->join_hash_probes;
  auto it = other.find(key);
  if (it != other.end()) {
    for (const ScoredRow& match : it->second) {
      // Key equality guarantees the join variables agree; any remaining
      // overlap is non-join slots, where the LEFT input's binding wins
      // deterministically (MergeBindingsInto is left-biased), independent
      // of which side happened to be probed. With empty join_vars_ every
      // pair matches and this degenerates to the cross product.
      ScoredRow merged = pull_left ? row : match;
      MergeBindingsInto(pull_left ? match : row, &merged);
      merged.score = row.score + match.score;
      ++stats_->join_results;
      ++stats_->answer_objects;
      queue_.push(std::move(merged));
    }
  }
  own[std::move(key)].push_back(std::move(row));
  return true;
}

bool RankJoin::Next(ScoredRow* out) {
  while (true) {
    // Cooperative cancellation/deadline: checked once per pull-or-emit
    // iteration, so an interrupted join stops within one input row even
    // mid-drain. Buffered rows are abandoned — the caller discards partial
    // output on abort anyway.
    if (ctx_->Interrupted()) return false;
    // Strict emission: only emit once no future join result can reach the
    // buffered top's score. Any result formed after this point combines at
    // least one unseen row and is therefore bounded by T, so every row
    // that could tie the top is already in the queue — which pops in
    // RowBefore order. This is what makes the output a deterministic total
    // order instead of a discovery order (required for parallel == serial).
    const double threshold = Threshold();
    if (!queue_.empty() && queue_.top().score > threshold + kEps) {
      *out = queue_.top();
      queue_.pop();
      ++rows_emitted_;
      return true;
    }
    if (!Advance()) {
      // Both inputs exhausted: drain whatever is buffered.
      if (queue_.empty()) return false;
      *out = queue_.top();
      queue_.pop();
      ++rows_emitted_;
      return true;
    }
  }
}

double RankJoin::UpperBound() const {
  const double threshold = Threshold();
  const double buffered =
      queue_.empty() ? -kInf : queue_.top().score;
  const double bound = std::max(threshold, buffered);
  return (bound == -kInf) ? kExhausted : bound;
}

void RankJoin::Discard() {
  if (!left_done_) {
    left_->Discard();
    left_done_ = true;
  }
  if (!right_done_) {
    right_->Discard();
    right_done_ = true;
  }
  // Buffered-but-unemitted results are abandoned so Next() returns false.
  queue_ = decltype(queue_)(QueueOrder());
}

}  // namespace specqp
