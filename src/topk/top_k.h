#ifndef SPECQP_TOPK_TOP_K_H_
#define SPECQP_TOPK_TOP_K_H_

#include <cstddef>
#include <vector>

#include "topk/exec_stats.h"
#include "topk/operator.h"

namespace specqp {

// Pulls up to `k` distinct answers from the root of an operator tree. The
// root emits in descending score order, so the driver simply takes the
// first k distinct binding vectors (defensive dedup — operator trees built
// by the plan executor already deduplicate within merges).
std::vector<ScoredRow> PullTopK(ScoredRowIterator* root, size_t k,
                                ExecStats* stats);

}  // namespace specqp

#endif  // SPECQP_TOPK_TOP_K_H_
