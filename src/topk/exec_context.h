#ifndef SPECQP_TOPK_EXEC_CONTEXT_H_
#define SPECQP_TOPK_EXEC_CONTEXT_H_

#include <deque>
#include <memory>
#include <mutex>

#include "topk/exec_stats.h"

namespace specqp {

class SharedScanCache;
class ThreadPool;

// Per-query execution context threaded through the whole operator stack.
//
// An ExecContext bundles what one query execution needs beyond the data it
// reads: the counter sink (ExecStats), when the engine runs multi-core the
// shared ThreadPool, and — for queries executing as part of a batch — the
// batch's SharedScanCache. Every operator constructor takes an ExecContext*
// and records its counters via stats(); orchestration layers (PlanExecutor,
// ParallelRankJoin) additionally consult pool()/num_threads() to decide on
// and drive parallel execution, and the plan executor resolves posting
// lists through shared_scans() when set (so identical patterns across the
// batch's queries are scanned once).
//
// Parallel executions split a query into partition trees. Each partition
// gets its own *child* context from ForPartition(): same query, no pool
// (partition trees are strictly serial), and a private ExecStats so the
// operators of different partitions never contend on counters. The root
// context owns the children; MergePartitionStats() folds their counters
// back into the root stats once the execution is done.
//
// The context must outlive every operator built against it.
class ExecContext {
 public:
  // `stats` must outlive the context; `pool` may be null (serial);
  // `shared_scans` may be null (stand-alone query, no batch).
  explicit ExecContext(ExecStats* stats, ThreadPool* pool = nullptr,
                       SharedScanCache* shared_scans = nullptr);
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ExecStats* stats() const { return stats_; }
  ThreadPool* pool() const { return pool_; }
  // The batch's shared-scan layer, or null outside batch execution.
  SharedScanCache* shared_scans() const { return shared_scans_; }

  // Usable concurrency: pool workers plus the calling thread.
  size_t num_threads() const;
  bool parallel() const { return num_threads() > 1; }

  // Child context for one partition of a parallel execution (stable
  // address, owned by this context). Thread-safe, though partitions are
  // normally created single-threaded at build time.
  ExecContext* ForPartition();

  // Folds every partition's counters into stats() and zeroes them (so a
  // second call does not double-count). Call after the last row has been
  // pulled; the partition contexts themselves stay alive for any operators
  // still holding them.
  void MergePartitionStats();

 private:
  struct Partition;

  ExecStats* stats_;
  ThreadPool* pool_;
  SharedScanCache* shared_scans_;
  std::mutex mu_;
  std::deque<std::unique_ptr<Partition>> partitions_;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_EXEC_CONTEXT_H_
