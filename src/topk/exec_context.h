#ifndef SPECQP_TOPK_EXEC_CONTEXT_H_
#define SPECQP_TOPK_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>

#include "topk/exec_stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace specqp {

class SharedScanCache;
class ThreadPool;

// Why one execution stopped early (see ExecInterrupt).
enum class StopCause : int {
  kNone = 0,
  kCancelled = 1,         // an external cancellation flag was raised
  kDeadlineExceeded = 2,  // the execution's deadline passed
  kRaceLost = 3,          // a speculative racer was beaten by its rival
  kStoreFault = 4,        // backing store data faulted mid-execution
};

// Cooperative stop signal for one query execution.
//
// An ExecInterrupt combines an optional external cancellation flag (the
// shared state of a core CancellationToken) with an optional deadline.
// Operators poll it through ExecContext::Interrupted() inside their pull
// loops and wind down (Next() returns false) once it latches, so a
// cancelled or expired query stops mid-join within a handful of rows
// instead of draining its inputs. The latch is sticky and records the
// first cause observed; the layer that owns the execution reads cause()
// afterwards to translate the abort into a terminal Status.
//
// Thread-safety: Stopped()/CheckDeadline() may be called concurrently from
// every partition tree of a parallel execution; the external flag may be
// raised from any thread at any time. All state is atomic; loads are
// relaxed because the only consequence of observing the latch late is a
// few more rows of work.
class ExecInterrupt {
 public:
  ExecInterrupt() = default;

  ExecInterrupt(const ExecInterrupt&) = delete;
  ExecInterrupt& operator=(const ExecInterrupt&) = delete;

  // Links the external cancellation flag (kept alive by the shared_ptr for
  // the interrupt's lifetime). Call before execution starts.
  void LinkCancelFlag(std::shared_ptr<const std::atomic<bool>> flag) {
    cancel_flag_ = std::move(flag);
  }

  // Arms the deadline. Call before execution starts.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
  }

  bool has_deadline() const { return has_deadline_; }

  // True once the execution should stop. Cheap (relaxed atomic loads, no
  // clock read) — safe to call per row.
  bool Stopped() const {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      Latch(StopCause::kCancelled);
      return true;
    }
    return false;
  }

  // Reads the clock and latches kDeadlineExceeded when the deadline has
  // passed. Callers amortise this behind a poll counter (ExecContext).
  bool CheckDeadline() const {
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() >= deadline_) {
      Latch(StopCause::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  // The first cause latched (kNone while running).
  StopCause cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_relaxed));
  }

  // Latches `cause` from another thread — how a speculative race winner
  // winds down the losing racer (StopCause::kRaceLost). Sticky like every
  // latch: a racer already stopped for a stronger reason (cancellation,
  // deadline) keeps its first cause.
  void RequestStop(StopCause cause) const { Latch(cause); }

 private:
  // Records the first cause, then raises the sticky stop latch.
  void Latch(StopCause cause) const {
    int expected = static_cast<int>(StopCause::kNone);
    cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                   std::memory_order_relaxed);
    stopped_.store(true, std::memory_order_relaxed);
  }

  mutable std::atomic<bool> stopped_{false};
  mutable std::atomic<int> cause_{static_cast<int>(StopCause::kNone)};
  std::shared_ptr<const std::atomic<bool>> cancel_flag_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

// Per-query execution context threaded through the whole operator stack.
//
// An ExecContext bundles what one query execution needs beyond the data it
// reads: the counter sink (ExecStats), when the engine runs multi-core the
// shared ThreadPool, for queries executing as part of a batch the batch's
// SharedScanCache, and — for interruptible requests — the execution's
// ExecInterrupt. Every operator constructor takes an ExecContext* and
// records its counters via stats(); pull loops poll Interrupted() to honor
// cancellation and deadlines; orchestration layers (PlanExecutor,
// ParallelRankJoin) additionally consult pool()/num_threads() to decide on
// and drive parallel execution, and the plan executor resolves posting
// lists through shared_scans() when set (so identical patterns across the
// batch's queries are scanned once).
//
// Parallel executions split a query into partition trees. Each partition
// gets its own *child* context from ForPartition(): same query, no pool
// (partition trees are strictly serial), a private ExecStats so the
// operators of different partitions never contend on counters, and the
// same interrupt (with a private deadline-poll counter). The root context
// owns the children; MergePartitionStats() folds their counters back into
// the root stats once the execution is done.
//
// The context must outlive every operator built against it.
class ExecContext {
 public:
  // `stats` must outlive the context; `pool` may be null (serial);
  // `shared_scans` may be null (stand-alone query, no batch); `interrupt`
  // may be null (not cancellable, no deadline) and must otherwise outlive
  // the context.
  explicit ExecContext(ExecStats* stats, ThreadPool* pool = nullptr,
                       SharedScanCache* shared_scans = nullptr,
                       const ExecInterrupt* interrupt = nullptr);
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ExecStats* stats() const { return stats_; }
  ThreadPool* pool() const { return pool_; }
  // The batch's shared-scan layer, or null outside batch execution.
  SharedScanCache* shared_scans() const { return shared_scans_; }
  // The execution's stop signal, or null when not interruptible.
  const ExecInterrupt* interrupt() const { return interrupt_; }

  // True once the execution should wind down (cancellation flag raised or
  // deadline passed). Cancellation is observed immediately; the deadline
  // clock is only read every 2^7 polls, so per-row polling stays cheap.
  // Not thread-safe across callers — each partition context is polled only
  // by the thread currently driving its tree (the fork-join handoff orders
  // rounds), which is why the poll counter can be a plain integer.
  bool Interrupted() {
    if (interrupt_ == nullptr) {
      if (checkpoint_ != nullptr) return PollCheckpoint();
      return false;
    }
    if (interrupt_->Stopped()) return true;
    if (interrupt_->has_deadline() && (++deadline_poll_ & 127u) == 0 &&
        interrupt_->CheckDeadline()) {
      return true;
    }
    if (checkpoint_ != nullptr) return PollCheckpoint();
    return false;
  }

  // Installs a cardinality checkpoint: `fn` is invoked every `every` polls
  // of Interrupted() and returning true stops the execution exactly like an
  // interrupt (operators wind down, root->Next() returns false). This is
  // how the adaptive executor (core/speculation.h) gets control *inside* a
  // long root->Next() drain — a single Next() call can pull thousands of
  // input rows before emitting, so checking between Next() calls would miss
  // the divergence until too late. The callback runs on whichever thread
  // polls this context; adaptive execution installs checkpoints only on
  // serial root contexts, so that is one thread. `fn` must outlive the
  // execution or be cleared first.
  void SetCheckpoint(std::function<bool()> fn, uint32_t every) {
    checkpoint_ = std::move(fn);
    checkpoint_every_ = every == 0 ? 1 : every;
    checkpoint_poll_ = 0;
    checkpoint_fired_ = false;
  }
  void ClearCheckpoint() { checkpoint_ = nullptr; }

  // True once an installed checkpoint asked to stop (distinguishes a
  // checkpoint stop from interrupt causes and plain input exhaustion).
  bool checkpoint_fired() const { return checkpoint_fired_; }

  // Usable concurrency: pool workers plus the calling thread.
  size_t num_threads() const;
  bool parallel() const { return num_threads() > 1; }

  // Per-request override of EngineOptions::parallel_min_rows (the
  // partitioned-tree threshold); unset = use the engine's option.
  void set_parallel_min_rows_override(size_t min_rows) {
    has_parallel_min_rows_override_ = true;
    parallel_min_rows_override_ = min_rows;
  }
  size_t parallel_min_rows_or(size_t fallback) const {
    return has_parallel_min_rows_override_ ? parallel_min_rows_override_
                                           : fallback;
  }

  // Child context for one partition of a parallel execution (stable
  // address, owned by this context). Thread-safe, though partitions are
  // normally created single-threaded at build time.
  ExecContext* ForPartition();

  // Folds every partition's counters into stats() and zeroes them (so a
  // second call does not double-count). Call after the last row has been
  // pulled; the partition contexts themselves stay alive for any operators
  // still holding them.
  void MergePartitionStats();

 private:
  struct Partition;

  bool PollCheckpoint() {
    if (checkpoint_fired_) return true;
    if (++checkpoint_poll_ < checkpoint_every_) return false;
    checkpoint_poll_ = 0;
    if (checkpoint_()) checkpoint_fired_ = true;
    return checkpoint_fired_;
  }

  ExecStats* stats_;
  ThreadPool* pool_;
  SharedScanCache* shared_scans_;
  const ExecInterrupt* interrupt_;
  uint32_t deadline_poll_ = 0;
  std::function<bool()> checkpoint_;
  uint32_t checkpoint_every_ = 1;
  uint32_t checkpoint_poll_ = 0;
  bool checkpoint_fired_ = false;
  bool has_parallel_min_rows_override_ = false;
  size_t parallel_min_rows_override_ = 0;
  // Guards the partition arena only; everything above is either atomic
  // (via ExecInterrupt) or single-threaded by the execution contract.
  Mutex mu_;
  std::deque<std::unique_ptr<Partition>> partitions_ SPECQP_GUARDED_BY(mu_);
};

}  // namespace specqp

#endif  // SPECQP_TOPK_EXEC_CONTEXT_H_
