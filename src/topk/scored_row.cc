#include "topk/scored_row.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {

bool RowBefore(const ScoredRow& a, const ScoredRow& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.bindings < b.bindings;
}

void MergeBindingsInto(const ScoredRow& right, ScoredRow* left) {
  SPECQP_DCHECK(left->bindings.size() == right.bindings.size());
  for (size_t i = 0; i < right.bindings.size(); ++i) {
    if (left->bindings[i] == kInvalidTermId) {
      left->bindings[i] = right.bindings[i];
    }
    // Slots bound on both sides keep `left`'s value. Join operators
    // guarantee agreement on the join variables via key equality before
    // merging; non-join slots may legitimately differ (e.g. a cross
    // product with no join variables), and there the merge target —
    // chosen deterministically by the caller — wins.
  }
}

std::string RowToString(const ScoredRow& row, const Query& query,
                        const Dictionary& dict) {
  std::string out;
  // Rows can carry trailing scratch slots (chain-relaxation variables);
  // only the query's own variables are printable.
  const size_t printable = std::min(row.bindings.size(), query.num_vars());
  for (size_t v = 0; v < printable; ++v) {
    if (row.bindings[v] == kInvalidTermId) continue;
    if (!out.empty()) out += " ";
    std::string_view var = query.var_name(static_cast<VarId>(v));
    std::string_view val = dict.Name(row.bindings[v]);
    out += StrFormat("?%.*s=<%.*s>", static_cast<int>(var.size()), var.data(),
                     static_cast<int>(val.size()), val.data());
  }
  out += StrFormat(" (score %s)", DoubleToString(row.score).c_str());
  return out;
}

}  // namespace specqp
