#ifndef SPECQP_TOPK_RANK_JOIN_H_
#define SPECQP_TOPK_RANK_JOIN_H_

#include <limits>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "topk/exec_stats.h"
#include "topk/operator.h"

namespace specqp {

// Hash Rank Join (HRJN, Ilyas et al. — the paper's [15, 17]): joins two
// score-descending inputs on the given variables and emits join results in
// descending order of the score *sum*, reading as little of each input as
// possible.
//
// State: one hash table per input keyed on the join-variable values, an
// output priority queue, and the classic corner-bound threshold
//
//   T = max( topL + ubR , ubL + topR )
//
// where topX is the highest score seen on input X (its first row) and ubX
// the input's bound on unseen rows. A buffered result is emitted once its
// score reaches T; when an input is exhausted, its corner term drops out.
// Input selection follows HRJN*: pull from the input with the higher
// remaining upper bound.
class RankJoin final : public ScoredRowIterator {
 public:
  // `join_vars`: variables bound on both sides (may be empty — degenerates
  // to a cross product, still score-ordered).
  RankJoin(std::unique_ptr<ScoredRowIterator> left,
           std::unique_ptr<ScoredRowIterator> right,
           std::vector<VarId> join_vars, ExecStats* stats);

  RankJoin(const RankJoin&) = delete;
  RankJoin& operator=(const RankJoin&) = delete;

  bool Next(ScoredRow* out) override;
  double UpperBound() const override;

 private:
  using JoinKey = std::vector<TermId>;
  using HashTable = std::unordered_map<JoinKey, std::vector<ScoredRow>,
                                       BindingsHash>;

  JoinKey KeyOf(const ScoredRow& row) const;
  double Threshold() const;
  // Pulls one row from the chosen input and joins it against the other
  // side's table; returns false if both inputs are exhausted.
  bool Advance();

  static constexpr double kInf = std::numeric_limits<double>::infinity();
  static constexpr double kEps = 1e-9;

  std::unique_ptr<ScoredRowIterator> left_;
  std::unique_ptr<ScoredRowIterator> right_;
  std::vector<VarId> join_vars_;
  ExecStats* stats_;

  HashTable left_table_;
  HashTable right_table_;
  bool left_done_ = false;
  bool right_done_ = false;
  bool left_seen_ = false;
  bool right_seen_ = false;
  double left_top_ = 0.0;
  double right_top_ = 0.0;
  bool pull_left_next_ = true;  // tie-breaker for alternating pulls

  struct QueueOrder {
    // std::priority_queue keeps the *greatest* element (per comparator) on
    // top; RowBefore(a, b) == "a should be emitted before b".
    bool operator()(const ScoredRow& a, const ScoredRow& b) const {
      return RowBefore(b, a);
    }
  };
  std::priority_queue<ScoredRow, std::vector<ScoredRow>, QueueOrder> queue_;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_RANK_JOIN_H_
