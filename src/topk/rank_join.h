#ifndef SPECQP_TOPK_RANK_JOIN_H_
#define SPECQP_TOPK_RANK_JOIN_H_

#include <limits>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "topk/exec_context.h"
#include "topk/operator.h"

namespace specqp {

// Hash Rank Join (HRJN, Ilyas et al. — the paper's [15, 17]): joins two
// score-descending inputs on the given variables and emits join results in
// descending order of the score *sum*, reading as little of each input as
// possible.
//
// State: one hash table per input keyed on the join-variable values, an
// output priority queue, and the classic corner-bound threshold
//
//   T = max( topL + ubR , ubL + topR )
//
// where topX is the highest score seen on input X (its first row) and ubX
// the input's bound on unseen rows. Input selection follows HRJN*: pull
// from the input with the higher remaining upper bound.
//
// Emission is *strict*: a buffered result is emitted only once its score
// strictly exceeds T, i.e. once no future join result can tie it. Together
// with the RowBefore-ordered output queue this makes the emitted stream a
// total order — (score descending, bindings ascending) — that is a pure
// function of the input *contents*, independent of pull interleaving. The
// parallel execution layer relies on this: per-partition RankJoin streams
// merge back into exactly the serial emission order (see
// parallel_rank_join.h), so thread count never changes answers. When an
// input side is exhausted its corner term drops out, and once both are
// exhausted the queue drains in RowBefore order.
//
// Cost of determinism: before emitting at score s the join must read each
// input past its band of rows tied at the relevant corner score (the old
// `>= T - eps` rule could emit mid-band, in discovery order). Reads and
// buffering therefore grow with the width of the top score-tie bands —
// degenerating to a full drain only when an entire input is one tied band
// (uniform scores). Hash partitioning shrinks each band by the partition
// factor, so the parallel path also bounds this cost per partition.
class RankJoin final : public ScoredRowIterator {
 public:
  // `join_vars`: variables bound on both sides (may be empty — degenerates
  // to a cross product, still score-ordered).
  RankJoin(std::unique_ptr<ScoredRowIterator> left,
           std::unique_ptr<ScoredRowIterator> right,
           std::vector<VarId> join_vars, ExecContext* ctx);

  RankJoin(const RankJoin&) = delete;
  RankJoin& operator=(const RankJoin&) = delete;

  bool Next(ScoredRow* out) override;
  double UpperBound() const override;
  void Discard() override;
  uint64_t RowsEmitted() const override { return rows_emitted_; }

 private:
  using JoinKey = std::vector<TermId>;
  using HashTable = std::unordered_map<JoinKey, std::vector<ScoredRow>,
                                       BindingsHash>;

  JoinKey KeyOf(const ScoredRow& row) const;
  double Threshold() const;
  // Pulls one row from the chosen input and joins it against the other
  // side's table; returns false if both inputs are exhausted.
  bool Advance();

  static constexpr double kInf = std::numeric_limits<double>::infinity();
  static constexpr double kEps = 1e-9;

  std::unique_ptr<ScoredRowIterator> left_;
  std::unique_ptr<ScoredRowIterator> right_;
  std::vector<VarId> join_vars_;
  ExecContext* ctx_;
  ExecStats* stats_;

  HashTable left_table_;
  HashTable right_table_;
  bool left_done_ = false;
  bool right_done_ = false;
  bool left_seen_ = false;
  bool right_seen_ = false;
  double left_top_ = 0.0;
  double right_top_ = 0.0;
  bool pull_left_next_ = true;  // tie-breaker for alternating pulls
  uint64_t rows_emitted_ = 0;

  struct QueueOrder {
    // std::priority_queue keeps the *greatest* element (per comparator) on
    // top; RowBefore(a, b) == "a should be emitted before b".
    bool operator()(const ScoredRow& a, const ScoredRow& b) const {
      return RowBefore(b, a);
    }
  };
  std::priority_queue<ScoredRow, std::vector<ScoredRow>, QueueOrder> queue_;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_RANK_JOIN_H_
