#include "topk/parallel_rank_join.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace specqp {

ParallelRankJoin::ParallelRankJoin(
    std::vector<std::unique_ptr<ScoredRowIterator>> partitions,
    ExecContext* ctx, size_t batch_size)
    : ctx_(ctx),
      stats_(ctx == nullptr ? nullptr : ctx->stats()),
      pool_(ctx == nullptr ? nullptr : ctx->pool()),
      batch_size_(batch_size) {
  SPECQP_CHECK(!partitions.empty());
  SPECQP_CHECK(stats_ != nullptr);
  SPECQP_CHECK(batch_size_ >= 1);
  partitions_.reserve(partitions.size());
  for (auto& op : partitions) {
    SPECQP_CHECK(op != nullptr);
    Partition partition;
    partition.op = std::move(op);
    partition.buffer.resize(batch_size_);  // slots reused by every refill
    partitions_.push_back(std::move(partition));
  }
}

void ParallelRankJoin::Refill(double need_above) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(partitions_.size());
  for (Partition& partition : partitions_) {
    if (!partition.BufferEmpty() || partition.exhausted) continue;
    if (partition.bound + kEps < need_above) continue;
    Partition* p = &partition;
    tasks.push_back([this, p] {
      // Each task touches only its own partition; RunAndWait's join
      // publishes the writes back to the merging thread. Rows are pulled
      // straight into the window's slots, whose binding vectors keep
      // their capacity from previous rounds.
      p->head = 0;
      p->filled = 0;
      double last = kInf;
      for (size_t n = 0; n < batch_size_; ++n) {
        ScoredRow& slot = p->buffer[n];
        if (!p->op->Next(&slot)) {
          p->exhausted = true;
          break;
        }
        SPECQP_DCHECK(slot.score <= last + kEps)
            << "partition stream must be score-descending";
        last = slot.score;
        p->filled = n + 1;
      }
      // Anything still unread is bounded by the tree's own bound and by
      // the last row pulled (streams are non-increasing); clamp so the
      // partition envelope never bounces up.
      p->bound = std::min(p->bound, std::min(p->op->UpperBound(), last));
    });
  }
  if (tasks.empty()) return;
  ++stats_->parallel_refill_rounds;
  if (pool_ != nullptr) {
    pool_->RunAndWait(&tasks);
  } else {
    for (auto& task : tasks) task();
  }
}

bool ParallelRankJoin::Next(ScoredRow* out) {
  while (true) {
    // Cooperative cancellation/deadline at the merge level; the partition
    // trees additionally poll their own contexts inside each refill, so a
    // refill round in flight also winds down promptly.
    if (ctx_->Interrupted()) return false;
    // Candidate: the RowBefore-least buffered head.
    size_t best = partitions_.size();
    for (size_t i = 0; i < partitions_.size(); ++i) {
      if (partitions_[i].BufferEmpty()) continue;
      if (best == partitions_.size() ||
          RowBefore(partitions_[i].Front(), partitions_[best].Front())) {
        best = i;
      }
    }

    if (best < partitions_.size()) {
      const double candidate = partitions_[best].Front().score;
      // Safe to emit only when no un-buffered live partition could still
      // produce a row tying or beating the candidate's score (a tie with
      // lexicographically smaller bindings would have to come first).
      bool safe = true;
      for (const Partition& partition : partitions_) {
        if (!partition.BufferEmpty() || partition.exhausted) continue;
        if (partition.bound + kEps >= candidate) {
          safe = false;
          break;
        }
      }
      if (safe) {
        // Copy, not move: the slot keeps its capacity for the next refill
        // round (the caller reuses its row buffer symmetrically).
        *out = partitions_[best].Front();
        ++partitions_[best].head;
        return true;
      }
      Refill(candidate);
      continue;
    }

    // Nothing buffered anywhere: either everything is exhausted, or some
    // partitions have never been pulled / need another batch.
    bool any_live = false;
    for (const Partition& partition : partitions_) {
      if (!partition.exhausted) {
        any_live = true;
        break;
      }
    }
    if (!any_live) return false;
    Refill(-kInf);
  }
}

void ParallelRankJoin::Discard() {
  // Runs on the merging thread with no refill in flight, so touching the
  // partition trees (and, transitively, their per-partition stats) is safe.
  for (Partition& partition : partitions_) {
    partition.op->Discard();
    partition.head = 0;
    partition.filled = 0;
    partition.exhausted = true;
  }
}

double ParallelRankJoin::UpperBound() const {
  double best = -kInf;
  for (const Partition& partition : partitions_) {
    best = std::max(best, partition.Envelope());
  }
  return best == -kInf ? kExhausted : best;
}

}  // namespace specqp
