#include "topk/exec_context.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace specqp {

struct ExecContext::Partition {
  ExecStats stats;
  ExecContext ctx;

  // Partition trees are strictly serial (no pool) but keep reading the
  // batch's shared scans and polling the query's interrupt.
  Partition(SharedScanCache* shared_scans, const ExecInterrupt* interrupt)
      : ctx(&stats, /*pool=*/nullptr, shared_scans, interrupt) {}
};

ExecContext::ExecContext(ExecStats* stats, ThreadPool* pool,
                         SharedScanCache* shared_scans,
                         const ExecInterrupt* interrupt)
    : stats_(stats),
      pool_(pool),
      shared_scans_(shared_scans),
      interrupt_(interrupt) {
  SPECQP_CHECK(stats_ != nullptr);
}

ExecContext::~ExecContext() = default;

size_t ExecContext::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_workers() + 1;
}

ExecContext* ExecContext::ForPartition() {
  MutexLock lock(mu_);
  partitions_.push_back(std::make_unique<Partition>(shared_scans_, interrupt_));
  return &partitions_.back()->ctx;
}

void ExecContext::MergePartitionStats() {
  MutexLock lock(mu_);
  for (const auto& partition : partitions_) {
    *stats_ += partition->stats;
    // Zero rather than destroy: operators of a still-alive tree may hold
    // pointers to the partition context, and merging twice must not
    // double-count.
    partition->stats.Reset();
  }
}

}  // namespace specqp
