#ifndef SPECQP_TOPK_INCREMENTAL_MERGE_H_
#define SPECQP_TOPK_INCREMENTAL_MERGE_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "topk/exec_context.h"
#include "topk/operator.h"

namespace specqp {

// The Incremental Merge operator of Theobald et al. (the paper's [29], used
// as in TriniT): lazily merges the sorted streams of a triple pattern and
// all of its relaxations (each already discounted by its rule weight via
// PatternScan) into one globally score-descending stream.
//
// The same binding can be produced by several relaxations; Definition 8
// keeps the maximum-score derivation. Because the merged stream is
// descending, the first occurrence is the maximum, so later duplicates are
// suppressed with a hash set.
class IncrementalMerge final : public ScoredRowIterator {
 public:
  // At least one input; inputs are polled lazily (an input's first row is
  // only pulled when the merge first needs its head).
  IncrementalMerge(std::vector<std::unique_ptr<ScoredRowIterator>> inputs,
                   ExecContext* ctx);

  IncrementalMerge(const IncrementalMerge&) = delete;
  IncrementalMerge& operator=(const IncrementalMerge&) = delete;

  bool Next(ScoredRow* out) override;
  double UpperBound() const override;
  void Discard() override;
  uint64_t RowsEmitted() const override { return rows_emitted_; }

 private:
  struct Head {
    ScoredRow row;
    bool valid = false;
    bool primed = false;  // has the first Pull happened yet?
  };

  // Ensures heads_[i] holds the next row of input i (or is marked invalid).
  void Prime(size_t i);

  std::vector<std::unique_ptr<ScoredRowIterator>> inputs_;
  std::vector<Head> heads_;
  std::unordered_set<std::vector<TermId>, BindingsHash> seen_;
  ExecContext* ctx_;
  ExecStats* stats_;
  uint64_t rows_emitted_ = 0;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_INCREMENTAL_MERGE_H_
