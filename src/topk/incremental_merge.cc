#include "topk/incremental_merge.h"

#include "util/logging.h"

namespace specqp {

IncrementalMerge::IncrementalMerge(
    std::vector<std::unique_ptr<ScoredRowIterator>> inputs, ExecContext* ctx)
    : inputs_(std::move(inputs)),
      ctx_(ctx),
      stats_(ctx == nullptr ? nullptr : ctx->stats()) {
  SPECQP_CHECK(!inputs_.empty());
  SPECQP_CHECK(stats_ != nullptr);
  heads_.resize(inputs_.size());
}

void IncrementalMerge::Prime(size_t i) {
  Head& head = heads_[i];
  head.primed = true;
  head.valid = inputs_[i]->Next(&head.row);
}

bool IncrementalMerge::Next(ScoredRow* out) {
  while (true) {
    if (ctx_->Interrupted()) return false;  // cancellation / deadline
    // The effective bound of input i: the score of its buffered head if
    // primed, otherwise the input's own upper bound — which lets us defer
    // pulling from low-weight relaxation lists until their cap is actually
    // reached (the "incremental" in incremental merge).
    double best = kExhausted;
    size_t best_i = inputs_.size();
    for (size_t i = 0; i < inputs_.size(); ++i) {
      const Head& head = heads_[i];
      double bound;
      if (head.primed) {
        bound = head.valid ? head.row.score : kExhausted;
      } else {
        bound = inputs_[i]->UpperBound();
      }
      if (bound > best) {
        best = bound;
        best_i = i;
      }
    }
    if (best_i == inputs_.size() || best <= kExhausted) return false;

    if (!heads_[best_i].primed) {
      Prime(best_i);
      continue;  // bounds changed; re-select
    }

    // The head of best_i is a real row whose score dominates every other
    // input's bound: safe to emit in globally sorted order.
    ScoredRow row = std::move(heads_[best_i].row);
    Prime(best_i);  // advance that input

    if (!seen_.insert(row.bindings).second) {
      ++stats_->merge_duplicates;
      continue;  // a lower-scored derivation of an already-emitted answer
    }
    ++stats_->merge_rows;
    ++rows_emitted_;
    *out = std::move(row);
    return true;
  }
}

void IncrementalMerge::Discard() {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    inputs_[i]->Discard();
    // Mark every head exhausted so Next() reports false without pulling.
    heads_[i].primed = true;
    heads_[i].valid = false;
  }
}

double IncrementalMerge::UpperBound() const {
  double best = kExhausted;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const Head& head = heads_[i];
    const double bound = head.primed
                             ? (head.valid ? head.row.score : kExhausted)
                             : inputs_[i]->UpperBound();
    if (bound > best) best = bound;
  }
  return best;
}

}  // namespace specqp
