#ifndef SPECQP_TOPK_OPERATOR_H_
#define SPECQP_TOPK_OPERATOR_H_

#include "topk/scored_row.h"

namespace specqp {

// Pull-based iterator over scored rows in non-increasing score order.
//
// Contract:
//   - Next() fills `out` and returns true, or returns false at exhaustion
//     (and stays false afterwards).
//   - Scores of successive rows never increase.
//   - UpperBound() is >= the score of every row Next() will still return,
//     and never increases between calls. A negative bound (kExhausted)
//     signals that no further row can arrive.
//
// These invariants are what allow rank joins and the top-k driver to stop
// early without reading entire inputs (section 2.1).
class ScoredRowIterator {
 public:
  virtual ~ScoredRowIterator() = default;

  virtual bool Next(ScoredRow* out) = 0;
  virtual double UpperBound() const = 0;

  // Hint that no further row will be pulled from this iterator. Operators
  // backed by block-compressed posting lists use it to account the
  // remaining blocks as skipped without decoding them; composite operators
  // propagate it to their children. Next() after Discard() must still be
  // safe, and must return false. Purely an accounting/efficiency hint — it
  // never changes which rows earlier calls produced.
  virtual void Discard() {}

  // Rows this iterator has emitted so far (Next() returned true). Leaf and
  // stream operators override it so the adaptive executor can compare a
  // sub-plan's observed cardinality against the planner's estimate at row
  // milestones (core/speculation.h); the default keeps simple combinators
  // exempt. Read only by the thread driving the tree.
  virtual uint64_t RowsEmitted() const { return 0; }

  // Sentinel bound strictly below any real score (scores are >= 0).
  static constexpr double kExhausted = -1.0;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_OPERATOR_H_
