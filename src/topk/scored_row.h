#ifndef SPECQP_TOPK_SCORED_ROW_H_
#define SPECQP_TOPK_SCORED_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace specqp {

// A (partial) answer flowing through the operator tree: one TermId per
// query variable (kInvalidTermId where unbound) plus the accumulated score.
// Width is fixed per query (num_vars), so merging bindings never resizes.
struct ScoredRow {
  std::vector<TermId> bindings;
  double score = 0.0;

  ScoredRow() = default;
  ScoredRow(size_t width, double score_in)
      : bindings(width, kInvalidTermId), score(score_in) {}
};

// Hash/equality over the binding vector only; used for duplicate-answer
// suppression (Definition 8: an answer's score is the max over its
// derivations, so in score-descending streams the first occurrence wins).
struct BindingsHash {
  size_t operator()(const std::vector<TermId>& b) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (TermId t : b) {
      h ^= t;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Total order for deterministic tie-breaking: score descending, then
// bindings lexicographically ascending.
bool RowBefore(const ScoredRow& a, const ScoredRow& b);

// Merges `right`'s bindings into `left` (kInvalidTermId treated as
// "unbound"): unbound slots of `left` take `right`'s value; slots bound on
// both sides keep `left`'s value ("left wins"). Join operators guarantee
// agreement on actual join variables via key equality before merging, so
// left-wins only ever applies to non-join slots — which may legitimately
// conflict, e.g. in a cross product with no join variables. Callers must
// pick the merge target deterministically (RankJoin always lets its left
// input win, regardless of pull order) so answers are a function of the
// inputs alone. Semantics are identical in Debug and Release builds.
void MergeBindingsInto(const ScoredRow& right, ScoredRow* left);

// "?s=<Shakira> ?o=<guitar> (score 1.73)" — for examples and debugging.
std::string RowToString(const ScoredRow& row, const Query& query,
                        const Dictionary& dict);

}  // namespace specqp

#endif  // SPECQP_TOPK_SCORED_ROW_H_
