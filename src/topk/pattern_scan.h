#ifndef SPECQP_TOPK_PATTERN_SCAN_H_
#define SPECQP_TOPK_PATTERN_SCAN_H_

#include <memory>

#include "rdf/posting_list.h"
#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"
#include "topk/exec_context.h"
#include "topk/operator.h"

namespace specqp {

// Sorted access to one triple pattern: streams the pattern's posting list
// (already sorted by descending normalised score) as rows binding the
// pattern's variables, each score multiplied by `weight` — 1.0 for an
// original pattern, the rule weight w for a relaxation feeding an
// incremental merge (Definition 8).
//
// Under parallel execution the list may be one hash partition of the
// pattern's full posting list (see rdf/posting_partition.h); the scan is
// oblivious to that — partition pieces keep the global normalisation and
// sort order.
class PatternScan final : public ScoredRowIterator {
 public:
  // `width` is the owning query's variable count. `list` must come from the
  // pattern's key. `ctx` may not be null and must outlive the scan.
  PatternScan(const TripleStore* store, std::shared_ptr<const PostingList> list,
              const TriplePattern& pattern, size_t width, double weight,
              ExecContext* ctx);

  PatternScan(const PatternScan&) = delete;
  PatternScan& operator=(const PatternScan&) = delete;

  bool Next(ScoredRow* out) override;
  double UpperBound() const override;
  void Discard() override;
  uint64_t RowsEmitted() const override { return rows_emitted_; }

  const TriplePattern& pattern() const { return pattern_; }
  double weight() const { return weight_; }

 private:
  const TripleStore* store_;
  std::shared_ptr<const PostingList> list_;
  TriplePattern pattern_;
  size_t width_;
  double weight_;
  ExecContext* ctx_;
  ExecStats* stats_;
  uint64_t rows_emitted_ = 0;
  bool fault_reported_ = false;  // store_faults charged once per scan
  // Canonical access path over flat or block-compressed lists. At an
  // undecoded block boundary PeekScore() answers from the block header
  // (bit-equal to the first entry's score), so UpperBound() never forces a
  // decode; blocks the scan never materialises are charged to
  // stats_->blocks_skipped when the iterator is torn down.
  BlockIterator iter_;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_PATTERN_SCAN_H_
