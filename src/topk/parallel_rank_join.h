#ifndef SPECQP_TOPK_PARALLEL_RANK_JOIN_H_
#define SPECQP_TOPK_PARALLEL_RANK_JOIN_H_

#include <limits>
#include <memory>
#include <vector>

#include "topk/exec_context.h"
#include "topk/operator.h"

namespace specqp {

// Bound-aware top-k merger over per-partition rank-join trees.
//
// The plan executor hash-partitions every posting list on a variable v
// bound by all patterns (rdf/posting_partition.h) and builds one complete
// serial operator tree per partition: rows whose v-bindings hash to
// different buckets can never join, so the partition outputs are disjoint
// slices of the serial join result. This operator merges those slices back
// into one stream while running the partition trees on the context's
// thread pool.
//
// Scheduling is fork-join, not producer-consumer: whenever the merge needs
// rows from partitions whose bound still rivals the current candidate, it
// pulls one batch from each such partition concurrently (ThreadPool::
// RunAndWait, the calling thread participates) and re-evaluates. Between
// refills all state is owned by the calling thread, so there are no locks
// on the row path and destruction never races a worker.
//
// Contract (same as any ScoredRowIterator) plus determinism:
//   - every partition stream must be emitted in RowBefore total order —
//     which RankJoin's strict-threshold emission guarantees;
//   - partition streams must be pairwise disjoint in (score, bindings)
//     ties, which hash partitioning guarantees (equal bindings imply the
//     same partition);
//   - the merged stream is then exactly the RowBefore-sorted union,
//     i.e. bit-identical to the serial tree's output, regardless of
//     partition count, batch size, or thread timing.
//   - UpperBound() == max over live partitions of (buffered head score,
//     else the partition's last observed bound); never increases.
class ParallelRankJoin final : public ScoredRowIterator {
 public:
  // `ctx` supplies the pool and the stats sink for merge bookkeeping (the
  // partition trees were built against their own partition contexts). Must
  // outlive the operator. `batch_size` rows are pulled per partition per
  // refill round.
  ParallelRankJoin(std::vector<std::unique_ptr<ScoredRowIterator>> partitions,
                   ExecContext* ctx, size_t batch_size = 32);

  ParallelRankJoin(const ParallelRankJoin&) = delete;
  ParallelRankJoin& operator=(const ParallelRankJoin&) = delete;

  bool Next(ScoredRow* out) override;
  double UpperBound() const override;
  void Discard() override;

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  static constexpr double kEps = 1e-9;

  struct Partition {
    std::unique_ptr<ScoredRowIterator> op;
    // Fixed-capacity refill window (batch_size slots, sized once): each
    // refill overwrites the slots in place, so every slot's
    // ScoredRow::bindings keeps its capacity across rounds and the
    // steady-state refill allocates nothing. `head` walks the filled
    // prefix [0, filled); rows are consumed by copy (the caller's row
    // buffer is reused the same way).
    std::vector<ScoredRow> buffer;
    size_t head = 0;
    size_t filled = 0;
    // Upper bound on rows not yet buffered; clamped non-increasing.
    double bound = kInf;
    bool exhausted = false;  // op has returned false

    bool BufferEmpty() const { return head >= filled; }
    const ScoredRow& Front() const { return buffer[head]; }
    bool Live() const { return !BufferEmpty() || !exhausted; }
    // Bound on anything this partition can still emit.
    double Envelope() const {
      if (!BufferEmpty()) return Front().score;
      return exhausted ? -kInf : bound;
    }
  };

  // Pulls up to batch_size_ rows into every live, empty partition whose
  // bound is not already strictly below `need_above`. Runs on the pool.
  void Refill(double need_above);

  std::vector<Partition> partitions_;
  ExecContext* ctx_;
  ExecStats* stats_;
  ThreadPool* pool_;
  size_t batch_size_;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_PARALLEL_RANK_JOIN_H_
