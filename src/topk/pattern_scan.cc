#include "topk/pattern_scan.h"

#include "util/logging.h"

namespace specqp {

PatternScan::PatternScan(const TripleStore* store,
                         std::shared_ptr<const PostingList> list,
                         const TriplePattern& pattern, size_t width,
                         double weight, ExecContext* ctx)
    : store_(store),
      list_(std::move(list)),
      pattern_(pattern),
      width_(width),
      weight_(weight),
      ctx_(ctx),
      stats_(ctx == nullptr ? nullptr : ctx->stats()),
      iter_(list_.get(), stats_ == nullptr ? nullptr : &stats_->blocks_decoded,
            stats_ == nullptr ? nullptr : &stats_->blocks_skipped) {
  SPECQP_CHECK(store_ != nullptr && list_ != nullptr && stats_ != nullptr);
  SPECQP_CHECK(weight_ > 0.0 && weight_ <= 1.0);
}

bool PatternScan::Next(ScoredRow* out) {
  while (!iter_.AtEnd()) {
    if (ctx_->Interrupted()) return false;  // cancellation / deadline
    const PostingEntry& entry = iter_.Entry();
    if (iter_.faulted()) {
      // The block source latched a decode fault: `entry` is a placeholder,
      // not data. Record it once, stop the whole execution (the engine
      // maps kStoreFault to IoError), and end this stream.
      if (!fault_reported_) {
        fault_reported_ = true;
        ++stats_->store_faults;
        if (ctx_->interrupt() != nullptr) {
          ctx_->interrupt()->RequestStop(StopCause::kStoreFault);
        }
      }
      return false;
    }
    iter_.Advance();
    const Triple& t = store_->triple(entry.triple_index);
    if (!ConsistentMatch(pattern_, t)) continue;

    out->bindings.assign(width_, kInvalidTermId);
    if (pattern_.s.is_variable()) out->bindings[pattern_.s.var()] = t.s;
    if (pattern_.p.is_variable()) out->bindings[pattern_.p.var()] = t.p;
    if (pattern_.o.is_variable()) out->bindings[pattern_.o.var()] = t.o;
    out->score = weight_ * entry.score;

    ++stats_->scan_rows;
    ++stats_->answer_objects;
    ++rows_emitted_;
    return true;
  }
  return false;
}

double PatternScan::UpperBound() const {
  if (iter_.AtEnd()) return kExhausted;
  return weight_ * iter_.PeekScore();
}

void PatternScan::Discard() { iter_.SkipAll(); }

}  // namespace specqp
