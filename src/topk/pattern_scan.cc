#include "topk/pattern_scan.h"

#include "util/logging.h"

namespace specqp {

PatternScan::PatternScan(const TripleStore* store,
                         std::shared_ptr<const PostingList> list,
                         const TriplePattern& pattern, size_t width,
                         double weight, ExecContext* ctx)
    : store_(store),
      list_(std::move(list)),
      pattern_(pattern),
      width_(width),
      weight_(weight),
      ctx_(ctx),
      stats_(ctx == nullptr ? nullptr : ctx->stats()) {
  SPECQP_CHECK(store_ != nullptr && list_ != nullptr && stats_ != nullptr);
  SPECQP_CHECK(weight_ > 0.0 && weight_ <= 1.0);
}

bool PatternScan::Next(ScoredRow* out) {
  while (cursor_ < list_->entries.size()) {
    if (ctx_->Interrupted()) return false;  // cancellation / deadline
    const PostingEntry& entry = list_->entries[cursor_++];
    const Triple& t = store_->triple(entry.triple_index);
    if (!ConsistentMatch(pattern_, t)) continue;

    out->bindings.assign(width_, kInvalidTermId);
    if (pattern_.s.is_variable()) out->bindings[pattern_.s.var()] = t.s;
    if (pattern_.p.is_variable()) out->bindings[pattern_.p.var()] = t.p;
    if (pattern_.o.is_variable()) out->bindings[pattern_.o.var()] = t.o;
    out->score = weight_ * entry.score;

    ++stats_->scan_rows;
    ++stats_->answer_objects;
    return true;
  }
  return false;
}

double PatternScan::UpperBound() const {
  if (cursor_ >= list_->entries.size()) return kExhausted;
  return weight_ * list_->entries[cursor_].score;
}

}  // namespace specqp
