#ifndef SPECQP_TOPK_PROJECT_H_
#define SPECQP_TOPK_PROJECT_H_

#include <memory>
#include <vector>

#include "topk/operator.h"

namespace specqp {

// Clears the given binding slots (sets them to kInvalidTermId) in every row
// of the wrapped iterator, preserving order, scores, and bounds. Used to
// hide the fresh join variable of a chain relaxation before its rows enter
// an incremental merge: downstream duplicate suppression must treat two
// chains reaching the same subject through different intermediates as
// derivations of the *same* answer (Definition 8: max over derivations).
class ProjectIterator final : public ScoredRowIterator {
 public:
  ProjectIterator(std::unique_ptr<ScoredRowIterator> input,
                  std::vector<VarId> cleared_vars);

  ProjectIterator(const ProjectIterator&) = delete;
  ProjectIterator& operator=(const ProjectIterator&) = delete;

  bool Next(ScoredRow* out) override;
  double UpperBound() const override { return input_->UpperBound(); }
  void Discard() override { input_->Discard(); }

 private:
  std::unique_ptr<ScoredRowIterator> input_;
  std::vector<VarId> cleared_vars_;
};

}  // namespace specqp

#endif  // SPECQP_TOPK_PROJECT_H_
