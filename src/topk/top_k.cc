#include "topk/top_k.h"

#include <unordered_set>

#include "util/logging.h"

namespace specqp {

std::vector<ScoredRow> PullTopK(ScoredRowIterator* root, size_t k,
                                ExecStats* stats) {
  SPECQP_CHECK(root != nullptr && stats != nullptr);
  std::vector<ScoredRow> out;
  out.reserve(k);
  std::unordered_set<std::vector<TermId>, BindingsHash> seen;
  // At most k distinct binding vectors are ever inserted (duplicates do
  // not grow the set), so one up-front reservation removes every rehash —
  // each of which would re-hash all resident full binding vectors.
  seen.reserve(k + 1);
  ScoredRow row;
  while (out.size() < k && root->Next(&row)) {
    if (!seen.insert(row.bindings).second) continue;
    out.push_back(row);
  }
  return out;
}

}  // namespace specqp
