#ifndef SPECQP_TOPK_EXEC_STATS_H_
#define SPECQP_TOPK_EXEC_STATS_H_

#include <algorithm>
#include <cstdint>

namespace specqp {

// Counters shared by all operators of one query execution.
//
// `answer_objects` is the paper's memory metric (section 4.3): every
// intermediate answer object materialised during processing. Our counting
// policy (identical for both engines, so the T-vs-S comparison is
// apples-to-apples):
//   - +1 per row materialised from a posting list by a PatternScan, and
//   - +1 per join result constructed by a RankJoin.
// IncrementalMerge forwards scan rows without constructing new objects, so
// its traffic is visible through the scan counter.
//
// Under parallel execution each partition tree writes to its own ExecStats
// (handed out by ExecContext::ForPartition), so no counter is ever shared
// between threads; the per-partition counters are folded back into the
// root stats with operator+= once the query has finished.
struct ExecStats {
  uint64_t answer_objects = 0;
  uint64_t scan_rows = 0;        // rows emitted by pattern scans
  uint64_t merge_rows = 0;       // rows emitted by incremental merges
  uint64_t merge_duplicates = 0; // rows suppressed by merge dedup
  uint64_t join_results = 0;     // rows constructed by rank joins
  uint64_t join_hash_probes = 0;
  uint64_t parallel_partitions = 0;    // partition trees built (0 = serial)
  uint64_t parallel_refill_rounds = 0; // fork-join refills by the top merger
  uint64_t blocks_decoded = 0;  // posting blocks materialised by scans
  uint64_t blocks_skipped = 0;  // posting blocks bypassed via headers

  // Degraded-read ledger (rdf/sharded_store.h). store_faults counts
  // posting-block decode failures observed by scans during this query —
  // nonzero means the answer was computed over damaged data and the
  // engine fails the query with IoError. shards_failed / shards_total
  // record the quarantine state the query was served under: failed > 0
  // with an OK status means a degraded (partial = true) answer covering
  // only the surviving shards.
  uint64_t store_faults = 0;
  uint64_t shards_failed = 0;
  uint64_t shards_total = 0;

  // Speculation ledger (core/speculation.h). A raced query executes its
  // primary plan and the planner's runner-up concurrently; the main
  // counters above come from the *winner only* — the loser's aborted work
  // is visible solely through this ledger, so racing never double-counts
  // operator traffic.
  uint64_t plans_raced = 0;            // racer executions launched (2/query)
  uint64_t race_wins_by_runnerup = 0;  // races decided by the runner-up plan
  uint64_t speculative_work_wasted_rows = 0;  // loser answer objects discarded
  uint64_t replans_triggered = 0;      // mid-query re-plans (divergence)
  double race_loser_abort_ms = 0.0;    // win-declared -> loser wound down

  double plan_ms = 0.0;
  double exec_ms = 0.0;

  void Reset() { *this = ExecStats(); }

  ExecStats& operator+=(const ExecStats& other) {
    answer_objects += other.answer_objects;
    scan_rows += other.scan_rows;
    merge_rows += other.merge_rows;
    merge_duplicates += other.merge_duplicates;
    join_results += other.join_results;
    join_hash_probes += other.join_hash_probes;
    parallel_partitions += other.parallel_partitions;
    parallel_refill_rounds += other.parallel_refill_rounds;
    blocks_decoded += other.blocks_decoded;
    blocks_skipped += other.blocks_skipped;
    store_faults += other.store_faults;
    // shards_failed / shards_total describe the serving state, not work
    // done by a partition; the root query's snapshot wins, so folding a
    // partition in must not double them.
    shards_failed = std::max(shards_failed, other.shards_failed);
    shards_total = std::max(shards_total, other.shards_total);
    plans_raced += other.plans_raced;
    race_wins_by_runnerup += other.race_wins_by_runnerup;
    speculative_work_wasted_rows += other.speculative_work_wasted_rows;
    replans_triggered += other.replans_triggered;
    race_loser_abort_ms += other.race_loser_abort_ms;
    plan_ms += other.plan_ms;
    exec_ms += other.exec_ms;
    return *this;
  }
};

}  // namespace specqp

#endif  // SPECQP_TOPK_EXEC_STATS_H_
