#include "core/engine.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "query/parser.h"
#include "rdf/store_io.h"
#include "relax/expansion.h"
#include "topk/top_k.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/stop_probe.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace specqp {

namespace {

// Bridges an ExecInterrupt across the rdf/topk layer boundary: installed
// as the thread-local stop probe for the scope of one execution, so store
// internals (ShardedStore::Match, posting-list builds) can poll
// cancellation/deadline without depending on the topk layer.
bool InterruptStopProbe(const void* ctx) {
  const auto* interrupt = static_cast<const ExecInterrupt*>(ctx);
  return interrupt->Stopped() || interrupt->CheckDeadline();
}

}  // namespace

int ResolveNumThreads(int requested) {
  if (requested >= 1) return std::min(requested, 256);
  // The environment is consulted exactly once per process (thread-safe
  // static init): every engine constructed with num_threads <= 0 sees the
  // same resolved value, mid-run setenv("SPECQP_THREADS") cannot skew
  // later engines, and concurrent Submit paths never race a getenv.
  static const int env_threads = [] {
    const char* env = std::getenv("SPECQP_THREADS");
    if (env == nullptr) return 1;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 1) return 1;
    return static_cast<int>(std::min(parsed, 256L));
  }();
  return env_threads;
}

Engine::Engine(const TripleStore* store, const RelaxationIndex* rules,
               const EngineOptions& options)
    : store_(store),
      rules_(rules),
      options_(options),
      num_threads_(ResolveNumThreads(options.num_threads)),
      pool_(num_threads_ > 1
                ? std::make_unique<ThreadPool>(
                      static_cast<size_t>(num_threads_) - 1)
                : nullptr),
      postings_(store, options.cache_budget_bytes, options.cache_cost_aware),
      catalog_(store, &postings_, options.head_fraction),
      selectivity_(store, options.selectivity_mode),
      estimator_(&catalog_, &selectivity_, options.estimator_model,
                 options.grid_delta),
      planner_(&estimator_, rules),
      executor_(store, &postings_, rules,
                PlanExecutor::Options{options.parallel_min_rows}),
      speculative_(&executor_, &postings_, rules, &estimator_),
      calibration_log_(options.calibration_log_capacity) {
  SPECQP_CHECK(store_ != nullptr && rules_ != nullptr);
  SPECQP_CHECK(store_->finalized()) << "Engine requires a finalized store";
  if (!options_.fault_plan.empty()) {
    // Process-wide and idempotent (OpenFromPath may have configured the
    // same plan already, before the store open, so open-path probes fire).
    const Status configured =
        FaultInjector::Global().Configure(options_.fault_plan);
    if (!configured.ok()) {
      SPECQP_LOG(Warning) << "ignoring malformed fault plan: "
                          << configured.ToString();
    }
  }
  if (!options_.calibration_path.empty()) {
    // Before the first GetStats, so every estimate this engine ever makes
    // is corrected consistently (including OpenFromPath's Preload, which
    // runs after construction and corrects on the way in).
    catalog_.LoadCalibration(options_.calibration_path);
  }
}

Result<Engine::Opened> Engine::OpenFromPath(const std::string& store_path,
                                            const RelaxationIndex* rules,
                                            const EngineOptions& options) {
  // The fault plan must be live before the store opens so that open-path
  // probes ("store.open", "shard.open") participate in the schedule; the
  // Engine constructor re-applies it harmlessly.
  if (!options.fault_plan.empty()) {
    const Status configured =
        FaultInjector::Global().Configure(options.fault_plan);
    if (!configured.ok()) {
      SPECQP_LOG(Warning) << "ignoring malformed fault plan: "
                          << configured.ToString();
    }
  }
  if (IsBundlePath(store_path)) {
    // Sharded bundle (SQPBNDL1): N cooperating mapped shards behind one
    // facade. Per-shard stats snapshots describe shard-local subsets, not
    // the union, so the catalog is never preloaded from a bundle.
    ShardedStore::Options open_options;
    if (options.mmap_verify_all) {
      open_options.verify = MmapStore::Verify::kEager;
    }
    // Degraded serving implies shard quarantine; strict-with-isolation is
    // the explicit allow_quarantine knob.
    open_options.allow_quarantine =
        options.allow_quarantine || options.degraded_reads;
    Opened opened;
    SPECQP_ASSIGN_OR_RETURN(opened.sharded,
                            ShardedStore::Open(store_path, open_options));
    opened.engine = std::make_unique<Engine>(&opened.store(), rules, options);
    return opened;
  }
  SPECQP_ASSIGN_OR_RETURN(const uint32_t version,
                          PeekStoreVersion(store_path));
  Opened opened;
  if (options.mmap &&
      (version == v2::kFormatVersion || version == v3::kFormatVersion)) {
    MmapStore::Options open_options;
    if (options.mmap_verify_all) {
      open_options.verify = MmapStore::Verify::kEager;
    }
    SPECQP_ASSIGN_OR_RETURN(opened.mapped,
                            MmapStore::Open(store_path, open_options));
    // Metadata sections are dereferenced eagerly by planner/dictionary
    // lookups; check them up front (no-op after an eager open). The
    // O(triples) bulk sections stay lazy unless mmap_verify_all asked
    // for the full pass.
    const Status verified = opened.mapped->VerifyMetadataSections();
    if (!verified.ok()) return verified;
  } else {
    SPECQP_ASSIGN_OR_RETURN(TripleStore parsed, LoadStore(store_path));
    opened.parsed = std::make_unique<TripleStore>(std::move(parsed));
  }
  opened.engine = std::make_unique<Engine>(&opened.store(), rules, options);
  if (opened.mapped != nullptr && opened.mapped->has_stats() &&
      opened.mapped->stats_head_fraction() == options.head_fraction) {
    opened.engine->catalog().Preload(opened.mapped->stats_entries());
  }
  return opened;
}

AdmissionController& Engine::admission() {
  std::call_once(admission_once_, [this] {
    AdmissionController::Options options;
    options.max_batch_size = std::max<size_t>(1, options_.admission_max_batch);
    options.max_delay = std::chrono::microseconds(static_cast<int64_t>(
        std::max(0.0, options_.admission_max_delay_ms) * 1000.0));
    options.max_queue_depth = options_.admission_max_queue;
    options.deadline_aware_shed = options_.admission_deadline_shed;
    options.retry_after_hint = std::chrono::microseconds(static_cast<int64_t>(
        std::max(0.0, options_.admission_retry_after_ms) * 1000.0));
    admission_ = std::make_unique<AdmissionController>(this, options);
  });
  return *admission_;
}

std::future<QueryResponse> Engine::Submit(QueryRequest request) {
  if (request.admission == QueryRequest::Admission::kImmediate) {
    std::promise<QueryResponse> promise;
    promise.set_value(ExecuteRequest(std::move(request)));
    return promise.get_future();
  }
  return admission().Submit(std::move(request));
}

QueryResponse Engine::Explain(const QueryRequest& request) {
  QueryResponse response;
  response.tag = request.tag;
  response.strategy = request.strategy;
  response.k = request.k;
  if (request.k < 1) {
    response.status = Status::InvalidArgument("k must be >= 1");
    return response;
  }

  // Resolve without mutating the caller's request.
  Query parsed;
  const Query* query = nullptr;
  if (request.query.has_value()) {
    query = &*request.query;
  } else {
    auto result = ParseQuery(request.text, store_->dict());
    if (!result.ok()) {
      response.status = result.status();
      return response;
    }
    parsed = std::move(result).value();
    query = &parsed;
  }

  WallTimer plan_timer;
  switch (request.strategy) {
    case Strategy::kSpecQp:
      response.plan = planner_.Plan(*query, request.k, &response.diagnostics);
      break;
    case Strategy::kTrinit:
      response.plan = QueryPlan::TrinitPlan(query->num_patterns());
      break;
    case Strategy::kNoRelax:
      response.plan = QueryPlan::NoRelaxationsPlan(query->num_patterns());
      break;
  }
  response.stats.plan_ms = plan_timer.ElapsedMillis();
  return response;
}

QueryResponse Engine::ExecuteRequest(QueryRequest request) {
  QueryResponse response;
  response.tag = request.tag;
  response.strategy = request.strategy;
  response.k = request.k;

  if (request.k < 1) {
    response.status = Status::InvalidArgument("k must be >= 1");
    return response;
  }
  if (!request.query.has_value()) {
    auto parsed = ParseQuery(request.text, store_->dict());
    if (!parsed.ok()) {
      response.status = parsed.status();
      return response;
    }
    request.query = std::move(parsed).value();
  }

  ExecInterrupt interrupt;
  bool interruptible = false;
  if (request.cancel.valid()) {
    interrupt.LinkCancelFlag(request.cancel.flag());
    interruptible = true;
  }
  if (request.deadline.has_value()) {
    interrupt.SetDeadline(*request.deadline);
    interruptible = true;
  }
  if (interruptible && (interrupt.Stopped() || interrupt.CheckDeadline())) {
    // Terminated before any work: already-cancelled token or expired
    // deadline at submit time.
    response.status = interrupt.cause() == StopCause::kCancelled
                          ? Status::Cancelled("cancelled before execution")
                          : Status::DeadlineExceeded(
                                "deadline expired before execution");
    return response;
  }

  // Serving preflight: fault sweep + strict/degraded decision. A store
  // with quarantined shards either refuses now (strict) or marks the
  // response partial (degraded_reads).
  uint64_t fault_epoch = 0;
  response.status = PreflightServing(&response, &fault_epoch);
  if (!response.status.ok()) return response;

  RunQuery(*request.query, request, interruptible ? &interrupt : nullptr,
           &response);

  if (response.status.ok()) {
    const Status post = PostflightServing(fault_epoch, &response);
    if (!post.ok()) {
      response.rows.clear();
      response.partial = false;
      response.status = post;
    }
  }
  return response;
}

Status Engine::PreflightServing(QueryResponse* response,
                                uint64_t* epoch_out) {
  const ShardedTripleSource* source = store_->sharded_source();
  if (source == nullptr) {
    if (epoch_out != nullptr) *epoch_out = 0;
    return Status::Ok();
  }
  source->PollFaults();
  const uint64_t epoch = source->FaultEpoch();
  if (epoch_out != nullptr) *epoch_out = epoch;
  // Posting lists and statistics built against a retired shard set
  // describe answers the store can no longer produce; drop them exactly
  // once per epoch advance (CAS-guarded — concurrent preflights race to
  // reconcile, only the winner clears).
  uint64_t seen = seen_fault_epoch_.load(std::memory_order_acquire);
  while (seen < epoch) {
    if (seen_fault_epoch_.compare_exchange_weak(seen, epoch,
                                                std::memory_order_acq_rel)) {
      postings_.Clear();
      catalog_.Clear();
      break;
    }
  }
  const uint32_t failed = source->ShardsFailed();
  const uint32_t total = source->ShardsTotal();
  response->stats.shards_failed = failed;
  response->stats.shards_total = total;
  if (failed == 0) return Status::Ok();
  if (failed >= total) {
    return Status::Unavailable("every shard of the store is quarantined");
  }
  if (!options_.degraded_reads) {
    return Status::Unavailable(
        StrFormat("%u of %u shards quarantined and degraded reads are "
                  "disabled",
                  failed, total));
  }
  response->partial = true;  // answers cover the surviving shards only
  return Status::Ok();
}

Status Engine::PostflightServing(uint64_t epoch_before,
                                 QueryResponse* response) {
  const ShardedTripleSource* source = store_->sharded_source();
  bool faulted = response->stats.store_faults > 0;  // any backend
  if (source != nullptr) {
    source->PollFaults();
    faulted = faulted || source->FaultEpoch() != epoch_before;
    if (faulted) {
      // Refresh the ledger so the caller sees the post-fault serving
      // state.
      response->stats.shards_failed = source->ShardsFailed();
      response->stats.shards_total = source->ShardsTotal();
    }
  }
  if (faulted) {
    return Status::IoError(
        "backing store faulted during execution; the answer may mix pre- "
        "and post-fault data — retry to answer from the surviving state");
  }
  return Status::Ok();
}

void Engine::RunQuery(const Query& query, const QueryRequest& request,
                      const ExecInterrupt* interrupt,
                      QueryResponse* response) {
  // Store internals poll this thread-local probe between shards and every
  // few thousand merge steps, so cancellation aborts promptly even while
  // execution is deep inside a scatter-gather or posting build. Null
  // interrupt installs a null probe (StopRequested stays false).
  ScopedStopProbe stop_probe(
      interrupt != nullptr ? &InterruptStopProbe : nullptr, interrupt);

  WallTimer plan_timer;
  switch (request.strategy) {
    case Strategy::kSpecQp:
      response->plan =
          planner_.Plan(query, request.k, &response->diagnostics);
      break;
    case Strategy::kTrinit:
      response->plan = QueryPlan::TrinitPlan(query.num_patterns());
      break;
    case Strategy::kNoRelax:
      response->plan = QueryPlan::NoRelaxationsPlan(query.num_patterns());
      break;
  }
  response->stats.plan_ms = plan_timer.ElapsedMillis();

  WallTimer exec_timer;
  ThreadPool* pool =
      request.serial.value_or(false) ? nullptr : pool_.get();
  const AdaptivePolicy adaptive{options_.replan_divergence_factor,
                                options_.replan_check_rows};
  RaceReport race;
  QueryPlan executed_plan = response->plan;

  // Plan racing: only the Spec-QP strategy produces a runner-up (the
  // primary with its least-confident PLANGEN decision flipped), and a race
  // needs the pool to time-share.
  const PlanDiagnostics& diag = response->diagnostics;
  const bool race_now = pool != nullptr &&
                        request.strategy == Strategy::kSpecQp &&
                        options_.speculate_threshold > 0.0 &&
                        diag.has_runner_up && diag.least_confident_pattern >= 0 &&
                        diag.plan_confidence < options_.speculate_threshold;
  if (race_now) {
    const double bound = speculative_.CertificateBound(
        query, static_cast<size_t>(diag.least_confident_pattern));
    response->rows = speculative_.Race(query, request, response->plan,
                                       diag.runner_up, bound, adaptive, pool,
                                       &response->stats, &race, &executed_plan);
  } else {
    ExecContext ctx(&response->stats, pool, /*shared_scans=*/nullptr,
                    interrupt);
    if (request.parallel_min_rows.has_value()) {
      ctx.set_parallel_min_rows_override(*request.parallel_min_rows);
    }
    if (adaptive.enabled()) {
      response->rows = speculative_.RunAdaptive(
          query, response->plan, request.k, adaptive, &ctx, &executed_plan);
    } else {
      auto root = executor_.Build(query, response->plan, &ctx);
      response->rows = PullTopK(root.get(), request.k, &response->stats);
      root.reset();  // partition trees die before their contexts merge
    }
    ctx.MergePartitionStats();
  }
  response->stats.exec_ms = exec_timer.ElapsedMillis();

  if (interrupt != nullptr &&
      (interrupt->Stopped() || interrupt->CheckDeadline())) {
    // Aborted (or terminally late): no partial results are returned.
    response->rows.clear();
    switch (interrupt->cause()) {
      case StopCause::kCancelled:
        response->status = Status::Cancelled("query cancelled");
        break;
      case StopCause::kStoreFault:
        response->status =
            Status::IoError("backing store faulted during execution");
        break;
      default:
        response->status =
            Status::DeadlineExceeded("query deadline exceeded");
        break;
    }
    return;
  }

  // Chain relaxations execute with trailing scratch slots for their fresh
  // variables (always kInvalidTermId at the root); trim rows back to the
  // query's own variables.
  for (ScoredRow& row : response->rows) {
    if (row.bindings.size() > query.num_vars()) {
      row.bindings.resize(query.num_vars());
    }
  }

  // Calibration loop: record what the planner believed against what the
  // posting lists actually held (only for completed executions — an
  // aborted run's observations are censored). The pattern records feed
  // scripts/fit_estimator_correction.py; estimated_m is post-correction,
  // so a fitted table converging to 1.0 multipliers means the loop closed.
  for (const TriplePattern& q : query.patterns()) {
    const PatternKey key = q.Key();
    CalibrationPatternRecord record;
    record.signature = PatternSignature(*store_, key);
    record.estimated_m = estimator_.PatternCardinality(key);
    record.actual_m =
        static_cast<double>(postings_.GetUncounted(key)->size());
    calibration_log_.RecordPattern(std::move(record));
  }
  CalibrationQueryRecord summary;
  summary.estimated_cardinality = response->diagnostics.cardinality_estimate;
  summary.observed_join_results = response->rows.size();
  summary.plan = executed_plan.ToString();
  summary.raced = race.raced;
  summary.runner_up_won = race.runner_up_won;
  calibration_log_.RecordQuery(std::move(summary));
}

QueryPlan Engine::PlanOnly(const Query& query, size_t k,
                           PlanDiagnostics* diagnostics) {
  // Same planner call Explain makes, without the request/response envelope
  // (this sits in planning-throughput measurement loops).
  return planner_.Plan(query, k, diagnostics);
}

void Engine::Warm(const Query& query) {
  // Warm-only traversal: the pins returned by Get are dropped on purpose —
  // the point is to populate the cache, not to hold the lists.
  for (const TriplePattern& q : query.patterns()) {
    const PatternKey key = q.Key();
    (void)postings_.Get(key);
    catalog_.GetStats(key);
    const PatternExpansion expansion = ExpandPattern(*rules_, key);
    for (const PatternKey& relaxed : expansion.relaxed) {
      (void)postings_.Get(relaxed);
      catalog_.GetStats(relaxed);
    }
    for (const PatternKey& hop : expansion.chain_hops) {
      (void)postings_.Get(hop);
      catalog_.GetStats(hop);
    }
  }
}

QueryResponse SubmitWithRetry(Engine& engine, const QueryRequest& request,
                              const RetryPolicy& policy) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  QueryResponse response;
  for (int attempt = 1;; ++attempt) {
    response = engine.Submit(QueryRequest(request)).get();
    if (response.status.ok() ||
        !policy.IsRetryable(response.status.code()) ||
        attempt >= max_attempts) {
      return response;
    }
    // A shed whose hint is 0 says retrying cannot help (the request's own
    // deadline is unmeetable); stop burning attempts on it.
    if (response.status.code() == StatusCode::kResourceExhausted &&
        response.retry_after_ms <= 0.0) {
      return response;
    }
    const auto hint = std::chrono::microseconds(
        static_cast<int64_t>(std::max(0.0, response.retry_after_ms) * 1000.0));
    std::this_thread::sleep_for(policy.BackoffFor(attempt, hint));
  }
}

}  // namespace specqp
