#include "core/engine.h"

#include <algorithm>
#include <cstdlib>

#include "query/parser.h"
#include "rdf/store_io.h"
#include "relax/expansion.h"
#include "topk/top_k.h"
#include "util/logging.h"
#include "util/timer.h"

namespace specqp {

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSpecQp:
      return "Spec-QP";
    case Strategy::kTrinit:
      return "TriniT";
    case Strategy::kNoRelax:
      return "NoRelax";
  }
  return "?";
}

int ResolveNumThreads(int requested) {
  if (requested >= 1) return std::min(requested, 256);
  const char* env = std::getenv("SPECQP_THREADS");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1) return 1;
  return static_cast<int>(std::min(parsed, 256L));
}

Engine::Engine(const TripleStore* store, const RelaxationIndex* rules,
               const EngineOptions& options)
    : store_(store),
      rules_(rules),
      options_(options),
      num_threads_(ResolveNumThreads(options.num_threads)),
      pool_(num_threads_ > 1
                ? std::make_unique<ThreadPool>(
                      static_cast<size_t>(num_threads_) - 1)
                : nullptr),
      postings_(store, options.cache_budget_bytes, options.cache_cost_aware),
      catalog_(store, &postings_, options.head_fraction),
      selectivity_(store, options.selectivity_mode),
      estimator_(&catalog_, &selectivity_, options.estimator_model,
                 options.grid_delta),
      planner_(&estimator_, rules),
      executor_(store, &postings_, rules,
                PlanExecutor::Options{options.parallel_min_rows}) {
  SPECQP_CHECK(store_ != nullptr && rules_ != nullptr);
  SPECQP_CHECK(store_->finalized()) << "Engine requires a finalized store";
}

Result<Engine::Opened> Engine::OpenFromPath(const std::string& store_path,
                                            const RelaxationIndex* rules,
                                            const EngineOptions& options) {
  SPECQP_ASSIGN_OR_RETURN(const uint32_t version,
                          PeekStoreVersion(store_path));
  Opened opened;
  if (options.mmap && version == v2::kFormatVersion) {
    MmapStore::Options open_options;
    if (options.mmap_verify_all) {
      open_options.verify = MmapStore::Verify::kEager;
    }
    SPECQP_ASSIGN_OR_RETURN(opened.mapped,
                            MmapStore::Open(store_path, open_options));
    // Metadata sections are dereferenced eagerly by planner/dictionary
    // lookups; check them up front (no-op after an eager open). The
    // O(triples) bulk sections stay lazy unless mmap_verify_all asked
    // for the full pass.
    const Status verified = opened.mapped->VerifyMetadataSections();
    if (!verified.ok()) return verified;
  } else {
    SPECQP_ASSIGN_OR_RETURN(TripleStore parsed, LoadStore(store_path));
    opened.parsed = std::make_unique<TripleStore>(std::move(parsed));
  }
  opened.engine = std::make_unique<Engine>(&opened.store(), rules, options);
  if (opened.mapped != nullptr && opened.mapped->has_stats() &&
      opened.mapped->stats_head_fraction() == options.head_fraction) {
    opened.engine->catalog().Preload(opened.mapped->stats_entries());
  }
  return opened;
}

Engine::QueryResult Engine::Execute(const Query& query, size_t k,
                                    Strategy strategy) {
  SPECQP_CHECK(k >= 1);
  QueryResult result;

  WallTimer plan_timer;
  switch (strategy) {
    case Strategy::kSpecQp:
      result.plan = planner_.Plan(query, k, &result.diagnostics);
      break;
    case Strategy::kTrinit:
      result.plan = QueryPlan::TrinitPlan(query.num_patterns());
      break;
    case Strategy::kNoRelax:
      result.plan = QueryPlan::NoRelaxationsPlan(query.num_patterns());
      break;
  }
  result.stats.plan_ms = plan_timer.ElapsedMillis();

  WallTimer exec_timer;
  ExecContext ctx(&result.stats, pool_.get());
  auto root = executor_.Build(query, result.plan, &ctx);
  result.rows = PullTopK(root.get(), k, &result.stats);
  root.reset();  // partition trees die before their contexts merge
  ctx.MergePartitionStats();
  result.stats.exec_ms = exec_timer.ElapsedMillis();

  // Chain relaxations execute with trailing scratch slots for their fresh
  // variables (always kInvalidTermId at the root); trim rows back to the
  // query's own variables.
  for (ScoredRow& row : result.rows) {
    if (row.bindings.size() > query.num_vars()) {
      row.bindings.resize(query.num_vars());
    }
  }
  return result;
}

Result<Engine::QueryResult> Engine::ExecuteText(std::string_view text,
                                                size_t k, Strategy strategy) {
  SPECQP_ASSIGN_OR_RETURN(Query query, ParseQuery(text, store_->dict()));
  return Execute(query, k, strategy);
}

QueryPlan Engine::PlanOnly(const Query& query, size_t k,
                           PlanDiagnostics* diagnostics) {
  return planner_.Plan(query, k, diagnostics);
}

void Engine::Warm(const Query& query) {
  for (const TriplePattern& q : query.patterns()) {
    const PatternKey key = q.Key();
    postings_.Get(key);
    catalog_.GetStats(key);
    const PatternExpansion expansion = ExpandPattern(*rules_, key);
    for (const PatternKey& relaxed : expansion.relaxed) {
      postings_.Get(relaxed);
      catalog_.GetStats(relaxed);
    }
    for (const PatternKey& hop : expansion.chain_hops) {
      postings_.Get(hop);
      catalog_.GetStats(hop);
    }
  }
}

}  // namespace specqp
