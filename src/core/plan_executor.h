#ifndef SPECQP_CORE_PLAN_EXECUTOR_H_
#define SPECQP_CORE_PLAN_EXECUTOR_H_

#include <memory>

#include "core/query_plan.h"
#include "query/query.h"
#include "rdf/posting_list.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "topk/exec_context.h"
#include "topk/operator.h"

namespace specqp {

// Turns a query plan into an operator tree (section 3.2.2):
//
//   1. join-group patterns -> plain PatternScans, combined left-deep with
//      RankJoins (no relaxations),
//   2. each singleton -> an IncrementalMerge over the pattern's scan plus
//      one weighted scan per relaxation rule,
//   3. RankJoins over the join-group result and the singleton merges.
//
// Within each phase the next input is chosen greedily among the remaining
// ones so that it shares a variable with what is already joined (falling
// back to plan order when nothing connects); this keeps the paper's
// group-then-singletons structure while avoiding gratuitous cross
// products.
//
// Parallel trees: when the execution context carries a thread pool, the
// query has at least two patterns, every pattern binds one common variable
// v (the star centre in the paper's workloads), and the query's posting
// lists clear a size threshold, the executor builds one complete serial
// tree per hash partition of v's bindings (posting lists partitioned via
// rdf/posting_partition.h; lists of patterns not binding v are shared
// unpartitioned across trees) and merges them with a ParallelRankJoin.
// Because v is a join variable of every fold-level join, rows from
// different partitions can never join, so the partitioned union equals the
// serial result — and the merger reassembles the exact serial emission
// order (see parallel_rank_join.h). Each partition tree charges its own
// partition ExecStats, merged after execution.
//
// Storage backends: the executor sees only the TripleStore facade, so it
// runs unchanged over owned, mapped, and sharded (SQPBNDL1, see
// rdf/sharded_store.h) stores. The sharded facade's scatter-gather
// resolves every Match() span in GLOBAL index order — the same index
// space a single-file store would expose — which is what lets the
// partitioning above hash v-bindings without knowing shards exist: a
// partition piece is the same set of rows at any shard count. Do not add
// shard-aware logic here; placement is the store's concern, and the
// bit-identity tests (core_sharded_engine_test) assume this layer stays
// shard-oblivious.
class PlanExecutor {
 public:
  struct Options {
    // Minimum total posting entries across the query's original patterns
    // before a parallel tree is built (tiny queries are not worth the
    // partitioning pass). Zero = always parallelise when possible. Default
    // matches EngineOptions::parallel_min_rows.
    size_t parallel_min_rows = 1024;
    // Rows pulled per partition per refill round of the top merger.
    size_t parallel_batch_rows = 32;
  };

  PlanExecutor(const TripleStore* store, PostingListCache* postings,
               const RelaxationIndex* rules);
  PlanExecutor(const TripleStore* store, PostingListCache* postings,
               const RelaxationIndex* rules, const Options& options);

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  // A leaf of a built serial tree: the operator feeding one pattern's rows
  // into the joins (a bare PatternScan for join-group patterns, the
  // IncrementalMerge for singletons). The adaptive executor
  // (core/speculation.h) polls op->RowsEmitted() at row milestones to
  // compare each leaf's observed cardinality against the planner's
  // estimate. Handles borrow from the returned tree — valid only while the
  // tree is alive.
  struct LeafHandle {
    size_t pattern_index = 0;
    bool singleton = false;
    const ScoredRowIterator* op = nullptr;
  };

  // Builds the tree; `ctx` must outlive the returned iterator.
  std::unique_ptr<ScoredRowIterator> Build(const Query& query,
                                           const QueryPlan& plan,
                                           ExecContext* ctx);

  // As above, additionally surfacing per-pattern leaf handles. Handles are
  // only collected for serial trees (`leaves` is cleared but left empty
  // when the executor chooses the partitioned parallel path — the adaptive
  // checkpoints are a single-threaded-tree feature).
  std::unique_ptr<ScoredRowIterator> Build(const Query& query,
                                           const QueryPlan& plan,
                                           ExecContext* ctx,
                                           std::vector<LeafHandle>* leaves);

  // A variable bound by every pattern of `query` (smallest VarId wins), or
  // kInvalidVarId. Exposed for tests and planner diagnostics.
  static VarId CommonJoinVariable(const Query& query);

 private:
  struct PartitionView;

  std::unique_ptr<ScoredRowIterator> BuildTree(const Query& query,
                                               const QueryPlan& plan,
                                               ExecContext* ctx,
                                               const PartitionView* view,
                                               std::vector<LeafHandle>* leaves);

  const TripleStore* store_;
  PostingListCache* postings_;
  const RelaxationIndex* rules_;
  Options options_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_PLAN_EXECUTOR_H_
