#ifndef SPECQP_CORE_PLAN_EXECUTOR_H_
#define SPECQP_CORE_PLAN_EXECUTOR_H_

#include <memory>

#include "core/query_plan.h"
#include "query/query.h"
#include "rdf/posting_list.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "topk/exec_stats.h"
#include "topk/operator.h"

namespace specqp {

// Turns a query plan into an operator tree (section 3.2.2):
//
//   1. join-group patterns -> plain PatternScans, combined left-deep with
//      RankJoins (no relaxations),
//   2. each singleton -> an IncrementalMerge over the pattern's scan plus
//      one weighted scan per relaxation rule,
//   3. RankJoins over the join-group result and the singleton merges.
//
// Within each phase the next input is chosen greedily among the remaining
// ones so that it shares a variable with what is already joined (falling
// back to plan order when nothing connects); this keeps the paper's
// group-then-singletons structure while avoiding gratuitous cross
// products.
class PlanExecutor {
 public:
  PlanExecutor(const TripleStore* store, PostingListCache* postings,
               const RelaxationIndex* rules);

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  // Builds the tree; `stats` must outlive the returned iterator.
  std::unique_ptr<ScoredRowIterator> Build(const Query& query,
                                           const QueryPlan& plan,
                                           ExecStats* stats);

 private:
  const TripleStore* store_;
  PostingListCache* postings_;
  const RelaxationIndex* rules_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_PLAN_EXECUTOR_H_
