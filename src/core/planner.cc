#include "core/planner.h"

#include "util/logging.h"

namespace specqp {

Planner::Planner(ExpectedScoreEstimator* estimator,
                 const RelaxationIndex* rules)
    : estimator_(estimator), rules_(rules) {
  SPECQP_CHECK(estimator_ != nullptr && rules_ != nullptr);
}

QueryPlan Planner::Plan(const Query& query, size_t k,
                        PlanDiagnostics* diagnostics) {
  SPECQP_CHECK(k >= 1);
  const size_t n = query.num_patterns();
  QueryPlan plan;

  const ExpectedScoreEstimator::Estimate original =
      estimator_->EstimateQuery(query);
  const double eq_k = original.ExpectedAtRank(k);

  if (diagnostics != nullptr) {
    diagnostics->cardinality_estimate = original.cardinality;
    diagnostics->eq_k = eq_k;
    diagnostics->decisions.clear();
  }

  for (size_t i = 0; i < n; ++i) {
    PatternDecision decision;
    decision.pattern_index = i;

    // Only the top-weighted relaxation needs checking (section 3.2.1);
    // simple rules and chain rules compete on weight, since either kind's
    // best possible contribution equals its weight.
    const PatternKey key = query.pattern(i).Key();
    const RelaxationRule* top = rules_->TopRule(key);
    const ChainRelaxationRule* top_chain = rules_->TopChainRule(key);
    if (top == nullptr && top_chain == nullptr) {
      // No relaxations exist: nothing to speculate about.
      decision.has_relaxations = false;
      decision.relax = false;
      plan.join_group.push_back(i);
      if (diagnostics != nullptr) diagnostics->decisions.push_back(decision);
      continue;
    }
    decision.has_relaxations = true;
    const bool use_chain =
        top_chain != nullptr &&
        (top == nullptr || top_chain->weight > top->weight);

    // Q' = Q with q_i replaced by its top-weighted relaxation; the relaxed
    // position's distribution is discounted by the rule weight. A chain
    // rule replaces q_i by its two hops, each carrying w/2 (their sum —
    // the chain's contribution — then tops out at w).
    Query relaxed = query;
    std::vector<double> weights(n, 1.0);
    if (use_chain) {
      const VarId fresh = relaxed.GetOrAddVariable("__chain_z");
      auto chain = ApplyChainRule(query.pattern(i), *top_chain, fresh);
      SPECQP_CHECK(chain.ok()) << chain.status().ToString();
      relaxed.ReplacePattern(i, chain->hop1);
      relaxed.AddPattern(chain->hop2);
      weights[i] = top_chain->weight / 2.0;
      weights.push_back(top_chain->weight / 2.0);
    } else {
      auto relaxed_pattern = ApplyRule(query.pattern(i), *top);
      SPECQP_CHECK(relaxed_pattern.ok())
          << relaxed_pattern.status().ToString();
      relaxed.ReplacePattern(i, relaxed_pattern.value());
      weights[i] = top->weight;
    }

    const ExpectedScoreEstimator::Estimate relaxed_estimate =
        estimator_->EstimateQuery(relaxed, weights);
    decision.eq_prime_top = relaxed_estimate.ExpectedAtRank(1);

    decision.relax = decision.eq_prime_top > eq_k;
    const auto confidence = ExpectedScoreEstimator::ComputeConfidence(
        original, decision.eq_prime_top, eq_k);
    decision.confidence = confidence.Confidence();
    decision.bucket_disagreement = confidence.bucket_disagreement;
    if (decision.relax) {
      plan.singletons.push_back(i);
    } else {
      plan.join_group.push_back(i);
    }
    if (diagnostics != nullptr) diagnostics->decisions.push_back(decision);
  }

  if (diagnostics != nullptr) {
    // Plan-level confidence: the least confident contested decision. The
    // runner-up candidate flips exactly that decision — the single
    // coin-flip the race hedges against.
    diagnostics->plan_confidence = 1.0;
    diagnostics->least_confident_pattern = -1;
    diagnostics->has_runner_up = false;
    for (const PatternDecision& decision : diagnostics->decisions) {
      if (!decision.has_relaxations) continue;
      if (decision.confidence < diagnostics->plan_confidence ||
          diagnostics->least_confident_pattern < 0) {
        diagnostics->plan_confidence = decision.confidence;
        diagnostics->least_confident_pattern =
            static_cast<int>(decision.pattern_index);
      }
    }
    if (diagnostics->least_confident_pattern >= 0) {
      const auto flipped = static_cast<size_t>(
          diagnostics->least_confident_pattern);
      QueryPlan runner_up;
      for (const PatternDecision& decision : diagnostics->decisions) {
        const bool relax = decision.pattern_index == flipped
                               ? !decision.relax
                               : decision.relax;
        if (relax) {
          runner_up.singletons.push_back(decision.pattern_index);
        } else {
          runner_up.join_group.push_back(decision.pattern_index);
        }
      }
      diagnostics->has_runner_up = true;
      diagnostics->runner_up = std::move(runner_up);
      diagnostics->primary_cost_estimate = PlanCost(query, plan);
      diagnostics->runner_up_cost_estimate =
          PlanCost(query, diagnostics->runner_up);
    }
  }
  return plan;
}

double Planner::PlanCost(const Query& query, const QueryPlan& plan) {
  double cost = 0.0;
  for (size_t i : plan.join_group) {
    cost += estimator_->PatternCardinality(query.pattern(i).Key());
  }
  for (size_t i : plan.singletons) {
    const TriplePattern& q = query.pattern(i);
    cost += estimator_->PatternCardinality(q.Key());
    for (const RelaxationRule& rule : rules_->RulesFor(q.Key())) {
      auto relaxed = ApplyRule(q, rule);
      if (relaxed.ok()) {
        cost += estimator_->PatternCardinality(relaxed->Key());
      }
    }
    for (const ChainRelaxationRule& rule : rules_->ChainRulesFor(q.Key())) {
      // The fresh variable's id does not matter for costing: PatternKey
      // erases variables, so any id yields the hops' match-set keys.
      auto chain =
          ApplyChainRule(q, rule, static_cast<VarId>(query.num_vars()));
      if (chain.ok()) {
        cost += estimator_->PatternCardinality(chain->hop1.Key());
        cost += estimator_->PatternCardinality(chain->hop2.Key());
      }
    }
  }
  return cost;
}

}  // namespace specqp
