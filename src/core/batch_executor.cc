#include "core/batch_executor.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "rdf/shared_scan_cache.h"
#include "relax/expansion.h"
#include "topk/top_k.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace specqp {

namespace {

// Structural identity of a query: patterns (variables by id, constants by
// term), variable count, and projection. Variable *names* are irrelevant —
// results are VarId-indexed binding vectors — so two queries differing
// only in names collapse onto one execution.
std::string EncodeQuery(const Query& query) {
  std::string out = std::to_string(query.num_vars());
  out += ':';
  for (const TriplePattern& pattern : query.patterns()) {
    for (const PatternTerm& term : {pattern.s, pattern.p, pattern.o}) {
      if (term.is_variable()) {
        out += 'v';
        out += std::to_string(term.var());
      } else {
        out += 'c';
        out += std::to_string(term.term());
      }
    }
    out += '.';
  }
  out += '|';
  for (VarId v : query.projection()) {
    out += std::to_string(v);
    out += ',';
  }
  return out;
}

}  // namespace

BatchExecutor::BatchExecutor(Engine* engine) : engine_(engine) {
  SPECQP_CHECK(engine_ != nullptr);
}

std::vector<Engine::QueryResult> BatchExecutor::Execute(
    std::span<const Query> queries, size_t k, Strategy strategy,
    BatchStats* batch_stats) {
  return Execute(queries, k, strategy, batch_stats,
                 std::span<const ExecInterrupt* const>());
}

std::vector<Engine::QueryResult> BatchExecutor::Execute(
    std::span<const Query> queries, size_t k, Strategy strategy,
    BatchStats* batch_stats, std::span<const ExecInterrupt* const> interrupts) {
  SPECQP_CHECK(k >= 1);
  SPECQP_CHECK(interrupts.empty() || interrupts.size() == queries.size());
  BatchStats local_stats;
  BatchStats& bs = batch_stats != nullptr ? *batch_stats : local_stats;
  bs = BatchStats();
  bs.batch_size = queries.size();

  std::vector<Engine::QueryResult> results(queries.size());
  if (queries.empty()) return results;

  // --- phase 1: collapse structurally identical queries -------------------
  std::unordered_map<std::string, size_t> canon;  // encoding -> distinct id
  std::vector<size_t> rep_slot;          // distinct id -> representative slot
  std::vector<size_t> distinct_of(queries.size());  // slot -> distinct id
  canon.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto [it, inserted] =
        canon.emplace(EncodeQuery(queries[i]), rep_slot.size());
    if (inserted) rep_slot.push_back(i);
    distinct_of[i] = it->second;
  }
  bs.distinct_queries = rep_slot.size();

  // --- phase 2: mine expansions + shared-scan plan + stats snapshot -------
  WallTimer prepare_timer;
  RelaxationExpansionCache expansions(engine_->rules_);
  SharedScanCache shared(engine_->store_, &engine_->postings_);

  // The planning wave: every original pattern key, plus — per strategy —
  // the relaxation keys planning or execution is guaranteed to read.
  // kSpecQp planning compares against the *top-weighted* rule only, so the
  // other relaxations wait for the plan (phase 4); kTrinit executes every
  // relaxation of every pattern; kNoRelax reads originals only.
  std::vector<PatternKey> wave;
  std::unordered_set<PatternKey, PatternKeyHash> wave_seen;
  const auto add_key = [&](const PatternKey& key) {
    if (wave_seen.insert(key).second) wave.push_back(key);
  };
  std::unordered_set<PatternKey, PatternKeyHash> original_keys;
  for (const size_t slot : rep_slot) {
    for (const TriplePattern& pattern : queries[slot].patterns()) {
      const PatternKey key = pattern.Key();
      original_keys.insert(key);
      add_key(key);
      if (strategy == Strategy::kNoRelax) continue;
      const PatternExpansion& expansion = expansions.For(key);
      if (strategy == Strategy::kTrinit) {
        for (const PatternKey& relaxed : expansion.relaxed) add_key(relaxed);
        for (const PatternKey& hop : expansion.chain_hops) add_key(hop);
      } else if (!expansion.relaxed.empty()) {
        add_key(expansion.relaxed.front());  // top rule, for E_Q'(1)
      }
    }
  }
  bs.distinct_patterns = original_keys.size();
  shared.Prepare(wave);

  if (strategy == Strategy::kSpecQp) {
    // One statistics snapshot per batch: every pattern the planner will
    // consult is computed exactly once, against the lists the shared-scan
    // plan just resolved (Prepare published derived lists into the engine
    // cache, so GetStats never rebuilds them).
    for (const PatternKey& key : wave) {
      engine_->catalog_.GetStats(key);
    }
    bs.stats_snapshot_patterns = wave.size();
  }
  bs.prepare_ms = prepare_timer.ElapsedMillis();

  // --- phase 3: plan every distinct query (serial; memos are warm) --------
  WallTimer plan_phase_timer;
  for (const size_t slot : rep_slot) {
    Engine::QueryResult& result = results[slot];
    WallTimer plan_timer;
    switch (strategy) {
      case Strategy::kSpecQp:
        result.plan =
            engine_->planner_.Plan(queries[slot], k, &result.diagnostics);
        break;
      case Strategy::kTrinit:
        result.plan = QueryPlan::TrinitPlan(queries[slot].num_patterns());
        break;
      case Strategy::kNoRelax:
        result.plan =
            QueryPlan::NoRelaxationsPlan(queries[slot].num_patterns());
        break;
    }
    result.stats.plan_ms = plan_timer.ElapsedMillis();
  }
  bs.plan_ms = plan_phase_timer.ElapsedMillis();

  // --- phase 4: resolve the execution wave the plans actually need --------
  if (strategy == Strategy::kSpecQp) {
    WallTimer wave2_timer;
    std::vector<PatternKey> exec_wave;
    for (const size_t slot : rep_slot) {
      for (const size_t i : results[slot].plan.singletons) {
        const PatternKey key = queries[slot].pattern(i).Key();
        const PatternExpansion& expansion = expansions.For(key);
        for (const PatternKey& relaxed : expansion.relaxed) {
          if (wave_seen.insert(relaxed).second) exec_wave.push_back(relaxed);
        }
        for (const PatternKey& hop : expansion.chain_hops) {
          if (wave_seen.insert(hop).second) exec_wave.push_back(hop);
        }
      }
    }
    shared.Prepare(exec_wave);
    bs.prepare_ms += wave2_timer.ElapsedMillis();
  }
  bs.patterns_expanded = expansions.size();

  // --- phase 5: execute distinct queries concurrently ---------------------
  // A shared execution polls an interrupt only when every rider of its
  // duplicate group handed in that same signal (all-null groups and legacy
  // batches run uninterruptible, as before).
  std::vector<const ExecInterrupt*> group_interrupt(rep_slot.size(), nullptr);
  if (!interrupts.empty()) {
    std::vector<bool> group_seen(rep_slot.size(), false);
    for (size_t i = 0; i < queries.size(); ++i) {
      const size_t g = distinct_of[i];
      if (!group_seen[g]) {
        group_seen[g] = true;
        group_interrupt[g] = interrupts[i];
      } else if (group_interrupt[g] != interrupts[i]) {
        group_interrupt[g] = nullptr;  // mixed riders: run to completion
      }
    }
  }
  WallTimer exec_phase_timer;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(rep_slot.size());
  for (size_t g = 0; g < rep_slot.size(); ++g) {
    const size_t slot = rep_slot[g];
    const ExecInterrupt* interrupt = group_interrupt[g];
    tasks.push_back([this, &queries, &results, &shared, slot, k, interrupt] {
      const Query& query = queries[slot];
      Engine::QueryResult& result = results[slot];
      if (interrupt != nullptr && interrupt->Stopped()) {
        return;  // stopped before execution started; owner sets the status
      }
      WallTimer exec_timer;
      // Serial tree per query (no pool in the context): cross-query
      // parallelism comes from running the tasks concurrently, and serial
      // trees equal partitioned trees row-for-row anyway.
      ExecContext ctx(&result.stats, /*pool=*/nullptr, &shared, interrupt);
      auto root = engine_->executor_.Build(query, result.plan, &ctx);
      result.rows = PullTopK(root.get(), k, &result.stats);
      root.reset();
      ctx.MergePartitionStats();
      result.stats.exec_ms = exec_timer.ElapsedMillis();
      // Trim chain-relaxation scratch slots, as Execute() does.
      for (ScoredRow& row : result.rows) {
        if (row.bindings.size() > query.num_vars()) {
          row.bindings.resize(query.num_vars());
        }
      }
    });
  }
  if (engine_->pool_ != nullptr && tasks.size() > 1) {
    engine_->pool_->RunAndWait(&tasks);
  } else {
    for (auto& task : tasks) task();
  }
  bs.exec_ms = exec_phase_timer.ElapsedMillis();

  // --- phase 6: fan duplicate slots out from their representative ---------
  // Duplicates carry a full copy of the shared execution's result,
  // including its ExecStats: the work those counters describe happened
  // once for the whole duplicate group (BatchStats::distinct_queries says
  // how many executions actually ran).
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t rep = rep_slot[distinct_of[i]];
    if (rep != i) results[i] = results[rep];
  }

  const SharedScanCache::Counters counters = shared.counters();
  bs.shared_scan_hits = counters.hits;
  bs.shared_scan_misses = counters.misses;
  bs.lists_resolved = counters.resolved_lists;
  bs.lists_derived = counters.derived_lists;
  bs.base_scans = counters.base_scans;
  return results;
}

}  // namespace specqp
