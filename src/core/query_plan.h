#ifndef SPECQP_CORE_QUERY_PLAN_H_
#define SPECQP_CORE_QUERY_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "query/query.h"
#include "relax/relaxation.h"

namespace specqp {

// A speculative query plan (section 3.2): a partition of the query's
// pattern indices into
//   - the join group: patterns predicted NOT to need their relaxations,
//     executed as plain rank joins over their sorted match lists, and
//   - singletons: patterns whose relaxations are predicted to contribute to
//     the top-k, each processed through an incremental merge.
//
// The TriniT baseline is the all-singletons plan.
struct QueryPlan {
  std::vector<size_t> join_group;
  std::vector<size_t> singletons;

  size_t num_relaxed() const { return singletons.size(); }

  bool IsSingleton(size_t pattern_index) const;

  // The all-singletons (TriniT, Figure 2) plan for an n-pattern query.
  static QueryPlan TrinitPlan(size_t num_patterns);

  // The all-join-group plan (no relaxations at all).
  static QueryPlan NoRelaxationsPlan(size_t num_patterns);

  // "{q0 q2 | q1*}" — join group first, relaxed singletons starred.
  std::string ToString() const;
};

// Per-pattern record of what PLANGEN compared (for logs, the what-if
// example, and the prediction-accuracy benchmarks).
struct PatternDecision {
  size_t pattern_index = 0;
  bool has_relaxations = false;
  double eq_prime_top = 0.0;  // E_Q'(1): expected best score via top rule
  bool relax = false;         // the prediction
  // How decisively E_Q'(1) and E_Q(k) were separated: the normalised
  // margin |E_Q'(1) - E_Q(k)| / max(E_Q'(1), E_Q(k)) in [0, 1], halved
  // when both values land in the same bucket of the original query's
  // two-bucket model (the comparison is then below the model's
  // resolution). 1.0 for patterns without relaxations — there is nothing
  // to be wrong about.
  double confidence = 1.0;
  bool bucket_disagreement = false;  // compared-below-model-resolution flag
};

struct PlanDiagnostics {
  double cardinality_estimate = 0.0;  // n for the original query
  double eq_k = 0.0;                  // E_Q(k)
  std::vector<PatternDecision> decisions;

  // Plan-level confidence: the minimum per-decision confidence over
  // decisions that had relaxations to speculate about (1.0 when none).
  // When a runner-up exists it is the primary plan with the least
  // confident decision flipped — the candidate a speculative race executes
  // alongside the primary (EngineOptions::speculate_threshold).
  double plan_confidence = 1.0;
  int least_confident_pattern = -1;  // -1 = no contested decision
  bool has_runner_up = false;
  QueryPlan runner_up;
  // Estimated read cost of each candidate: summed estimated cardinality m
  // over every posting list the plan touches (join-group scans, singleton
  // scans plus their relaxation and chain-hop lists).
  double primary_cost_estimate = 0.0;
  double runner_up_cost_estimate = 0.0;
};

}  // namespace specqp

#endif  // SPECQP_CORE_QUERY_PLAN_H_
