#ifndef SPECQP_CORE_PLANNER_H_
#define SPECQP_CORE_PLANNER_H_

#include "core/estimator.h"
#include "core/query_plan.h"
#include "query/query.h"
#include "relax/relaxation_index.h"

namespace specqp {

// PLANGEN (Algorithm 1): for each triple pattern, speculate whether its
// relaxations can contribute answers to the top-k. The check compares
//
//   E_Q'(1)  — expected best score of the query with this pattern replaced
//              by its *top-weighted* relaxation (sufficient because
//              normalisation caps every relaxation's best contribution at
//              its weight, section 3.2.1), against
//   E_Q(k)   — expected k-th best score of the original query
//              (0 when the original query is not expected to have k
//              answers, so relaxations are then always predicted needed).
//
// Patterns with E_Q'(1) > E_Q(k) become singletons (their relaxations are
// processed via incremental merge); the rest form the join group.
class Planner {
 public:
  Planner(ExpectedScoreEstimator* estimator, const RelaxationIndex* rules);

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  // `diagnostics` is optional. When provided it additionally carries the
  // per-decision confidence signal, the plan-level confidence (minimum over
  // contested decisions), the runner-up plan (primary with the least
  // confident decision flipped), and the estimated read cost of both
  // candidates — the inputs of the speculative plan race
  // (core/speculation.h) and of Engine::Explain.
  QueryPlan Plan(const Query& query, size_t k,
                 PlanDiagnostics* diagnostics = nullptr);

 private:
  // Estimated read cost of `plan`: summed estimated cardinality over every
  // posting list it touches (singletons add their relaxation and chain-hop
  // lists). Memoised via the statistics catalog, so warm plans cost no I/O.
  double PlanCost(const Query& query, const QueryPlan& plan);

  ExpectedScoreEstimator* estimator_;
  const RelaxationIndex* rules_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_PLANNER_H_
