#ifndef SPECQP_CORE_BATCH_EXECUTOR_H_
#define SPECQP_CORE_BATCH_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.h"
#include "query/query.h"

namespace specqp {

// Counters and phase timings of one batch execution. The shared-scan
// counters are the batch's amortisation ledger: `lists_resolved` lists were
// materialised once for the whole batch (of which `lists_derived` came out
// of `base_scans` shared passes over per-predicate base lists instead of
// per-key builds), and every further request for one of them was a
// `shared_scan_hits` pointer lookup — work the same queries executed
// sequentially would have re-issued against the engine cache per query.
struct BatchStats {
  size_t batch_size = 0;        // queries handed in (parsed ones, for text)
  size_t distinct_queries = 0;  // executed once each; duplicates fan out
  size_t distinct_patterns = 0;  // distinct original pattern keys

  // Shared-scan ledger (see SharedScanCache::Counters).
  uint64_t shared_scan_hits = 0;
  uint64_t shared_scan_misses = 0;
  uint64_t lists_resolved = 0;
  uint64_t lists_derived = 0;
  uint64_t base_scans = 0;

  // Relaxations mined once per distinct pattern (RelaxationExpansionCache
  // size after the batch).
  size_t patterns_expanded = 0;
  // Statistics warmed once for the whole batch (kSpecQp planning wave).
  size_t stats_snapshot_patterns = 0;

  double prepare_ms = 0.0;  // dedup + expansion + shared scans + stats
  double plan_ms = 0.0;     // planning all distinct queries (serial)
  double exec_ms = 0.0;     // wall time of the execution phase
};

// Executes a batch of parsed queries over one engine with cross-query
// amortisation: posting-list scans, statistics, and relaxation expansions
// are resolved once per distinct pattern for the entire batch (shared-scan
// plan, batch-scoped pinning), structurally identical queries execute
// once, and the distinct queries run as independent tasks on the engine's
// thread pool. This is the dispatch path every admission window takes;
// callers with a pre-assembled batch use it directly. Stateless between
// calls — every batch builds its own SharedScanCache and
// RelaxationExpansionCache, scoped (and pinned) to that batch.
//
// Phases:
//   1. Dedup: structurally identical queries collapse onto one execution;
//      duplicates receive copies of its result.
//   2. Prepare: mine each distinct pattern's relaxation expansion once,
//      then resolve every posting list the planner will read through the
//      batch's SharedScanCache (object-bound siblings of one predicate are
//      derived from a single shared scan), and warm the statistics catalog
//      once per distinct pattern (kSpecQp).
//   3. Plan: each distinct query is planned serially against the warmed
//      catalog (the catalog and selectivity memos are not thread-safe);
//      with the stats resolved in phase 2 this is pure arithmetic.
//   4. Resolve the execution-wave lists the plans actually need (the
//      relaxation lists of kSpecQp singletons; kTrinit resolved everything
//      in phase 2).
//   5. Execute: one task per distinct query on the engine's ThreadPool
//      (cross-query parallelism); each task runs a serial operator tree
//      against the shared-scan cache and writes to its own result slot.
//
// Determinism: every per-query result is bit-identical to a sequential
// immediate Submit at any thread count — plans are computed from the same
// memoised statistics, shared/derived posting lists are bit-identical to
// per-query builds, and serial trees equal partitioned trees by the PR 2
// total-ordering invariant.
class BatchExecutor {
 public:
  explicit BatchExecutor(Engine* engine);

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  std::vector<Engine::QueryResult> Execute(std::span<const Query> queries,
                                           size_t k, Strategy strategy,
                                           BatchStats* batch_stats);

  // Admission-window variant: `interrupts` (empty, or one slot per query;
  // entries may be null) carries each query's cooperative stop signal.
  // A distinct execution polls an interrupt only when every slot of its
  // duplicate group shares that same interrupt — a group with an
  // uninterruptible (or differently-interruptible) rider runs to
  // completion, and the stopped riders' owners translate their own
  // interrupt state into terminal statuses afterwards. A slot whose
  // execution aborted returns with whatever rows were not yet produced
  // missing; callers gate on the interrupt before using the rows.
  std::vector<Engine::QueryResult> Execute(
      std::span<const Query> queries, size_t k, Strategy strategy,
      BatchStats* batch_stats,
      std::span<const ExecInterrupt* const> interrupts);

 private:
  Engine* engine_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_BATCH_EXECUTOR_H_
