#ifndef SPECQP_CORE_ESTIMATOR_H_
#define SPECQP_CORE_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "query/query.h"
#include "stats/catalog.h"
#include "stats/distribution.h"
#include "stats/selectivity.h"

namespace specqp {

// The expected score estimator of section 3.1: models the answer-score
// distribution of a whole query as the convolution of the per-pattern score
// distributions, and combines it with a join-cardinality estimate so order
// statistics can place expected scores at ranks.
class ExpectedScoreEstimator {
 public:
  enum class Model {
    // The paper's default: each convolution result is refit to a two-bucket
    // histogram before the next convolution (cheap, approximate).
    kTwoBucket,
    // Ablation: keep the exact (numerically gridded) shape across
    // convolutions — the "multi-bucket histogram" alternative of §4.5.2.
    kExactGrid,
  };

  struct Estimate {
    // Expected number of answers (m12 = m·m'·φ chain). Zero when any
    // pattern is empty.
    double cardinality = 0.0;
    // Distribution of one answer's score; null when cardinality is 0.
    std::shared_ptr<const ScoreDistribution> distribution;

    bool empty() const { return distribution == nullptr; }

    // E(score at rank) via order statistics; 0 when the query is not
    // expected to have that many answers (see order_statistics.h).
    double ExpectedAtRank(uint64_t rank) const;
  };

  ExpectedScoreEstimator(StatisticsCatalog* catalog,
                         SelectivityEstimator* selectivity,
                         Model model = Model::kTwoBucket,
                         double grid_delta = 1.0 / 512.0);

  ExpectedScoreEstimator(const ExpectedScoreEstimator&) = delete;
  ExpectedScoreEstimator& operator=(const ExpectedScoreEstimator&) = delete;

  // Estimates the score distribution of `query` where the matches of
  // pattern i are discounted by weights[i] (1.0 = not relaxed; a relaxed
  // query passes its rule weight at the relaxed position). `weights` must
  // have one entry per pattern, or be empty for all-ones.
  Estimate EstimateQuery(const Query& query,
                         const std::vector<double>& weights = {});

  // Per-decision confidence of one PLANGEN comparison E_Q'(1) vs E_Q(k).
  struct DecisionConfidence {
    // Normalised margin |eq_prime_top - eq_k| / max(eq_prime_top, eq_k),
    // in [0, 1]. 1.0 when both are zero (nothing to separate).
    double margin = 1.0;
    // True when both compared values fall inside the same bucket of the
    // original query's two-bucket score model: the decision then hinges on
    // sub-bucket interpolation the histogram cannot actually resolve.
    bool bucket_disagreement = false;

    // The scalar the speculation threshold is compared against: the margin,
    // halved when the comparison sits below the model's bucket resolution.
    double Confidence() const {
      return bucket_disagreement ? margin * 0.5 : margin;
    }
  };

  // `original` is the estimate of the unrelaxed query whose model bucketing
  // is consulted for the disagreement flag (may be empty).
  static DecisionConfidence ComputeConfidence(const Estimate& original,
                                              double eq_prime_top,
                                              double eq_k);

  // The catalog's estimated match count m for one pattern (after any
  // calibration correction) — the unit of the planner's per-plan read-cost
  // estimates and of the adaptive executor's divergence checkpoints.
  double PatternCardinality(const PatternKey& key);

  Model model() const { return model_; }

 private:
  StatisticsCatalog* catalog_;
  SelectivityEstimator* selectivity_;
  Model model_;
  double grid_delta_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_ESTIMATOR_H_
