#ifndef SPECQP_CORE_ESTIMATOR_H_
#define SPECQP_CORE_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "query/query.h"
#include "stats/catalog.h"
#include "stats/distribution.h"
#include "stats/selectivity.h"

namespace specqp {

// The expected score estimator of section 3.1: models the answer-score
// distribution of a whole query as the convolution of the per-pattern score
// distributions, and combines it with a join-cardinality estimate so order
// statistics can place expected scores at ranks.
class ExpectedScoreEstimator {
 public:
  enum class Model {
    // The paper's default: each convolution result is refit to a two-bucket
    // histogram before the next convolution (cheap, approximate).
    kTwoBucket,
    // Ablation: keep the exact (numerically gridded) shape across
    // convolutions — the "multi-bucket histogram" alternative of §4.5.2.
    kExactGrid,
  };

  struct Estimate {
    // Expected number of answers (m12 = m·m'·φ chain). Zero when any
    // pattern is empty.
    double cardinality = 0.0;
    // Distribution of one answer's score; null when cardinality is 0.
    std::shared_ptr<const ScoreDistribution> distribution;

    bool empty() const { return distribution == nullptr; }

    // E(score at rank) via order statistics; 0 when the query is not
    // expected to have that many answers (see order_statistics.h).
    double ExpectedAtRank(uint64_t rank) const;
  };

  ExpectedScoreEstimator(StatisticsCatalog* catalog,
                         SelectivityEstimator* selectivity,
                         Model model = Model::kTwoBucket,
                         double grid_delta = 1.0 / 512.0);

  ExpectedScoreEstimator(const ExpectedScoreEstimator&) = delete;
  ExpectedScoreEstimator& operator=(const ExpectedScoreEstimator&) = delete;

  // Estimates the score distribution of `query` where the matches of
  // pattern i are discounted by weights[i] (1.0 = not relaxed; a relaxed
  // query passes its rule weight at the relaxed position). `weights` must
  // have one entry per pattern, or be empty for all-ones.
  Estimate EstimateQuery(const Query& query,
                         const std::vector<double>& weights = {});

  Model model() const { return model_; }

 private:
  StatisticsCatalog* catalog_;
  SelectivityEstimator* selectivity_;
  Model model_;
  double grid_delta_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_ESTIMATOR_H_
