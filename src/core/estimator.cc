#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "stats/convolution.h"
#include "stats/grid_pdf.h"
#include "stats/order_statistics.h"
#include "stats/two_bucket_histogram.h"
#include "util/logging.h"

namespace specqp {

double ExpectedScoreEstimator::Estimate::ExpectedAtRank(uint64_t rank) const {
  if (empty()) return 0.0;
  return ExpectedScoreAtRank(*distribution, cardinality, rank);
}

ExpectedScoreEstimator::ExpectedScoreEstimator(
    StatisticsCatalog* catalog, SelectivityEstimator* selectivity, Model model,
    double grid_delta)
    : catalog_(catalog),
      selectivity_(selectivity),
      model_(model),
      grid_delta_(grid_delta) {
  SPECQP_CHECK(catalog_ != nullptr && selectivity_ != nullptr);
  SPECQP_CHECK(grid_delta_ > 0.0);
}

ExpectedScoreEstimator::DecisionConfidence
ExpectedScoreEstimator::ComputeConfidence(const Estimate& original,
                                          double eq_prime_top, double eq_k) {
  DecisionConfidence confidence;
  const double hi = std::max(eq_prime_top, eq_k);
  if (hi <= 0.0) {
    // Both sides expect nothing: the (non-)relax decision is vacuous.
    confidence.margin = 1.0;
    return confidence;
  }
  confidence.margin = std::abs(eq_prime_top - eq_k) / hi;

  // Bucket disagreement: when the original query's model is the two-bucket
  // histogram and both compared values land in the same bucket, the margin
  // rests on sub-bucket interpolation the model cannot resolve — flag the
  // decision as below model resolution.
  if (!original.empty()) {
    const auto* two_bucket =
        dynamic_cast<const TwoBucketHistogram*>(original.distribution.get());
    if (two_bucket != nullptr) {
      const double sigma = two_bucket->sigma_r();
      confidence.bucket_disagreement =
          (eq_prime_top >= sigma) == (eq_k >= sigma);
    }
  }
  return confidence;
}

double ExpectedScoreEstimator::PatternCardinality(const PatternKey& key) {
  return static_cast<double>(catalog_->GetStats(key).m);
}

ExpectedScoreEstimator::Estimate ExpectedScoreEstimator::EstimateQuery(
    const Query& query, const std::vector<double>& weights) {
  const auto& patterns = query.patterns();
  SPECQP_CHECK(!patterns.empty());
  SPECQP_CHECK(weights.empty() || weights.size() == patterns.size());

  Estimate estimate;

  // Per-pattern two-bucket models, discounted by the relaxation weights.
  std::vector<TwoBucketHistogram> histograms;
  histograms.reserve(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    const PatternStats& stats = catalog_->GetStats(patterns[i].Key());
    if (stats.empty()) return estimate;  // no answers possible through i
    const double w = weights.empty() ? 1.0 : weights[i];
    histograms.push_back(stats.Histogram().ScaledBy(w));
  }

  estimate.cardinality = selectivity_->QueryCardinality(query);
  if (estimate.cardinality < 1.0) {
    // Round sub-unit estimates of a non-empty pattern chain down to "no
    // answers expected": PLANGEN then treats E_Q(k) as 0.
    estimate.cardinality = 0.0;
    return estimate;
  }

  if (patterns.size() == 1) {
    estimate.distribution =
        std::make_shared<TwoBucketHistogram>(histograms[0]);
    return estimate;
  }

  if (model_ == Model::kTwoBucket) {
    // Convolve pairwise, refitting to the two-bucket model after every step
    // (section 3.1.2: "This again results in a two-bucket histogram").
    TwoBucketHistogram acc = histograms[0];
    for (size_t i = 1; i < histograms.size(); ++i) {
      const PiecewiseLinearPdf exact = ConvolveTwoBucket(acc, histograms[i]);
      acc = RefitTwoBucket(exact, catalog_->head_fraction());
    }
    estimate.distribution = std::make_shared<TwoBucketHistogram>(acc);
  } else {
    GridPdf acc = GridPdf::FromDistribution(histograms[0], grid_delta_);
    for (size_t i = 1; i < histograms.size(); ++i) {
      const GridPdf next = GridPdf::FromDistribution(histograms[i],
                                                     grid_delta_);
      acc = GridPdf::Convolve(acc, next);
    }
    estimate.distribution = std::make_shared<GridPdf>(std::move(acc));
  }
  return estimate;
}

}  // namespace specqp
