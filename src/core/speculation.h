#ifndef SPECQP_CORE_SPECULATION_H_
#define SPECQP_CORE_SPECULATION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/estimator.h"
#include "core/plan_executor.h"
#include "core/query_plan.h"
#include "core/request.h"
#include "query/query.h"
#include "rdf/posting_list.h"
#include "relax/relaxation_index.h"
#include "topk/exec_context.h"
#include "topk/exec_stats.h"
#include "topk/scored_row.h"
#include "util/thread_pool.h"

namespace specqp {

// Mid-query adaptivity knobs (EngineOptions::replan_*). Disabled unless the
// divergence factor exceeds 1 — a factor of f means "re-plan once a leaf
// has emitted more than f times its estimated cardinality".
struct AdaptivePolicy {
  double divergence_factor = 0.0;
  // Cardinality checkpoints fire every this many interrupt polls of the
  // root context. Operators poll roughly a small constant number of times
  // per row pulled, so this approximates a row milestone; it is a cadence,
  // not an exact row count.
  uint64_t check_rows = 4096;

  bool enabled() const { return divergence_factor > 1.0; }
};

// How a speculative race was decided (for the calibration log and tests).
struct RaceReport {
  bool raced = false;
  bool runner_up_won = false;
};

// Speculative execution on top of the plan executor (docs/ARCHITECTURE.md,
// "Speculative execution & adaptivity"):
//
//   - Race(): when the planner's least-confident decision falls below
//     EngineOptions::speculate_threshold, the primary plan and the
//     runner-up (primary with that one decision flipped) execute
//     concurrently on the engine pool, each under a private ExecInterrupt
//     and ExecStats. The first racer to finish with a *usable* result
//     claims the win via an atomic CAS and stops its rival with
//     StopCause::kRaceLost; only the winner's counters reach the caller's
//     ExecStats (the loser feeds the speculation ledger).
//
//     Usability is what keeps answers bit-identical to speculation-off
//     execution: the primary's result is always usable, the runner-up's
//     only when the certificate holds — it produced k rows and its k-th
//     score strictly exceeds CertificateBound() (no answer involving a
//     relaxation of the flipped pattern can score that high, and rows not
//     involving one are produced identically by both plans). A bound of
//     -1.0 means the flipped pattern has no non-empty relaxation lists, so
//     the two plans read the same inputs and any runner-up result is
//     usable as-is.
//
//   - RunAdaptive(): serial execution with cardinality checkpoints. The
//     built tree's leaves expose RowsEmitted(); a checkpoint installed on
//     the ExecContext compares each leaf against its estimate every
//     AdaptivePolicy::check_rows polls and, past the divergence factor,
//     stops the execution, re-orders the plan's fold order by *actual*
//     posting-list sizes (ascending), and restarts on the warm posting
//     memos — at most once per execution. Join order never changes the
//     emitted row order (the rank join's bound logic makes the output a
//     pure function of input contents), so the splice is answer-preserving
//     by construction.
//
// Thread-safety: Race() is safe to call from one execution at a time per
// engine (the engine's single-execution contract); the racers themselves
// only touch thread-safe engine state (the posting cache) plus private
// per-racer state, except the primary racer's estimate lookups against the
// statistics catalog — the runner-up never reads the catalog, so those
// stay single-threaded.
class SpeculativeExecutor {
 public:
  SpeculativeExecutor(PlanExecutor* executor, PostingListCache* postings,
                      const RelaxationIndex* rules,
                      ExpectedScoreEstimator* estimator);

  SpeculativeExecutor(const SpeculativeExecutor&) = delete;
  SpeculativeExecutor& operator=(const SpeculativeExecutor&) = delete;

  // The score above which an answer provably involves no relaxation of
  // `pattern_index`: (n - 1) + (max weight among the pattern's relaxation
  // and chain rules whose relaxed posting lists are non-empty). Returns
  // -1.0 when every relaxation list is empty — the flipped decision is
  // then immaterial and the runner-up's stream is identical to the
  // primary's unconditionally.
  double CertificateBound(const Query& query, size_t pattern_index) const;

  // `plan` re-ordered so each phase folds its smallest actual posting list
  // first (stable: ties keep plan order). The re-plan target.
  QueryPlan ReorderByActualSize(const Query& query,
                                const QueryPlan& plan) const;

  // Executes `plan` with mid-query re-planning (see class comment).
  // `executed_plan` (optional) receives the plan that produced the
  // returned rows; `on_replan` (optional) runs right after a divergence
  // commits to re-planning — the race uses it to claim the win before the
  // restart. Checkpoints only attach when the executor builds a serial
  // tree; a partitioned parallel tree executes unmodified.
  std::vector<ScoredRow> RunAdaptive(
      const Query& query, const QueryPlan& plan, size_t k,
      const AdaptivePolicy& policy, ExecContext* ctx,
      QueryPlan* executed_plan = nullptr,
      const std::function<void()>& on_replan = nullptr);

  // Races `primary` against `runner_up` on `pool` (must be non-null).
  // `certificate_bound` comes from CertificateBound() for the flipped
  // pattern. The winner's rows are returned and its counters folded into
  // `stats` together with the speculation ledger (plans_raced,
  // race_wins_by_runnerup, speculative_work_wasted_rows,
  // race_loser_abort_ms). The request supplies k plus the cancellation
  // flag / deadline both racers honour.
  std::vector<ScoredRow> Race(const Query& query, const QueryRequest& request,
                              const QueryPlan& primary,
                              const QueryPlan& runner_up,
                              double certificate_bound,
                              const AdaptivePolicy& policy, ThreadPool* pool,
                              ExecStats* stats, RaceReport* report,
                              QueryPlan* executed_plan);

 private:
  // Estimated rows a leaf will emit: the pattern's (possibly calibrated)
  // match count, plus — for singleton merges — each relaxation list and
  // the smaller hop of each chain.
  double LeafEstimate(const Query& query,
                      const PlanExecutor::LeafHandle& leaf) const;

  PlanExecutor* executor_;
  PostingListCache* postings_;
  const RelaxationIndex* rules_;
  ExpectedScoreEstimator* estimator_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_SPECULATION_H_
