#ifndef SPECQP_CORE_ADMISSION_H_
#define SPECQP_CORE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/request.h"
#include "topk/exec_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace specqp {

class Engine;

// Streaming batch admission: turns an online stream of Engine::Submit
// calls into the batch windows the BatchExecutor amortises.
//
// Submissions accumulate in per-(k, strategy) windows (those are the batch
// dimensions BatchExecutor shares across a whole batch). A window closes —
// and is dispatched through the BatchExecutor, so its
// queries get the shared-scan / duplicate-collapsing / one-snapshot
// amortisation of PR 4 — when it reaches `max_batch_size` queries or when
// its oldest submission has waited `max_delay`, whichever happens first.
// Flush() closes every open window immediately (shutdown, tests, end of a
// burst).
//
// Threading: Submit() never blocks on query execution — it parses, runs
// the submit-time checks (k >= 1, already-cancelled token, already-expired
// deadline), enqueues, and returns a future. One background dispatcher thread owns window close and
// batch execution, so all *planning* stays single-threaded no matter how
// many threads submit concurrently (the engine's planner memos are not
// locked); cross-query execution parallelism inside a window still comes
// from the engine's thread pool. The destructor flushes and drains every
// pending request before returning — no future is ever abandoned.
//
// Cancellation and deadlines ride along: each request with a token or
// deadline gets an ExecInterrupt that the window's operator trees poll
// (see ExecContext::Interrupted), so a cancelled request aborts mid-join
// promptly. When structurally identical queries from different requests
// collapse onto one execution, that execution is only interruptible if
// every rider shares the same interrupt — a cancelled rider whose twin
// still wants the answer lets the execution finish and simply gets its
// terminal kCancelled response.
class AdmissionController {
 public:
  struct Options {
    // Window close thresholds. max_batch_size <= 1 degenerates to
    // per-query windows (still asynchronous, no cross-query sharing).
    size_t max_batch_size = 16;
    std::chrono::microseconds max_delay{2000};
    // Overload shedding: once this many admitted requests are queued or
    // in dispatch, new Submits are rejected with kResourceExhausted and
    // QueryResponse::retry_after_ms = retry_after_hint. 0 = never shed.
    size_t max_queue_depth = 0;
    // Deadline-aware shedding: a request whose deadline cannot outlast
    // the worst-case window delay (it would only be DOA'd at dispatch) is
    // rejected at submit with kResourceExhausted and retry_after_ms = 0
    // (retrying the same deadline cannot help).
    bool deadline_aware_shed = false;
    std::chrono::microseconds retry_after_hint{5000};
  };

  // Counters since construction (snapshot under the controller's lock).
  struct Stats {
    uint64_t submitted = 0;           // requests accepted into windows
    uint64_t rejected_at_submit = 0;  // parse error / bad k / cancelled
    uint64_t windows_dispatched = 0;
    uint64_t closed_on_size = 0;
    uint64_t closed_on_delay = 0;
    uint64_t closed_on_flush = 0;  // Flush() or shutdown drain
    size_t max_window_size = 0;
    uint64_t batched_queries = 0;     // queries that reached a BatchExecutor
    uint64_t shared_scan_hits = 0;    // summed over dispatched windows
    uint64_t cancelled = 0;           // terminal kCancelled responses
    uint64_t deadline_exceeded = 0;   // terminal kDeadlineExceeded responses
    uint64_t shed_queue_full = 0;     // rejected: queue depth at the cap
    uint64_t shed_deadline = 0;       // rejected: deadline cannot be met
  };

  AdmissionController(Engine* engine, const Options& options);
  ~AdmissionController();  // flushes and drains; joins the dispatcher

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Admits one request. Returns immediately; the future completes once the
  // request's window has been dispatched (or the request was terminated at
  // submit/dispatch time: parse error, k == 0, already-cancelled token,
  // already-expired deadline). Discarding the future loses the only handle
  // on the response, hence [[nodiscard]].
  [[nodiscard]] std::future<QueryResponse> Submit(QueryRequest request);

  // Closes every open window now and hands it to the dispatcher. Does not
  // wait for execution; wait on the returned futures for that.
  void Flush();

  Stats stats() const;

 private:
  struct Pending {
    Query query;
    QueryRequest request;  // query moved out; service terms remain
    std::promise<QueryResponse> promise;
    std::unique_ptr<ExecInterrupt> interrupt;  // null when not interruptible
    WallTimer queued;          // started at submit
    double admission_ms = 0;   // submit-to-dispatch, snapshot at dispatch
  };

  struct Window {
    // Unique per window *generation*: re-opening a (k, strategy) key after
    // a close mints a fresh id, so close accounting can tell the two
    // apart.
    uint64_t id = 0;
    // Set by CloseWindowLocked when the close is charged to a Stats
    // counter; a window whose close was already accounted is never counted
    // again (the Flush()-vs-dispatcher double-count fix).
    bool close_accounted = false;
    std::vector<Pending> pending;
    WallTimer age;  // since first submission
  };

  using WindowKey = std::pair<size_t, int>;  // (k, strategy)

  // Single choke point for closing a window: charges exactly one close
  // counter (deduped on the window's id via close_accounted) and moves the
  // window to the closed queue. Empty or already-accounted windows are
  // dropped without touching any counter, so
  //   closed_on_size + closed_on_delay + closed_on_flush
  // always equals the number of windows that reach the closed queue (and,
  // after a drain, windows_dispatched) — the invariant
  // core_admission_test locks in.
  void CloseWindowLocked(const WindowKey& key, Window window,
                         uint64_t Stats::*counter) SPECQP_REQUIRES(mu_);

  void DispatcherLoop();
  // Executes one closed window and fulfills its promises. Runs on the
  // dispatcher thread only.
  void DispatchWindow(WindowKey key, Window window);
  // The terminal status of one request observed `now-ish`: cancellation
  // wins over deadline expiry, which wins over OK.
  [[nodiscard]] static Status TerminalStatus(const Pending& pending);

  Engine* engine_;
  Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  // Accumulating windows.
  std::map<WindowKey, Window> open_ SPECQP_GUARDED_BY(mu_);
  // Closed windows awaiting dispatch.
  std::vector<std::pair<WindowKey, Window>> closed_ SPECQP_GUARDED_BY(mu_);
  // Admitted requests not yet fulfilled (queued or in dispatch); the
  // depth max_queue_depth sheds against.
  size_t queued_ SPECQP_GUARDED_BY(mu_) = 0;
  uint64_t next_window_id_ SPECQP_GUARDED_BY(mu_) = 0;
  bool stop_ SPECQP_GUARDED_BY(mu_) = false;
  Stats stats_ SPECQP_GUARDED_BY(mu_);

  std::thread dispatcher_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_ADMISSION_H_
