#include "core/exhaustive.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "rdf/posting_list.h"
#include "topk/scored_row.h"
#include "util/logging.h"

namespace specqp {

namespace {

// Best derivations of one pattern-level match: overall maximum (Definition
// 8) and the best through the original pattern only.
struct Derivation {
  double best = 0.0;
  double original = ExhaustiveEvaluator::Answer::kNoOriginal;
};

using MatchMap =
    std::unordered_map<std::vector<TermId>, Derivation, BindingsHash>;

// A partially-joined answer.
struct Partial {
  std::vector<TermId> bindings;
  double score = 0.0;
  std::vector<double> best_scores;      // per pattern
  std::vector<double> original_scores;  // per pattern
};

std::vector<TermId> BindPattern(const TriplePattern& q, const Triple& t,
                                size_t width) {
  std::vector<TermId> bindings(width, kInvalidTermId);
  if (q.s.is_variable()) bindings[q.s.var()] = t.s;
  if (q.p.is_variable()) bindings[q.p.var()] = t.p;
  if (q.o.is_variable()) bindings[q.o.var()] = t.o;
  return bindings;
}

}  // namespace

ExhaustiveEvaluator::ExhaustiveEvaluator(const TripleStore* store,
                                         const RelaxationIndex* rules)
    : store_(store), rules_(rules) {
  SPECQP_CHECK(store_ != nullptr && rules_ != nullptr);
}

ExhaustiveEvaluator::EvalResult ExhaustiveEvaluator::Evaluate(
    const Query& query) const {
  const size_t width = query.num_vars();
  const size_t num_patterns = query.num_patterns();

  // Step 1: per pattern, the best derivation of each distinct binding
  // across the original pattern and all of its relaxations.
  std::vector<MatchMap> per_pattern(num_patterns);
  for (size_t i = 0; i < num_patterns; ++i) {
    const TriplePattern& q = query.pattern(i);
    MatchMap& map = per_pattern[i];

    auto absorb = [&](const TriplePattern& concrete, double weight,
                      bool is_original) {
      const PostingList list = BuildPostingList(*store_, concrete.Key());
      for (BlockIterator iter(&list); !iter.AtEnd(); iter.Advance()) {
        const PostingEntry& entry = iter.Entry();
        const Triple& t = store_->triple(entry.triple_index);
        if (!ConsistentMatch(concrete, t)) continue;
        const double score = weight * entry.score;
        std::vector<TermId> bindings = BindPattern(concrete, t, width);
        Derivation& d = map[std::move(bindings)];
        d.best = std::max(d.best, score);
        if (is_original) d.original = std::max(d.original, score);
      }
    };

    absorb(q, 1.0, /*is_original=*/true);
    for (const RelaxationRule& rule : rules_->RulesFor(q.Key())) {
      auto relaxed = ApplyRule(q, rule);
      SPECQP_CHECK(relaxed.ok()) << relaxed.status().ToString();
      absorb(relaxed.value(), rule.weight, /*is_original=*/false);
    }

    // Chain relaxations: a subject matches through (?s p1 ?z)(?z p2 o2)
    // with contribution (w/2)·(S(t1|hop1) + S(t2|hop2)); hop scores are
    // normalised exactly as the operators normalise them — over the full
    // hop pattern match sets.
    if (q.s.is_variable()) {
      for (const ChainRelaxationRule& rule :
           rules_->ChainRulesFor(q.Key())) {
        const PatternKey hop1_key{kInvalidTermId, rule.hop1_predicate,
                                  kInvalidTermId};
        const PatternKey hop2_key{kInvalidTermId, rule.hop2_predicate,
                                  rule.hop2_object};
        const double hop1_max = store_->MaxScore(hop1_key);
        if (hop1_max <= 0.0) continue;
        const PostingList hop2 = BuildPostingList(*store_, hop2_key);
        for (BlockIterator iter(&hop2); !iter.AtEnd(); iter.Advance()) {
          const PostingEntry& entry = iter.Entry();
          const TermId z = store_->triple(entry.triple_index).s;
          const PatternKey hop1_z{kInvalidTermId, rule.hop1_predicate, z};
          for (uint32_t idx : store_->MatchIndices(hop1_z)) {
            const Triple& t1 = store_->triple(idx);
            const double s1 = t1.score / hop1_max;
            const double score =
                rule.weight / 2.0 * (s1 + entry.score);
            std::vector<TermId> bindings(width, kInvalidTermId);
            bindings[q.s.var()] = t1.s;
            Derivation& d = map[std::move(bindings)];
            d.best = std::max(d.best, score);
          }
        }
      }
    }
  }

  // Step 2: hash-join the patterns, smallest-first among those connected to
  // the joined prefix (plain full materialisation; this evaluator is the
  // oracle, not the system under test).
  std::vector<size_t> remaining(num_patterns);
  for (size_t i = 0; i < num_patterns; ++i) remaining[i] = i;
  std::sort(remaining.begin(), remaining.end(), [&](size_t a, size_t b) {
    return per_pattern[a].size() < per_pattern[b].size();
  });

  std::vector<Partial> current;
  std::vector<bool> bound(width, false);

  auto bind_vars_of = [&](size_t pattern_index) {
    VarId vars[3];
    const int n = query.pattern(pattern_index).Variables(vars);
    for (int v = 0; v < n; ++v) bound[vars[v]] = true;
  };

  // Seed with the smallest pattern.
  {
    const size_t first = remaining.front();
    remaining.erase(remaining.begin());
    current.reserve(per_pattern[first].size());
    for (const auto& [bindings, derivation] : per_pattern[first]) {
      Partial p;
      p.bindings = bindings;
      p.score = derivation.best;
      p.best_scores.assign(num_patterns, 0.0);
      p.original_scores.assign(num_patterns, 0.0);
      p.best_scores[first] = derivation.best;
      p.original_scores[first] = derivation.original;
      current.push_back(std::move(p));
    }
    bind_vars_of(first);
  }

  while (!remaining.empty()) {
    // Prefer a connected pattern; fall back to the smallest remaining.
    size_t pick_pos = 0;
    for (size_t pos = 0; pos < remaining.size(); ++pos) {
      VarId vars[3];
      const int n = query.pattern(remaining[pos]).Variables(vars);
      bool connected = false;
      for (int v = 0; v < n; ++v) connected |= bound[vars[v]];
      if (connected) {
        pick_pos = pos;
        break;
      }
    }
    const size_t next = remaining[pick_pos];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick_pos));

    // Join keys: variables of `next` already bound.
    VarId vars[3];
    const int nv = query.pattern(next).Variables(vars);
    std::vector<VarId> join_vars;
    for (int v = 0; v < nv; ++v) {
      if (bound[vars[v]]) join_vars.push_back(vars[v]);
    }

    // Index the (usually smaller) pattern side on the join key.
    std::unordered_map<std::vector<TermId>,
                       std::vector<const std::pair<const std::vector<TermId>,
                                                   Derivation>*>,
                       BindingsHash>
        side_index;
    for (const auto& entry : per_pattern[next]) {
      std::vector<TermId> key;
      key.reserve(join_vars.size());
      for (VarId v : join_vars) key.push_back(entry.first[v]);
      side_index[std::move(key)].push_back(&entry);
    }

    std::vector<Partial> joined;
    for (Partial& partial : current) {
      std::vector<TermId> key;
      key.reserve(join_vars.size());
      for (VarId v : join_vars) key.push_back(partial.bindings[v]);
      auto it = side_index.find(key);
      if (it == side_index.end()) continue;
      for (const auto* entry : it->second) {
        Partial merged = partial;
        merged.score += entry->second.best;
        merged.best_scores[next] = entry->second.best;
        merged.original_scores[next] = entry->second.original;
        for (size_t v = 0; v < width; ++v) {
          if (entry->first[v] != kInvalidTermId) {
            merged.bindings[v] = entry->first[v];
          }
        }
        joined.push_back(std::move(merged));
      }
    }
    current = std::move(joined);
    bind_vars_of(next);
  }

  EvalResult result;
  result.answers.reserve(current.size());
  for (Partial& p : current) {
    result.answers.push_back(Answer{std::move(p.bindings), p.score,
                                    std::move(p.best_scores),
                                    std::move(p.original_scores)});
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const Answer& a, const Answer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.bindings < b.bindings;
            });
  return result;
}

std::vector<size_t> ExhaustiveEvaluator::EvalResult::RequiredRelaxations(
    size_t k) const {
  if (answers.empty()) return {};
  const size_t num_patterns = answers.front().best_scores.size();

  // The true top-k binding set.
  std::set<std::vector<TermId>> full_top;
  for (size_t i = 0; i < answers.size() && i < k; ++i) {
    full_top.insert(answers[i].bindings);
  }

  std::vector<size_t> required;
  for (size_t p = 0; p < num_patterns; ++p) {
    // Re-rank with pattern p's relaxations disabled: answers score through
    // p's original pattern only; answers with no original match vanish.
    std::vector<std::pair<double, const std::vector<TermId>*>> alt;
    alt.reserve(answers.size());
    for (const Answer& a : answers) {
      if (a.original_scores[p] == Answer::kNoOriginal) continue;
      const double score = a.score - a.best_scores[p] + a.original_scores[p];
      alt.emplace_back(score, &a.bindings);
    }
    const size_t take = std::min(k, alt.size());
    std::partial_sort(
        alt.begin(), alt.begin() + static_cast<ptrdiff_t>(take), alt.end(),
        [](const auto& x, const auto& y) {
          if (x.first != y.first) return x.first > y.first;
          return *x.second < *y.second;
        });
    bool same = (take == full_top.size());
    for (size_t i = 0; same && i < take; ++i) {
      same = full_top.count(*alt[i].second) > 0;
    }
    if (!same) required.push_back(p);
  }
  return required;
}

}  // namespace specqp
