#include "core/speculation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "topk/top_k.h"
#include "util/logging.h"

namespace specqp {

namespace {

// Strict-comparison slack, matching the rank join's emission epsilon: a
// certificate only holds when the k-th score clears the bound by more than
// floating-point noise.
constexpr double kEps = 1e-9;

double MillisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

SpeculativeExecutor::SpeculativeExecutor(PlanExecutor* executor,
                                         PostingListCache* postings,
                                         const RelaxationIndex* rules,
                                         ExpectedScoreEstimator* estimator)
    : executor_(executor),
      postings_(postings),
      rules_(rules),
      estimator_(estimator) {
  SPECQP_CHECK(executor_ != nullptr && postings_ != nullptr &&
               rules_ != nullptr && estimator_ != nullptr);
}

double SpeculativeExecutor::CertificateBound(const Query& query,
                                             size_t pattern_index) const {
  SPECQP_CHECK(pattern_index < query.num_patterns());
  const PatternKey key = query.pattern(pattern_index).Key();
  // The largest score a match of any *live* relaxation of this pattern can
  // contribute. Empty relaxed lists cannot produce rows, so they cannot
  // cap anything.
  double cap = 0.0;
  for (const RelaxationRule& rule : rules_->RulesFor(key)) {
    if (postings_->GetUncounted(rule.to)->size() > 0) {
      cap = std::max(cap, rule.weight);
    }
  }
  for (const ChainRelaxationRule& rule : rules_->ChainRulesFor(key)) {
    const PatternKey hop1{kInvalidTermId, rule.hop1_predicate, kInvalidTermId};
    const PatternKey hop2{kInvalidTermId, rule.hop2_predicate,
                          rule.hop2_object};
    if (postings_->GetUncounted(hop1)->size() > 0 &&
        postings_->GetUncounted(hop2)->size() > 0) {
      cap = std::max(cap, rule.weight);
    }
  }
  if (cap <= 0.0) return -1.0;
  // Normalised scores top out at 1.0 per pattern; an answer touching a
  // relaxation of this pattern scores at most (n - 1) from the other
  // patterns plus the relaxation's weight.
  return static_cast<double>(query.num_patterns() - 1) + cap;
}

QueryPlan SpeculativeExecutor::ReorderByActualSize(
    const Query& query, const QueryPlan& plan) const {
  const auto size_of = [&](size_t i) {
    // Uncounted: a sizing probe over lists the aborted first attempt
    // already materialised.
    return postings_->GetUncounted(query.pattern(i).Key())->size();
  };
  QueryPlan out = plan;
  const auto by_size = [&](size_t a, size_t b) {
    return size_of(a) < size_of(b);
  };
  std::stable_sort(out.join_group.begin(), out.join_group.end(), by_size);
  std::stable_sort(out.singletons.begin(), out.singletons.end(), by_size);
  return out;
}

double SpeculativeExecutor::LeafEstimate(
    const Query& query, const PlanExecutor::LeafHandle& leaf) const {
  const PatternKey key = query.pattern(leaf.pattern_index).Key();
  double estimate = estimator_->PatternCardinality(key);
  if (!leaf.singleton) return estimate;
  for (const RelaxationRule& rule : rules_->RulesFor(key)) {
    estimate += estimator_->PatternCardinality(rule.to);
  }
  for (const ChainRelaxationRule& rule : rules_->ChainRulesFor(key)) {
    const PatternKey hop1{kInvalidTermId, rule.hop1_predicate, kInvalidTermId};
    const PatternKey hop2{kInvalidTermId, rule.hop2_predicate,
                          rule.hop2_object};
    // The chain emits at most one row per pair joined through the fresh
    // variable; the smaller hop bounds that.
    estimate += std::min(estimator_->PatternCardinality(hop1),
                         estimator_->PatternCardinality(hop2));
  }
  return estimate;
}

std::vector<ScoredRow> SpeculativeExecutor::RunAdaptive(
    const Query& query, const QueryPlan& plan, size_t k,
    const AdaptivePolicy& policy, ExecContext* ctx, QueryPlan* executed_plan,
    const std::function<void()>& on_replan) {
  if (executed_plan != nullptr) *executed_plan = plan;
  std::vector<PlanExecutor::LeafHandle> leaves;
  auto root = executor_->Build(query, plan, ctx, &leaves);
  if (!policy.enabled() || leaves.empty()) {
    auto rows = PullTopK(root.get(), k, ctx->stats());
    root.reset();
    return rows;
  }

  // Divergence milestones: estimates are floored at one row so a pattern
  // estimated empty does not trip the checkpoint on its first match.
  std::vector<double> limits(leaves.size(), 0.0);
  for (size_t i = 0; i < leaves.size(); ++i) {
    limits[i] =
        std::max(1.0, LeafEstimate(query, leaves[i])) * policy.divergence_factor;
  }
  ctx->SetCheckpoint(
      [&leaves, &limits] {
        for (size_t i = 0; i < leaves.size(); ++i) {
          if (static_cast<double>(leaves[i].op->RowsEmitted()) > limits[i]) {
            return true;
          }
        }
        return false;
      },
      static_cast<uint32_t>(std::min<uint64_t>(
          policy.check_rows == 0 ? 1 : policy.check_rows, 1u << 20)));

  auto rows = PullTopK(root.get(), k, ctx->stats());
  const bool diverged = ctx->checkpoint_fired();
  ctx->ClearCheckpoint();
  root.reset();

  const bool aborted =
      ctx->interrupt() != nullptr && ctx->interrupt()->Stopped();
  // A full top-k survives a checkpoint stop intact: PullTopK only ever
  // truncates *after* the k-th row, and rows before the stop are the true
  // prefix. Only a short result from a divergence stop needs the restart.
  if (!diverged || aborted || rows.size() >= k) return rows;

  ++ctx->stats()->replans_triggered;
  if (on_replan) on_replan();
  const QueryPlan replanned = ReorderByActualSize(query, plan);
  if (executed_plan != nullptr) *executed_plan = replanned;
  // Restart on warm memos: the posting cache already holds every list the
  // first attempt touched, so the rebuild is pointer-chasing, not I/O.
  auto root2 = executor_->Build(query, replanned, ctx, nullptr);
  rows = PullTopK(root2.get(), k, ctx->stats());
  root2.reset();
  return rows;
}

std::vector<ScoredRow> SpeculativeExecutor::Race(
    const Query& query, const QueryRequest& request, const QueryPlan& primary,
    const QueryPlan& runner_up, double certificate_bound,
    const AdaptivePolicy& policy, ThreadPool* pool, ExecStats* stats,
    RaceReport* report, QueryPlan* executed_plan) {
  SPECQP_CHECK(pool != nullptr && stats != nullptr && report != nullptr);
  const size_t k = request.k;

  struct RacerSlot {
    const QueryPlan* plan = nullptr;
    QueryPlan executed;
    ExecInterrupt interrupt;
    ExecStats stats;
    std::vector<ScoredRow> rows;
    std::chrono::steady_clock::time_point win_time{};
    std::chrono::steady_clock::time_point end_time{};
    bool won = false;
  };
  RacerSlot racers[2];
  racers[0].plan = &primary;
  racers[1].plan = &runner_up;
  for (RacerSlot& slot : racers) {
    if (request.cancel.valid()) {
      slot.interrupt.LinkCancelFlag(request.cancel.flag());
    }
    if (request.deadline.has_value()) {
      slot.interrupt.SetDeadline(*request.deadline);
    }
  }

  std::atomic<int> winner{-1};
  const auto claim = [&racers, &winner](int index) {
    int expected = -1;
    if (!winner.compare_exchange_strong(expected, index,
                                        std::memory_order_acq_rel)) {
      return;
    }
    racers[index].won = true;
    racers[index].win_time = std::chrono::steady_clock::now();
    // <50 ms wind-down: the loser observes the latch at its next per-row
    // interrupt poll and its operators drain out false.
    racers[1 - index].interrupt.RequestStop(StopCause::kRaceLost);
  };

  const auto run_racer = [&](int index) {
    RacerSlot& slot = racers[index];
    // Racers build strictly serial trees (no pool in the context): the two
    // plans time-share the pool's slots instead of nesting partitioned
    // parallelism inside a race.
    ExecContext ctx(&slot.stats, /*pool=*/nullptr, /*shared_scans=*/nullptr,
                    &slot.interrupt);
    if (index == 0 && policy.enabled()) {
      // The primary racer keeps its adaptive checkpoints; committing to a
      // re-plan claims the race first, so a re-plan win disables the live
      // race rather than racing a stale rival.
      slot.rows = RunAdaptive(query, *slot.plan, k, policy, &ctx,
                              &slot.executed, [&claim, index] { claim(index); });
    } else {
      slot.executed = *slot.plan;
      auto root = executor_->Build(query, *slot.plan, &ctx);
      slot.rows = PullTopK(root.get(), k, &slot.stats);
      root.reset();
    }
    ctx.MergePartitionStats();

    if (slot.interrupt.cause() != StopCause::kRaceLost) {
      // Usable? The primary always is (it is exactly what speculation-off
      // would have run). The runner-up only via the certificate: k rows
      // whose k-th score provably rules out the flipped pattern's
      // relaxations — or an unconditional bound (< 0), where both plans
      // read identical inputs.
      const bool usable =
          index == 0 || certificate_bound < 0.0 ||
          (slot.rows.size() >= k &&
           slot.rows.back().score > certificate_bound + kEps);
      if (usable) claim(index);
    }
    slot.end_time = std::chrono::steady_clock::now();
  };

  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&run_racer] { run_racer(0); });
  tasks.emplace_back([&run_racer] { run_racer(1); });
  pool->RunAndWait(&tasks);

  // Both racers have joined; no claim at all means both were stopped
  // externally (cancel/deadline) or the runner-up failed its certificate
  // while the primary lost nothing — fall back to the primary, which is
  // always a correct (possibly aborted-partial) result.
  int win_index = winner.load(std::memory_order_acquire);
  if (win_index < 0) win_index = 0;
  RacerSlot& win = racers[win_index];
  RacerSlot& lose = racers[1 - win_index];

  *stats += win.stats;  // winner-only: no double-counted operator work
  stats->plans_raced += 2;
  if (win_index == 1) ++stats->race_wins_by_runnerup;
  stats->speculative_work_wasted_rows += lose.stats.answer_objects;
  if (win.won && lose.end_time > win.win_time) {
    stats->race_loser_abort_ms += MillisBetween(win.win_time, lose.end_time);
  }

  report->raced = true;
  report->runner_up_won = win_index == 1;
  if (executed_plan != nullptr) *executed_plan = win.executed;
  return std::move(win.rows);
}

}  // namespace specqp
