#include "core/admission.h"

#include <algorithm>

#include "core/batch_executor.h"
#include "core/engine.h"
#include "query/parser.h"
#include "util/logging.h"

namespace specqp {

AdmissionController::AdmissionController(Engine* engine,
                                         const Options& options)
    : engine_(engine), options_(options) {
  SPECQP_CHECK(engine_ != nullptr);
  SPECQP_CHECK(options_.max_batch_size >= 1);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AdmissionController::~AdmissionController() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  dispatcher_.join();
  // The dispatcher drained every open and closed window before exiting, so
  // no promise is ever abandoned.
}

std::future<QueryResponse> AdmissionController::Submit(QueryRequest request) {
  // Submit-time terminations complete the future immediately, without
  // touching the window state. Overload sheds additionally charge their
  // own Stats counter (they still count as rejected_at_submit, so the
  // submitted/rejected ledger stays a partition of all Submit calls).
  auto reject = [this](QueryResponse response,
                       uint64_t Stats::*shed_counter = nullptr) {
    {
      MutexLock lock(mu_);
      ++stats_.rejected_at_submit;
      if (shed_counter != nullptr) {
        ++(stats_.*shed_counter);
      } else if (response.status.code() == StatusCode::kCancelled) {
        ++stats_.cancelled;
      } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      }
    }
    std::promise<QueryResponse> promise;
    promise.set_value(std::move(response));
    return promise.get_future();
  };

  QueryResponse shell;
  shell.tag = request.tag;
  shell.strategy = request.strategy;
  shell.k = request.k;

  if (request.k < 1) {
    shell.status = Status::InvalidArgument("k must be >= 1");
    return reject(std::move(shell));
  }
  // Queue-depth shedding happens before parsing: overload protection must
  // be cheaper than the work it sheds.
  if (options_.max_queue_depth > 0) {
    bool shed = false;
    {
      MutexLock lock(mu_);
      shed = queued_ >= options_.max_queue_depth;
    }
    if (shed) {
      shell.status = Status::ResourceExhausted("admission queue full");
      shell.retry_after_ms =
          static_cast<double>(options_.retry_after_hint.count()) / 1000.0;
      return reject(std::move(shell), &Stats::shed_queue_full);
    }
  }
  Query query;
  if (request.query.has_value()) {
    query = std::move(*request.query);
    request.query.reset();
  } else {
    // Parse on the submitting thread (fail fast; the dictionary is
    // read-only after Finalize, so concurrent parses are safe).
    auto parsed = ParseQuery(request.text, engine_->store().dict());
    if (!parsed.ok()) {
      shell.status = parsed.status();
      return reject(std::move(shell));
    }
    query = std::move(parsed).value();
  }
  if (request.cancel.cancelled()) {
    shell.status = Status::Cancelled("cancelled before admission");
    return reject(std::move(shell));
  }
  // A dead-on-arrival deadline terminates now rather than stalling in a
  // window that may not close for a long max_delay.
  if (request.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *request.deadline) {
    shell.status =
        Status::DeadlineExceeded("deadline expired before admission");
    return reject(std::move(shell));
  }
  // Deadline-aware shedding: a deadline that cannot outlast the
  // worst-case window delay would only be DOA'd at dispatch. Shed it now
  // so the caller learns immediately; retry_after_ms stays 0 because
  // resubmitting the same deadline cannot help.
  if (options_.deadline_aware_shed && request.deadline.has_value() &&
      *request.deadline <
          std::chrono::steady_clock::now() + options_.max_delay) {
    shell.status = Status::ResourceExhausted(
        "deadline shorter than the admission window delay");
    shell.retry_after_ms = 0.0;
    return reject(std::move(shell), &Stats::shed_deadline);
  }

  Pending pending;
  pending.query = std::move(query);
  if (request.cancel.valid() || request.deadline.has_value()) {
    pending.interrupt = std::make_unique<ExecInterrupt>();
    if (request.cancel.valid()) {
      pending.interrupt->LinkCancelFlag(request.cancel.flag());
    }
    if (request.deadline.has_value()) {
      pending.interrupt->SetDeadline(*request.deadline);
    }
  }
  pending.request = std::move(request);
  std::future<QueryResponse> future = pending.promise.get_future();

  const WindowKey key{pending.request.k,
                      static_cast<int>(pending.request.strategy)};
  bool wake_dispatcher = false;
  {
    MutexLock lock(mu_);
    ++stats_.submitted;
    ++queued_;  // balanced in DispatchWindow, once fulfilled
    Window& window = open_[key];
    if (window.pending.empty()) {
      window.id = ++next_window_id_;
      window.age.Reset();
      wake_dispatcher = true;  // dispatcher must learn the new delay bound
    }
    window.pending.push_back(std::move(pending));
    if (window.pending.size() >= options_.max_batch_size) {
      auto node = open_.extract(key);
      CloseWindowLocked(key, std::move(node.mapped()),
                        &Stats::closed_on_size);
      wake_dispatcher = true;
    }
  }
  if (wake_dispatcher) cv_.NotifyAll();
  return future;
}

void AdmissionController::CloseWindowLocked(const WindowKey& key,
                                            Window window,
                                            uint64_t Stats::*counter) {
  if (window.pending.empty() || window.close_accounted) return;
  window.close_accounted = true;  // charged exactly once per window id
  ++(stats_.*counter);
  closed_.emplace_back(key, std::move(window));
}

void AdmissionController::Flush() {
  {
    MutexLock lock(mu_);
    for (auto& [key, window] : open_) {
      CloseWindowLocked(key, std::move(window), &Stats::closed_on_flush);
    }
    open_.clear();
  }
  cv_.NotifyAll();
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void AdmissionController::DispatcherLoop() {
  // Explicit Lock/Unlock so the thread-safety analysis follows the lock
  // being dropped around DispatchWindow (which must run unlocked: it
  // executes queries and takes mu_ itself for stats).
  mu_.Lock();
  while (true) {
    // Move delay-expired windows to the closed queue.
    const double max_delay_ms =
        static_cast<double>(options_.max_delay.count()) / 1000.0;
    for (auto it = open_.begin(); it != open_.end();) {
      if (!it->second.pending.empty() &&
          it->second.age.ElapsedMillis() >= max_delay_ms) {
        CloseWindowLocked(it->first, std::move(it->second),
                          &Stats::closed_on_delay);
        it = open_.erase(it);
      } else {
        ++it;
      }
    }

    if (!closed_.empty()) {
      auto [key, window] = std::move(closed_.front());
      closed_.erase(closed_.begin());
      ++stats_.windows_dispatched;
      stats_.max_window_size =
          std::max(stats_.max_window_size, window.pending.size());
      mu_.Unlock();
      DispatchWindow(key, std::move(window));
      mu_.Lock();
      continue;
    }

    if (stop_) {
      // Shutdown drain: close whatever is still open and loop once more.
      bool drained = true;
      for (auto& [key, window] : open_) {
        if (window.pending.empty()) continue;
        CloseWindowLocked(key, std::move(window), &Stats::closed_on_flush);
        drained = false;
      }
      open_.clear();
      if (drained) break;
      continue;
    }

    if (open_.empty()) {
      while (!stop_ && closed_.empty() && open_.empty()) cv_.Wait(mu_);
    } else {
      // Sleep until the oldest window's delay expires (or new work).
      double oldest_ms = 0.0;
      for (const auto& [key, window] : open_) {
        oldest_ms = std::max(oldest_ms, window.age.ElapsedMillis());
      }
      const double remaining_ms = std::max(0.0, max_delay_ms - oldest_ms);
      cv_.WaitFor(mu_, std::chrono::duration<double, std::milli>(
                           remaining_ms + 0.05));
    }
  }
  mu_.Unlock();
}

Status AdmissionController::TerminalStatus(const Pending& pending) {
  if (pending.interrupt != nullptr && pending.interrupt->Stopped()) {
    switch (pending.interrupt->cause()) {
      case StopCause::kCancelled:
        return Status::Cancelled("query cancelled");
      case StopCause::kStoreFault:
        return Status::IoError("backing store faulted during execution");
      default:
        return Status::DeadlineExceeded("query deadline exceeded");
    }
  }
  if (pending.request.cancel.cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (pending.interrupt != nullptr && pending.interrupt->CheckDeadline()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::Ok();
}

void AdmissionController::DispatchWindow(WindowKey key, Window window) {
  const size_t k = key.first;
  const Strategy strategy = static_cast<Strategy>(key.second);

  // Serving preflight, once for the whole window (every request shares
  // the store snapshot): fault sweep, strict/degraded decision, stale
  // cache reconciliation. A refusal (kUnavailable) terminates every
  // request in the window without executing — individual cancellations
  // still win below.
  QueryResponse serving;
  uint64_t fault_epoch = 0;
  const Status serving_status =
      engine_->PreflightServing(&serving, &fault_epoch);

  // Requests already stopped at dispatch time (cancelled while queued,
  // deadline expired in the window) terminate without executing; the rest
  // run as one batch through the shared-scan machinery.
  std::vector<size_t> live;  // indices into window.pending
  std::vector<Query> queries;
  std::vector<const ExecInterrupt*> interrupts;
  live.reserve(window.pending.size());
  queries.reserve(window.pending.size());
  interrupts.reserve(window.pending.size());
  for (size_t i = 0; i < window.pending.size(); ++i) {
    Pending& pending = window.pending[i];
    // Queueing delay ends here, before any execution happens.
    pending.admission_ms = pending.queued.ElapsedMillis();
    if (pending.interrupt != nullptr &&
        (pending.interrupt->Stopped() || pending.interrupt->CheckDeadline())) {
      continue;  // fulfilled below via TerminalStatus
    }
    if (!serving_status.ok()) {
      continue;  // fulfilled below with the serving refusal
    }
    live.push_back(i);
    queries.push_back(std::move(pending.query));
    interrupts.push_back(pending.interrupt.get());
  }

  std::vector<Engine::QueryResult> results;
  BatchStats batch_stats;
  if (!queries.empty()) {
    BatchExecutor batch(engine_);
    results = batch.Execute(queries, k, strategy, &batch_stats, interrupts);
  }

  {
    MutexLock lock(mu_);
    stats_.batched_queries += queries.size();
    stats_.shared_scan_hits += batch_stats.shared_scan_hits;
    // Every pending request in this window is fulfilled below; release
    // their queue slots so shedding sees the post-dispatch depth.
    SPECQP_DCHECK(queued_ >= window.pending.size());
    queued_ -= std::min(queued_, window.pending.size());
  }

  size_t next_live = 0;
  for (size_t i = 0; i < window.pending.size(); ++i) {
    Pending& pending = window.pending[i];
    QueryResponse response;
    response.tag = pending.request.tag;
    response.strategy = strategy;
    response.k = k;
    response.window_size = window.pending.size();
    response.admission_ms = pending.admission_ms;

    const bool executed =
        next_live < live.size() && live[next_live] == i;
    if (executed) {
      Engine::QueryResult& result = results[next_live];
      ++next_live;
      response.status = TerminalStatus(pending);
      if (response.status.ok()) {
        response.plan = std::move(result.plan);
        response.diagnostics = std::move(result.diagnostics);
        response.rows = std::move(result.rows);
        response.stats = result.stats;
        // Degraded-read ledger rides on every answer from a store with
        // quarantined shards; a fault that landed mid-window invalidates
        // the answer (PostflightServing surfaces it as kIoError).
        response.partial = serving.partial;
        response.stats.shards_failed = std::max(
            response.stats.shards_failed, serving.stats.shards_failed);
        response.stats.shards_total = std::max(
            response.stats.shards_total, serving.stats.shards_total);
        const Status post =
            engine_->PostflightServing(fault_epoch, &response);
        if (!post.ok()) {
          response.rows.clear();
          response.partial = false;
          response.status = post;
        }
      }
      // else: aborted (or terminally late) — no partial rows are returned.
    } else {
      response.status = TerminalStatus(pending);
      if (response.status.ok()) {
        // Not individually terminal: the whole window was refused by the
        // serving preflight.
        SPECQP_DCHECK(!serving_status.ok());
        response.status = serving_status;
        response.stats.shards_failed = serving.stats.shards_failed;
        response.stats.shards_total = serving.stats.shards_total;
      }
    }
    {
      MutexLock lock(mu_);
      if (response.status.code() == StatusCode::kCancelled) {
        ++stats_.cancelled;
      } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      }
    }
    pending.promise.set_value(std::move(response));
  }
}

}  // namespace specqp
