#ifndef SPECQP_CORE_ENGINE_H_
#define SPECQP_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/admission.h"
#include "core/estimator.h"
#include "core/plan_executor.h"
#include "core/planner.h"
#include "core/query_plan.h"
#include "core/request.h"
#include "core/speculation.h"
#include "query/query.h"
#include "rdf/mmap_store.h"
#include "rdf/posting_list.h"
#include "rdf/sharded_store.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"
#include "stats/catalog.h"
#include "stats/selectivity.h"
#include "topk/exec_context.h"
#include "topk/exec_stats.h"
#include "topk/scored_row.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace specqp {

struct BatchStats;  // core/batch_executor.h

// Resolves a requested thread count: values >= 1 are clamped to [1, 256];
// values <= 0 defer to the SPECQP_THREADS environment variable (absent or
// unparsable -> 1, i.e. serial). The environment is read exactly once per
// process and memoised — the resolved value is then stored per Engine at
// construction — so mid-run env mutation cannot skew later engines and
// concurrent Submit never races a getenv.
int ResolveNumThreads(int requested);

struct EngineOptions {
  // The paper uses exact join selectivities (footnote 3).
  SelectivityEstimator::Mode selectivity_mode =
      SelectivityEstimator::Mode::kExact;
  // The paper's two-bucket model; kExactGrid is the multi-bucket ablation.
  ExpectedScoreEstimator::Model estimator_model =
      ExpectedScoreEstimator::Model::kTwoBucket;
  // 80/20 rule boundary for all histograms.
  double head_fraction = 0.8;
  // Grid resolution for the kExactGrid estimator.
  double grid_delta = 1.0 / 512.0;
  // Execution concurrency (partitioned rank joins): 0 = $SPECQP_THREADS
  // (default 1), 1 = serial, N > 1 = N-way. Answers are identical at any
  // setting; only throughput changes.
  int num_threads = 0;
  // Posting-list cache budget in bytes (approximate, LRU-evicted);
  // 0 = unbounded.
  size_t cache_budget_bytes = 0;
  // Cost-aware (GreedyDual) cache victim selection: expensive-to-rebuild
  // posting lists outlive cheaper, more recently used ones. Only matters
  // with a non-zero cache budget. See PostingListCache.
  bool cache_cost_aware = false;
  // Minimum total posting entries across a query's patterns before the
  // executor builds a partitioned parallel tree.
  size_t parallel_min_rows = 1024;
  // Streaming admission (Engine::Submit): an open batch window is
  // dispatched once it holds this many requests or once its oldest request
  // has waited this long, whichever happens first. max_batch <= 1 turns
  // cross-request batching off (every Submit dispatches alone).
  size_t admission_max_batch = 16;
  double admission_max_delay_ms = 2.0;
  // Speculative plan racing (core/speculation.h): when PLANGEN's
  // plan-level confidence falls below this threshold, the primary plan and
  // the runner-up race on the engine pool and the first usable result
  // wins. 0 (default) disables racing; confidence lives in [0, 1], so any
  // threshold > 1 forces a race whenever a runner-up exists. Requires
  // num_threads >= 2 (a race needs a pool to share); answers are identical
  // with racing on or off — the certificate gate makes the runner-up's
  // result usable only when it provably matches the primary's.
  double speculate_threshold = 0.0;
  // Mid-query re-planning: once a leaf operator has emitted more than this
  // factor times its estimated cardinality, the (serial) execution stops,
  // re-orders the plan by actual posting sizes, and restarts on the warm
  // caches — at most once per execution. Values <= 1 disable adaptivity.
  double replan_divergence_factor = 0.0;
  // Cadence of the divergence checkpoints, in interrupt polls (roughly a
  // small multiple of rows pulled).
  uint64_t replan_check_rows = 4096;
  // Estimate-calibration loop (stats/calibration.h): path of a correction
  // table fitted by scripts/fit_estimator_correction.py, loaded into the
  // statistics catalog at construction (empty = uncalibrated; a missing
  // file is treated as empty). Every execution also appends to the
  // engine's in-memory CalibrationLog, bounded by calibration_log_capacity
  // records per kind.
  std::string calibration_path;
  size_t calibration_log_capacity = 4096;
  // Engine::OpenFromPath only: memory-map v2/v3 store files (zero-copy
  // MmapStore view, O(ms) open) instead of parsing them into an owned
  // store. v1 files always parse. Answers are identical either way; only
  // open latency and memory residency change.
  bool mmap = true;
  // Engine::OpenFromPath only: fully verify every section of a mapped
  // store (checksums + value ranges + ordering invariants) before
  // serving, instead of the default — eager metadata sections, lazy
  // O(triples) bulk sections. The default trusts the file's bulk bytes;
  // set this for stores from untrusted sources (costs one pass over the
  // file, still far below a v1 parse).
  bool mmap_verify_all = false;

  // --- fault tolerance (docs/ARCHITECTURE.md "Failure model") --------------

  // Serve PARTIAL answers from the surviving shards when some shards of a
  // bundle are quarantined (failed at open, lost mapped pages at runtime,
  // drew an injected fault). Degraded responses carry partial = true and
  // the shards_failed/shards_total ledger in their stats. Off (default):
  // strict mode — a bundle with quarantined shards answers every query
  // kUnavailable until reopened. Implies allow_quarantine.
  bool degraded_reads = false;
  // Quarantine failing shards instead of failing the whole bundle open /
  // crashing the read path, WITHOUT serving degraded answers (strict
  // serving keeps returning kUnavailable while any shard is out). Useful
  // when an operator wants fail-static behaviour with fault isolation.
  // degraded_reads = true implies this.
  bool allow_quarantine = false;
  // Deterministic fault plan (util/fault_injector.h grammar, e.g.
  // "seed=7;shard.open.3=1@2;block.decode=0.01"), configured process-wide
  // at engine construction. Empty (default): the injector is disarmed and
  // every probe compiles down to one relaxed atomic load.
  std::string fault_plan;
  // Admission-side overload shedding: reject new Submits with
  // kResourceExhausted (plus a retry_after_ms hint) once this many
  // requests are queued in the admission controller. 0 = never shed.
  size_t admission_max_queue = 0;
  // Deadline-aware shedding: reject a request at submit time when its
  // deadline cannot outlast the worst-case window delay it would queue
  // behind — the request would only be DOA'd at dispatch anyway, so shed
  // it before it occupies queue space.
  bool admission_deadline_shed = false;
  // The retry-after hint attached to queue-full rejections.
  double admission_retry_after_ms = 5.0;
};

// Facade wiring the whole stack together: posting lists, statistics,
// selectivities, PLANGEN, and plan execution over a knowledge graph plus a
// relaxation rule set (both owned by the caller and shared across engines
// so baselines run against identical data and caches are comparable).
//
// The blessed API is request-shaped (core/request.h):
//
//   Submit(QueryRequest)  -> std::future<QueryResponse>   // execute
//   Explain(QueryRequest) -> QueryResponse                // plan only
//
// Submit with the default windowed admission is safe to call from any
// number of threads; requests accumulate into batch windows (close on
// max-size or max-delay, EngineOptions::admission_*) that dispatch through
// the batch executor, so online traffic gets the shared-scan amortisation
// automatically. Pre-assembled batches go through BatchExecutor directly
// (core/batch_executor.h). The legacy Execute/ExecuteText/ExecuteBatch/
// ExecuteTextBatch wrappers have been removed; non-Submit entry points
// must not run concurrently with anything else on the same engine.
class Engine {
 public:
  // Per-query result record of the batch layer (BatchExecutor, admission
  // windows). Single-query callers use Submit and read the QueryResponse.
  struct QueryResult {
    QueryPlan plan;
    PlanDiagnostics diagnostics;  // filled for kSpecQp
    std::vector<ScoredRow> rows;  // the top-k, score-descending
    ExecStats stats;
  };

  Engine(const TripleStore* store, const RelaxationIndex* rules,
         const EngineOptions& options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // A store opened from disk together with the engine serving it: the
  // bundle owns the storage backend (mapped file or parsed store), so it
  // must outlive every reference into the engine. Movable; the engine's
  // internal pointers stay valid because the store lives behind a
  // unique_ptr either way.
  struct Opened {
    std::unique_ptr<MmapStore> mapped;      // v2 / v3 mmap fast path
    std::unique_ptr<ShardedStore> sharded;  // SQPBNDL1 bundle facade
    std::unique_ptr<TripleStore> parsed;    // v1 / parse fallback
    std::unique_ptr<Engine> engine;

    const TripleStore& store() const {
      if (sharded != nullptr) return sharded->store();
      return mapped != nullptr ? mapped->store() : *parsed;
    }
    bool mmap_backed() const {
      return mapped != nullptr || sharded != nullptr;
    }
    size_t bytes_mapped() const {
      if (sharded != nullptr) return sharded->bytes_mapped();
      return mapped != nullptr ? mapped->bytes_mapped() : 0;
    }
  };

  // Open-from-path fast path: loads `store_path` (v1, v2, v3, or a
  // sharded SQPBNDL1 bundle directory/manifest; see docs/FORMATS.md) and
  // builds an engine over it. With options.mmap, v2
  // and v3 files are memory-mapped — the open does no per-triple parsing,
  // its small metadata sections are CRC-verified eagerly, the bulk
  // sections lazily; a v3 file additionally serves its per-predicate
  // posting lists as zero-copy block directories — and the engine's
  // statistics catalog is pre-seeded from the file's snapshot when its
  // head_fraction matches the options. `rules` stays caller-owned and must
  // outlive the returned bundle.
  [[nodiscard]] static Result<Opened> OpenFromPath(const std::string& store_path,
                                     const RelaxationIndex* rules,
                                     const EngineOptions& options = {});

  // Submits one request for execution. With the default windowed admission
  // the call never blocks on execution: the request is parsed, checked
  // (parse error, k == 0, and an already-cancelled token all complete the
  // future immediately with the terminal status), and queued into the
  // admission window for its (k, strategy); the future completes once the
  // window has been dispatched. Thread-safe. With
  // QueryRequest::Admission::kImmediate the request executes on the
  // calling thread and the returned future is already ready — the
  // lowest-latency path, subject to the legacy single-caller contract.
  std::future<QueryResponse> Submit(QueryRequest request);

  // Plans `request` without executing it: the response carries the plan,
  // the PLANGEN diagnostics (kSpecQp), and plan_ms, with no rows. The
  // blessed plan-introspection entry point. Runs on the calling thread;
  // single-caller contract (it touches the planner memos).
  QueryResponse Explain(const QueryRequest& request);

  // The streaming admission layer behind Submit (created on first use);
  // exposed for Flush() and its Stats counters.
  AdmissionController& admission();

  // DEPRECATED: thin wrapper over Explain (kept for planner-only studies).
  QueryPlan PlanOnly(const Query& query, size_t k,
                     PlanDiagnostics* diagnostics = nullptr);

  // Pre-materialises posting lists and statistics for a query and its
  // relaxations — the paper's warm-cache setting (section 4.4) separates
  // this cost from query runtimes.
  void Warm(const Query& query);

  const TripleStore& store() const { return *store_; }
  const RelaxationIndex& rules() const { return *rules_; }
  PostingListCache& postings() { return postings_; }
  StatisticsCatalog& catalog() { return catalog_; }
  // The engine's calibration log: every completed execution appends its
  // (estimate, actual) observations here; bench runs dump it into their
  // --json artifacts for scripts/fit_estimator_correction.py.
  const CalibrationLog& calibration_log() const { return calibration_log_; }
  SelectivityEstimator& selectivity() { return selectivity_; }
  const EngineOptions& options() const { return options_; }
  // Resolved execution concurrency (>= 1); the pool is shared by every
  // execution on this engine.
  int num_threads() const { return num_threads_; }

 private:
  friend class BatchExecutor;       // drives planner_/executor_/pool_ per batch
  friend class AdmissionController; // dispatches windows on its own thread

  // The synchronous unified execution path shared by Submit's immediate
  // mode and the legacy wrappers: resolve (parse if needed), run the
  // submit-time checks, plan, execute with the request's interrupt and
  // overrides, and translate an abort into the terminal status.
  QueryResponse ExecuteRequest(QueryRequest request);
  // Plans and executes one resolved query into `response` (which already
  // carries the request echo). `interrupt` may be null.
  void RunQuery(const Query& query, const QueryRequest& request,
                const ExecInterrupt* interrupt, QueryResponse* response);

  // --- fault-tolerant serving (docs/ARCHITECTURE.md "Failure model") ------
  // Run before execution: sweeps latched mapping faults on a sharded
  // backend, drops engine caches built against a shard set that no longer
  // serves (once per fault-epoch advance), fills the response's
  // shards_failed/shards_total ledger, and decides whether this engine may
  // answer right now — Ok (fully serving), Ok with response->partial set
  // (degraded_reads and some shards out), or kUnavailable (strict mode
  // with shards out, or every shard out). `epoch_out` receives the fault
  // epoch the decision was made under. No-op Ok for non-sharded stores.
  [[nodiscard]] Status PreflightServing(QueryResponse* response, uint64_t* epoch_out);
  // Run after execution: a quarantine that landed mid-query (epoch moved
  // past `epoch_before`) or a latched in-flight fault
  // (stats.store_faults > 0) invalidates the answer — it may mix pre- and
  // post-fault shard sets — and surfaces as kIoError.
  [[nodiscard]] Status PostflightServing(uint64_t epoch_before, QueryResponse* response);

  const TripleStore* store_;
  const RelaxationIndex* rules_;
  EngineOptions options_;
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial

  PostingListCache postings_;
  StatisticsCatalog catalog_;
  SelectivityEstimator selectivity_;
  ExpectedScoreEstimator estimator_;
  Planner planner_;
  PlanExecutor executor_;
  SpeculativeExecutor speculative_;
  CalibrationLog calibration_log_;

  // Highest store fault epoch this engine has reconciled its caches with
  // (posting lists + statistics built against a retired shard set are
  // dropped exactly once per epoch advance, CAS-guarded).
  std::atomic<uint64_t> seen_fault_epoch_{0};

  // Declared last: destroyed first, so the admission dispatcher drains all
  // in-flight windows before any engine internals go away.
  std::once_flag admission_once_;
  std::unique_ptr<AdmissionController> admission_;
};

// Submits `request` and blocks for the response, retrying retryable
// terminal statuses (overload sheds, degraded-store kUnavailable windows,
// transient kIoError) under `policy`. Honours the response's
// retry_after_ms hint — the actual sleep is the larger of the hint and
// the policy's own backoff for that attempt, capped at the policy's
// max_backoff — and gives up immediately on a shed whose hint is 0
// (retrying cannot help, e.g. the request's own deadline is unmeetable).
// The request is copied per attempt, so the caller's QueryRequest is
// reusable afterwards.
QueryResponse SubmitWithRetry(Engine& engine, const QueryRequest& request,
                              const RetryPolicy& policy = RetryPolicy());

}  // namespace specqp

#endif  // SPECQP_CORE_ENGINE_H_
