#include "core/query_plan.h"

#include <algorithm>

#include "util/string_util.h"

namespace specqp {

bool QueryPlan::IsSingleton(size_t pattern_index) const {
  return std::find(singletons.begin(), singletons.end(), pattern_index) !=
         singletons.end();
}

QueryPlan QueryPlan::TrinitPlan(size_t num_patterns) {
  QueryPlan plan;
  plan.singletons.resize(num_patterns);
  for (size_t i = 0; i < num_patterns; ++i) plan.singletons[i] = i;
  return plan;
}

QueryPlan QueryPlan::NoRelaxationsPlan(size_t num_patterns) {
  QueryPlan plan;
  plan.join_group.resize(num_patterns);
  for (size_t i = 0; i < num_patterns; ++i) plan.join_group[i] = i;
  return plan;
}

std::string QueryPlan::ToString() const {
  std::string out = "{";
  for (size_t i : join_group) out += StrFormat(" q%zu", i);
  out += " |";
  for (size_t i : singletons) out += StrFormat(" q%zu*", i);
  out += " }";
  return out;
}

}  // namespace specqp
