#include "core/plan_executor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "topk/incremental_merge.h"
#include "topk/pattern_scan.h"
#include "topk/project.h"
#include "topk/rank_join.h"
#include "util/logging.h"

namespace specqp {

namespace {

// A built sub-plan plus the set of variables it binds.
struct Unit {
  std::unique_ptr<ScoredRowIterator> op;
  std::vector<bool> bound;  // per VarId
};

std::vector<bool> PatternBound(const TriplePattern& q, size_t width) {
  std::vector<bool> bound(width, false);
  VarId vars[3];
  const int n = q.Variables(vars);
  for (int i = 0; i < n; ++i) bound[vars[i]] = true;
  return bound;
}

std::vector<VarId> SharedBound(const std::vector<bool>& a,
                               const std::vector<bool>& b) {
  std::vector<VarId> shared;
  for (size_t v = 0; v < a.size(); ++v) {
    if (a[v] && b[v]) shared.push_back(static_cast<VarId>(v));
  }
  return shared;
}

// Joins `units` left-deep into `acc` (greedy: prefer the earliest unit
// sharing a variable with the accumulated bound set).
void FoldInto(Unit* acc, std::vector<Unit>* units, ExecStats* stats) {
  while (!units->empty()) {
    size_t pick = 0;
    bool connected = false;
    for (size_t i = 0; i < units->size(); ++i) {
      if (!SharedBound(acc->bound, (*units)[i].bound).empty()) {
        pick = i;
        connected = true;
        break;
      }
    }
    (void)connected;  // cross product when nothing connects
    Unit next = std::move((*units)[pick]);
    units->erase(units->begin() + static_cast<ptrdiff_t>(pick));

    std::vector<VarId> join_vars = SharedBound(acc->bound, next.bound);
    acc->op = std::make_unique<RankJoin>(std::move(acc->op),
                                         std::move(next.op),
                                         std::move(join_vars), stats);
    for (size_t v = 0; v < acc->bound.size(); ++v) {
      if (next.bound[v]) acc->bound[v] = true;
    }
  }
}

}  // namespace

PlanExecutor::PlanExecutor(const TripleStore* store,
                           PostingListCache* postings,
                           const RelaxationIndex* rules)
    : store_(store), postings_(postings), rules_(rules) {
  SPECQP_CHECK(store_ != nullptr && postings_ != nullptr && rules_ != nullptr);
}

std::unique_ptr<ScoredRowIterator> PlanExecutor::Build(const Query& query,
                                                       const QueryPlan& plan,
                                                       ExecStats* stats) {
  SPECQP_CHECK(stats != nullptr);
  SPECQP_CHECK(plan.join_group.size() + plan.singletons.size() ==
               query.num_patterns())
      << "plan does not cover the query";

  // Chain relaxations bind a fresh intermediate variable each; those get
  // trailing binding slots beyond the query's own variables (cleared again
  // by a projection before the chain's rows reach the merge, so the extra
  // slots are kInvalidTermId everywhere above the chain joins).
  size_t num_chain_slots = 0;
  for (size_t i : plan.singletons) {
    num_chain_slots += rules_->ChainRulesFor(query.pattern(i).Key()).size();
  }
  const size_t width = query.num_vars() + num_chain_slots;
  VarId next_chain_slot = static_cast<VarId>(query.num_vars());

  auto make_scan = [&](const TriplePattern& pattern, double weight) {
    return std::make_unique<PatternScan>(store_,
                                         postings_->Get(pattern.Key()),
                                         pattern, width, weight, stats);
  };

  // Join-group units: bare scans.
  std::vector<Unit> group_units;
  for (size_t i : plan.join_group) {
    const TriplePattern& q = query.pattern(i);
    group_units.push_back(Unit{make_scan(q, 1.0), PatternBound(q, width)});
  }

  // Singleton units: incremental merges over pattern + relaxations.
  std::vector<Unit> singleton_units;
  for (size_t i : plan.singletons) {
    const TriplePattern& q = query.pattern(i);
    std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
    inputs.push_back(make_scan(q, 1.0));
    for (const RelaxationRule& rule : rules_->RulesFor(q.Key())) {
      auto relaxed = ApplyRule(q, rule);
      SPECQP_CHECK(relaxed.ok()) << relaxed.status().ToString();
      inputs.push_back(make_scan(relaxed.value(), rule.weight));
    }
    // Chain relaxations: rank-join the two hops on the fresh variable
    // (each hop discounted by w/2, so the chain tops out at w), then hide
    // the intermediate so the merge deduplicates per subject.
    for (const ChainRelaxationRule& rule :
         rules_->ChainRulesFor(q.Key())) {
      const VarId fresh = next_chain_slot++;
      auto chain = ApplyChainRule(q, rule, fresh);
      SPECQP_CHECK(chain.ok()) << chain.status().ToString();
      auto join = std::make_unique<RankJoin>(
          make_scan(chain->hop1, rule.weight / 2.0),
          make_scan(chain->hop2, rule.weight / 2.0),
          std::vector<VarId>{fresh}, stats);
      inputs.push_back(std::make_unique<ProjectIterator>(
          std::move(join), std::vector<VarId>{fresh}));
    }
    singleton_units.push_back(
        Unit{std::make_unique<IncrementalMerge>(std::move(inputs), stats),
             PatternBound(q, width)});
  }

  // Left-deep fold: join group first (section 3.2.2 step 1), then the
  // singleton merges (step 3).
  Unit acc;
  if (!group_units.empty()) {
    acc = std::move(group_units.front());
    group_units.erase(group_units.begin());
    FoldInto(&acc, &group_units, stats);
    FoldInto(&acc, &singleton_units, stats);
  } else {
    SPECQP_CHECK(!singleton_units.empty());
    acc = std::move(singleton_units.front());
    singleton_units.erase(singleton_units.begin());
    FoldInto(&acc, &singleton_units, stats);
  }
  return std::move(acc.op);
}

}  // namespace specqp
