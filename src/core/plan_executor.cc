#include "core/plan_executor.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "rdf/shared_scan_cache.h"
#include "topk/incremental_merge.h"
#include "topk/parallel_rank_join.h"
#include "topk/pattern_scan.h"
#include "topk/project.h"
#include "topk/rank_join.h"
#include "util/logging.h"

namespace specqp {

namespace {

// A built sub-plan plus the set of variables it binds.
struct Unit {
  std::unique_ptr<ScoredRowIterator> op;
  std::vector<bool> bound;  // per VarId
};

std::vector<bool> PatternBound(const TriplePattern& q, size_t width) {
  std::vector<bool> bound(width, false);
  VarId vars[3];
  const int n = q.Variables(vars);
  for (int i = 0; i < n; ++i) bound[vars[i]] = true;
  return bound;
}

std::vector<VarId> SharedBound(const std::vector<bool>& a,
                               const std::vector<bool>& b) {
  std::vector<VarId> shared;
  for (size_t v = 0; v < a.size(); ++v) {
    if (a[v] && b[v]) shared.push_back(static_cast<VarId>(v));
  }
  return shared;
}

// Joins `units` left-deep into `acc` (greedy: prefer the earliest unit
// sharing a variable with the accumulated bound set).
void FoldInto(Unit* acc, std::vector<Unit>* units, ExecContext* ctx) {
  while (!units->empty()) {
    size_t pick = 0;
    bool connected = false;
    for (size_t i = 0; i < units->size(); ++i) {
      if (!SharedBound(acc->bound, (*units)[i].bound).empty()) {
        pick = i;
        connected = true;
        break;
      }
    }
    (void)connected;  // cross product when nothing connects
    Unit next = std::move((*units)[pick]);
    units->erase(units->begin() + static_cast<ptrdiff_t>(pick));

    std::vector<VarId> join_vars = SharedBound(acc->bound, next.bound);
    acc->op = std::make_unique<RankJoin>(std::move(acc->op),
                                         std::move(next.op),
                                         std::move(join_vars), ctx);
    for (size_t v = 0; v < acc->bound.size(); ++v) {
      if (next.bound[v]) acc->bound[v] = true;
    }
  }
}

}  // namespace

// One hash partition's view of the posting lists: patterns binding `var`
// scan only their bucket `index` of `count`; other patterns scan the full
// list (replicated across trees — correct because any join against them
// keeps the v-binding of the partitioned side). Piece sets are memoised in
// the PostingListCache, so repeated executions of a query re-use them; the
// per-Build `memo` (shared across this Build's partition trees) keeps the
// cache's shard lock out of the hot per-partition loop.
struct PlanExecutor::PartitionView {
  using PieceMemo =
      std::map<std::tuple<TermId, TermId, TermId, int>,
               std::vector<std::shared_ptr<const PostingList>>>;

  VarId var = kInvalidVarId;
  uint32_t index = 0;
  uint32_t count = 1;
  PostingListCache* postings = nullptr;
  PieceMemo* memo = nullptr;

  std::shared_ptr<const PostingList> PieceFor(const PatternKey& key,
                                              int slot) const {
    const auto memo_key = std::make_tuple(key.s, key.p, key.o, slot);
    auto it = memo->find(memo_key);
    if (it == memo->end()) {
      it = memo->emplace(memo_key, postings->GetPartitions(key, slot, count))
               .first;
    }
    return it->second[index];
  }
};

PlanExecutor::PlanExecutor(const TripleStore* store,
                           PostingListCache* postings,
                           const RelaxationIndex* rules)
    : PlanExecutor(store, postings, rules, Options()) {}

PlanExecutor::PlanExecutor(const TripleStore* store,
                           PostingListCache* postings,
                           const RelaxationIndex* rules,
                           const Options& options)
    : store_(store), postings_(postings), rules_(rules), options_(options) {
  SPECQP_CHECK(store_ != nullptr && postings_ != nullptr && rules_ != nullptr);
}

VarId PlanExecutor::CommonJoinVariable(const Query& query) {
  if (query.num_patterns() == 0) return kInvalidVarId;
  for (size_t v = 0; v < query.num_vars(); ++v) {
    bool in_all = true;
    for (const TriplePattern& q : query.patterns()) {
      if (!q.UsesVariable(static_cast<VarId>(v))) {
        in_all = false;
        break;
      }
    }
    if (in_all) return static_cast<VarId>(v);
  }
  return kInvalidVarId;
}

std::unique_ptr<ScoredRowIterator> PlanExecutor::Build(const Query& query,
                                                       const QueryPlan& plan,
                                                       ExecContext* ctx) {
  return Build(query, plan, ctx, nullptr);
}

std::unique_ptr<ScoredRowIterator> PlanExecutor::Build(
    const Query& query, const QueryPlan& plan, ExecContext* ctx,
    std::vector<LeafHandle>* leaves) {
  SPECQP_CHECK(ctx != nullptr);
  if (leaves != nullptr) leaves->clear();
  SPECQP_CHECK(plan.join_group.size() + plan.singletons.size() ==
               query.num_patterns())
      << "plan does not cover the query";

  // Parallel tree? Needs a pool, a join to split (>= 2 patterns), a
  // variable shared by every pattern to partition on, and enough posting
  // rows to be worth it. Single-pattern queries stay serial so the root
  // keeps the posting lists' triple-index tie order.
  uint32_t num_partitions = 0;
  VarId partition_var = kInvalidVarId;
  if (ctx->parallel() && query.num_patterns() >= 2) {
    partition_var = CommonJoinVariable(query);
    if (partition_var != kInvalidVarId) {
      size_t total_rows = 0;
      for (const TriplePattern& q : query.patterns()) {
        // Uncounted: a sizing probe, not a real access — make_scan fetches
        // (and counts) the same lists moments later.
        total_rows += postings_->GetUncounted(q.Key())->size();
      }
      // Per-request override (QueryRequest::parallel_min_rows) wins over
      // the engine-wide option.
      if (total_rows >= ctx->parallel_min_rows_or(options_.parallel_min_rows)) {
        num_partitions = static_cast<uint32_t>(ctx->num_threads());
      }
    }
  }
  if (num_partitions < 2) return BuildTree(query, plan, ctx, nullptr, leaves);

  PartitionView::PieceMemo memo;
  std::vector<std::unique_ptr<ScoredRowIterator>> roots;
  roots.reserve(num_partitions);
  for (uint32_t i = 0; i < num_partitions; ++i) {
    PartitionView view;
    view.var = partition_var;
    view.index = i;
    view.count = num_partitions;
    view.postings = postings_;
    view.memo = &memo;
    roots.push_back(
        BuildTree(query, plan, ctx->ForPartition(), &view, nullptr));
  }
  ctx->stats()->parallel_partitions += num_partitions;
  return std::make_unique<ParallelRankJoin>(std::move(roots), ctx,
                                            options_.parallel_batch_rows);
}

std::unique_ptr<ScoredRowIterator> PlanExecutor::BuildTree(
    const Query& query, const QueryPlan& plan, ExecContext* ctx,
    const PartitionView* view, std::vector<LeafHandle>* leaves) {
  // Chain relaxations bind a fresh intermediate variable each; those get
  // trailing binding slots beyond the query's own variables (cleared again
  // by a projection before the chain's rows reach the merge, so the extra
  // slots are kInvalidTermId everywhere above the chain joins).
  size_t num_chain_slots = 0;
  for (size_t i : plan.singletons) {
    num_chain_slots += rules_->ChainRulesFor(query.pattern(i).Key()).size();
  }
  const size_t width = query.num_vars() + num_chain_slots;
  VarId next_chain_slot = static_cast<VarId>(query.num_vars());

  auto make_scan = [&](const TriplePattern& pattern, double weight) {
    const int slot =
        view == nullptr ? -1 : SlotOfVar(pattern, view->var);
    // Batch executions resolve full lists through the batch's shared-scan
    // cache (identical patterns across the batch's queries are resolved
    // once and pinned); stand-alone executions go to the engine cache.
    std::shared_ptr<const PostingList> list;
    if (slot >= 0) {
      list = view->PieceFor(pattern.Key(), slot);
    } else if (ctx->shared_scans() != nullptr) {
      list = ctx->shared_scans()->Get(pattern.Key());
    } else {
      list = postings_->Get(pattern.Key());
    }
    return std::make_unique<PatternScan>(store_, std::move(list), pattern,
                                         width, weight, ctx);
  };

  // Join-group units: bare scans.
  std::vector<Unit> group_units;
  for (size_t i : plan.join_group) {
    const TriplePattern& q = query.pattern(i);
    auto scan = make_scan(q, 1.0);
    if (leaves != nullptr) {
      leaves->push_back(LeafHandle{i, /*singleton=*/false, scan.get()});
    }
    group_units.push_back(Unit{std::move(scan), PatternBound(q, width)});
  }

  // Singleton units: incremental merges over pattern + relaxations.
  std::vector<Unit> singleton_units;
  for (size_t i : plan.singletons) {
    const TriplePattern& q = query.pattern(i);
    std::vector<std::unique_ptr<ScoredRowIterator>> inputs;
    inputs.push_back(make_scan(q, 1.0));
    for (const RelaxationRule& rule : rules_->RulesFor(q.Key())) {
      auto relaxed = ApplyRule(q, rule);
      SPECQP_CHECK(relaxed.ok()) << relaxed.status().ToString();
      inputs.push_back(make_scan(relaxed.value(), rule.weight));
    }
    // Chain relaxations: rank-join the two hops on the fresh variable
    // (each hop discounted by w/2, so the chain tops out at w), then hide
    // the intermediate so the merge deduplicates per subject. Hop patterns
    // that do not bind the partition variable scan their full lists.
    for (const ChainRelaxationRule& rule :
         rules_->ChainRulesFor(q.Key())) {
      const VarId fresh = next_chain_slot++;
      auto chain = ApplyChainRule(q, rule, fresh);
      SPECQP_CHECK(chain.ok()) << chain.status().ToString();
      auto join = std::make_unique<RankJoin>(
          make_scan(chain->hop1, rule.weight / 2.0),
          make_scan(chain->hop2, rule.weight / 2.0),
          std::vector<VarId>{fresh}, ctx);
      inputs.push_back(std::make_unique<ProjectIterator>(
          std::move(join), std::vector<VarId>{fresh}));
    }
    auto merge = std::make_unique<IncrementalMerge>(std::move(inputs), ctx);
    if (leaves != nullptr) {
      leaves->push_back(LeafHandle{i, /*singleton=*/true, merge.get()});
    }
    singleton_units.push_back(Unit{std::move(merge), PatternBound(q, width)});
  }

  // Left-deep fold: join group first (section 3.2.2 step 1), then the
  // singleton merges (step 3).
  Unit acc;
  if (!group_units.empty()) {
    acc = std::move(group_units.front());
    group_units.erase(group_units.begin());
    FoldInto(&acc, &group_units, ctx);
    FoldInto(&acc, &singleton_units, ctx);
  } else {
    SPECQP_CHECK(!singleton_units.empty());
    acc = std::move(singleton_units.front());
    singleton_units.erase(singleton_units.begin());
    FoldInto(&acc, &singleton_units, ctx);
  }
  return std::move(acc.op);
}

}  // namespace specqp
