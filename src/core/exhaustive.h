#ifndef SPECQP_CORE_EXHAUSTIVE_H_
#define SPECQP_CORE_EXHAUSTIVE_H_

#include <vector>

#include "query/query.h"
#include "rdf/triple_store.h"
#include "relax/relaxation_index.h"

namespace specqp {

// Ground-truth evaluator: materialises *every* answer reachable through the
// relaxation space with its exact score under the operational semantics
// (per-pattern maximum over derivations, summed across patterns —
// Definitions 5-8 as realised by the operator pipeline), together with
// per-pattern provenance. Completely independent of the operator code, so
// tests can cross-check TriniT/Spec-QP against it; the quality benchmarks
// (Tables 2-4) use it to derive true top-k answers and the set of
// relaxations actually required.
class ExhaustiveEvaluator {
 public:
  struct Answer {
    std::vector<TermId> bindings;  // width = query.num_vars()
    double score = 0.0;            // sum over patterns of best_scores
    // Per pattern: the best derivation score (max over the original pattern
    // and every relaxation, Definition 8) ...
    std::vector<double> best_scores;
    // ... and the best score achievable through the *original* pattern
    // only; kNoOriginal when the answer does not match the original at all.
    std::vector<double> original_scores;

    // True iff the best derivation for pattern `i` used a relaxation (ties
    // count as original).
    bool ViaRelaxation(size_t i) const {
      return original_scores[i] < best_scores[i];
    }

    static constexpr double kNoOriginal = -1.0;
  };

  struct EvalResult {
    std::vector<Answer> answers;  // sorted by score desc, bindings asc

    // Pattern indices whose relaxations are *required* to produce the true
    // top-k: disabling pattern i's relaxations (answers then score through
    // i's original pattern only, and answers with no original match for i
    // disappear) changes the set of top-k answer bindings.
    std::vector<size_t> RequiredRelaxations(size_t k) const;
  };

  ExhaustiveEvaluator(const TripleStore* store, const RelaxationIndex* rules);

  ExhaustiveEvaluator(const ExhaustiveEvaluator&) = delete;
  ExhaustiveEvaluator& operator=(const ExhaustiveEvaluator&) = delete;

  EvalResult Evaluate(const Query& query) const;

 private:
  const TripleStore* store_;
  const RelaxationIndex* rules_;
};

}  // namespace specqp

#endif  // SPECQP_CORE_EXHAUSTIVE_H_
