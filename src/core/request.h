#ifndef SPECQP_CORE_REQUEST_H_
#define SPECQP_CORE_REQUEST_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/query_plan.h"
#include "query/query.h"
#include "topk/exec_stats.h"
#include "topk/scored_row.h"
#include "util/status.h"

namespace specqp {

// How a query is planned and executed. (Declared here — the request layer
// is the public API surface — and re-exported by core/engine.h.)
enum class Strategy {
  kSpecQp,   // PLANGEN speculation (the paper's contribution)
  kTrinit,   // all patterns relaxed through incremental merges (baseline)
  kNoRelax,  // plain rank joins, relaxations ignored (lower bound)
};

std::string_view StrategyName(Strategy strategy);

// Copyable handle to a shared cancellation flag. A default-constructed
// token is *empty* (not cancellable); Create() makes a live one. All
// copies share one flag, so the caller keeps a copy, hands another to a
// QueryRequest, and may RequestCancel() from any thread at any time — the
// executing operators poll the flag cooperatively and wind the query down
// within a few rows. Cancellation is sticky and cannot be reset.
class CancellationToken {
 public:
  CancellationToken() = default;  // empty: not cancellable

  static CancellationToken Create() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  bool valid() const { return flag_ != nullptr; }

  void RequestCancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  // The shared flag, for wiring into an ExecInterrupt (null when empty).
  std::shared_ptr<const std::atomic<bool>> flag() const { return flag_; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// One query-execution request: what to run (a pre-parsed Query, or text
// parsed against the store dictionary at submit time), how (k, strategy,
// per-request execution overrides), and under which service terms
// (deadline, cancellation token, admission mode). This is the unified
// input of Engine::Submit and Engine::Explain — the only per-query entry
// points; pre-assembled batches of parsed queries go through
// BatchExecutor.
struct QueryRequest {
  // What to run: `query` wins when set; otherwise `text` is parsed at
  // submit time (a parse error becomes the response's terminal status).
  std::optional<Query> query;
  std::string text;

  size_t k = 10;
  Strategy strategy = Strategy::kSpecQp;

  // Service terms. The deadline is checked before execution and polled
  // cooperatively during it; an expired request terminates with
  // kDeadlineExceeded and no rows. The token may be cancelled from any
  // thread; a cancelled request terminates with kCancelled and no rows.
  // Both are best-effort-prompt: a request that completes in the same
  // instant may still report the terminal cancellation/deadline status.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  CancellationToken cancel;

  // Per-request overrides of selected EngineOptions. `serial` forces a
  // serial operator tree even on a multi-threaded engine;
  // `parallel_min_rows` overrides the partitioned-tree threshold. Neither
  // changes answers (bit-identical at any setting), only scheduling — and
  // they only matter on the kImmediate path: windowed requests execute as
  // batch tasks, which always run one serial tree per distinct query (the
  // batch gets its parallelism across queries), so a windowed request is
  // effectively `serial` already.
  std::optional<bool> serial;
  std::optional<size_t> parallel_min_rows;

  // Caller label, echoed verbatim in the response (request tracing).
  std::string tag;

  // kWindow (default): the request joins the engine's admission window and
  // is dispatched as part of a batch (shared scans, duplicate collapsing;
  // closes on max-size or max-delay). Safe to call from any number of
  // threads concurrently. kImmediate: execute on the submitting thread
  // with no batching — the lowest-latency path, but it must not run
  // concurrently with other executions on the same engine (the planner
  // memos are not locked).
  enum class Admission { kWindow, kImmediate };
  Admission admission = Admission::kWindow;

  static QueryRequest FromQuery(Query query, size_t k = 10,
                                Strategy strategy = Strategy::kSpecQp);
  static QueryRequest FromText(std::string text, size_t k = 10,
                               Strategy strategy = Strategy::kSpecQp);

  // Sets the deadline `timeout` from now.
  QueryRequest& WithTimeout(std::chrono::milliseconds timeout);
};

// The unified result of one request: the terminal Status plus everything
// the legacy Result<Engine::QueryResult> split used to carry, and the
// request echo/admission diagnostics. `rows` is only meaningful when
// status.ok(); a cancelled or expired request reports its terminal status
// with no rows (`partial` stays false — partial-result streaming is a
// future extension, nothing is ever silently truncated today).
struct QueryResponse {
  Status status;

  QueryPlan plan;
  PlanDiagnostics diagnostics;  // filled for kSpecQp
  std::vector<ScoredRow> rows;  // the top-k, score-descending
  ExecStats stats;
  bool partial = false;

  // Request echo + admission diagnostics.
  std::string tag;
  Strategy strategy = Strategy::kSpecQp;
  size_t k = 0;
  size_t window_size = 0;   // requests dispatched in this window (0 = immediate)
  double admission_ms = 0.0;  // submit-to-dispatch queueing delay
  // Set on kResourceExhausted (overload shed): how long the caller should
  // back off before resubmitting. 0 with a shed status means retrying is
  // pointless (e.g. the request's own deadline cannot be met).
  double retry_after_ms = 0.0;

  bool ok() const { return status.ok(); }
};

}  // namespace specqp

#endif  // SPECQP_CORE_REQUEST_H_
