#include "core/request.h"

namespace specqp {

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSpecQp:
      return "Spec-QP";
    case Strategy::kTrinit:
      return "TriniT";
    case Strategy::kNoRelax:
      return "NoRelax";
  }
  return "?";
}

QueryRequest QueryRequest::FromQuery(Query query, size_t k,
                                     Strategy strategy) {
  QueryRequest request;
  request.query = std::move(query);
  request.k = k;
  request.strategy = strategy;
  return request;
}

QueryRequest QueryRequest::FromText(std::string text, size_t k,
                                    Strategy strategy) {
  QueryRequest request;
  request.text = std::move(text);
  request.k = k;
  request.strategy = strategy;
  return request;
}

QueryRequest& QueryRequest::WithTimeout(std::chrono::milliseconds timeout) {
  deadline = std::chrono::steady_clock::now() + timeout;
  return *this;
}

}  // namespace specqp
