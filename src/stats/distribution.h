#ifndef SPECQP_STATS_DISTRIBUTION_H_
#define SPECQP_STATS_DISTRIBUTION_H_

namespace specqp {

// Continuous score distribution on [0, upper()]. Both the paper's two-bucket
// histogram and the exact piecewise-linear convolution result implement this
// interface; the order-statistics estimator (order_statistics.h) works with
// either.
class ScoreDistribution {
 public:
  virtual ~ScoreDistribution() = default;

  // Upper end of the support ([0, 1] for a single pattern, [0, n] for an
  // n-pattern query under sum aggregation).
  virtual double upper() const = 0;

  virtual double Pdf(double x) const = 0;

  // P(X <= x); monotone non-decreasing, Cdf(upper()) == 1.
  virtual double Cdf(double x) const = 0;

  // Smallest x with Cdf(x) >= p, for p in [0, 1].
  virtual double InverseCdf(double p) const = 0;

  virtual double Mean() const = 0;

  // Partial expectation E[X · 1{X >= t}] = ∫_t^upper x·f(x) dx — the
  // expected per-answer score mass above threshold t. Used when refitting a
  // convolved distribution back to a two-bucket histogram (the 80% boundary
  // is the t with PartialExpectationAbove(t) = 0.8 · Mean()).
  virtual double PartialExpectationAbove(double t) const = 0;
};

}  // namespace specqp

#endif  // SPECQP_STATS_DISTRIBUTION_H_
