#ifndef SPECQP_STATS_ORDER_STATISTICS_H_
#define SPECQP_STATS_ORDER_STATISTICS_H_

#include <cstdint>

#include "stats/distribution.h"

namespace specqp {

// Expected value of the order statistic at a *descending* rank (rank 1 =
// highest score) out of n i.i.d. samples from `dist`, using the standard
// approximation from David & Nagaraja (the paper's [7]):
//
//   E(X_(i)) ≈ F^{-1}( i / (m + 1) )
//
// with ascending index i = n - rank + 1, i.e. quantile (n - rank + 1)/(n + 1).
//
// `n` is a (possibly fractional) cardinality estimate. Returns 0 when
// n < rank: the sample is not expected to contain that rank at all, which
// PLANGEN treats as "the original query cannot fill the top-k".
double ExpectedScoreAtRank(const ScoreDistribution& dist, double n,
                           uint64_t rank);

// Convenience for the two scores PLANGEN compares (Algorithm 1):
// E_Q(k) — expected k-th best answer score of the original query — and
// E_Q'(1) — expected best score of a relaxed query.
inline double ExpectedTopScore(const ScoreDistribution& dist, double n) {
  return ExpectedScoreAtRank(dist, n, 1);
}

}  // namespace specqp

#endif  // SPECQP_STATS_ORDER_STATISTICS_H_
