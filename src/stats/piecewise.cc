#include "stats/piecewise.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace specqp {

PiecewiseLinearPdf::PiecewiseLinearPdf(std::vector<Knot> knots, bool normalize)
    : knots_(std::move(knots)) {
  SPECQP_CHECK(knots_.size() >= 2) << "need at least two knots";
  for (size_t i = 0; i < knots_.size(); ++i) {
    SPECQP_CHECK(knots_[i].f >= -1e-12) << "negative density";
    knots_[i].f = std::max(knots_[i].f, 0.0);
    if (i > 0) {
      SPECQP_CHECK(knots_[i].x > knots_[i - 1].x)
          << "knots must be strictly increasing";
    }
  }

  // Total mass by trapezoid (exact for a piecewise-linear density).
  double mass = 0.0;
  for (size_t i = 0; i + 1 < knots_.size(); ++i) {
    mass += 0.5 * (knots_[i].f + knots_[i + 1].f) *
            (knots_[i + 1].x - knots_[i].x);
  }
  if (normalize) {
    SPECQP_CHECK(mass > 0.0) << "cannot normalise a zero-mass density";
    for (Knot& k : knots_) k.f /= mass;
    mass = 1.0;
  }

  cdf_at_knot_.resize(knots_.size());
  cdf_at_knot_[0] = 0.0;
  for (size_t i = 0; i + 1 < knots_.size(); ++i) {
    cdf_at_knot_[i + 1] =
        cdf_at_knot_[i] + 0.5 * (knots_[i].f + knots_[i + 1].f) *
                              (knots_[i + 1].x - knots_[i].x);
  }
  // Pin the last cdf value so InverseCdf(1) is exact despite rounding.
  if (normalize) cdf_at_knot_.back() = 1.0;
}

size_t PiecewiseLinearPdf::SegmentFor(double x) const {
  // Largest i with knots_[i].x <= x, capped to the last segment start.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double v, const Knot& k) { return v < k.x; });
  size_t i = (it == knots_.begin()) ? 0 : static_cast<size_t>(it - knots_.begin()) - 1;
  return std::min(i, knots_.size() - 2);
}

double PiecewiseLinearPdf::Pdf(double x) const {
  if (x < lower() || x > upper()) return 0.0;
  const size_t i = SegmentFor(x);
  const Knot& a = knots_[i];
  const Knot& b = knots_[i + 1];
  const double t = (x - a.x) / (b.x - a.x);
  return a.f + t * (b.f - a.f);
}

double PiecewiseLinearPdf::Cdf(double x) const {
  if (x <= lower()) return 0.0;
  if (x >= upper()) return cdf_at_knot_.back();
  const size_t i = SegmentFor(x);
  const Knot& a = knots_[i];
  const Knot& b = knots_[i + 1];
  const double dx = x - a.x;
  const double slope = (b.f - a.f) / (b.x - a.x);
  return cdf_at_knot_[i] + a.f * dx + 0.5 * slope * dx * dx;
}

double PiecewiseLinearPdf::InverseCdf(double p) const {
  p = std::clamp(p, 0.0, cdf_at_knot_.back());
  // Find the segment whose cdf range contains p.
  auto it = std::lower_bound(cdf_at_knot_.begin(), cdf_at_knot_.end(), p);
  size_t i = (it == cdf_at_knot_.begin())
                 ? 0
                 : static_cast<size_t>(it - cdf_at_knot_.begin()) - 1;
  i = std::min(i, knots_.size() - 2);
  const Knot& a = knots_[i];
  const Knot& b = knots_[i + 1];
  const double target = p - cdf_at_knot_[i];
  if (target <= 0.0) return a.x;
  const double slope = (b.f - a.f) / (b.x - a.x);
  // Solve 0.5*slope*dx^2 + a.f*dx - target = 0 for dx >= 0.
  double dx;
  if (std::abs(slope) < 1e-14) {
    dx = (a.f > 0.0) ? target / a.f : (b.x - a.x);
  } else {
    const double disc = a.f * a.f + 2.0 * slope * target;
    dx = (-a.f + std::sqrt(std::max(disc, 0.0))) / slope;
  }
  dx = std::clamp(dx, 0.0, b.x - a.x);
  return a.x + dx;
}

double PiecewiseLinearPdf::Mean() const {
  // ∫ x f(x) dx over a segment with f linear: closed form via midpoint of
  // the linear density: ∫ x (a.f + s(x-a.x)) dx.
  double mean = 0.0;
  for (size_t i = 0; i + 1 < knots_.size(); ++i) {
    const Knot& a = knots_[i];
    const Knot& b = knots_[i + 1];
    const double w = b.x - a.x;
    // Exact: ∫_{a.x}^{b.x} x f(x) dx with linear f equals
    // w * ( a.f*(a.x/2 + w/6)*2 ... ) — use the standard quadrature: for a
    // linear integrand product, Simpson with the segment endpoints and
    // midpoint is exact (degree 2 polynomial).
    const double mid_x = 0.5 * (a.x + b.x);
    const double mid_f = 0.5 * (a.f + b.f);
    mean += w / 6.0 * (a.x * a.f + 4.0 * mid_x * mid_f + b.x * b.f);
  }
  return mean;
}

double PiecewiseLinearPdf::PartialExpectationAbove(double t) const {
  if (t <= lower()) return Mean();
  if (t >= upper()) return 0.0;
  const size_t seg = SegmentFor(t);
  double total = 0.0;
  // Partial piece of segment `seg` from t to its right end.
  {
    const Knot& a = knots_[seg];
    const Knot& b = knots_[seg + 1];
    const double slope = (b.f - a.f) / (b.x - a.x);
    const double f_at_t = a.f + slope * (t - a.x);
    const double w = b.x - a.x - (t - a.x);
    const double mid_x = 0.5 * (t + b.x);
    const double mid_f = 0.5 * (f_at_t + b.f);
    total += w / 6.0 * (t * f_at_t + 4.0 * mid_x * mid_f + b.x * b.f);
  }
  for (size_t i = seg + 1; i + 1 < knots_.size(); ++i) {
    const Knot& a = knots_[i];
    const Knot& b = knots_[i + 1];
    const double w = b.x - a.x;
    const double mid_x = 0.5 * (a.x + b.x);
    const double mid_f = 0.5 * (a.f + b.f);
    total += w / 6.0 * (a.x * a.f + 4.0 * mid_x * mid_f + b.x * b.f);
  }
  return total;
}

}  // namespace specqp
