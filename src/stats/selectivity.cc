#include "stats/selectivity.h"

#include <algorithm>
#include <array>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace specqp {

namespace {

struct SharedSlot {
  VarId var;
  int slot_a;
  int slot_b;
};

std::vector<SharedSlot> SharedSlots(const TriplePattern& a,
                                    const TriplePattern& b) {
  VarId va[3];
  const int na = a.Variables(va);
  std::vector<SharedSlot> shared;
  for (int i = 0; i < na; ++i) {
    const int sb = SlotOfVar(b, va[i]);
    if (sb >= 0) {
      shared.push_back(SharedSlot{va[i], SlotOfVar(a, va[i]), sb});
    }
  }
  std::sort(shared.begin(), shared.end(),
            [](const SharedSlot& x, const SharedSlot& y) {
              return x.var < y.var;
            });
  return shared;
}

struct JoinKey {
  std::array<TermId, 3> v = {kInvalidTermId, kInvalidTermId, kInvalidTermId};
  friend bool operator==(const JoinKey& a, const JoinKey& b) {
    return a.v == b.v;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (TermId t : k.v) {
      h ^= t;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

std::string MemoKey(const TriplePattern& a, const TriplePattern& b,
                    const std::vector<SharedSlot>& shared) {
  const PatternKey ka = a.Key();
  const PatternKey kb = b.Key();
  std::string key = StrFormat("%u/%u/%u|%u/%u/%u", ka.s, ka.p, ka.o, kb.s,
                              kb.p, kb.o);
  for (const SharedSlot& s : shared) {
    key += StrFormat("|%d:%d", s.slot_a, s.slot_b);
  }
  return key;
}

}  // namespace

SelectivityEstimator::SelectivityEstimator(const TripleStore* store, Mode mode)
    : store_(store), mode_(mode) {
  SPECQP_CHECK(store_ != nullptr);
}

double SelectivityEstimator::JoinCardinality(const TriplePattern& a,
                                             const TriplePattern& b) {
  const std::vector<SharedSlot> shared = SharedSlots(a, b);
  if (shared.empty()) {
    // Cross product.
    return static_cast<double>(store_->CountMatches(a.Key())) *
           static_cast<double>(store_->CountMatches(b.Key()));
  }
  const std::string memo_key = MemoKey(a, b, shared);
  auto it = pair_memo_.find(memo_key);
  if (it != pair_memo_.end()) return it->second;

  const double count = (mode_ == Mode::kIndependence)
                           ? IndependencePairCount(a, b)
                           : ExactPairCount(a, b);
  pair_memo_.emplace(memo_key, count);
  return count;
}

double SelectivityEstimator::Selectivity(const TriplePattern& a,
                                         const TriplePattern& b) {
  const double ma = static_cast<double>(store_->CountMatches(a.Key()));
  const double mb = static_cast<double>(store_->CountMatches(b.Key()));
  if (ma <= 0.0 || mb <= 0.0) return 0.0;
  return JoinCardinality(a, b) / (ma * mb);
}

double SelectivityEstimator::ExactPairCount(const TriplePattern& a,
                                            const TriplePattern& b) {
  const std::vector<SharedSlot> shared = SharedSlots(a, b);
  // Group-count both sides on the join key, then sum products: the join
  // cardinality without materialising results, O(m_a + m_b).
  std::unordered_map<JoinKey, uint64_t, JoinKeyHash> counts_a;
  for (uint32_t idx : store_->MatchIndices(a.Key())) {
    const Triple& t = store_->triple(idx);
    if (!ConsistentMatch(a, t)) continue;
    JoinKey key;
    for (size_t i = 0; i < shared.size(); ++i) {
      key.v[i] = SlotValue(t, shared[i].slot_a);
    }
    ++counts_a[key];
  }
  double total = 0.0;
  for (uint32_t idx : store_->MatchIndices(b.Key())) {
    const Triple& t = store_->triple(idx);
    if (!ConsistentMatch(b, t)) continue;
    JoinKey key;
    for (size_t i = 0; i < shared.size(); ++i) {
      key.v[i] = SlotValue(t, shared[i].slot_b);
    }
    auto it = counts_a.find(key);
    if (it != counts_a.end()) total += static_cast<double>(it->second);
  }
  return total;
}

double SelectivityEstimator::IndependencePairCount(const TriplePattern& a,
                                                   const TriplePattern& b) {
  const std::vector<SharedSlot> shared = SharedSlots(a, b);
  const double ma = static_cast<double>(store_->CountMatches(a.Key()));
  const double mb = static_cast<double>(store_->CountMatches(b.Key()));
  double phi = 1.0;
  for (const SharedSlot& s : shared) {
    const double da =
        static_cast<double>(store_->CountDistinct(a.Key(), s.slot_a));
    const double db =
        static_cast<double>(store_->CountDistinct(b.Key(), s.slot_b));
    const double denom = std::max(da, db);
    phi *= (denom > 0.0) ? 1.0 / denom : 0.0;
  }
  return ma * mb * phi;
}

double SelectivityEstimator::QueryCardinality(const Query& query) {
  if (mode_ == Mode::kExact) {
    return static_cast<double>(ExactQueryCardinality(query));
  }
  return ChainedQueryCardinality(query);
}

double SelectivityEstimator::ChainedQueryCardinality(const Query& query) {
  const auto& patterns = query.patterns();
  SPECQP_CHECK(!patterns.empty());
  double n = static_cast<double>(store_->CountMatches(patterns[0].Key()));
  for (size_t j = 1; j < patterns.size(); ++j) {
    const double mj =
        static_cast<double>(store_->CountMatches(patterns[j].Key()));
    // Join against the earliest previous pattern sharing a variable.
    double phi = 1.0;
    bool found = false;
    for (size_t i = 0; i < j; ++i) {
      if (!query.SharedVars(i, j).empty()) {
        phi = Selectivity(patterns[i], patterns[j]);
        found = true;
        break;
      }
    }
    n *= found ? mj * phi : mj;
  }
  return n;
}

uint64_t SelectivityEstimator::ExactQueryCardinality(const Query& query) {
  const auto& patterns = query.patterns();
  SPECQP_CHECK(!patterns.empty());

  // Memoise on the full query signature (pattern keys + variable layout).
  std::string memo_key;
  for (const TriplePattern& q : patterns) {
    const PatternKey key = q.Key();
    memo_key += StrFormat("%u/%u/%u", key.s, key.p, key.o);
    VarId vars[3];
    const int nv = q.Variables(vars);
    for (int v = 0; v < nv; ++v) {
      memo_key += StrFormat(":%d@%u", SlotOfVar(q, vars[v]), vars[v]);
    }
    memo_key += "|";
  }
  auto memo_it = query_memo_.find(memo_key);
  if (memo_it != query_memo_.end()) return memo_it->second;

  // Evaluation order: cheapest pattern first, then repeatedly the cheapest
  // pattern connected to what is already bound (performance only; the
  // count is order-independent).
  std::vector<size_t> order;
  {
    std::vector<size_t> remaining(patterns.size());
    for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
    std::vector<bool> bound_vars(query.num_vars(), false);
    auto cost = [&](size_t i) {
      return store_->CountMatches(patterns[i].Key());
    };
    while (!remaining.empty()) {
      size_t best_pos = 0;
      bool best_connected = false;
      for (size_t pos = 0; pos < remaining.size(); ++pos) {
        VarId vars[3];
        const int nv = patterns[remaining[pos]].Variables(vars);
        bool connected = order.empty();
        for (int v = 0; v < nv && !connected; ++v) {
          connected = bound_vars[vars[v]];
        }
        if ((connected && !best_connected) ||
            (connected == best_connected &&
             cost(remaining[pos]) < cost(remaining[best_pos]))) {
          best_pos = pos;
          best_connected = connected;
        }
      }
      const size_t chosen = remaining[best_pos];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best_pos));
      order.push_back(chosen);
      VarId vars[3];
      const int nv = patterns[chosen].Variables(vars);
      for (int v = 0; v < nv; ++v) bound_vars[vars[v]] = true;
    }
  }

  std::vector<TermId> bindings(query.num_vars(), kInvalidTermId);

  // Backtracking index-nested-loop join, narrowing each lookup with
  // already-bound variables.
  uint64_t count = 0;
  auto recurse = [&](auto&& self, size_t depth) -> void {
    if (depth == patterns.size()) {
      ++count;
      return;
    }
    const TriplePattern& q = patterns[order[depth]];
    // Bind known variables into the lookup key.
    PatternKey key = q.Key();
    auto refine = [&bindings](const PatternTerm& term, TermId* out) {
      if (term.is_variable() && bindings[term.var()] != kInvalidTermId) {
        *out = bindings[term.var()];
      }
    };
    refine(q.s, &key.s);
    refine(q.p, &key.p);
    refine(q.o, &key.o);

    for (uint32_t idx : store_->MatchIndices(key)) {
      const Triple& t = store_->triple(idx);
      if (!ConsistentMatch(q, t)) continue;
      // Bind the still-free variables; remember which to unbind.
      VarId bound_here[3];
      int num_bound = 0;
      auto bind = [&](const PatternTerm& term, TermId value) -> bool {
        if (!term.is_variable()) return true;
        TermId& slot = bindings[term.var()];
        if (slot == kInvalidTermId) {
          slot = value;
          bound_here[num_bound++] = term.var();
          return true;
        }
        return slot == value;
      };
      if (bind(q.s, t.s) && bind(q.p, t.p) && bind(q.o, t.o)) {
        self(self, depth + 1);
      }
      for (int i = 0; i < num_bound; ++i) {
        bindings[bound_here[i]] = kInvalidTermId;
      }
    }
  };
  recurse(recurse, 0);
  query_memo_.emplace(std::move(memo_key), count);
  return count;
}

}  // namespace specqp
