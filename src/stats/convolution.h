#ifndef SPECQP_STATS_CONVOLUTION_H_
#define SPECQP_STATS_CONVOLUTION_H_

#include "stats/piecewise.h"
#include "stats/two_bucket_histogram.h"

namespace specqp {

// Exact convolution of two two-bucket (piecewise-constant) densities. The
// result — the density of the sum of one score drawn from each — is a
// continuous piecewise-linear function on [0, a.upper() + b.upper()] whose
// breakpoints are the pairwise sums of the input bucket boundaries
// (section 3.1.2, Figure 4).
PiecewiseLinearPdf ConvolveTwoBucket(const TwoBucketHistogram& a,
                                     const TwoBucketHistogram& b);

// The paper's "fit the curve" step: collapses an arbitrary distribution
// back into the two-bucket model. The new bucket boundary sigma_r is the
// threshold t* at which the expected score mass above t* equals
// head_fraction (0.8) of the total expected score; the head bucket then
// carries exactly head_fraction of the probability mass, matching how
// FromScores fits raw posting lists. Solved by bisection on the monotone
// PartialExpectationAbove.
TwoBucketHistogram RefitTwoBucket(const ScoreDistribution& dist,
                                  double head_fraction = 0.8);

}  // namespace specqp

#endif  // SPECQP_STATS_CONVOLUTION_H_
