#include "stats/two_bucket_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace specqp {

TwoBucketHistogram::TwoBucketHistogram(double sigma_r, double head_mass,
                                       double upper)
    : upper_(upper) {
  SPECQP_CHECK(upper > 0.0);
  const double lo = kMinBucketWidth * upper;
  sigma_r_ = std::clamp(sigma_r, lo, upper - lo);
  head_mass_ = std::clamp(head_mass, 0.0, 1.0);
}

TwoBucketHistogram TwoBucketHistogram::FromScores(
    std::span<const double> scores_desc, double upper, double head_fraction) {
  SPECQP_CHECK(!scores_desc.empty());
  double total = 0.0;
  for (double s : scores_desc) {
    SPECQP_DCHECK(s >= 0.0 && s <= upper + 1e-12);
    total += s;
  }
  if (total <= 0.0) {
    // All-zero scores: a thin near-zero distribution.
    return TwoBucketHistogram(upper * 0.5, 0.0, upper);
  }
  double acc = 0.0;
  size_t r = scores_desc.size() - 1;
  for (size_t i = 0; i < scores_desc.size(); ++i) {
    acc += scores_desc[i];
    if (acc >= head_fraction * total) {
      r = i;
      break;
    }
  }
  // Realised head fraction (>= head_fraction unless the loop fell through).
  double realised = 0.0;
  for (size_t i = 0; i <= r; ++i) realised += scores_desc[i];
  realised /= total;
  return TwoBucketHistogram(scores_desc[r], realised, upper);
}

double TwoBucketHistogram::Pdf(double x) const {
  if (x < 0.0 || x > upper_) return 0.0;
  if (x < sigma_r_) return (1.0 - head_mass_) / sigma_r_;
  return head_mass_ / (upper_ - sigma_r_);
}

double TwoBucketHistogram::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= upper_) return 1.0;
  if (x < sigma_r_) return (1.0 - head_mass_) * (x / sigma_r_);
  return (1.0 - head_mass_) +
         head_mass_ * ((x - sigma_r_) / (upper_ - sigma_r_));
}

double TwoBucketHistogram::InverseCdf(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  const double tail = 1.0 - head_mass_;
  if (p <= tail) {
    if (tail <= 0.0) return sigma_r_;
    return sigma_r_ * (p / tail);
  }
  if (head_mass_ <= 0.0) return sigma_r_;
  return sigma_r_ + (upper_ - sigma_r_) * ((p - tail) / head_mass_);
}

double TwoBucketHistogram::Mean() const {
  const double tail_mean = sigma_r_ / 2.0;
  const double head_mean = (sigma_r_ + upper_) / 2.0;
  return (1.0 - head_mass_) * tail_mean + head_mass_ * head_mean;
}

double TwoBucketHistogram::PartialExpectationAbove(double t) const {
  if (t >= upper_) return 0.0;
  if (t < 0.0) t = 0.0;
  const double tail_height = (1.0 - head_mass_) / sigma_r_;
  const double head_height = head_mass_ / (upper_ - sigma_r_);
  if (t >= sigma_r_) {
    return head_height * (upper_ * upper_ - t * t) / 2.0;
  }
  return tail_height * (sigma_r_ * sigma_r_ - t * t) / 2.0 +
         head_height * (upper_ * upper_ - sigma_r_ * sigma_r_) / 2.0;
}

TwoBucketHistogram TwoBucketHistogram::ScaledBy(double w) const {
  SPECQP_CHECK(w > 0.0 && w <= 1.0);
  return TwoBucketHistogram(sigma_r_ * w, head_mass_, upper_ * w);
}

}  // namespace specqp
