#include "stats/grid_pdf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace specqp {

GridPdf GridPdf::FromDistribution(const ScoreDistribution& dist,
                                  double delta) {
  SPECQP_CHECK(delta > 0.0);
  const size_t bins =
      static_cast<size_t>(std::ceil(dist.upper() / delta - 1e-12));
  SPECQP_CHECK(bins >= 1);
  std::vector<double> masses(bins);
  double prev = 0.0;
  for (size_t i = 0; i < bins; ++i) {
    const double hi = std::min((static_cast<double>(i) + 1.0) * delta,
                               dist.upper());
    const double c = dist.Cdf(hi);
    masses[i] = std::max(c - prev, 0.0);
    prev = c;
  }
  return GridPdf(std::move(masses), delta);
}

GridPdf::GridPdf(std::vector<double> masses, double delta)
    : masses_(std::move(masses)), delta_(delta) {
  SPECQP_CHECK(!masses_.empty());
  SPECQP_CHECK(delta_ > 0.0);
  double total = 0.0;
  for (double m : masses_) {
    SPECQP_CHECK(m >= 0.0);
    total += m;
  }
  SPECQP_CHECK(total > 0.0);
  cum_.resize(masses_.size());
  double acc = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    masses_[i] /= total;
    acc += masses_[i];
    cum_[i] = acc;
  }
  cum_.back() = 1.0;
}

double GridPdf::Pdf(double x) const {
  if (x < 0.0 || x >= upper()) return 0.0;
  const size_t i = std::min(static_cast<size_t>(x / delta_),
                            masses_.size() - 1);
  return masses_[i] / delta_;
}

double GridPdf::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= upper()) return 1.0;
  const size_t i = std::min(static_cast<size_t>(x / delta_),
                            masses_.size() - 1);
  const double below = (i == 0) ? 0.0 : cum_[i - 1];
  const double frac = (x - static_cast<double>(i) * delta_) / delta_;
  return below + masses_[i] * frac;
}

double GridPdf::InverseCdf(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  auto it = std::lower_bound(cum_.begin(), cum_.end(), p);
  if (it == cum_.end()) return upper();
  const size_t i = static_cast<size_t>(it - cum_.begin());
  const double below = (i == 0) ? 0.0 : cum_[i - 1];
  const double frac =
      (masses_[i] > 0.0) ? (p - below) / masses_[i] : 0.0;
  return (static_cast<double>(i) + std::clamp(frac, 0.0, 1.0)) * delta_;
}

double GridPdf::Mean() const {
  double mean = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    mean += masses_[i] * (static_cast<double>(i) + 0.5) * delta_;
  }
  return mean;
}

double GridPdf::PartialExpectationAbove(double t) const {
  if (t <= 0.0) return Mean();
  if (t >= upper()) return 0.0;
  double total = 0.0;
  const size_t first = std::min(static_cast<size_t>(t / delta_),
                                masses_.size() - 1);
  for (size_t i = first; i < masses_.size(); ++i) {
    const double lo = static_cast<double>(i) * delta_;
    const double hi = lo + delta_;
    if (hi <= t) continue;
    const double eff_lo = std::max(lo, t);
    const double frac = (hi - eff_lo) / delta_;
    total += masses_[i] * frac * 0.5 * (eff_lo + hi);
  }
  return total;
}

GridPdf GridPdf::Convolve(const GridPdf& a, const GridPdf& b) {
  SPECQP_CHECK(std::abs(a.delta_ - b.delta_) < 1e-12)
      << "grid convolution requires equal bin widths";
  std::vector<double> out(a.masses_.size() + b.masses_.size(), 0.0);
  // The sum of two bin midpoints (i+0.5)δ + (j+0.5)δ = (i+j+1)δ lands on a
  // bin *edge*; splitting the product mass evenly between the bins on
  // either side keeps the convolution mean exact (no half-bin bias).
  for (size_t i = 0; i < a.masses_.size(); ++i) {
    if (a.masses_[i] == 0.0) continue;
    for (size_t j = 0; j < b.masses_.size(); ++j) {
      const double m = a.masses_[i] * b.masses_[j];
      out[i + j] += 0.5 * m;
      out[i + j + 1] += 0.5 * m;
    }
  }
  return GridPdf(std::move(out), a.delta_);
}

}  // namespace specqp
