#ifndef SPECQP_STATS_PIECEWISE_H_
#define SPECQP_STATS_PIECEWISE_H_

#include <cstddef>
#include <vector>

#include "stats/distribution.h"

namespace specqp {

// A continuous piecewise-linear probability density given by knots
// (x_i, f_i) with x_0 < x_1 < ... < x_k and linear interpolation between
// them; zero outside [x_0, x_k]. This is the exact shape produced by
// convolving two piecewise-constant densities (section 3.1.2: "The
// resulting pdf is a multi-piece-wise linear function").
//
// All moments/quantiles are closed-form per segment: the cdf is piecewise
// quadratic, the partial expectation piecewise cubic.
class PiecewiseLinearPdf final : public ScoreDistribution {
 public:
  struct Knot {
    double x = 0.0;
    double f = 0.0;  // density at x
  };

  // Knots must be sorted by strictly increasing x with non-negative f and
  // at least two knots. If `normalize` (default) the densities are rescaled
  // so the total mass is exactly 1.
  explicit PiecewiseLinearPdf(std::vector<Knot> knots, bool normalize = true);

  double upper() const override { return knots_.back().x; }
  double lower() const { return knots_.front().x; }

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double InverseCdf(double p) const override;
  double Mean() const override;
  double PartialExpectationAbove(double t) const override;

  // P(X >= t).
  double MassAbove(double t) const { return 1.0 - Cdf(t); }

  const std::vector<Knot>& knots() const { return knots_; }

 private:
  // Index of the segment [x_i, x_{i+1}] containing x (clamped).
  size_t SegmentFor(double x) const;

  std::vector<Knot> knots_;
  std::vector<double> cdf_at_knot_;  // cdf_at_knot_[i] = Cdf(x_i)
};

}  // namespace specqp

#endif  // SPECQP_STATS_PIECEWISE_H_
