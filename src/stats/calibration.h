#ifndef SPECQP_STATS_CALIBRATION_H_
#define SPECQP_STATS_CALIBRATION_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace specqp {

// --- estimate-calibration loop -----------------------------------------------
//
// Every execution records (pattern signature, estimated cardinality, actual
// cardinality) pairs plus a per-query summary into the engine's
// CalibrationLog. Bench runs dump the log into their --json artifacts;
// scripts/fit_estimator_correction.py fits a per-predicate-class
// multiplicative correction from the accumulated pairs and emits a table
// that StatisticsCatalog::LoadCalibration applies to every estimated m at
// open (EngineOptions::calibration_path). The loop closes the estimator
// gap offline: estimates feed executions, executions feed the log, the log
// feeds corrections, corrections feed the next open's estimates.

// The signature grouping patterns into correction classes: one field per
// position, "?" for a variable, the predicate's dictionary text for a
// bound predicate (the class identity), "#" for a bound subject/object
// (entity identity deliberately erased — corrections generalise across
// entities of one predicate class). Separator "|"; separator/whitespace
// bytes inside the predicate text are replaced so signatures stay one
// whitespace-free token in the correction table.
std::string PatternSignature(const TripleStore& store, const PatternKey& key);

// Parses a correction table written by scripts/fit_estimator_correction.py:
// '#'-comment and blank lines skipped, otherwise "<signature>\t<multiplier>"
// (any run of whitespace separates). Multipliers are clamped to
// [0.01, 100]; malformed lines are ignored. Returns the number of entries
// loaded into `out` (0 when the file cannot be read — a missing table is
// "no corrections", never an error).
size_t LoadCalibrationTable(const std::string& path,
                            std::unordered_map<std::string, double>* out);

// One (estimate, actual) observation for a pattern's match count.
struct CalibrationPatternRecord {
  std::string signature;
  double estimated_m = 0.0;  // as the planner used it (post-correction)
  double actual_m = 0.0;     // the posting list's true size
};

// Per-query summary: what was estimated, what happened, which plan ran,
// and how a speculative race (if any) was decided.
struct CalibrationQueryRecord {
  double estimated_cardinality = 0.0;
  uint64_t observed_join_results = 0;
  std::string plan;
  bool raced = false;
  bool runner_up_won = false;
};

// Bounded, thread-safe in-memory log. Appends past the capacity drop the
// oldest records (the loop wants recent traffic, and an engine serving an
// unbounded stream must not grow without bound).
class CalibrationLog {
 public:
  explicit CalibrationLog(size_t capacity = 4096);

  CalibrationLog(const CalibrationLog&) = delete;
  CalibrationLog& operator=(const CalibrationLog&) = delete;

  void RecordPattern(CalibrationPatternRecord record);
  void RecordQuery(CalibrationQueryRecord record);

  std::vector<CalibrationPatternRecord> PatternRecords() const;
  std::vector<CalibrationQueryRecord> QueryRecords() const;

  // Records evicted by the capacity bound (both kinds summed).
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<CalibrationPatternRecord> patterns_ SPECQP_GUARDED_BY(mu_);
  std::deque<CalibrationQueryRecord> queries_ SPECQP_GUARDED_BY(mu_);
  uint64_t dropped_ SPECQP_GUARDED_BY(mu_) = 0;
};

}  // namespace specqp

#endif  // SPECQP_STATS_CALIBRATION_H_
