#ifndef SPECQP_STATS_TWO_BUCKET_HISTOGRAM_H_
#define SPECQP_STATS_TWO_BUCKET_HISTOGRAM_H_

#include <span>

#include "stats/distribution.h"

namespace specqp {

// The paper's score-distribution model (section 3.1.1): a two-bucket
// histogram over [0, upper] with boundary sigma_r,
//
//   f(x) = (1 - head_mass) / sigma_r            for 0 <= x < sigma_r
//   f(x) = head_mass / (upper - sigma_r)        for sigma_r <= x <= upper
//
// where head_mass = S_r / S_m is the *score-mass* fraction of the top-ranked
// answers (the "80%" of the 80/20 rule). Note the paper's deliberate
// approximation: the probability mass of each bucket equals its share of
// the score mass, i.e. P(X >= sigma_r) = 0.8 even though only ~20% of
// answers actually score that high under a power law. We reproduce the
// formula exactly; it is what PLANGEN's predictions are built on.
class TwoBucketHistogram final : public ScoreDistribution {
 public:
  // sigma_r is clamped into [kMinBucketWidth*upper, (1-kMinBucketWidth)*upper]
  // and head_mass into [0, 1] to keep densities finite.
  TwoBucketHistogram(double sigma_r, double head_mass, double upper = 1.0);

  // Fits the model to observed scores sorted in *descending* order (a
  // pattern's normalised posting-list scores): finds the smallest rank r
  // whose cumulative score mass reaches `head_fraction` (0.8) of the total,
  // sets sigma_r to the score at rank r and head_mass to the realised
  // fraction. Scores must be within [0, upper]. Returns a degenerate
  // near-uniform histogram if all scores are zero.
  static TwoBucketHistogram FromScores(std::span<const double> scores_desc,
                                       double upper = 1.0,
                                       double head_fraction = 0.8);

  double upper() const override { return upper_; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double InverseCdf(double p) const override;
  double Mean() const override;
  double PartialExpectationAbove(double t) const override;

  double sigma_r() const { return sigma_r_; }
  double head_mass() const { return head_mass_; }

  // The distribution of w*X for w in (0, 1]: support shrinks to
  // [0, w*upper]. Models a relaxation's weight discount (Definition 8): the
  // relaxed pattern's normalised scores are capped at its rule weight.
  TwoBucketHistogram ScaledBy(double w) const;

  static constexpr double kMinBucketWidth = 1e-9;

 private:
  double sigma_r_;
  double head_mass_;
  double upper_;
};

}  // namespace specqp

#endif  // SPECQP_STATS_TWO_BUCKET_HISTOGRAM_H_
