#include "stats/calibration.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace specqp {

namespace {

// Keeps a signature field one whitespace-free token without the separator.
std::string SanitizeField(std::string_view text) {
  std::string field(text);
  for (char& c : field) {
    if (c == '|' || c == '\t' || c == '\n' || c == '\r' || c == ' ') c = '_';
  }
  return field;
}

}  // namespace

std::string PatternSignature(const TripleStore& store, const PatternKey& key) {
  std::string signature;
  signature += key.s_bound() ? "#" : "?";
  signature += '|';
  signature +=
      key.p_bound() ? SanitizeField(store.dict().Name(key.p)) : "?";
  signature += '|';
  signature += key.o_bound() ? "#" : "?";
  return signature;
}

size_t LoadCalibrationTable(const std::string& path,
                            std::unordered_map<std::string, double>* out) {
  std::ifstream in(path);
  if (!in.is_open()) return 0;
  size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string signature;
    double multiplier = 0.0;
    if (!(fields >> signature >> multiplier)) continue;
    if (!(multiplier > 0.0)) continue;  // also rejects NaN
    (*out)[signature] = std::clamp(multiplier, 0.01, 100.0);
    ++loaded;
  }
  return loaded;
}

CalibrationLog::CalibrationLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void CalibrationLog::RecordPattern(CalibrationPatternRecord record) {
  MutexLock lock(mu_);
  patterns_.push_back(std::move(record));
  while (patterns_.size() > capacity_) {
    patterns_.pop_front();
    ++dropped_;
  }
}

void CalibrationLog::RecordQuery(CalibrationQueryRecord record) {
  MutexLock lock(mu_);
  queries_.push_back(std::move(record));
  while (queries_.size() > capacity_) {
    queries_.pop_front();
    ++dropped_;
  }
}

std::vector<CalibrationPatternRecord> CalibrationLog::PatternRecords() const {
  MutexLock lock(mu_);
  return {patterns_.begin(), patterns_.end()};
}

std::vector<CalibrationQueryRecord> CalibrationLog::QueryRecords() const {
  MutexLock lock(mu_);
  return {queries_.begin(), queries_.end()};
}

uint64_t CalibrationLog::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

}  // namespace specqp
