#include "stats/convolution.h"

#include <algorithm>
#include <array>
#include <vector>

#include "util/logging.h"

namespace specqp {

namespace {

// Evaluates (f_a * f_b)(z) exactly for piecewise-constant inputs:
//   f(z) = Σ_{buckets i of a, j of b} h_i · h_j · |A_i ∩ (z − B_j)|
// where A_i = [lo, hi] of a's bucket and z − B_j = [z − B_hi, z − B_lo].
double ConvolutionAt(const TwoBucketHistogram& a, const TwoBucketHistogram& b,
                     double z) {
  struct Bucket {
    double lo, hi, h;
  };
  const std::array<Bucket, 2> ab = {
      Bucket{0.0, a.sigma_r(), a.Pdf(a.sigma_r() / 2.0)},
      Bucket{a.sigma_r(), a.upper(),
             a.Pdf((a.sigma_r() + a.upper()) / 2.0)},
  };
  const std::array<Bucket, 2> bb = {
      Bucket{0.0, b.sigma_r(), b.Pdf(b.sigma_r() / 2.0)},
      Bucket{b.sigma_r(), b.upper(),
             b.Pdf((b.sigma_r() + b.upper()) / 2.0)},
  };
  double f = 0.0;
  for (const Bucket& x : ab) {
    for (const Bucket& y : bb) {
      const double lo = std::max(x.lo, z - y.hi);
      const double hi = std::min(x.hi, z - y.lo);
      if (hi > lo) f += x.h * y.h * (hi - lo);
    }
  }
  return f;
}

}  // namespace

PiecewiseLinearPdf ConvolveTwoBucket(const TwoBucketHistogram& a,
                                     const TwoBucketHistogram& b) {
  // Critical points: sums of bucket endpoints. Between consecutive critical
  // points every overlap length is linear in z, so sampling the exact value
  // at each critical point and interpolating linearly is an exact
  // representation.
  const std::array<double, 3> ea = {0.0, a.sigma_r(), a.upper()};
  const std::array<double, 3> eb = {0.0, b.sigma_r(), b.upper()};
  std::vector<double> xs;
  xs.reserve(9);
  for (double x : ea) {
    for (double y : eb) xs.push_back(x + y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double p, double q) { return std::abs(p - q) < 1e-15; }),
           xs.end());

  std::vector<PiecewiseLinearPdf::Knot> knots;
  knots.reserve(xs.size());
  for (double x : xs) {
    knots.push_back({x, ConvolutionAt(a, b, x)});
  }
  return PiecewiseLinearPdf(std::move(knots), /*normalize=*/true);
}

TwoBucketHistogram RefitTwoBucket(const ScoreDistribution& dist,
                                  double head_fraction) {
  SPECQP_CHECK(head_fraction > 0.0 && head_fraction < 1.0);
  const double total = dist.Mean();
  const double upper = dist.upper();
  if (total <= 0.0) {
    return TwoBucketHistogram(upper * 0.5, 0.0, upper);
  }
  // PartialExpectationAbove(t) decreases monotonically from Mean() to 0;
  // bisect for the head_fraction crossing.
  const double target = head_fraction * total;
  double lo = 0.0;
  double hi = upper;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (dist.PartialExpectationAbove(mid) >= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double sigma_r = 0.5 * (lo + hi);
  return TwoBucketHistogram(sigma_r, head_fraction, upper);
}

}  // namespace specqp
