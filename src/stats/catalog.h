#ifndef SPECQP_STATS_CATALOG_H_
#define SPECQP_STATS_CATALOG_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/posting_list.h"
#include "rdf/store_format.h"
#include "rdf/triple_pattern.h"
#include "rdf/triple_store.h"
#include "stats/calibration.h"
#include "stats/two_bucket_histogram.h"

namespace specqp {

// The four precomputed values the paper stores per triple pattern
// (section 3.1.1), over *normalised* (Definition 5) scores:
//
//   m       — number of matching triples
//   sigma_r — score at the rank r where 80% of the score mass is reached
//   s_r     — cumulative score through rank r
//   s_m     — cumulative score through rank m (total mass)
struct PatternStats {
  uint64_t m = 0;
  double sigma_r = 0.0;
  double s_r = 0.0;
  double s_m = 0.0;

  bool empty() const { return m == 0 || s_m <= 0.0; }

  // The two-bucket model induced by the stats; requires !empty().
  TwoBucketHistogram Histogram() const;
};

// Computes and memoises PatternStats per pattern key. The paper precomputes
// these offline for every triple pattern; we compute them on first access
// from the posting list and cache them, which is observationally equivalent
// under the paper's warm-cache methodology (the benchmark harness warms the
// catalog before timing, section 4.4).
class StatisticsCatalog {
 public:
  StatisticsCatalog(const TripleStore* store, PostingListCache* postings,
                    double head_fraction = 0.8);

  StatisticsCatalog(const StatisticsCatalog&) = delete;
  StatisticsCatalog& operator=(const StatisticsCatalog&) = delete;

  const PatternStats& GetStats(const PatternKey& key);

  double head_fraction() const { return head_fraction_; }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

  // --- store-file snapshot (docs/FORMATS.md, section kStats) ---------------

  // Exports every memoised entry as on-disk snapshot rows, sorted by key
  // so the artifact is deterministic. Feed to SaveStoreOptions::stats
  // together with head_fraction().
  std::vector<v2::StatsEntry> Snapshot() const;

  // Seeds the memo cache from a store file's snapshot (e.g. via
  // MmapStore::stats_entries()). The rows must have been computed under
  // this catalog's head_fraction — callers check the snapshot's recorded
  // fraction first (Engine::OpenFromPath does). Returns the number of
  // entries inserted; existing entries are left untouched.
  size_t Preload(std::span<const v2::StatsEntry> entries);

  // --- estimate calibration (stats/calibration.h) --------------------------

  // Loads a per-predicate-class correction table fitted by
  // scripts/fit_estimator_correction.py and applies each class's
  // multiplier to the estimated match count m of every entry computed or
  // preloaded *afterwards* (call before the first GetStats — Engine does,
  // at construction). Returns the number of table entries loaded; 0 for a
  // missing/unreadable file (no corrections, not an error).
  size_t LoadCalibration(const std::string& path);

  // The multiplier that applies to `key` (1.0 when uncalibrated).
  double CorrectionFor(const PatternKey& key) const;

  size_t num_corrections() const { return corrections_.size(); }

 private:
  PatternStats Compute(const PatternKey& key);
  // Scales stats.m by the key's correction (rounded, kept >= 1 for
  // non-empty patterns so a strong down-correction cannot declare a
  // matching pattern empty).
  void ApplyCorrection(const PatternKey& key, PatternStats* stats) const;

  const TripleStore* store_;
  PostingListCache* postings_;
  double head_fraction_;
  std::unordered_map<PatternKey, PatternStats, PatternKeyHash> cache_;
  std::unordered_map<std::string, double> corrections_;
};

}  // namespace specqp

#endif  // SPECQP_STATS_CATALOG_H_
